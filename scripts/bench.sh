#!/usr/bin/env bash
# Perf smoke targets, run in release mode:
#
#   ./scripts/bench.sh            # kernels (default): BENCH_kernels.json
#   ./scripts/bench.sh kernels    # blocked-GEMM / e2e tracker; the e2e
#                                 # object also records the alias-aware
#                                 # plan's per-inference `bytes_moved`
#   ./scripts/bench.sh serve      # serving throughput + p99, the full
#                                 # worker-count burst-scaling sweep
#                                 # (workers 1/2/4/8), and the idle-
#                                 # connection concurrency proof:
#                                 # BENCH_serve.json
#   ./scripts/bench.sh obs        # tracing overhead off vs on: BENCH_obs.json
#   ./scripts/bench.sh all        # all of the above
#
# Knobs (forwarded to the harnesses):
#   TEMCO_BENCH_REPS      timed repetitions per kernel point (default 5)
#   TEMCO_BENCH_OUT       output path override
#   TEMCO_SERVE_CLIENTS   closed-loop clients for the serve target (default 8)
#   TEMCO_SERVE_REQUESTS  requests per client (default 64)
#   TEMCO_SERVE_CONNS     burst-sweep connections (default 256)
#   TEMCO_SERVE_BURSTS    bursts per sweep point (default 6)
set -euo pipefail
cd "$(dirname "$0")/.."

target="${1:-kernels}"

run_kernels() {
  echo "=== bench: cargo build --release -p temco-bench --bin bench_kernels ==="
  cargo build --release -p temco-bench --bin bench_kernels
  echo "=== bench: bench_kernels ==="
  ./target/release/bench_kernels
  echo "bench done: ${TEMCO_BENCH_OUT:-BENCH_kernels.json}"
}

run_serve() {
  echo "=== bench: cargo build --release -p temco-bench --bin bench_serve ==="
  cargo build --release -p temco-bench --bin bench_serve
  echo "=== bench: bench_serve ==="
  ./target/release/bench_serve
  echo "bench done: ${TEMCO_BENCH_OUT:-BENCH_serve.json}"
}

run_obs() {
  echo "=== bench: cargo build --release -p temco-bench --bin bench_obs ==="
  cargo build --release -p temco-bench --bin bench_obs
  echo "=== bench: bench_obs ==="
  ./target/release/bench_obs
  echo "bench done: ${TEMCO_BENCH_OUT:-BENCH_obs.json}"
}

case "$target" in
  kernels) run_kernels ;;
  serve) run_serve ;;
  obs) run_obs ;;
  all)
    run_kernels
    run_serve
    run_obs
    ;;
  *)
    echo "unknown bench target '$target' (expected: kernels | serve | obs | all)" >&2
    exit 2
    ;;
esac
