#!/usr/bin/env bash
# Kernel perf smoke: runs the blocked-GEMM / e2e tracker in release mode
# and refreshes BENCH_kernels.json at the repo root.
#
# Knobs (forwarded to the harness):
#   TEMCO_BENCH_REPS  timed repetitions per point (default 5)
#   TEMCO_BENCH_OUT   output path (default BENCH_kernels.json)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== bench: cargo build --release -p temco-bench ==="
cargo build --release -p temco-bench --bin bench_kernels

echo "=== bench: bench_kernels ==="
./target/release/bench_kernels

echo "bench done: ${TEMCO_BENCH_OUT:-BENCH_kernels.json}"
