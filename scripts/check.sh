#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test suite.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== tier-1: cargo build --release ==="
cargo build --release

echo "=== tier-1: cargo test -q ==="
cargo test -q

echo "all checks passed"
