#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test suite.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== tier-1: cargo build --release ==="
cargo build --release

echo "=== tier-1: cargo test -q ==="
cargo test -q

# Opt-in perf smoke: TEMCO_CHECK_BENCH=1 ./scripts/check.sh also refreshes
# BENCH_kernels.json (a few extra minutes; off by default so CI stays fast).
if [[ "${TEMCO_CHECK_BENCH:-0}" == "1" ]]; then
    ./scripts/bench.sh
fi

echo "all checks passed"
