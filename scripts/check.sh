#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test suite.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (-D warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== tier-1: cargo build --release ==="
cargo build --release

echo "=== tier-1: cargo test -q ==="
cargo test -q

# Deterministic short mode of the differential + fault-injection harness
# (the tier-1 tests above already run its self-tests; this exercises the
# user-facing `temco check` entry point end to end). Scale up with e.g.
# `cargo run --release --bin temco -- check --iters 500 --faults 100000`.
echo "=== temco check (short mode) ==="
cargo run --release -q -p temco-cli --bin temco -- check --iters 8 --faults 2000 --seed 42

# Aliasing regression gate: replans the zoo at a pinned quick scale,
# asserts the alias-aware plan beats the alias-free layout on slab bytes
# AND bytes moved (>= 8/10 models strictly), and diffs the numbers against
# the committed results/fig10_quick_baseline.csv. After an intentional
# planner change: ./target/release/fig10_guard --write and commit the csv.
echo "=== fig10 slab / bytes-moved guard ==="
cargo build --release -q -p temco-bench --bin fig10_guard
./target/release/fig10_guard

# Observability overhead gate: interleaved off/on medians of the traced
# engine (fig11-style); fail if span recording costs more than 3%.
echo "=== obs overhead gate (<= ${TEMCO_OBS_GATE_PCT:-3}%) ==="
cargo build --release -q -p temco-bench --bin bench_obs
TEMCO_OBS_GATE_PCT="${TEMCO_OBS_GATE_PCT:-3}" ./target/release/bench_obs

# Serve scaling gate: burst absorption on the event-driven connection
# plane must scale with the worker count — workers=4 is required to
# absorb at least 2x the burst throughput of workers=1 on an identical
# workload (the full sweep lives in `./scripts/bench.sh serve`).
echo "=== serve scaling gate (workers=4 >= 2x workers=1) ==="
cargo build --release -q -p temco-bench --bin bench_serve
./target/release/bench_serve --smoke

# Autotuner smoke gate: tiny trial budget, fixed seed. Asserts candidate
# generation and selection are deterministic, the tuning DB round-trips
# through its on-disk text format, and the selected schedule never loses
# to the hand-tuned default on the smoke shapes (structural: the default
# is always a candidate of the argmin).
echo "=== temco tune --smoke (seeded, deterministic) ==="
cargo run --release -q -p temco-cli --bin temco -- tune --smoke --trials 3 --seed 42

# Opt-in perf smoke: TEMCO_CHECK_BENCH=1 ./scripts/check.sh also refreshes
# BENCH_kernels.json (a few extra minutes; off by default so CI stays fast).
if [[ "${TEMCO_CHECK_BENCH:-0}" == "1" ]]; then
    ./scripts/bench.sh
fi

echo "all checks passed"
