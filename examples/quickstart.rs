//! Quickstart: build a model, compile it with TeMCO, measure the memory win.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use temco::{compare_outputs, Compiler, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    // 1. Build a model as a TeMCO IR graph. The zoo covers the paper's 10
    //    models; UNet-small keeps the quickstart fast.
    let cfg = ModelConfig { batch: 4, image: 64, num_classes: 10, classifier_width: 128, seed: 42 };
    let model = ModelId::UnetSmall;
    let graph = model.build(&cfg);
    println!("model: {} ({} nodes)", model.name(), graph.nodes.len());

    // 2. Compile. `Decomposed` is the paper's baseline (Tucker, ratio 0.1);
    //    `SkipOptFusion` is full TeMCO.
    let compiler = Compiler::default();
    let (decomposed, _) = compiler.compile(&graph, OptLevel::Decomposed);
    let (optimized, stats) = compiler.compile(&graph, OptLevel::SkipOptFusion);
    println!(
        "passes: {} convs decomposed, {} skips optimized, {} fused kernels",
        stats.decompose.convs_decomposed,
        stats.skip_opt.skips_optimized,
        stats.fusion.total(),
    );

    // 3. Compare peak internal-tensor memory (static planner — no FLOPs).
    let p0 = plan_memory(&graph);
    let p1 = plan_memory(&decomposed);
    let p2 = plan_memory(&optimized);
    println!("peak internal-tensor memory:");
    println!("  original    {:8.2} MiB", mib(p0.peak_internal_bytes));
    println!("  decomposed  {:8.2} MiB", mib(p1.peak_internal_bytes));
    println!(
        "  TeMCO       {:8.2} MiB  ({:.1}% below decomposed)",
        mib(p2.peak_internal_bytes),
        100.0 * (1.0 - p2.peak_internal_bytes as f64 / p1.peak_internal_bytes as f64)
    );

    // 4. Verify the optimization preserved semantics (the Figure 12 claim).
    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 1);
    let a = execute(&decomposed, std::slice::from_ref(&x), ExecOptions::default())
        .expect("execution failed");
    let b = execute(&optimized, &[x], ExecOptions::default()).expect("execution failed");
    let agreement = compare_outputs(&a.outputs[0], &b.outputs[0], 5);
    println!(
        "equivalence vs decomposed: max|Δ| = {:.2e}, task agreement = {:.4}",
        agreement.max_abs_diff, agreement.task_agreement
    );
    assert!(agreement.task_agreement > 0.999);

    // 5. The dynamic tracker agrees with the planner byte-for-byte.
    assert_eq!(b.memory.peak_bytes(), p2.peak_internal_bytes);
    println!("dynamic executor peak matches the static plan ✓");
}
