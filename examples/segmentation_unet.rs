//! Image segmentation with UNet under TeMCO — the paper's Carvana scenario.
//!
//! The Carvana dataset is proprietary-licensed, so this example generates a
//! synthetic car-silhouette workload (random ellipses on structured noise)
//! that exercises the identical code path: full-resolution masks through the
//! hourglass with its four long-range skip connections. It reports the
//! internal-tensor memory of each variant and the dice score between the
//! decomposed baseline's and TeMCO's predicted masks — which must be 1.0,
//! since the transformations preserve semantics.
//!
//! ```text
//! cargo run --release --example segmentation_unet
//! ```

use temco::{dice_score, Compiler, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

/// Synthetic "car photo": smooth background gradient + an elliptical body
/// with higher intensity, per batch element.
fn synthetic_batch(n: usize, size: usize, seed: u64) -> Tensor {
    let mut img = Tensor::zeros(&[n, 3, size, size]);
    let noise = Tensor::randn(&[n, 3, size, size], seed);
    for b in 0..n {
        // Deterministic pseudo-random ellipse per element.
        let s = seed.wrapping_add(b as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let cx = (s % size as u64) as f64 * 0.5 + size as f64 * 0.25;
        let cy = ((s >> 8) % size as u64) as f64 * 0.5 + size as f64 * 0.25;
        let rx = size as f64 * (0.15 + ((s >> 16) % 100) as f64 / 1000.0);
        let ry = size as f64 * (0.10 + ((s >> 24) % 100) as f64 / 1000.0);
        for c in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let dx = (x as f64 - cx) / rx;
                    let dy = (y as f64 - cy) / ry;
                    let body = if dx * dx + dy * dy <= 1.0 { 0.8 } else { 0.0 };
                    let bg = 0.2 + 0.3 * (y as f64 / size as f64);
                    *img.at4_mut(b, c, y, x) = (bg + body) as f32 + 0.05 * noise.at4(b, c, y, x);
                }
            }
        }
    }
    img
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let cfg = ModelConfig { batch: 2, image: 96, num_classes: 1, classifier_width: 64, seed: 11 };
    let graph = ModelId::Unet.build(&cfg);
    println!(
        "UNet ({} nodes), input {}×{}, batch {}",
        graph.nodes.len(),
        cfg.image,
        cfg.image,
        cfg.batch
    );

    let compiler = Compiler::default();
    let variants = [
        ("Original", None),
        ("Decomposed", Some(OptLevel::Decomposed)),
        ("Skip-Opt", Some(OptLevel::SkipOpt)),
        ("Skip-Opt+Fusion", Some(OptLevel::SkipOptFusion)),
    ];

    let batch = synthetic_batch(cfg.batch, cfg.image, 5);
    let mut baseline_mask: Option<Tensor> = None;
    println!("{:<18} {:>12} {:>12} {:>10} {:>8}", "variant", "internal", "weights", "time", "dice");
    for (name, level) in variants {
        let g = match level {
            None => graph.clone(),
            Some(l) => compiler.compile(&graph, l).0,
        };
        let plan = plan_memory(&g);
        let res = execute(&g, std::slice::from_ref(&batch), ExecOptions::default())
            .expect("execution failed");
        let mask = &res.outputs[0];
        let dice = match (&baseline_mask, level) {
            (Some(base), _) => dice_score(base, mask, 0.5),
            (None, _) => 1.0,
        };
        if level == Some(OptLevel::Decomposed) {
            baseline_mask = Some(mask.clone());
        }
        println!(
            "{:<18} {:>9.2} MiB {:>9.2} MiB {:>8.2}s {:>8.4}",
            name,
            mib(plan.peak_internal_bytes),
            mib(plan.weight_bytes),
            res.total_time,
            dice
        );
    }
    println!("\n(dice is measured against the Decomposed baseline's mask — TeMCO");
    println!(" variants must match it exactly, reproducing the Figure 12 claim)");
}
