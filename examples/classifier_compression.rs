//! Compressing an image classifier: decomposition-ratio trade-off study.
//!
//! Sweeps the Tucker decomposition ratio on VGG-11 and reports, per ratio,
//! the weight memory, FLOPs, peak internal-tensor memory of the
//! `Decomposed` baseline and of full TeMCO, and the top-5 agreement between
//! the two — illustrating that TeMCO's savings are orthogonal to the
//! ratio's accuracy/compression trade-off.
//!
//! ```text
//! cargo run --release --example classifier_compression
//! ```

use temco::{compare_outputs, Compiler, CompilerOptions, DecomposeOptions, OptLevel};
use temco_ir::graph_flops;
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let cfg = ModelConfig { batch: 4, image: 64, num_classes: 100, classifier_width: 256, seed: 3 };
    let graph = ModelId::Vgg11.build(&cfg);
    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 21);

    let orig_plan = plan_memory(&graph);
    println!(
        "VGG-11 original: {:.2} MiB weights, {:.2} MiB internal, {:.2} GFLOPs",
        mib(orig_plan.weight_bytes),
        mib(orig_plan.peak_internal_bytes),
        graph_flops(&graph) as f64 / 1e9
    );
    println!();
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "ratio", "weights", "GFLOPs", "internal", "internal", "top-5"
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "", "(MiB)", "", "decomposed", "TeMCO", "agree"
    );

    for ratio in [0.05, 0.1, 0.2, 0.4] {
        let opts = CompilerOptions {
            decompose: DecomposeOptions { ratio, ..Default::default() },
            ..Default::default()
        };
        let compiler = Compiler::new(opts);
        let (dec, _) = compiler.compile(&graph, OptLevel::Decomposed);
        let (opt, _) = compiler.compile(&graph, OptLevel::SkipOptFusion);

        let dec_plan = plan_memory(&dec);
        let opt_plan = plan_memory(&opt);
        let a = execute(&dec, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&opt, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let agree = compare_outputs(&a.outputs[0], &b.outputs[0], 5);

        println!(
            "{:>6.2} {:>10.2} {:>10.2} {:>9.2} MiB {:>9.2} MiB {:>8.3}",
            ratio,
            mib(dec_plan.weight_bytes),
            graph_flops(&dec) as f64 / 1e9,
            mib(dec_plan.peak_internal_bytes),
            mib(opt_plan.peak_internal_bytes),
            agree.task_agreement
        );
    }
    println!();
    println!("note: top-5 agreement compares TeMCO against the *decomposed* model —");
    println!("it is ~1.0 at every ratio because the rewrites preserve semantics;");
    println!("the ratio only moves the (orthogonal) decomposition-vs-accuracy knob.");
}
