//! Per-layer memory timeline report (the Figure 4 view) for any zoo model.
//!
//! Prints a CSV of live internal-tensor bytes after every schedule step for
//! the Original, Decomposed and TeMCO variants of the chosen model, plus an
//! ASCII sparkline summary. Pass a model name as the first argument:
//!
//! ```text
//! cargo run --release --example memory_report -- unet_small
//! ```

use temco::{Compiler, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::plan_memory;

fn model_by_name(name: &str) -> Option<ModelId> {
    ModelId::all().into_iter().find(|m| m.name() == name)
}

fn sparkline(series: &[usize], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let max = *series.iter().max().unwrap() as f64;
    let bucket = (series.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < series.len() && out.chars().count() < width {
        let start = i as usize;
        let end = ((i + bucket) as usize).min(series.len());
        let peak = series[start..end.max(start + 1)].iter().max().copied().unwrap_or(0) as f64;
        let idx = ((peak / max.max(1.0)) * 7.0).round() as usize;
        out.push(GLYPHS[idx.min(7)]);
        i += bucket;
    }
    out
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "unet_small".to_string());
    let Some(model) = model_by_name(&name) else {
        eprintln!("unknown model '{name}'. available:");
        for m in ModelId::all() {
            eprintln!("  {}", m.name());
        }
        std::process::exit(1);
    };

    let cfg = ModelConfig { batch: 4, image: 64, num_classes: 100, classifier_width: 128, seed: 9 };
    let graph = model.build(&cfg);
    let compiler = Compiler::default();

    let variants: Vec<(&str, temco_ir::Graph)> = vec![
        ("original", graph.clone()),
        ("decomposed", compiler.compile(&graph, OptLevel::Decomposed).0),
        ("temco", compiler.compile(&graph, OptLevel::SkipOptFusion).0),
    ];

    println!("variant,step,label,live_bytes");
    let mut summaries = Vec::new();
    for (vname, g) in &variants {
        let plan = plan_memory(g);
        for st in &plan.timeline {
            println!("{vname},{},{},{}", st.step, st.label, st.live_bytes);
        }
        let series: Vec<usize> = plan.timeline.iter().map(|s| s.live_bytes).collect();
        summaries.push((vname.to_string(), plan.peak_internal_bytes, series));
    }

    eprintln!("\n{} @ batch {}, {}×{}:", model.name(), cfg.batch, cfg.image, cfg.image);
    let global_max = summaries.iter().map(|(_, p, _)| *p).max().unwrap_or(1);
    for (vname, peak, series) in &summaries {
        // Normalize sparklines against the shared maximum for comparability.
        let scaled: Vec<usize> = series.iter().map(|&b| b * 1000 / global_max.max(1)).collect();
        eprintln!(
            "{:>11}  peak {:7.2} MiB  {}",
            vname,
            *peak as f64 / (1024.0 * 1024.0),
            sparkline(&scaled, 64)
        );
    }
}
