#!/usr/bin/env bash
# Regenerate every paper figure. Results land in results/ (CSV + logs).
set -u
mkdir -p results/logs
run() {
  local name="$1"; shift
  echo "=== $name ==="
  "$@" 2>&1 | tee "results/logs/${name}.log"
}
run eq_analysis        ./target/release/eq_analysis
run fig2_decomposition ./target/release/fig2_decomposition
run fig10_peak_memory  ./target/release/fig10_peak_memory
run fig4_timeline      ./target/release/fig4_timeline
run fig12_accuracy     ./target/release/fig12_accuracy
TEMCO_BATCHES=4,32 run fig11_inference_time ./target/release/fig11_inference_time
run ablation_thresholds ./target/release/ablation_thresholds
run ablation_merge      ./target/release/ablation_merge
run ablation_schedule   ./target/release/ablation_schedule
