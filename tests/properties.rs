//! Property-based tests over randomly generated model graphs.
//!
//! A generator produces random-but-valid CNN graphs (conv chains with
//! random channel widths, activations, pooling, and random skip edges via
//! add/concat). Three invariants must hold for *every* such graph:
//!
//! 1. the executor's dynamic memory accounting equals the static planner's,
//!    step by step;
//! 2. the full TeMCO pipeline produces a well-formed graph whose outputs
//!    match the decomposed baseline;
//! 3. optimization never *increases* the planned peak internal memory.

use proptest::prelude::*;
use temco::{Compiler, OptLevel};
use temco_ir::{ActKind, Graph};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

/// Plan for one randomly generated layer.
#[derive(Clone, Debug)]
enum LayerPlan {
    Conv { c_out_sel: usize, stride1: bool },
    Act(u8),
    Pool,
    SkipAdd { back: usize },
    SkipConcat { back: usize },
}

fn layer_strategy() -> impl Strategy<Value = LayerPlan> {
    prop_oneof![
        3 => (0usize..4, any::<bool>()).prop_map(|(c, s)| LayerPlan::Conv { c_out_sel: c, stride1: s }),
        2 => (0u8..3).prop_map(LayerPlan::Act),
        1 => Just(LayerPlan::Pool),
        1 => (1usize..6).prop_map(|back| LayerPlan::SkipAdd { back }),
        1 => (1usize..6).prop_map(|back| LayerPlan::SkipConcat { back }),
    ]
}

const WIDTHS: [usize; 4] = [8, 16, 24, 32];

/// Materialize a plan into a valid graph; invalid skip edges (shape
/// mismatch) degrade to no-ops, so every plan yields a runnable graph.
fn build_graph(plans: &[LayerPlan], seed: u64) -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 16, 16], "x");
    // Track (value, channels, spatial) of every produced tensor.
    let mut produced = vec![(x, 8usize, 16usize)];
    let mut cur = (x, 8usize, 16usize);
    let mut seed = seed;
    for (i, plan) in plans.iter().enumerate() {
        seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        match plan {
            LayerPlan::Conv { c_out_sel, stride1 } => {
                let c_out = WIDTHS[*c_out_sel % WIDTHS.len()];
                let stride = if *stride1 || cur.2 < 8 { 1 } else { 2 };
                let w = Tensor::he_conv_weight(c_out, cur.1, 3, 3, seed);
                let v = g.conv2d(cur.0, w, None, stride, 1, format!("conv{i}"));
                let sp =
                    if stride == 1 { cur.2 } else { temco_tensor::conv_out_dim(cur.2, 3, 2, 1) };
                cur = (v, c_out, sp);
            }
            LayerPlan::Act(k) => {
                let kind = [ActKind::Relu, ActKind::Silu, ActKind::Sigmoid][*k as usize % 3];
                let v = g.activation(cur.0, kind, format!("act{i}"));
                cur = (v, cur.1, cur.2);
            }
            LayerPlan::Pool => {
                if cur.2 >= 4 {
                    let v = g.max_pool(cur.0, 2, 2, format!("pool{i}"));
                    cur = (v, cur.1, cur.2 / 2);
                }
            }
            LayerPlan::SkipAdd { back } => {
                if let Some(&(v, c, s)) = produced.iter().rev().nth(*back) {
                    if c == cur.1 && s == cur.2 && v != cur.0 {
                        let sum = g.add(&[v, cur.0], format!("skip_add{i}"));
                        cur = (sum, c, s);
                    }
                }
            }
            LayerPlan::SkipConcat { back } => {
                if let Some(&(v, c, s)) = produced.iter().rev().nth(*back) {
                    if s == cur.2 && v != cur.0 {
                        let cat = g.concat(&[v, cur.0], format!("skip_cat{i}"));
                        cur = (cat, c + cur.1, s);
                    }
                }
            }
        }
        produced.push(cur);
    }
    // A 1×1 head keeps outputs small and gives the pipeline an fconv to
    // chew on.
    let head =
        g.conv2d(cur.0, Tensor::he_conv_weight(4, cur.1, 1, 1, seed ^ 1), None, 1, 0, "head");
    g.mark_output(head);
    g.infer_shapes();
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn planner_matches_executor_on_random_graphs(
        plans in proptest::collection::vec(layer_strategy(), 3..14),
        seed in 0u64..1000,
    ) {
        let g = build_graph(&plans, seed);
        prop_assert!(temco_ir::verify(&g).is_empty());
        let x = Tensor::randn(&[1, 8, 16, 16], seed);
        let res = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
        let plan = plan_memory(&g);
        prop_assert_eq!(res.memory.peak_bytes(), plan.peak_internal_bytes);
        for (ev, st) in res.memory.timeline().iter().zip(&plan.timeline) {
            prop_assert_eq!(ev.live_bytes, st.live_bytes, "step {}", st.step);
        }
    }

    #[test]
    fn temco_preserves_semantics_on_random_graphs(
        plans in proptest::collection::vec(layer_strategy(), 3..12),
        seed in 0u64..1000,
    ) {
        let g = build_graph(&plans, seed);
        let compiler = Compiler::default();
        let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
        let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
        prop_assert!(temco_ir::verify(&opt).is_empty());

        let x = Tensor::randn(&[1, 8, 16, 16], seed ^ 0xABCD);
        let a = execute(&dec, std::slice::from_ref(&x), ExecOptions::default()).expect("execution failed");
        let b = execute(&opt, &[x], ExecOptions::default()).expect("execution failed");
        let diff = a.outputs[0].max_abs_diff(&b.outputs[0]);
        let scale = a.outputs[0].fro_norm().max(1.0);
        prop_assert!(diff <= 1e-3 * scale, "diff {} scale {}", diff, scale);
    }

    #[test]
    fn optimization_never_increases_planned_peak(
        plans in proptest::collection::vec(layer_strategy(), 3..12),
        seed in 0u64..1000,
    ) {
        let g = build_graph(&plans, seed);
        let compiler = Compiler::default();
        let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
        let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
        let peak_dec = plan_memory(&dec).peak_internal_bytes;
        let peak_opt = plan_memory(&opt).peak_internal_bytes;
        prop_assert!(peak_opt <= peak_dec, "{} -> {}", peak_dec, peak_opt);
    }
}
