//! Round-trip a compiled model through the `.temco` binary format and
//! verify the reloaded graph is byte-equivalent in behaviour.

use temco::{Compiler, OptLevel};
use temco_ir::{load_graph, save_graph};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

#[test]
fn compiled_model_roundtrips_exactly() {
    let cfg = ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 32, seed: 5 };
    let g = ModelId::Resnet18.build(&cfg);
    let (opt, _) = Compiler::default().compile(&g, OptLevel::SkipOptFusion);

    let mut buf = Vec::new();
    save_graph(&opt, &mut buf).expect("save");
    let mut reloaded = load_graph(&mut buf.as_slice()).expect("load");
    reloaded.infer_shapes();
    assert!(temco_ir::verify(&reloaded).is_empty());

    // Identical static memory plan…
    assert_eq!(plan_memory(&opt).peak_internal_bytes, plan_memory(&reloaded).peak_internal_bytes);
    // …and bitwise-identical outputs (weights round-trip losslessly).
    let x = Tensor::randn(&[1, 3, 64, 64], 9);
    let a =
        execute(&opt, std::slice::from_ref(&x), ExecOptions::default()).expect("execution failed");
    let b = execute(&reloaded, &[x], ExecOptions::default()).expect("execution failed");
    assert_eq!(a.outputs[0], b.outputs[0]);
}

#[test]
fn format_is_compact_relative_to_weights() {
    // The encoding overhead over raw weight bytes should be small: the
    // format stores weights as raw f32 plus bounded metadata.
    let cfg = ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 32, seed: 5 };
    let g = ModelId::Vgg11.build(&cfg);
    let (opt, _) = Compiler::default().compile(&g, OptLevel::Fusion);
    let mut buf = Vec::new();
    save_graph(&opt, &mut buf).expect("save");
    let weight_bytes = opt.weight_bytes();
    assert!(buf.len() >= weight_bytes);
    assert!(buf.len() < weight_bytes + 64 * 1024, "overhead {} bytes", buf.len() - weight_bytes);
}
