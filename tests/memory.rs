//! Memory-behaviour integration tests: static slab allocation, arena
//! planning, rescheduling, and timeline shape on real models.

use proptest::prelude::*;
use temco::{compare_outputs, Compiler, CompilerOptions, OptLevel};
use temco_ir::Graph;
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{
    execute, plan_allocation, plan_arena, plan_memory, validate_arena, ExecMode, ExecOptions,
};
use temco_tensor::Tensor;

fn cfg() -> ModelConfig {
    ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 64, seed: 3 }
}

#[test]
fn arena_plans_are_valid_on_compiled_models() {
    let compiler = Compiler::default();
    for id in [ModelId::Vgg11, ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg());
        for level in [OptLevel::Decomposed, OptLevel::SkipOptFusion] {
            let (opt, _) = compiler.compile(&g, level);
            let arena = plan_arena(&opt);
            assert!(validate_arena(&arena).is_empty(), "{} @ {}", id.name(), level.label());
            let peak = plan_memory(&opt).peak_internal_bytes;
            assert!(arena.arena_bytes >= peak);
            // Greedy-by-size should stay within 2× of the live lower bound
            // on these graphs (it is exactly 1.0× on most).
            assert!(
                arena.fragmentation() < 2.0,
                "{} @ {}: fragmentation {}",
                id.name(),
                level.label(),
                arena.fragmentation()
            );
        }
    }
}

#[test]
fn temco_reduces_arena_size_not_just_live_peak() {
    // The deployable metric: the allocator's arena, not only the abstract
    // live-byte peak, must shrink under TeMCO.
    let compiler = Compiler::default();
    let g = ModelId::UnetSmall.build(&cfg());
    let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
    let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
    let a_dec = plan_arena(&dec).arena_bytes;
    let a_opt = plan_arena(&opt).arena_bytes;
    assert!(a_opt < a_dec, "arena {a_dec} → {a_opt}");
}

#[test]
fn rescheduling_preserves_semantics_and_never_hurts_peak() {
    let base = Compiler::default();
    let resched = Compiler::new(CompilerOptions {
        merge_lconvs: true,
        reschedule: true,
        ..Default::default()
    });
    for id in [ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg());
        let (a, _) = base.compile(&g, OptLevel::SkipOptFusion);
        let (b, _) = resched.compile(&g, OptLevel::SkipOptFusion);
        assert!(temco_ir::verify(&b).is_empty(), "{}", id.name());
        let pa = plan_memory(&a).peak_internal_bytes;
        let pb = plan_memory(&b).peak_internal_bytes;
        assert!(pb <= pa, "{}: reschedule raised peak {pa} → {pb}", id.name());

        let x = Tensor::randn(&[1, 3, 64, 64], 9);
        let ra = execute(&a, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let rb = execute(&b, &[x], ExecOptions::default()).expect("execution failed");
        let agree = compare_outputs(&ra.outputs[0], &rb.outputs[0], 5);
        assert!(agree.task_agreement > 0.999, "{}: {agree:?}", id.name());
    }
}

/// Build a random DAG from an opcode/operand tape. All values keep an
/// `[1, c, 8, 8]` shape (with varying `c`) so every op kind stays
/// shape-compatible; skip-like edges arise whenever an old value is picked
/// as an operand, which is exactly what stresses interval packing.
fn random_graph(tape: &[(u8, usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 4, 8, 8], "x");
    let mut vals = vec![x];
    let mut chans = vec![4usize];
    for (i, &(kind, s1, s2)) in tape.iter().enumerate() {
        let a = s1 % vals.len();
        let (v, c) = match kind % 4 {
            0 => (g.relu(vals[a], format!("relu{i}")), chans[a]),
            1 => {
                let co = [2, 4, 8][s2 % 3];
                let w = Tensor::randn(&[co, chans[a], 3, 3], (i as u64) << 8 | 1);
                (g.conv2d(vals[a], w, None, 1, 1, format!("conv{i}")), co)
            }
            2 => {
                // Add needs matching channel counts; fall back to relu when
                // no partner exists.
                match (0..vals.len()).find(|&b| b != a && chans[b] == chans[a]) {
                    Some(b) => (g.add(&[vals[a], vals[b]], format!("add{i}")), chans[a]),
                    None => (g.relu(vals[a], format!("relu{i}")), chans[a]),
                }
            }
            _ => {
                let b = s2 % vals.len();
                (g.concat(&[vals[a], vals[b]], format!("cat{i}")), chans[a] + chans[b])
            }
        };
        vals.push(v);
        chans.push(c);
    }
    g.mark_output(*vals.last().unwrap());
    g.infer_shapes();
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The core allocator invariant on random DAGs: any two values whose
    /// liveness intervals overlap in time must receive disjoint byte
    /// ranges — unless the alias analysis put them in one class on purpose
    /// (in-place reuse, embedded concat operands) — and the slab must
    /// cover the union-of-live peak.
    #[test]
    fn allocator_never_overlaps_live_intervals(
        tape in proptest::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 1..40)
    ) {
        let g = random_graph(&tape);
        let plan = plan_allocation(&g);
        prop_assert!(plan.validate().is_empty(), "{:?}", plan.validate());
        // The kernel-scratch arena sits wholly past the value region, so no
        // buffer can alias a kernel's working memory.
        if plan.scratch_bytes > 0 {
            prop_assert!(plan.scratch_offset >= plan.value_bytes);
            prop_assert_eq!(plan.scratch_offset + plan.scratch_bytes, plan.slab_bytes);
        }
        for (i, a) in plan.buffers.iter().enumerate() {
            prop_assert!(a.offset + a.bytes <= plan.value_bytes);
            prop_assert!(a.offset + a.bytes <= plan.slab_bytes);
            let root_a = plan.alias(a.value).expect("planned buffers resolve").0;
            for b in &plan.buffers[i + 1..] {
                let root_b = plan.alias(b.value).expect("planned buffers resolve").0;
                if root_a != root_b && a.time_overlap(b) {
                    prop_assert!(
                        !a.space_overlap(b),
                        "{:?} and {:?} overlap in time and space across alias classes",
                        a,
                        b
                    );
                }
            }
        }
        prop_assert!(plan.slab_bytes >= plan.peak_live_bytes);
        // An undercut slab must be flagged by the validator.
        let mut bad = plan.clone();
        bad.slab_bytes = bad.peak_live_bytes.saturating_sub(4);
        prop_assert!(!bad.validate().is_empty());
    }

    /// Executing a random DAG on the slab gives the same numbers as the
    /// per-node baseline, and its high-water mark equals the planned slab.
    #[test]
    fn slab_execution_matches_per_node_on_random_dags(
        tape in proptest::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 1..12)
    ) {
        let g = random_graph(&tape);
        let x = Tensor::randn(&[1, 4, 8, 8], 11);
        let slab = execute(&g, std::slice::from_ref(&x), ExecOptions::default())
            .expect("slab execution failed");
        let per_node = execute(&g, &[x], ExecOptions { mode: ExecMode::PerNode, ..Default::default() })
            .expect("per-node execution failed");
        prop_assert!(slab.outputs[0].all_close(&per_node.outputs[0], 1e-4));
        prop_assert_eq!(slab.slab_high_water, slab.slab_bytes);
        prop_assert_eq!(slab.memory.timeline(), per_node.memory.timeline());
    }
}

/// The PR's acceptance bar: for every zoo model at every opt level, the
/// dynamic high-water mark of the slab executor equals the statically
/// planned slab size *exactly* — the plan is the allocation.
#[test]
fn dynamic_high_water_equals_static_slab_on_all_models() {
    let compiler = Compiler::default();
    let cfg = ModelConfig::small();
    let levels =
        [OptLevel::Decomposed, OptLevel::Fusion, OptLevel::SkipOpt, OptLevel::SkipOptFusion];
    for id in ModelId::all() {
        let g = id.build(&cfg);
        let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 5);
        for level in levels {
            let (opt, _) = compiler.compile(&g, level);
            let res = execute(&opt, std::slice::from_ref(&x), ExecOptions::default())
                .unwrap_or_else(|e| panic!("{} @ {}: {e}", id.name(), level.label()));
            assert_eq!(
                res.slab_high_water,
                res.slab_bytes,
                "{} @ {}: executor left the plan",
                id.name(),
                level.label()
            );
            let plan = plan_memory(&opt);
            assert_eq!(res.slab_bytes, plan.slab_total_bytes, "{} @ {}", id.name(), level.label());
            assert_eq!(res.scratch_bytes, plan.scratch_bytes, "{} @ {}", id.name(), level.label());
            assert!(
                plan.fragmentation() <= 1.15,
                "{} @ {}: slab {} is {:.3}× the live peak {}",
                id.name(),
                level.label(),
                plan.slab_bytes,
                plan.fragmentation(),
                plan.peak_internal_bytes
            );
        }
    }
}

#[test]
fn unet_timeline_floor_drops_under_temco() {
    // Figure 4a's qualitative claim: in the decomposed model the *floor* of
    // the memory curve stays high through the middle of the schedule (idle
    // skip tensors); TeMCO collapses it. Compare the median live bytes of
    // the middle half of each timeline.
    let compiler = Compiler::default();
    let g = ModelId::UnetSmall.build(&ModelConfig { batch: 4, ..cfg() });
    let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
    let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
    let median_mid = |g: &temco_ir::Graph| {
        let t = plan_memory(g).timeline;
        let n = t.len();
        let mut mid: Vec<usize> = t[n / 4..3 * n / 4].iter().map(|s| s.live_bytes).collect();
        mid.sort_unstable();
        mid[mid.len() / 2]
    };
    let floor_dec = median_mid(&dec);
    let floor_opt = median_mid(&opt);
    assert!(
        (floor_opt as f64) < 0.5 * floor_dec as f64,
        "mid-schedule floor {floor_dec} → {floor_opt}"
    );
}
