//! Memory-behaviour integration tests: arena planning, rescheduling, and
//! timeline shape on real models.

use temco::{compare_outputs, Compiler, CompilerOptions, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_arena, plan_memory, validate_arena, ExecOptions};
use temco_tensor::Tensor;

fn cfg() -> ModelConfig {
    ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 64, seed: 3 }
}

#[test]
fn arena_plans_are_valid_on_compiled_models() {
    let compiler = Compiler::default();
    for id in [ModelId::Vgg11, ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg());
        for level in [OptLevel::Decomposed, OptLevel::SkipOptFusion] {
            let (opt, _) = compiler.compile(&g, level);
            let arena = plan_arena(&opt);
            assert!(validate_arena(&arena).is_empty(), "{} @ {}", id.name(), level.label());
            let peak = plan_memory(&opt).peak_internal_bytes;
            assert!(arena.arena_bytes >= peak);
            // Greedy-by-size should stay within 2× of the live lower bound
            // on these graphs (it is exactly 1.0× on most).
            assert!(
                arena.fragmentation() < 2.0,
                "{} @ {}: fragmentation {}",
                id.name(),
                level.label(),
                arena.fragmentation()
            );
        }
    }
}

#[test]
fn temco_reduces_arena_size_not_just_live_peak() {
    // The deployable metric: the allocator's arena, not only the abstract
    // live-byte peak, must shrink under TeMCO.
    let compiler = Compiler::default();
    let g = ModelId::UnetSmall.build(&cfg());
    let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
    let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
    let a_dec = plan_arena(&dec).arena_bytes;
    let a_opt = plan_arena(&opt).arena_bytes;
    assert!(a_opt < a_dec, "arena {a_dec} → {a_opt}");
}

#[test]
fn rescheduling_preserves_semantics_and_never_hurts_peak() {
    let base = Compiler::default();
    let resched = Compiler::new(CompilerOptions {
        merge_lconvs: true,
        reschedule: true,
        ..Default::default()
    });
    for id in [ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg());
        let (a, _) = base.compile(&g, OptLevel::SkipOptFusion);
        let (b, _) = resched.compile(&g, OptLevel::SkipOptFusion);
        assert!(temco_ir::verify(&b).is_empty(), "{}", id.name());
        let pa = plan_memory(&a).peak_internal_bytes;
        let pb = plan_memory(&b).peak_internal_bytes;
        assert!(pb <= pa, "{}: reschedule raised peak {pa} → {pb}", id.name());

        let x = Tensor::randn(&[1, 3, 64, 64], 9);
        let ra = execute(&a, std::slice::from_ref(&x), ExecOptions::default());
        let rb = execute(&b, &[x], ExecOptions::default());
        let agree = compare_outputs(&ra.outputs[0], &rb.outputs[0], 5);
        assert!(agree.task_agreement > 0.999, "{}: {agree:?}", id.name());
    }
}

#[test]
fn unet_timeline_floor_drops_under_temco() {
    // Figure 4a's qualitative claim: in the decomposed model the *floor* of
    // the memory curve stays high through the middle of the schedule (idle
    // skip tensors); TeMCO collapses it. Compare the median live bytes of
    // the middle half of each timeline.
    let compiler = Compiler::default();
    let g = ModelId::UnetSmall.build(&ModelConfig { batch: 4, ..cfg() });
    let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
    let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
    let median_mid = |g: &temco_ir::Graph| {
        let t = plan_memory(g).timeline;
        let n = t.len();
        let mut mid: Vec<usize> = t[n / 4..3 * n / 4].iter().map(|s| s.live_bytes).collect();
        mid.sort_unstable();
        mid[mid.len() / 2]
    };
    let floor_dec = median_mid(&dec);
    let floor_opt = median_mid(&opt);
    assert!(
        (floor_opt as f64) < 0.5 * floor_dec as f64,
        "mid-schedule floor {floor_dec} → {floor_opt}"
    );
}
