//! The PR's zero-allocation acceptance bar: after `Engine::new` has
//! planned and allocated, a steady-state `Engine::run` performs **zero**
//! heap allocations — every kernel writes into planned slab offsets and
//! draws its working memory (im2col columns, GEMM pack panels, fused-tile
//! strips) from the planner-reserved scratch arena.
//!
//! Verified with a counting `#[global_allocator]` gated by a thread-local
//! flag, so the test harness's own threads cannot pollute the count. On
//! multi-core hosts rayon workers run outside the tracked thread, but the
//! work-distribution path of the bundled rayon shim is allocation-free by
//! construction (its own tests assert that), so the tracked thread is the
//! meaningful boundary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use temco::{Compiler, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, Engine, ExecMode, ExecOptions};
use temco_tensor::Tensor;

struct CountingAlloc;

static TRACKED_ALLOCS: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` with this thread's allocations counted; returns the count.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, usize) {
    TRACKING.with(|t| t.set(false)); // warm the TLS slot outside the count
    let before = TRACKED_ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    let r = f();
    TRACKING.with(|t| t.set(false));
    (r, TRACKED_ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn engine_steady_state_performs_zero_heap_allocations() {
    let compiler = Compiler::default();
    let cfg = ModelConfig::small();
    let levels =
        [OptLevel::Decomposed, OptLevel::Fusion, OptLevel::SkipOpt, OptLevel::SkipOptFusion];
    for id in ModelId::all() {
        let g = id.build(&cfg);
        let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 21);
        for level in levels {
            let (opt, _) = compiler.compile(&g, level);
            let mut engine = Engine::new(opt)
                .unwrap_or_else(|e| panic!("{} @ {}: {e}", id.name(), level.label()));
            // Warmup: populates anything lazily initialized (thread pool,
            // TLS) outside the counted window.
            engine.run(std::slice::from_ref(&x)).expect("warmup run failed");
            let (res, allocs) =
                count_allocs(|| engine.run(std::slice::from_ref(&x)).map(|outs| outs.len()));
            assert!(res.is_ok());
            assert_eq!(
                allocs,
                0,
                "{} @ {}: steady-state run heap-allocated {allocs} times",
                id.name(),
                level.label()
            );
        }
    }
}

#[test]
fn instrumented_engine_run_performs_zero_heap_allocations() {
    // Observability must not cost the invariant it observes: a steady-state
    // `run_recorded` into a preallocated ring is as allocation-free as a
    // plain `run`. (Building the report or trace JSON afterwards is the
    // scrape path and may allocate — only the recording window is counted.)
    let compiler = Compiler::default();
    let cfg = ModelConfig::small();
    let g = ModelId::Resnet18.build(&cfg);
    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 27);
    let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
    let mut engine = Engine::new(opt).expect("engine construction failed");
    let mut rec = temco_obs::Recorder::with_capacity(4 * (engine.graph().nodes.len() + 1));
    engine.run_recorded(std::slice::from_ref(&x), &mut rec).expect("warmup run failed");
    let (res, allocs) = count_allocs(|| {
        engine.run_recorded(std::slice::from_ref(&x), &mut rec).map(|outs| outs.len())
    });
    assert!(res.is_ok());
    assert_eq!(allocs, 0, "instrumented steady-state run heap-allocated {allocs} times");
    assert_eq!(rec.dropped(), 0, "the preallocated ring must hold both runs");
    // Let the ring wrap and keep recording: drop-oldest is counter math,
    // not reallocation.
    let (_, allocs) = count_allocs(|| {
        for _ in 0..4 {
            engine.run_recorded(std::slice::from_ref(&x), &mut rec).expect("wrapped run failed");
        }
    });
    assert_eq!(allocs, 0, "a wrapping ring heap-allocated {allocs} times");
    assert!(rec.dropped() > 0, "the ring was sized to wrap");
}

#[test]
fn tuned_engine_steady_state_performs_zero_heap_allocations() {
    // Schedule dispatch must cost nothing at run time: an engine compiled
    // against a populated tuning DB — every tunable node on a NON-default
    // schedule — is as allocation-free in steady state as the default one.
    // Schedule resolution happens once, in `compile_with_db`.
    use temco_runtime::{FusedSchedule, GemmSchedule, NodeSchedule};

    let compiler = Compiler::default();
    let cfg = ModelConfig::small();
    for id in [ModelId::Alexnet, ModelId::Resnet18, ModelId::UnetSmall] {
        let (opt, _) = compiler.compile(&id.build(&cfg), OptLevel::SkipOptFusion);
        let mut db = temco_tune::TuningDb::new();
        for node in &opt.nodes {
            let Some((op, _)) = temco_tune::node_signature(&opt, node) else { continue };
            let Some(key) = temco_tune::node_db_key(&opt, node) else { continue };
            let sched = if op == "fused" {
                NodeSchedule::Fused(FusedSchedule { slots_per_thread: 2, tile: 16 })
            } else {
                NodeSchedule::Gemm(GemmSchedule { kc: 128, mc: 32, nc: 128 })
            };
            db.insert(key, sched);
        }
        assert!(!db.is_empty(), "{}: no tunable nodes found", id.name());
        let scheds = temco_tune::schedules_for(&opt, &db);
        assert!(
            scheds.iter().any(|s| *s != NodeSchedule::Default),
            "{}: tuned plan degenerated to defaults",
            id.name()
        );
        let compiled = temco_tune::compile_with_db(opt, &db)
            .unwrap_or_else(|e| panic!("{}: tuned compile failed: {e}", id.name()));
        let mut engine = Engine::from_compiled(std::sync::Arc::new(compiled));
        let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 21);
        engine.run(std::slice::from_ref(&x)).expect("warmup run failed");
        let (res, allocs) =
            count_allocs(|| engine.run(std::slice::from_ref(&x)).map(|outs| outs.len()));
        assert!(res.is_ok());
        assert_eq!(
            allocs,
            0,
            "{}: tuned steady-state run heap-allocated {allocs} times",
            id.name()
        );
    }
}

#[test]
fn engine_agrees_with_per_node_baseline() {
    let compiler = Compiler::default();
    let cfg = ModelConfig::small();
    for id in [ModelId::Vgg11, ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg);
        let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 33);
        for level in [OptLevel::Decomposed, OptLevel::SkipOptFusion] {
            let (opt, _) = compiler.compile(&g, level);
            let baseline = execute(
                &opt,
                std::slice::from_ref(&x),
                ExecOptions { mode: ExecMode::PerNode, ..Default::default() },
            )
            .expect("per-node execution failed");
            let mut engine = Engine::new(opt).expect("engine construction failed");
            let outs = engine.run(std::slice::from_ref(&x)).expect("engine run failed");
            assert_eq!(outs.len(), baseline.outputs.len());
            for (got, want) in outs.iter().zip(&baseline.outputs) {
                assert!(
                    got.all_close(want, 1e-3),
                    "{} @ {}: engine diverged from per-node baseline by {}",
                    id.name(),
                    level.label(),
                    got.max_abs_diff(want)
                );
            }
        }
    }
}
