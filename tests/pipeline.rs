//! End-to-end integration tests: the full TeMCO pipeline on the model zoo.
//!
//! These exercise the claims the paper's evaluation rests on, at reduced
//! (64×64) resolution so they execute quickly. One test per model so cargo
//! parallelizes the compilations; each test compiles its model once per
//! level and asserts every property on the same artifacts:
//!
//! 1. every pass composition produces a well-formed graph;
//! 2. TeMCO reduces the planned peak internal-tensor memory below the
//!    `Decomposed` baseline (the Figure 10 property);
//! 3. optimized graphs are semantically equivalent to `Decomposed`
//!    (the Figure 12 property);
//! 4. the executor's dynamic memory tracker agrees with the static planner
//!    byte-for-byte on compiled graphs (fused ops included).

use temco::{compare_outputs, Compiler, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

fn small_cfg() -> ModelConfig {
    ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 64, seed: 7 }
}

/// Compile at `Decomposed` and the model's best TeMCO level, then assert
/// well-formedness, the memory claim, and (optionally) semantic equivalence
/// plus planner/executor agreement.
fn check_model(id: ModelId, exec: bool) {
    let cfg = small_cfg();
    let compiler = Compiler::default();
    let g = id.build(&cfg);
    let best = if id.has_skip_connections() { OptLevel::SkipOptFusion } else { OptLevel::Fusion };

    let (dec, dstats) = compiler.compile(&g, OptLevel::Decomposed);
    let (opt, ostats) = compiler.compile(&g, best);
    assert!(temco_ir::verify(&dec).is_empty(), "{}: decomposed malformed", id.name());
    assert!(temco_ir::verify(&opt).is_empty(), "{}: optimized malformed", id.name());
    assert!(dstats.decompose.convs_decomposed > 0, "{}: nothing decomposed", id.name());
    assert!(ostats.fusion.total() > 0, "{}: nothing fused ({ostats:?})", id.name());
    if id.has_skip_connections() {
        assert!(
            ostats.skip_opt.skips_optimized > 0,
            "{}: no skips optimized ({:?})",
            id.name(),
            ostats.skip_opt
        );
    }

    let peak_dec = plan_memory(&dec).peak_internal_bytes;
    let peak_opt = plan_memory(&opt).peak_internal_bytes;
    assert!(peak_opt < peak_dec, "{}: peak {peak_dec} → {peak_opt} ({ostats:?})", id.name());

    if !exec {
        return;
    }
    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 99);
    let base =
        execute(&dec, std::slice::from_ref(&x), ExecOptions::default()).expect("execution failed");
    let out =
        execute(&opt, std::slice::from_ref(&x), ExecOptions::default()).expect("execution failed");
    let agreement = compare_outputs(&base.outputs[0], &out.outputs[0], 5);
    assert!(agreement.task_agreement > 0.999, "{}: agreement {agreement:?}", id.name());
    let scale = base.outputs[0].fro_norm() / (base.outputs[0].numel() as f32).sqrt();
    assert!(
        agreement.max_abs_diff < 1e-2 * scale.max(1.0),
        "{}: {agreement:?} (scale {scale})",
        id.name()
    );
    // Dynamic tracker ≡ static planner on the optimized graph.
    let plan = plan_memory(&opt);
    assert_eq!(
        out.memory.peak_bytes(),
        plan.peak_internal_bytes,
        "{}: dynamic vs static peak",
        id.name()
    );
}

#[test]
fn alexnet_end_to_end() {
    check_model(ModelId::Alexnet, true);
}

#[test]
fn vgg11_end_to_end() {
    check_model(ModelId::Vgg11, true);
}

#[test]
fn vgg16_end_to_end() {
    check_model(ModelId::Vgg16, true);
}

#[test]
fn vgg19_compiles_and_reduces_memory() {
    check_model(ModelId::Vgg19, false);
}

#[test]
fn resnet18_end_to_end() {
    check_model(ModelId::Resnet18, true);
}

#[test]
fn resnet34_compiles_and_reduces_memory() {
    check_model(ModelId::Resnet34, false);
}

#[test]
fn densenet121_end_to_end() {
    check_model(ModelId::Densenet121, true);
}

#[test]
fn densenet169_compiles_and_reduces_memory() {
    check_model(ModelId::Densenet169, false);
}

#[test]
fn unet_compiles_and_reduces_memory() {
    check_model(ModelId::Unet, false);
}

#[test]
fn unet_small_end_to_end() {
    check_model(ModelId::UnetSmall, true);
}

#[test]
fn all_four_levels_compose_on_unet_small() {
    let cfg = small_cfg();
    let compiler = Compiler::default();
    let g = ModelId::UnetSmall.build(&cfg);
    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 3);
    let (dec, _) = compiler.compile(&g, OptLevel::Decomposed);
    let base =
        execute(&dec, std::slice::from_ref(&x), ExecOptions::default()).expect("execution failed");
    let mut peaks = vec![plan_memory(&dec).peak_internal_bytes];
    for level in [OptLevel::Fusion, OptLevel::SkipOpt, OptLevel::SkipOptFusion] {
        let (opt, _) = compiler.compile(&g, level);
        assert!(temco_ir::verify(&opt).is_empty(), "{}", level.label());
        let out = execute(&opt, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let a = compare_outputs(&base.outputs[0], &out.outputs[0], 5);
        assert!(a.task_agreement > 0.999, "{}: {a:?}", level.label());
        peaks.push(plan_memory(&opt).peak_internal_bytes);
    }
    // Full TeMCO must beat every partial configuration on UNet.
    let full = *peaks.last().unwrap();
    assert!(peaks[..peaks.len() - 1].iter().all(|&p| full <= p), "{peaks:?}");
}

#[test]
fn vgg_has_no_skip_connections_to_optimize() {
    let cfg = small_cfg();
    let compiler = Compiler::default();
    let g = ModelId::Vgg11.build(&cfg);
    let (_, stats) = compiler.compile(&g, OptLevel::SkipOpt);
    assert_eq!(stats.skip_opt.skips_optimized, 0);
}
