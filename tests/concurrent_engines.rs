//! Concurrency contract of the `CompiledGraph`/`Engine` split: N engines
//! on N threads share one `Arc`'d compiled graph (weights + allocation
//! plan live once), each owning only its private slab — and every thread's
//! steady-state runs are bitwise-identical to a single-threaded reference
//! *and* allocation-free.
//!
//! Allocation tracking is per-thread here (thread-local counter + flag),
//! so concurrently-running workers cannot pollute each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use temco_models::{ModelConfig, ModelId};
use temco_runtime::{CompiledGraph, Engine};
use temco_tensor::Tensor;

struct CountingAlloc;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static THREAD_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Count this thread's allocations during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, usize) {
    TRACKING.with(|t| t.set(false));
    THREAD_ALLOCS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    let r = f();
    TRACKING.with(|t| t.set(false));
    (r, THREAD_ALLOCS.with(|c| c.get()))
}

#[test]
fn concurrent_engines_share_weights_and_match_the_single_threaded_reference() {
    const THREADS: usize = 4;
    const INPUTS: usize = 3;

    let cfg = ModelConfig::small();
    let graph = ModelId::Alexnet.build(&cfg);
    let inputs: Vec<Tensor> = (0..INPUTS)
        .map(|i| Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 77 + i as u64))
        .collect();

    let compiled = Arc::new(CompiledGraph::new(graph).unwrap());

    // Single-threaded reference outputs from one engine over the same plan.
    let reference: Vec<Tensor> = {
        let mut engine = Engine::from_compiled(compiled.clone());
        inputs.iter().map(|x| engine.run(std::slice::from_ref(x)).unwrap()[0].clone()).collect()
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let compiled = compiled.clone();
            let inputs = inputs.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut engine = Engine::from_compiled(compiled);
                // Warmup pass: first runs may initialize lazy state.
                for x in &inputs {
                    engine.run(std::slice::from_ref(x)).unwrap();
                }
                // Steady state: per-thread zero allocations, outputs
                // bitwise-equal to the reference.
                for (x, want) in inputs.iter().zip(&reference) {
                    let (matches, allocs) = count_allocs(|| {
                        let outs = engine.run(std::slice::from_ref(x)).unwrap();
                        outs[0].all_close(want, 0.0)
                    });
                    assert_eq!(allocs, 0, "steady-state run allocated {allocs} times");
                    assert!(matches, "thread output diverged from reference");
                }
                engine.slab_bytes()
            })
        })
        .collect();

    let slab_bytes: Vec<usize> = workers.into_iter().map(|h| h.join().unwrap()).collect();

    // Every worker held the same (private) slab size; the compiled graph —
    // weights included — existed once, shared by all engines.
    assert!(slab_bytes.iter().all(|&b| b == slab_bytes[0] && b > 0));
    assert_eq!(Arc::strong_count(&compiled), 1, "worker engines released their shares");
}
