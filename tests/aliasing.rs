//! Liveness edge cases that gate in-place execution and concat embedding.
//!
//! The alias analysis gives a value's bytes away only when the value
//! provably dies at the consuming node; these tests pin the cases where
//! that proof must fail — multi-consumer operands, graph outputs, residual
//! operands that outlive their add — and the cases where it must hold
//! across graph transforms (the rebatch ladder, real zoo models). Every
//! aliased execution is checked against the per-node reference path, which
//! performs no aliasing at all.

use temco::{Compiler, OptLevel};
use temco_ir::{liveness, Graph};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{
    execute, plan_allocation_with_mode, AliasMode, ExecMode, ExecOptions, NodeExec,
};
use temco_tensor::Tensor;

const TOL: f32 = 1e-4;

fn run(g: &Graph, input: &Tensor, mode: ExecMode, alias: AliasMode) -> Vec<Tensor> {
    let opts = ExecOptions { time_nodes: false, mode, alias };
    execute(g, std::slice::from_ref(input), opts).expect("execution failed").outputs
}

/// Max absolute difference across all outputs of the three execution paths
/// (slab+Full, slab+Off, per-node reference) must stay within `TOL`.
fn assert_paths_agree(g: &Graph, input: &Tensor) {
    let full = run(g, input, ExecMode::Slab, AliasMode::Full);
    let off = run(g, input, ExecMode::Slab, AliasMode::Off);
    let reference = run(g, input, ExecMode::PerNode, AliasMode::Off);
    for (i, r) in reference.iter().enumerate() {
        for (label, got) in [("full", &full[i]), ("off", &off[i])] {
            assert_eq!(got.shape(), r.shape(), "output {i} shape under {label}");
            let max =
                got.data().iter().zip(r.data()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(max <= TOL, "output {i} under {label} diverges by {max}");
        }
    }
}

fn ramp(shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|i| (i as f32 * 0.37).sin()).collect())
}

#[test]
fn multi_consumer_operand_is_not_overwritten() {
    // `a1` feeds both the relu and the add two steps later; the relu must
    // not run in place over it, and the final numbers must prove it.
    let mut g = Graph::new();
    let x = g.input(&[1, 4, 8, 8], "x");
    let a1 = g.relu(x, "a1");
    let b = g.relu(a1, "b");
    let s = g.add(&[a1, b], "s");
    g.mark_output(s);
    g.infer_shapes();
    let lv = liveness(&g);
    let plan = plan_allocation_with_mode(&g, &lv, AliasMode::Full);
    assert_eq!(plan.node_exec[2], NodeExec::Standard, "relu over a live value");
    assert!(matches!(plan.node_exec[3], NodeExec::InPlace { .. }), "add may reuse a1");
    assert_paths_agree(&g, &ramp(&[1, 4, 8, 8]));
}

#[test]
fn graph_output_operands_are_never_aliased_away() {
    // `a1` is a graph output: even though it dies (as an operand) at the
    // relu, its bytes must survive to the end of the run.
    let mut g = Graph::new();
    let x = g.input(&[1, 4, 8, 8], "x");
    let a1 = g.relu(x, "a1");
    let b = g.relu(a1, "b");
    g.mark_output(a1);
    g.mark_output(b);
    g.infer_shapes();
    let lv = liveness(&g);
    let plan = plan_allocation_with_mode(&g, &lv, AliasMode::Full);
    assert_eq!(plan.node_exec[2], NodeExec::Standard);
    // a1 may itself reuse the *input's* dying bytes (in-place relu), but
    // nothing may take over a1: b owns storage disjoint from it.
    assert_eq!(plan.alias(b), Some((b, 0)), "b must own its storage, not reuse the output a1");
    assert_ne!(plan.offset(a1), plan.offset(b));
    assert_paths_agree(&g, &ramp(&[1, 4, 8, 8]));
}

#[test]
fn residual_operand_outliving_the_add_is_preserved() {
    // Classic residual shape: the trunk value joins an add, then feeds a
    // *later* node too. The add must not take its bytes.
    let mut g = Graph::new();
    let x = g.input(&[1, 4, 8, 8], "x");
    let trunk = g.conv2d(x, Tensor::he_conv_weight(4, 4, 3, 3, 7), None, 1, 1, "trunk");
    let branch = g.conv2d(trunk, Tensor::he_conv_weight(4, 4, 3, 3, 8), None, 1, 1, "branch");
    let sum = g.add(&[trunk, branch], "sum");
    let post = g.add(&[trunk, sum], "post"); // trunk outlives the first add
    g.mark_output(post);
    g.infer_shapes();
    let lv = liveness(&g);
    let plan = plan_allocation_with_mode(&g, &lv, AliasMode::Full);
    // First add: trunk is still needed, branch dies there — the add may
    // reuse *branch*, never trunk.
    match plan.node_exec[3] {
        NodeExec::InPlace { operand } => assert_eq!(operand, 1, "must reuse branch, not trunk"),
        NodeExec::Standard => {}
        ref other => panic!("unexpected exec mode {other:?}"),
    }
    assert_paths_agree(&g, &ramp(&[1, 4, 8, 8]));
}

#[test]
fn rebatch_ladder_preserves_alias_legality_per_bucket() {
    // Concat embedding is batch-1-only; every bucket of the serving ladder
    // must get its own legal plan and identical numbers.
    let mut g = Graph::new();
    let x = g.input(&[1, 3, 8, 8], "x");
    let p = g.conv2d(x, Tensor::he_conv_weight(2, 3, 3, 3, 9), None, 1, 1, "p");
    let q = g.conv2d(x, Tensor::he_conv_weight(3, 3, 3, 3, 10), None, 1, 1, "q");
    let cat = g.concat(&[p, q], "cat");
    let r = g.relu(cat, "r");
    g.mark_output(r);
    g.infer_shapes();
    for batch in [1usize, 2, 4] {
        let gb = g.rebatch(batch);
        let lv = liveness(&gb);
        let plan = plan_allocation_with_mode(&gb, &lv, AliasMode::Full);
        let errors = plan.validate();
        assert!(errors.is_empty(), "batch {batch}: {errors:?}");
        let embedded = plan.alias_stats().aliased_concat_operands;
        if batch == 1 {
            assert_eq!(embedded, 2, "both conv outputs embed at batch 1");
        } else {
            assert_eq!(embedded, 0, "no embedding above batch 1");
        }
        assert_paths_agree(&gb, &ramp(&[batch, 3, 8, 8]));
    }
}

#[test]
fn concat_embedding_moves_no_bytes_at_batch_1() {
    let mut g = Graph::new();
    let x = g.input(&[1, 3, 8, 8], "x");
    let p = g.conv2d(x, Tensor::he_conv_weight(2, 3, 3, 3, 11), None, 1, 1, "p");
    let q = g.conv2d(x, Tensor::he_conv_weight(3, 3, 3, 3, 12), None, 1, 1, "q");
    let cat = g.concat(&[p, q], "cat");
    g.mark_output(cat);
    g.infer_shapes();
    let lv = liveness(&g);
    let full = plan_allocation_with_mode(&g, &lv, AliasMode::Full);
    let off = plan_allocation_with_mode(&g, &lv, AliasMode::Off);
    // Node 3 is the concat: fully embedded ⇒ zero copies; the alias-free
    // plan pays for both operands.
    assert_eq!(full.bytes_moved_per_node[3], 0);
    assert_eq!(off.bytes_moved_per_node[3], (2 + 3) * 8 * 8 * 4);
    assert!(full.value_bytes <= off.value_bytes);
}

#[test]
fn dense_block_embedding_never_beats_the_alias_free_peak() {
    // The regression behind the planner's fallback cascade: on dense
    // blocks, embedding every concat stretches the block-wide hull across
    // the expensive intermediates and packs *worse* than copying. The
    // planner must notice and never return a plan that loses to Off.
    let cfg = ModelConfig { batch: 1, image: 32, num_classes: 10, classifier_width: 32, seed: 5 };
    let compiler = Compiler::default();
    for id in [ModelId::Densenet121, ModelId::Unet] {
        let g = id.build(&cfg);
        for level in [OptLevel::Decomposed, OptLevel::SkipOptFusion] {
            let (opt, _) = compiler.compile(&g, level);
            let lv = liveness(&opt);
            let full = plan_allocation_with_mode(&opt, &lv, AliasMode::Full);
            let off = plan_allocation_with_mode(&opt, &lv, AliasMode::Off);
            assert!(
                full.value_bytes <= off.value_bytes,
                "{} @ {}: slab {} > alias-free {}",
                id.name(),
                level.label(),
                full.value_bytes,
                off.value_bytes
            );
            assert!(
                full.bytes_moved <= off.bytes_moved,
                "{} @ {}: moved {} > alias-free {}",
                id.name(),
                level.label(),
                full.bytes_moved,
                off.bytes_moved
            );
        }
    }
}

#[test]
fn zoo_models_agree_across_alias_modes() {
    let cfg = ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 64, seed: 3 };
    let compiler = Compiler::default();
    for id in [ModelId::Vgg11, ModelId::Resnet18, ModelId::UnetSmall] {
        let g = id.build(&cfg);
        let (opt, _) = compiler.compile(&g, OptLevel::SkipOptFusion);
        let input = ramp(opt.shape(opt.inputs[0]));
        assert_paths_agree(&opt, &input);
    }
}
