//! Umbrella crate for the TeMCO reproduction workspace.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` can exercise the whole stack through one
//! dependency. The real functionality lives in:
//!
//! * [`temco`] — the compiler (decomposition pass, skip-connection
//!   optimization, activation-layer fusion, layer transformations).
//! * [`temco_ir`] — the SSA graph IR, shape inference, liveness.
//! * [`temco_runtime`] — interpreter, memory tracker/planner, fused kernels.
//! * [`temco_models`] — the 10-model / 5-architecture zoo from the paper.
//! * [`temco_decomp`] — Tucker / CP / Tensor-Train kernel decomposition.
//! * [`temco_tensor`] / [`temco_linalg`] — numeric substrates.

pub use temco;
pub use temco_decomp;
pub use temco_ir;
pub use temco_linalg;
pub use temco_models;
pub use temco_runtime;
pub use temco_tensor;
