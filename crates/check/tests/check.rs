//! Tier-1 entry points for the harness: a deterministic short differential
//! sweep, the self-tests that prove the instruments detect what they claim
//! to detect, and a short fault-injection campaign.
//!
//! Scale knobs (for soak runs; the defaults keep tier-1 fast):
//!
//! * `TEMCO_CHECK_ITERS` — differential seeds to sweep (default 6).
//! * `TEMCO_CHECK_FAULTS` — fault-injection episodes (default 150).

use temco_check::{
    check_plan_against, check_seed, dump, inject_aliasing, random_cnn, run_fault_injection, shrink,
    DiffConfig, FaultConfig, GenConfig,
};
use temco_ir::{liveness, Graph};
use temco_runtime::plan_allocation_with;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The tentpole check: differential execution over a seeded corpus. Every
/// failure is shrunk before being reported, so a red CI run hands the
/// investigator a minimal repro, not a 15-node haystack.
#[test]
fn differential_sweep_over_the_seeded_corpus() {
    let iters = env_usize("TEMCO_CHECK_ITERS", 6) as u64;
    let cfg = DiffConfig::default();
    let mut failures = Vec::new();
    for seed in 0..iters {
        if let Err(f) = check_seed(seed, &cfg) {
            // Minimize while preserving *some* differential failure (not
            // necessarily the same stage — any failure on a smaller graph
            // is a better repro).
            let g = random_cnn(seed, &cfg.gen);
            let failing =
                |g: &Graph| temco_check::check_graph(g, seed, &cfg).err().map(|f| f.to_string());
            let repro = match shrink(&g, &failing) {
                Some(s) => format!(
                    "shrunk to {} nodes ({} attempts): {}\n{}",
                    s.graph.nodes.len(),
                    s.attempts,
                    s.message,
                    dump(&s.graph)
                ),
                None => "shrink could not reproduce (flaky failure?)".to_string(),
            };
            failures.push(format!("{f}\n{repro}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} differential failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The shrinker must reduce an injected slab-aliasing fault to a repro of
/// at most 10 nodes — the acceptance bar for "failures arrive minimized".
#[test]
fn injected_aliasing_shrinks_to_a_small_repro() {
    // Property: the independent checker catches aliasing after the plan is
    // sabotaged. Holds for any graph with two simultaneously-live values,
    // so the minimal repro is tiny.
    let failing = |g: &Graph| {
        let lv = liveness(g);
        let mut plan = plan_allocation_with(g, &lv);
        inject_aliasing(g, &mut plan)?;
        let errs = check_plan_against(g, &plan);
        errs.iter().find(|e| e.contains("alias")).cloned()
    };
    let g = random_cnn(1, &GenConfig::default());
    assert!(failing(&g).is_some(), "corpus graph must admit aliasing injection");
    let before = g.nodes.len();
    let shrunk = shrink(&g, &failing).expect("property holds on entry");
    assert!(
        shrunk.graph.nodes.len() <= 10,
        "repro has {} nodes (started at {before}), want ≤ 10:\n{}",
        shrunk.graph.nodes.len(),
        dump(&shrunk.graph)
    );
    assert!(shrunk.message.contains("alias"), "wrong failure survived: {}", shrunk.message);
}

/// Short fault-injection campaign: the server must stay healthy — no hung
/// waits, workers alive, stats conserved — under adversarial traffic.
#[test]
fn fault_injection_leaves_the_server_healthy() {
    let frames = env_usize("TEMCO_CHECK_FAULTS", 150);
    let report = run_fault_injection(&FaultConfig { frames, seed: 42, workers: 2 })
        .expect("fault campaign must bind and run");
    assert!(report.passed(), "server unhealthy after {frames} episodes: {report}");
    assert!(report.ok > 0, "no valid request ever succeeded: {report}");
}
