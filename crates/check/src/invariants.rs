//! Independent allocation-plan invariant checking.
//!
//! `AllocationPlan::validate` is the allocator checking its own work; a bug
//! in the shared assumptions (liveness, sizes) passes both. This module
//! re-derives every invariant from the graph alone — its own liveness walk,
//! its own byte accounting — and compares the plan against that, so a
//! planner/liveness bug has to fool two independent implementations to slip
//! through. The invariants:
//!
//! 1. **No aliasing of live values** — two buffers whose (re-derived)
//!    liveness intervals overlap in time must not overlap in the slab.
//! 2. **Exact coverage** — every materialized value has exactly one buffer
//!    of exactly its byte size, with the plan's `[begin, end]` matching the
//!    re-derived interval.
//! 3. **Scratch disjointness** — the kernel-scratch arena lies wholly past
//!    the value region, aligned, inside the slab; per-node scratch never
//!    exceeds the arena.
//! 4. **Peak accounting** — the plan's `peak_live_bytes` equals the
//!    re-computed max over schedule steps of simultaneously-live bytes, and
//!    the value region is at least that big.

use temco_ir::{liveness, Graph, ValueId};
use temco_runtime::{plan_allocation_with, AllocationPlan, SCRATCH_ALIGN};

/// Plan the graph and check the result. Empty ⇔ all invariants hold.
pub fn check_plan(g: &Graph) -> Vec<String> {
    let lv = liveness(g);
    let plan = plan_allocation_with(g, &lv);
    check_plan_against(g, &plan)
}

/// Check an explicit plan against `g` (used both on real planner output and
/// on deliberately-sabotaged plans in the harness's self-tests).
pub fn check_plan_against(g: &Graph, plan: &AllocationPlan) -> Vec<String> {
    let mut errs = Vec::new();
    let lv = liveness(g);
    let name = |v: ValueId| g.values[v.0 as usize].name.clone();

    // 2. Exact coverage: one buffer per materialized value, right size,
    //    right interval.
    for iv in lv.intervals() {
        let matching: Vec<_> = plan.buffers.iter().filter(|b| b.value == iv.value).collect();
        match matching.as_slice() {
            [] => errs.push(format!("value '{}' is live but has no buffer", name(iv.value))),
            [b] => {
                let want = g.value_bytes(iv.value);
                if b.bytes != want {
                    errs.push(format!(
                        "buffer for '{}' holds {} bytes, value needs {}",
                        name(iv.value),
                        b.bytes,
                        want
                    ));
                }
                if (b.begin, b.end) != (iv.begin, iv.end) {
                    errs.push(format!(
                        "buffer for '{}' spans [{}, {}], liveness says [{}, {}]",
                        name(iv.value),
                        b.begin,
                        b.end,
                        iv.begin,
                        iv.end
                    ));
                }
                if plan.offset(iv.value) != Some(b.offset) {
                    errs.push(format!(
                        "offset lookup for '{}' disagrees with its buffer",
                        name(iv.value)
                    ));
                }
            }
            many => errs.push(format!(
                "value '{}' has {} buffers (must be exactly one)",
                name(iv.value),
                many.len()
            )),
        }
    }

    // 1. No two simultaneously-live values overlap in the slab. Time
    //    overlap comes from the *re-derived* liveness, not the plan's own
    //    begin/end (a plan lying about lifetimes must not excuse aliasing).
    for (i, a) in plan.buffers.iter().enumerate() {
        for b in &plan.buffers[i + 1..] {
            if !lv.overlap(a.value, b.value) {
                continue;
            }
            let disjoint = a.offset + a.bytes <= b.offset || b.offset + b.bytes <= a.offset;
            if !disjoint {
                errs.push(format!(
                    "live values '{}' [{}, {}) and '{}' [{}, {}) alias in the slab",
                    name(a.value),
                    a.offset,
                    a.offset + a.bytes,
                    name(b.value),
                    b.offset,
                    b.offset + b.bytes
                ));
            }
        }
    }

    // 3. Scratch arena: past every value buffer, aligned, inside the slab,
    //    and covering every node's requirement.
    let value_end = plan.buffers.iter().map(|b| b.offset + b.bytes).max().unwrap_or(0);
    if plan.value_bytes != value_end {
        errs.push(format!(
            "value region reported as {} bytes, buffers end at {}",
            plan.value_bytes, value_end
        ));
    }
    if plan.node_scratch.len() != g.nodes.len() {
        errs.push(format!(
            "node_scratch has {} entries for {} nodes",
            plan.node_scratch.len(),
            g.nodes.len()
        ));
    }
    let max_scratch = plan.node_scratch.iter().copied().max().unwrap_or(0);
    if plan.scratch_bytes != max_scratch {
        errs.push(format!(
            "scratch arena is {} bytes but the hungriest node needs {}",
            plan.scratch_bytes, max_scratch
        ));
    }
    if plan.scratch_bytes > 0 {
        if plan.scratch_offset < value_end {
            errs.push(format!(
                "scratch arena at {} overlaps the value region ending at {}",
                plan.scratch_offset, value_end
            ));
        }
        if !plan.scratch_offset.is_multiple_of(SCRATCH_ALIGN) {
            errs.push(format!(
                "scratch offset {} is not {SCRATCH_ALIGN}-aligned",
                plan.scratch_offset
            ));
        }
        if plan.scratch_offset + plan.scratch_bytes != plan.slab_bytes {
            errs.push(format!(
                "slab is {} bytes, scratch ends at {}",
                plan.slab_bytes,
                plan.scratch_offset + plan.scratch_bytes
            ));
        }
    } else if plan.slab_bytes != value_end {
        errs.push(format!(
            "no scratch, but slab ({}) exceeds the value region ({})",
            plan.slab_bytes, value_end
        ));
    }

    // 4. Peak accounting from first principles: walk the schedule, sum the
    //    bytes of values live at each step.
    let peak = (0..g.nodes.len())
        .map(|step| {
            lv.intervals()
                .filter(|iv| iv.begin <= step && step <= iv.end)
                .map(|iv| g.value_bytes(iv.value))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    if plan.peak_live_bytes != peak {
        errs.push(format!(
            "plan claims {} peak live bytes, schedule walk finds {}",
            plan.peak_live_bytes, peak
        ));
    }
    if plan.value_bytes < peak {
        errs.push(format!(
            "value region ({}) smaller than peak live bytes ({})",
            plan.value_bytes, peak
        ));
    }

    errs
}

/// Sabotage a valid plan for the harness's self-test: force the two largest
/// time-overlapping buffers to the same offset (a classic allocator bug),
/// returning `None` when the graph has no two simultaneously-live values.
pub fn inject_aliasing(g: &Graph, plan: &mut AllocationPlan) -> Option<(ValueId, ValueId)> {
    let lv = liveness(g);
    let mut best: Option<(usize, usize, usize)> = None;
    for i in 0..plan.buffers.len() {
        for j in i + 1..plan.buffers.len() {
            let (a, b) = (&plan.buffers[i], &plan.buffers[j]);
            if lv.overlap(a.value, b.value) {
                let sz = a.bytes + b.bytes;
                if best.is_none_or(|(_, _, s)| sz > s) {
                    best = Some((i, j, sz));
                }
            }
        }
    }
    let (i, j, _) = best?;
    let victims = (plan.buffers[i].value, plan.buffers[j].value);
    plan.buffers[j].offset = plan.buffers[i].offset;
    Some(victims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_cnn, GenConfig};
    use temco_ir::liveness;

    #[test]
    fn real_plans_pass_on_the_generated_corpus() {
        for seed in 0..20 {
            let g = random_cnn(seed, &GenConfig::default());
            let errs = check_plan(&g);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }

    #[test]
    fn injected_aliasing_is_caught() {
        let g = random_cnn(3, &GenConfig::default());
        let lv = liveness(&g);
        let mut plan = plan_allocation_with(&g, &lv);
        let victims = inject_aliasing(&g, &mut plan).expect("corpus graphs have live overlap");
        let errs = check_plan_against(&g, &plan);
        assert!(
            errs.iter().any(|e| e.contains("alias")),
            "sabotaged plan for {victims:?} not caught: {errs:?}"
        );
    }
}
