//! Independent allocation-plan invariant checking.
//!
//! `AllocationPlan::validate` is the allocator checking its own work; a bug
//! in the shared assumptions (liveness, sizes, alias analysis) passes both.
//! This module re-derives every invariant from the graph alone — its own
//! liveness walk, its own byte accounting, its own reading of which ops may
//! legally share storage — and compares the plan against that, so a
//! planner/liveness/aliasing bug has to fool two independent
//! implementations to slip through. The invariants:
//!
//! 1. **Write simulation** — walk the schedule and compute, per node, the
//!    byte regions its kernel writes (the whole output extent; for a
//!    batch-1 concat, only the slots of operands that were *not* produced
//!    in place). Any simultaneously-live value intersecting a written
//!    region is an aliasing violation **unless** the graph itself
//!    sanctions the reuse: an elementwise/activation op overwriting its
//!    sole dying same-size operand, or a monotone pool overwriting the
//!    prefix of its sole dying input. Crucially the sanction is re-derived
//!    from the graph and the buffer offsets — never read from the plan's
//!    own `node_exec` table, which a buggy planner could make agree with a
//!    buggy layout.
//! 2. **Exact coverage** — every materialized value has exactly one buffer
//!    of exactly its byte size, with the plan's `[begin, end]` matching the
//!    re-derived interval.
//! 3. **Scratch disjointness** — the kernel-scratch arena lies wholly past
//!    the value region, aligned, inside the slab; per-node scratch never
//!    exceeds the arena.
//! 4. **Peak accounting** — the plan's `peak_live_bytes` equals the
//!    re-computed max over schedule steps of the *union measure* of live
//!    buffer extents (an alias class counts once), and the value region is
//!    at least that big.
//! 5. **Movement accounting** — the plan's `bytes_moved` equals the
//!    re-derived copy volume: input staging, concat slots not eliminated
//!    by embedding, flattens not running in place.

use temco_ir::{liveness, Graph, Liveness, Op, ValueId};
use temco_runtime::{plan_allocation_with, AllocationPlan, SCRATCH_ALIGN};

const F32: usize = std::mem::size_of::<f32>();

/// Plan the graph (full alias mode, the executor's default) and check the
/// result. Empty ⇔ all invariants hold.
pub fn check_plan(g: &Graph) -> Vec<String> {
    let lv = liveness(g);
    let plan = plan_allocation_with(g, &lv);
    check_plan_against(g, &plan)
}

/// Check an explicit plan against `g` (used both on real planner output and
/// on deliberately-sabotaged plans in the harness's self-tests). Works on
/// plans from any [`temco_runtime::AliasMode`]: which storage sharing is
/// legal is re-derived from the graph and the buffer offsets alone.
pub fn check_plan_against(g: &Graph, plan: &AllocationPlan) -> Vec<String> {
    let mut errs = Vec::new();
    let lv = liveness(g);
    let name = |v: ValueId| g.values[v.0 as usize].name.clone();

    // Offsets come from the buffer list, NOT from `plan.offset()` — the
    // self-sabotage injections mutate buffers, and a checker reading a
    // separate lookup table would be blind to exactly the drift it exists
    // to catch.
    let mut off = vec![usize::MAX; g.values.len()];
    for b in &plan.buffers {
        off[b.value.0 as usize] = b.offset;
    }

    // 2. Exact coverage: one buffer per materialized value, right size,
    //    right interval.
    for iv in lv.intervals() {
        let matching: Vec<_> = plan.buffers.iter().filter(|b| b.value == iv.value).collect();
        match matching.as_slice() {
            [] => errs.push(format!("value '{}' is live but has no buffer", name(iv.value))),
            [b] => {
                let want = g.value_bytes(iv.value);
                if b.bytes != want {
                    errs.push(format!(
                        "buffer for '{}' holds {} bytes, value needs {}",
                        name(iv.value),
                        b.bytes,
                        want
                    ));
                }
                if (b.begin, b.end) != (iv.begin, iv.end) {
                    errs.push(format!(
                        "buffer for '{}' spans [{}, {}], liveness says [{}, {}]",
                        name(iv.value),
                        b.begin,
                        b.end,
                        iv.begin,
                        iv.end
                    ));
                }
            }
            many => errs.push(format!(
                "value '{}' has {} buffers (must be exactly one)",
                name(iv.value),
                many.len()
            )),
        }
    }

    // 1. Write simulation over the re-derived liveness. Time overlap comes
    //    from our own walk, not the plan's begin/end (a plan lying about
    //    lifetimes must not excuse aliasing).
    for (i, node) in g.nodes.iter().enumerate() {
        let out = node.output;
        let out_off = off[out.0 as usize];
        if out_off == usize::MAX {
            continue; // coverage already flagged it
        }
        let out_bytes = g.value_bytes(out);

        // Byte regions this node's kernel writes.
        let written = written_regions(g, node, out_off, out_bytes, &off);

        for iv in lv.intervals() {
            let w = iv.value;
            if w == out || iv.begin > i || i > iv.end {
                continue;
            }
            let w_off = off[w.0 as usize];
            if w_off == usize::MAX {
                continue;
            }
            let w_bytes = g.value_bytes(w);
            let hit = written.iter().any(|&(s, e)| w_off < e && s < w_off + w_bytes);
            if hit && !reuse_sanctioned(g, &lv, node, i, w, w_off, w_bytes, out_off, out_bytes) {
                errs.push(format!(
                    "node '{}' (step {i}) writes over live value '{}' [{}, {}) — \
                     values alias in the slab without a sanctioned reuse",
                    node.name,
                    name(w),
                    w_off,
                    w_off + w_bytes
                ));
            }
        }
    }

    // 3. Scratch arena: past every value buffer, aligned, inside the slab,
    //    and covering every node's requirement.
    let value_end = plan.buffers.iter().map(|b| b.offset + b.bytes).max().unwrap_or(0);
    if plan.value_bytes != value_end {
        errs.push(format!(
            "value region reported as {} bytes, buffers end at {}",
            plan.value_bytes, value_end
        ));
    }
    if plan.node_scratch.len() != g.nodes.len() {
        errs.push(format!(
            "node_scratch has {} entries for {} nodes",
            plan.node_scratch.len(),
            g.nodes.len()
        ));
    }
    let max_scratch = plan.node_scratch.iter().copied().max().unwrap_or(0);
    if plan.scratch_bytes != max_scratch {
        errs.push(format!(
            "scratch arena is {} bytes but the hungriest node needs {}",
            plan.scratch_bytes, max_scratch
        ));
    }
    // 3b. Schedule-consistent reservations: every node's scratch entry is
    //     re-derived from the kernel formula for the *schedule the plan
    //     dispatches that node with* — a kernel can never touch past its
    //     reservation, for any schedule the autotuner may have chosen.
    if plan.node_schedule.len() != g.nodes.len() {
        errs.push(format!(
            "node_schedule has {} entries for {} nodes",
            plan.node_schedule.len(),
            g.nodes.len()
        ));
    }
    for (i, node) in g.nodes.iter().enumerate() {
        let (Some(&reserved), Some(&sched)) = (plan.node_scratch.get(i), plan.node_schedule.get(i))
        else {
            break; // length mismatch already flagged
        };
        let need = temco_runtime::node_scratch_bytes_with(g, node, sched);
        if reserved != need {
            errs.push(format!(
                "node '{}' reserves {} scratch bytes but its schedule ({}) needs {}",
                node.name,
                reserved,
                sched.label(),
                need
            ));
        }
    }
    if plan.scratch_bytes > 0 {
        if plan.scratch_offset < value_end {
            errs.push(format!(
                "scratch arena at {} overlaps the value region ending at {}",
                plan.scratch_offset, value_end
            ));
        }
        if !plan.scratch_offset.is_multiple_of(SCRATCH_ALIGN) {
            errs.push(format!(
                "scratch offset {} is not {SCRATCH_ALIGN}-aligned",
                plan.scratch_offset
            ));
        }
        if plan.scratch_offset + plan.scratch_bytes != plan.slab_bytes {
            errs.push(format!(
                "slab is {} bytes, scratch ends at {}",
                plan.slab_bytes,
                plan.scratch_offset + plan.scratch_bytes
            ));
        }
    } else if plan.slab_bytes != value_end {
        errs.push(format!(
            "no scratch, but slab ({}) exceeds the value region ({})",
            plan.slab_bytes, value_end
        ));
    }

    // 4. Peak accounting from first principles: the union measure of live
    //    buffer extents per step (values sharing bytes count once).
    let mut peak = 0usize;
    for step in 0..g.nodes.len() {
        let mut spans: Vec<(usize, usize)> = lv
            .intervals()
            .filter(|iv| iv.begin <= step && step <= iv.end)
            .filter_map(|iv| {
                let o = off[iv.value.0 as usize];
                (o != usize::MAX).then(|| (o, o + g.value_bytes(iv.value)))
            })
            .collect();
        spans.sort_unstable();
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for (s, e) in spans {
            let s = s.max(cursor);
            if e > s {
                covered += e - s;
                cursor = e;
            }
        }
        peak = peak.max(covered);
    }
    if plan.peak_live_bytes != peak {
        errs.push(format!(
            "plan claims {} peak live bytes, schedule walk finds {}",
            plan.peak_live_bytes, peak
        ));
    }
    if plan.value_bytes < peak {
        errs.push(format!(
            "value region ({}) smaller than peak live bytes ({})",
            plan.value_bytes, peak
        ));
    }

    // 5. Movement accounting: re-derive every copy the plan's layout still
    //    requires and compare totals.
    let mut moved = 0usize;
    for node in &g.nodes {
        let out_off = off[node.output.0 as usize];
        if out_off == usize::MAX {
            continue;
        }
        moved += match &node.op {
            Op::Input => g.value_bytes(node.output),
            Op::Concat => {
                let mut regions = Vec::new();
                concat_slots(g, node, out_off, &off, |v, embedded, _slot| {
                    if !embedded {
                        regions.push(g.value_bytes(v));
                    }
                });
                regions.iter().sum()
            }
            Op::Flatten => {
                if off[node.inputs[0].0 as usize] == out_off {
                    0
                } else {
                    g.value_bytes(node.output)
                }
            }
            _ => 0,
        };
    }
    if plan.bytes_moved != moved {
        errs.push(format!(
            "plan claims {} bytes moved, layout walk finds {}",
            plan.bytes_moved, moved
        ));
    }

    errs
}

/// Walk a concat's operand slots in channel order, reporting for each
/// operand whether its buffer already *is* its slot (embedded — produced in
/// place, no copy) and the slot's byte range. Embedding is only possible at
/// batch 1, where each operand's slot is one contiguous channel slice of
/// the output; at batch > 1 the slices interleave and every operand copies.
fn concat_slots(
    g: &Graph,
    node: &temco_ir::Node,
    out_off: usize,
    off: &[usize],
    mut f: impl FnMut(ValueId, bool, (usize, usize)),
) {
    let oshape = g.shape(node.output);
    let batch1 = oshape[0] == 1;
    let plane_bytes: usize = oshape[2..].iter().product::<usize>() * F32;
    let mut c_off = 0usize;
    for (j, &v) in node.inputs.iter().enumerate() {
        let c = g.shape(v)[1];
        let slot = (out_off + c_off * plane_bytes, out_off + (c_off + c) * plane_bytes);
        let embedded = batch1
            && off[v.0 as usize] == slot.0
            && node.inputs.iter().filter(|&&u| u == v).count() == 1
            && !g.outputs.contains(&v)
            && node.inputs[..j].iter().all(|&u| u != v);
        f(v, embedded, slot);
        c_off += c;
    }
}

/// The byte regions node `node`'s kernel writes. For most ops this is the
/// whole output extent; a batch-1 concat skips the slots of embedded
/// operands (their producers wrote them already — the concat itself touches
/// nothing there).
fn written_regions(
    g: &Graph,
    node: &temco_ir::Node,
    out_off: usize,
    out_bytes: usize,
    off: &[usize],
) -> Vec<(usize, usize)> {
    if matches!(node.op, Op::Concat) {
        let mut regions = Vec::new();
        concat_slots(g, node, out_off, off, |_v, embedded, slot| {
            if !embedded {
                regions.push(slot);
            }
        });
        regions
    } else {
        vec![(out_off, out_off + out_bytes)]
    }
}

/// Whether the graph sanctions node `node` (at step `i`) overwriting live
/// value `w`'s bytes — re-derived from op semantics, liveness, and offsets:
///
/// * elementwise/activation ops may overwrite their **sole** occurrence of
///   a dying (`end == i`), non-output operand occupying exactly the output
///   extent (in-place execution);
/// * monotone pools (max/avg/global-avg) may overwrite the **prefix** of
///   their sole dying, non-output input — the traversal never reads a
///   position it has already written (the DMO argument).
#[allow(clippy::too_many_arguments)]
fn reuse_sanctioned(
    g: &Graph,
    lv: &Liveness,
    node: &temco_ir::Node,
    i: usize,
    w: ValueId,
    w_off: usize,
    w_bytes: usize,
    out_off: usize,
    out_bytes: usize,
) -> bool {
    let dies_here = lv.end[w.0 as usize] == i && !g.outputs.contains(&w);
    let sole_operand = node.inputs.iter().filter(|&&u| u == w).count() == 1;
    match &node.op {
        Op::Activation(_) | Op::Affine { .. } | Op::Add | Op::Flatten | Op::Softmax => {
            dies_here && sole_operand && w_off == out_off && w_bytes == out_bytes
        }
        Op::Pool { .. } | Op::GlobalAvgPool => {
            dies_here
                && node.inputs.first() == Some(&w)
                && sole_operand
                && w_off == out_off
                && out_bytes <= w_bytes
        }
        _ => false,
    }
}

/// Sabotage a valid plan for the harness's self-test: force two
/// time-overlapping buffers to the same offset (a classic allocator bug),
/// picking the largest candidate pair the checker actually flags.
/// Returns `None` when the graph admits no detectable injection (no two
/// simultaneously-live values at distinct offsets).
pub fn inject_aliasing(g: &Graph, plan: &mut AllocationPlan) -> Option<(ValueId, ValueId)> {
    let lv = liveness(g);
    let mut cands: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..plan.buffers.len() {
        for j in i + 1..plan.buffers.len() {
            let (a, b) = (&plan.buffers[i], &plan.buffers[j]);
            if lv.overlap(a.value, b.value) && a.offset != b.offset {
                cands.push((i, j, a.bytes + b.bytes));
            }
        }
    }
    cands.sort_by_key(|c| std::cmp::Reverse(c.2));
    for (i, j, _) in cands {
        let mut trial = plan.clone();
        trial.buffers[j].offset = trial.buffers[i].offset;
        if check_plan_against(g, &trial).iter().any(|e| e.contains("alias")) {
            let victims = (plan.buffers[i].value, plan.buffers[j].value);
            plan.buffers[j].offset = plan.buffers[i].offset;
            return Some(victims);
        }
    }
    None
}

/// Sabotage a valid plan with the *specific* bug the in-place gate exists
/// to prevent: move a node's output buffer onto an operand that **outlives**
/// the node, so running it would clobber bytes a later consumer still
/// needs. Returns the `(output, clobbered operand)` pair, or `None` if the
/// graph has no operand outliving its consumer.
pub fn inject_unsafe_inplace(g: &Graph, plan: &mut AllocationPlan) -> Option<(ValueId, ValueId)> {
    let lv = liveness(g);
    let idx_of = |v: ValueId| plan.buffers.iter().position(|b| b.value == v);
    for (i, node) in g.nodes.iter().enumerate() {
        for &v in &node.inputs {
            if lv.end[v.0 as usize] <= i {
                continue; // dies here or earlier — reusing it could be legal
            }
            let (Some(oi), Some(vi)) = (idx_of(node.output), idx_of(v)) else { continue };
            if plan.buffers[oi].offset == plan.buffers[vi].offset {
                continue;
            }
            let mut trial = plan.clone();
            trial.buffers[oi].offset = trial.buffers[vi].offset;
            if check_plan_against(g, &trial).iter().any(|e| e.contains("alias")) {
                plan.buffers[oi].offset = plan.buffers[vi].offset;
                return Some((node.output, v));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_cnn, GenConfig};
    use temco_ir::liveness;
    use temco_runtime::{plan_allocation_with_mode, AliasMode};

    #[test]
    fn real_plans_pass_on_the_generated_corpus() {
        for seed in 0..20 {
            let g = random_cnn(seed, &GenConfig::default());
            let errs = check_plan(&g);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }

    #[test]
    fn alias_free_plans_pass_too() {
        // The checker must accept both ends of the A/B pair — it re-derives
        // what sharing is legal, not what sharing is mandatory.
        for seed in 0..10 {
            let g = random_cnn(seed, &GenConfig::default());
            let lv = liveness(&g);
            let plan = plan_allocation_with_mode(&g, &lv, AliasMode::Off);
            let errs = check_plan_against(&g, &plan);
            assert!(errs.is_empty(), "seed {seed} (alias off): {errs:?}");
        }
    }

    #[test]
    fn tuned_plans_pass_and_schedule_drift_is_caught() {
        use temco_runtime::{plan_allocation_with_schedules, GemmSchedule, NodeSchedule};
        for seed in 0..5 {
            let g = random_cnn(seed, &GenConfig::default());
            let lv = liveness(&g);
            // Give every node a deliberately odd (but legal-after-
            // normalization) GEMM schedule; the plan must still check out.
            let scheds: Vec<NodeSchedule> = (0..g.nodes.len())
                .map(|i| NodeSchedule::Gemm(GemmSchedule { kc: 7 + i, mc: 8, nc: 16 }))
                .collect();
            let mut plan = plan_allocation_with_schedules(&g, &lv, AliasMode::Full, &scheds);
            let errs = check_plan_against(&g, &plan);
            assert!(errs.is_empty(), "seed {seed} (tuned): {errs:?}");

            // Sabotage: claim a node runs with a bigger schedule than its
            // reservation was sized for. The checker must notice the
            // under-reservation from first principles.
            if let Some(i) = plan.node_scratch.iter().position(|&s| s > 0) {
                let big = NodeSchedule::Gemm(GemmSchedule { kc: 4096, mc: 4096, nc: 4096 });
                if temco_runtime::node_scratch_bytes_with(&g, &g.nodes[i], big)
                    != plan.node_scratch[i]
                {
                    plan.node_schedule[i] = big;
                    let errs = check_plan_against(&g, &plan);
                    assert!(
                        errs.iter().any(|e| e.contains("schedule")),
                        "seed {seed}: schedule drift on node {i} not caught: {errs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_aliasing_is_caught() {
        let g = random_cnn(3, &GenConfig::default());
        let lv = liveness(&g);
        let mut plan = plan_allocation_with(&g, &lv);
        let victims = inject_aliasing(&g, &mut plan).expect("corpus graphs have live overlap");
        let errs = check_plan_against(&g, &plan);
        assert!(
            errs.iter().any(|e| e.contains("alias")),
            "sabotaged plan for {victims:?} not caught: {errs:?}"
        );
    }

    #[test]
    fn injected_unsafe_inplace_is_caught() {
        // An in-place reuse whose operand outlives the node is exactly what
        // `dies_exclusively_here` forbids; a plan doing it anyway must be
        // rejected by the independent rules.
        let mut caught = 0;
        for seed in 0..10 {
            let g = random_cnn(seed, &GenConfig::default());
            let lv = liveness(&g);
            let mut plan = plan_allocation_with(&g, &lv);
            if let Some((out, victim)) = inject_unsafe_inplace(&g, &mut plan) {
                let errs = check_plan_against(&g, &plan);
                assert!(
                    errs.iter().any(|e| e.contains("alias")),
                    "seed {seed}: unsafe in-place of {out:?} over {victim:?} not caught: {errs:?}"
                );
                caught += 1;
            }
        }
        assert!(caught >= 3, "corpus admitted only {caught} unsafe-inplace injections");
    }
}
