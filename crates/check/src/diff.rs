//! Differential execution: every execution path, every opt level, every
//! rebatch bucket, one graph at a time.
//!
//! The oracle structure has two tiers because decomposition is *lossy*
//! (ratio < 1 truncates singular values):
//!
//! * **Same graph, different execution paths** — per-node reference
//!   executor vs slab executor (alias-aware and alias-free layouts) vs
//!   `Engine` must agree to tight tolerance; they run the same kernels,
//!   differing only in where memory comes from. Any drift here is a
//!   memory-planning bug (aliasing, stale slab bytes). The alias A/B pair
//!   additionally asserts sharing never grows the footprint or the copy
//!   volume.
//! * **Opt levels vs the `Decomposed` baseline** — `Fusion` / `Skip-Opt` /
//!   `Skip-Opt+Fusion` rewrite the *decomposed* graph semantics-preservingly,
//!   so they are compared against the `Decomposed` output (not the original)
//!   with a looser, magnitude-relative tolerance that admits float
//!   reassociation in fused kernels but not real rewrite bugs.
//!
//! Each rebatch bucket additionally checks *per-sample consistency*: a
//! batched run must reproduce each sample's batch-1 output exactly to tight
//! tolerance (every op in the IR is batch-independent).
//!
//! Panics anywhere in compile or execute are caught and reported as
//! failures with the panic message — a crash is a finding, not a test
//! abort.

use std::panic::{catch_unwind, AssertUnwindSafe};

use temco::{Compiler, CompilerOptions, DecomposeOptions, Method, OptLevel};
use temco_ir::{liveness, Graph};
use temco_runtime::{execute, plan_allocation_with_mode, AliasMode, Engine, ExecMode, ExecOptions};
use temco_tensor::Tensor;

use crate::gen::{random_cnn, GenConfig};
use crate::invariants;

/// Tight tolerance for same-graph cross-path comparison.
const PATH_TOL: f32 = 1e-4;
/// Relative tolerance for opt-level-vs-decomposed comparison (fused kernels
/// reassociate sums; rewrites are otherwise exact).
const LEVEL_RTOL: f32 = 2e-3;

/// What one differential run covers.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Compile and cross-check all four opt levels (decomposition is the
    /// expensive part; disable for pure runtime checks).
    pub opt_levels: bool,
    /// Top of the rebatch bucket ladder (1, 2, 4, …, `max_batch`).
    pub max_batch: usize,
    /// Decomposition ratio handed to the compiler.
    pub ratio: f64,
    /// Random-graph shape knobs.
    pub gen: GenConfig,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { opt_levels: true, max_batch: 4, ratio: 0.5, gen: GenConfig::default() }
    }
}

/// One differential failure: which seed, which oracle stage, and what went
/// wrong — everything needed to reproduce and shrink.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Generator seed of the failing graph.
    pub seed: u64,
    /// Which comparison tripped (e.g. `"slab-vs-pernode"`, `"Fusion"`).
    pub stage: String,
    /// Human-readable detail (max-abs-diff, panic message, …).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {}: [{}] {}", self.seed, self.stage, self.detail)
    }
}

fn fail(seed: u64, stage: &str, detail: impl Into<String>) -> Failure {
    Failure { seed, stage: stage.into(), detail: detail.into() }
}

/// Run `f`, converting a panic into `Err(message)`.
fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        p.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".into())
    })
}

/// `max |a - b|` over two output tensors, `None` on shape mismatch.
fn max_diff(a: &Tensor, b: &Tensor) -> Option<f32> {
    (a.shape() == b.shape()).then(|| a.max_abs_diff(b))
}

/// Compare every graph output pairwise (generated graphs mark each branch
/// tip as an output, so this observes the whole graph, not just one tail).
fn compare(seed: u64, stage: &str, a: &[Tensor], b: &[Tensor], tol: f32) -> Result<(), Failure> {
    if a.len() != b.len() {
        return Err(fail(seed, stage, format!("{} outputs vs {}", a.len(), b.len())));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match max_diff(x, y) {
            None => {
                return Err(fail(
                    seed,
                    stage,
                    format!("output {i} shapes diverge: {:?} vs {:?}", x.shape(), y.shape()),
                ))
            }
            Some(d) if d > tol => {
                return Err(fail(
                    seed,
                    stage,
                    format!("output {i}: max|Δ| {d:.3e} exceeds tolerance {tol:.1e}"),
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

/// The power-of-two bucket ladder topped by `max_batch` (mirrors the
/// serving layer's plan cache).
fn ladder(max_batch: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = 1;
    while b < max_batch {
        out.push(b);
        b *= 2;
    }
    out.push(max_batch.max(1));
    out
}

/// Generate the graph for `seed` and run the full differential check.
pub fn check_seed(seed: u64, cfg: &DiffConfig) -> Result<(), Failure> {
    let g = guarded(|| random_cnn(seed, &cfg.gen))
        .map_err(|m| fail(seed, "generate", format!("generator panicked: {m}")))?;
    check_graph(&g, seed, cfg)
}

/// Run the full differential check on an explicit graph (the shrinker calls
/// this on reduced candidates).
pub fn check_graph(g: &Graph, seed: u64, cfg: &DiffConfig) -> Result<(), Failure> {
    let violations = temco_ir::verify(g);
    if !violations.is_empty() {
        return Err(fail(seed, "verify", violations.join("; ")));
    }

    // Independent plan-invariant check before running anything.
    let errs = invariants::check_plan(g);
    if !errs.is_empty() {
        return Err(fail(seed, "plan-invariants", errs.join("; ")));
    }

    let input = Tensor::rand_uniform(g.shape(g.inputs[0]), seed ^ 0x5EED, -1.0, 1.0);

    // Execution-path tier: per-node reference vs slab vs Engine.
    let reference = run_mode(g, &input, ExecMode::PerNode, seed, "pernode")?;
    let slab = run_mode(g, &input, ExecMode::Slab, seed, "slab")?;
    compare(seed, "slab-vs-pernode", &slab, &reference, PATH_TOL)?;
    let engine_out = run_engine(g, &input, seed, "engine")?;
    compare(seed, "engine-vs-pernode", &engine_out, &reference, PATH_TOL)?;

    // Alias A/B tier: the alias-free layout must pass the same independent
    // rules (which sanction sharing, never require it), execute to the same
    // numbers, and never beat the alias-aware plan on footprint or copies.
    check_alias_ab(g, &input, &reference, seed)?;

    // Rebatch buckets: batched slab run reproduces each sample's batch-1
    // output row-for-row.
    for bucket in ladder(cfg.max_batch) {
        check_bucket(g, bucket, seed, cfg)?;
    }

    // Opt-level tier: everything compares against the Decomposed baseline.
    // The decomposition family cycles with the seed so the corpus exercises
    // Tucker-2, CP, and TT factorization paths — the baseline uses the same
    // family, so the comparison stays method-internal.
    if cfg.opt_levels {
        let method = [Method::Tucker, Method::Cp, Method::TensorTrain][(seed % 3) as usize];
        let compiler = Compiler::new(CompilerOptions {
            decompose: DecomposeOptions { ratio: cfg.ratio, method, ..Default::default() },
            merge_lconvs: true,
            ..Default::default()
        });
        let baseline_graph = guarded(|| compiler.compile(g, OptLevel::Decomposed).0)
            .map_err(|m| fail(seed, "compile-Decomposed", m))?;
        let baseline = run_mode(&baseline_graph, &input, ExecMode::Slab, seed, "Decomposed")?;
        let scale = baseline.iter().flat_map(|t| t.data()).fold(1.0f32, |m, v| m.max(v.abs()));
        for level in [OptLevel::Fusion, OptLevel::SkipOpt, OptLevel::SkipOptFusion] {
            let label = level.label();
            let opt = guarded(|| compiler.compile(g, level).0)
                .map_err(|m| fail(seed, &format!("compile-{label}"), m))?;
            let errs = invariants::check_plan(&opt);
            if !errs.is_empty() {
                return Err(fail(seed, &format!("plan-invariants-{label}"), errs.join("; ")));
            }
            let out = run_mode(&opt, &input, ExecMode::Slab, seed, label)?;
            compare(seed, label, &out, &baseline, LEVEL_RTOL * scale)?;
        }
    }
    Ok(())
}

/// Execute in one mode; checks the slab mode's dynamic high-water equals
/// the planned slab exactly (the executor stayed inside the plan).
fn run_mode(
    g: &Graph,
    input: &Tensor,
    mode: ExecMode,
    seed: u64,
    stage: &str,
) -> Result<Vec<Tensor>, Failure> {
    let res = guarded(|| {
        execute(
            g,
            std::slice::from_ref(input),
            ExecOptions { time_nodes: false, mode, ..Default::default() },
        )
    })
    .map_err(|m| fail(seed, stage, format!("executor panicked: {m}")))?
    .map_err(|e| fail(seed, stage, format!("executor error: {e}")))?;
    if mode == ExecMode::Slab && res.slab_high_water != res.slab_bytes {
        return Err(fail(
            seed,
            stage,
            format!("dynamic high-water {} ≠ planned slab {}", res.slab_high_water, res.slab_bytes),
        ));
    }
    Ok(res.outputs)
}

/// Alias-analysis A/B check: plan and run the graph with aliasing **off**,
/// verify the independent invariants accept that layout too, compare its
/// outputs against the per-node reference, and assert the alias-aware plan
/// is pointwise no worse (value-region bytes, bytes moved) — storage
/// sharing is an optimization, never a trade.
fn check_alias_ab(
    g: &Graph,
    input: &Tensor,
    reference: &[Tensor],
    seed: u64,
) -> Result<(), Failure> {
    let stage = "slab-noalias";
    let (plan_full, plan_off) = guarded(|| {
        let lv = liveness(g);
        (
            plan_allocation_with_mode(g, &lv, AliasMode::Full),
            plan_allocation_with_mode(g, &lv, AliasMode::Off),
        )
    })
    .map_err(|m| fail(seed, stage, format!("planner panicked: {m}")))?;
    let errs = invariants::check_plan_against(g, &plan_off);
    if !errs.is_empty() {
        return Err(fail(seed, "plan-invariants-noalias", errs.join("; ")));
    }
    if plan_full.value_bytes > plan_off.value_bytes {
        return Err(fail(
            seed,
            "alias-footprint",
            format!(
                "aliasing grew the value region: {} > {}",
                plan_full.value_bytes, plan_off.value_bytes
            ),
        ));
    }
    if plan_full.bytes_moved > plan_off.bytes_moved {
        return Err(fail(
            seed,
            "alias-movement",
            format!(
                "aliasing grew data movement: {} > {}",
                plan_full.bytes_moved, plan_off.bytes_moved
            ),
        ));
    }

    let res = guarded(|| {
        execute(
            g,
            std::slice::from_ref(input),
            ExecOptions { time_nodes: false, alias: AliasMode::Off, ..Default::default() },
        )
    })
    .map_err(|m| fail(seed, stage, format!("executor panicked: {m}")))?
    .map_err(|e| fail(seed, stage, format!("executor error: {e}")))?;
    if res.slab_high_water != res.slab_bytes {
        return Err(fail(
            seed,
            stage,
            format!("dynamic high-water {} ≠ planned slab {}", res.slab_high_water, res.slab_bytes),
        ));
    }
    compare(seed, "noalias-vs-pernode", &res.outputs, reference, PATH_TOL)
}

fn run_engine(g: &Graph, input: &Tensor, seed: u64, stage: &str) -> Result<Vec<Tensor>, Failure> {
    guarded(|| -> Result<Vec<Tensor>, String> {
        let mut e = Engine::new(g.clone()).map_err(|e| format!("compile: {e}"))?;
        let outs = e.run(std::slice::from_ref(input)).map_err(|e| format!("run: {e}"))?;
        Ok(outs.to_vec())
    })
    .map_err(|m| fail(seed, stage, format!("engine panicked: {m}")))?
    .map_err(|m| fail(seed, stage, m))
}

/// Rebatch to `bucket`, run the batched graph on `bucket` distinct samples,
/// and compare each output row to the corresponding batch-1 reference.
fn check_bucket(g: &Graph, bucket: usize, seed: u64, _cfg: &DiffConfig) -> Result<(), Failure> {
    let stage = format!("rebatch-{bucket}");
    let gb = guarded(|| g.try_rebatch(bucket))
        .map_err(|m| fail(seed, &stage, format!("rebatch panicked: {m}")))?
        .map_err(|e| fail(seed, &stage, format!("rebatch error: {e}")))?;

    let sample_shape = g.shape(g.inputs[0]).to_vec();
    let sample_numel: usize = sample_shape.iter().product();
    let samples: Vec<Tensor> = (0..bucket)
        .map(|i| Tensor::rand_uniform(&sample_shape, seed ^ (0xBA7C << 8) ^ i as u64, -1.0, 1.0))
        .collect();

    let mut batched_shape = sample_shape.clone();
    batched_shape[0] = bucket;
    let mut data = Vec::with_capacity(bucket * sample_numel);
    for s in &samples {
        data.extend_from_slice(s.data());
    }
    let batched_in = Tensor::from_vec(&batched_shape, data);

    let batched = run_mode(&gb, &batched_in, ExecMode::Slab, seed, &stage)?;
    for (i, s) in samples.iter().enumerate() {
        let single = run_mode(g, s, ExecMode::Slab, seed, &stage)?;
        for (o, single_out) in single.iter().enumerate() {
            let out_numel: usize = g.shape(g.outputs[o]).iter().product();
            let row = &batched[o].data()[i * out_numel..(i + 1) * out_numel];
            let diff =
                row.iter().zip(single_out.data()).fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            if diff > PATH_TOL {
                return Err(fail(
                    seed,
                    &stage,
                    format!(
                        "sample {i} of {bucket}, output {o}: batched row diverges by {diff:.3e}"
                    ),
                ));
            }
        }
    }
    Ok(())
}
