//! `temco-check` — the stack's adversary.
//!
//! Everything else in this workspace tries to make inference fast;
//! this crate tries to make it *wrong*, and reports when it can't. Three
//! instruments, all seeded and deterministic:
//!
//! * [`gen`] + [`diff`] — a random valid-CNN generator driving
//!   differential execution: per-node reference vs slab executor vs
//!   [`Engine`](temco_runtime::Engine), across every opt level and every
//!   rebatch bucket, outputs compared within tolerance.
//! * [`invariants`] — an independent re-derivation of every
//!   allocation-plan invariant via a write simulation (storage sharing only
//!   where the graph itself sanctions it, scratch disjointness, exact peak
//!   and data-movement accounting), so a planner or alias-analysis bug has
//!   to fool two implementations to slip through.
//! * [`fault`] — a TCP fault injector that hammers a live server with
//!   malformed frames, floods, and disconnects, then asserts no hang, no
//!   dead workers, and exact stats-counter conservation.
//!
//! When a differential run fails, [`shrink`] greedily minimizes the
//! failing graph to a small repro and [`shrink::dump`] prints it.
//!
//! Two run modes: a deterministic short mode wired into tier-1 CI, and a
//! long mode scaled by `TEMCO_CHECK_ITERS` / `TEMCO_CHECK_FAULTS` for
//! soak runs (see `tests/check.rs` and the `temco check` subcommand).

pub mod diff;
pub mod fault;
pub mod gen;
pub mod invariants;
pub mod shrink;

pub use diff::{check_graph, check_seed, DiffConfig, Failure};
pub use fault::{run_fault_injection, FaultConfig, FaultReport};
pub use gen::{random_cnn, GenConfig};
pub use invariants::{check_plan, check_plan_against, inject_aliasing, inject_unsafe_inplace};
pub use shrink::{dump, shrink, Shrunk};
