//! Seeded random-graph generation.
//!
//! The generator builds *valid* CNN graphs by construction: it tracks every
//! value's `[c, h, w]` shape itself and only emits an op whose output stays
//! non-degenerate (every dimension ≥ 1), so any graph it returns passes
//! `verify` + `infer_shapes` and executes at any positive batch size (spatial
//! dims never depend on batch). The op mix deliberately covers what the
//! compiler passes rewrite — plain and grouped convolutions, pools,
//! activations, shape-preserving skip chains (`conv → act → conv → add`),
//! concats — including fan-ins whose every branch dies at the concat (the
//! alias analysis's embedding target) — in-place-eligible activation
//! chains, and an optional classifier head — so a differential run over the
//! generated corpus exercises decomposition, skip-opt, the layer
//! transformations, fusion, and alias-aware allocation, not just
//! straight-line conv stacks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temco_ir::{ActKind, Graph, ValueId};
use temco_tensor::Tensor;

/// Knobs for [`random_cnn`]. The defaults keep graphs small enough that a
/// full differential check (all opt levels × all rebatch buckets) runs in
/// tens of milliseconds, while still being deep enough to trigger every
/// compiler pass.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Operator nodes to emit (excluding the input and the optional head).
    pub ops: usize,
    /// Channel cap for conv/concat outputs.
    pub max_channels: usize,
    /// Input spatial size is drawn from `[min_image, max_image]`.
    pub min_image: usize,
    /// See `min_image`.
    pub max_image: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { ops: 10, max_channels: 32, min_image: 8, max_image: 16 }
    }
}

/// A frontier entry: a usable value and its `[c, h, w]` shape.
#[derive(Clone, Copy)]
struct Val {
    id: ValueId,
    c: usize,
    h: usize,
    w: usize,
}

/// Uniform draw from `[lo, hi]` (inclusive).
fn draw(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    lo + (rng.random::<u64>() as usize) % (hi - lo + 1)
}

fn pick<'a>(rng: &mut StdRng, xs: &'a [Val]) -> &'a Val {
    &xs[draw(rng, 0, xs.len() - 1)]
}

/// Largest output-dims-preserving convolution window: `(h+2p-k)/s + 1 ≥ 1`.
fn conv_out(i: usize, k: usize, s: usize, p: usize) -> usize {
    let eff = i + 2 * p;
    if eff < k {
        0
    } else {
        (eff - k) / s + 1
    }
}

/// Build one random valid CNN from `seed`. Deterministic: same seed + config
/// ⇒ byte-identical graph (weights included). The graph has exactly one
/// input (batch 1); every dead-end value is marked as an output, so the
/// whole graph is live and every branch is differentially observable.
pub fn random_cnn(seed: u64, cfg: &GenConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    // Weight seeds derive from the graph seed but use a disjoint stream so
    // reordering op choices never perturbs unrelated weights.
    let mut wseed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next_wseed = || {
        wseed = wseed.wrapping_add(0x9E37_79B9);
        wseed
    };

    let c0 = [3usize, 4, 8][draw(&mut rng, 0, 2)];
    let s0 = draw(&mut rng, cfg.min_image, cfg.max_image);
    let x = g.input(&[1, c0, s0, s0], "x");
    let mut frontier = vec![Val { id: x, c: c0, h: s0, w: s0 }];
    let mut last = frontier[0];

    for i in 0..cfg.ops {
        let roll = draw(&mut rng, 0, 11);
        let emitted = match roll {
            // Convolution (dense or grouped) — the most common op, and the
            // one every compiler pass cares about.
            0..=3 => {
                let src = *pick(&mut rng, &frontier);
                let k = [1usize, 3, 5][draw(&mut rng, 0, 2)];
                if k > src.h.min(src.w) {
                    None
                } else {
                    let stride = if draw(&mut rng, 0, 3) == 0 { 2 } else { 1 };
                    let pad = if k > 1 && draw(&mut rng, 0, 1) == 1 { k / 2 } else { 0 };
                    let oh = conv_out(src.h, k, stride, pad);
                    let ow = conv_out(src.w, k, stride, pad);
                    if oh == 0 || ow == 0 {
                        None
                    } else {
                        // Groups must divide both channel counts; depthwise
                        // (groups == c_in) shows up when c_in is drawn.
                        let groups = if draw(&mut rng, 0, 3) == 0 {
                            let divisors: Vec<usize> =
                                (2..=src.c).filter(|d| src.c.is_multiple_of(*d)).collect();
                            if divisors.is_empty() {
                                1
                            } else {
                                divisors[draw(&mut rng, 0, divisors.len() - 1)]
                            }
                        } else {
                            1
                        };
                        let c_out = (groups * draw(&mut rng, 1, 4)).min(cfg.max_channels);
                        let c_out = c_out - (c_out % groups);
                        let weight =
                            Tensor::he_conv_weight(c_out, src.c / groups, k, k, next_wseed());
                        let bias = (draw(&mut rng, 0, 1) == 1)
                            .then(|| Tensor::rand_uniform(&[c_out], next_wseed(), -0.1, 0.1));
                        let spec = temco_ir::ConvSpec {
                            weight: g.add_weight(weight),
                            bias: bias.map(|b| g.add_weight(b)),
                            stride: (stride, stride),
                            padding: (pad, pad),
                            groups,
                            role: temco_ir::ConvRole::Standard,
                        };
                        let v = g.conv2d_spec(src.id, spec, format!("conv{i}"));
                        Some(Val { id: v, c: c_out, h: oh, w: ow })
                    }
                }
            }
            // Pooling.
            4 => {
                let src = *pick(&mut rng, &frontier);
                let k = draw(&mut rng, 2, 3);
                let stride = draw(&mut rng, 1, 2);
                let oh = conv_out(src.h, k, stride, 0);
                let ow = conv_out(src.w, k, stride, 0);
                if oh == 0 || ow == 0 {
                    None
                } else {
                    let v = if draw(&mut rng, 0, 1) == 0 {
                        g.max_pool(src.id, k, stride, format!("maxpool{i}"))
                    } else {
                        g.avg_pool(src.id, k, stride, format!("avgpool{i}"))
                    };
                    Some(Val { id: v, c: src.c, h: oh, w: ow })
                }
            }
            // Activation.
            5 => {
                let src = *pick(&mut rng, &frontier);
                let kind = [ActKind::Relu, ActKind::Silu, ActKind::Sigmoid, ActKind::Tanh]
                    [draw(&mut rng, 0, 3)];
                let v = g.activation(src.id, kind, format!("act{i}"));
                Some(Val { id: v, ..src })
            }
            // Residual add over two same-shape frontier values.
            6 => {
                let a = *pick(&mut rng, &frontier);
                frontier
                    .iter()
                    .find(|b| b.id != a.id && (b.c, b.h, b.w) == (a.c, a.h, a.w))
                    .copied()
                    .map(|b| {
                        let v = g.add(&[a.id, b.id], format!("add{i}"));
                        Val { id: v, ..a }
                    })
            }
            // Channel concat over two spatially-equal frontier values.
            7 => {
                let a = *pick(&mut rng, &frontier);
                frontier
                    .iter()
                    .find(|b| {
                        b.id != a.id && (b.h, b.w) == (a.h, a.w) && a.c + b.c <= cfg.max_channels
                    })
                    .copied()
                    .map(|b| {
                        let v = g.concat(&[a.id, b.id], format!("concat{i}"));
                        Val { id: v, c: a.c + b.c, ..a }
                    })
            }
            // Concat of 2–3 fresh single-consumer branches off one source —
            // every branch dies at the concat, which is exactly the shape
            // the alias analysis embeds copy-free at batch 1 (and must
            // still copy correctly at rebatched sizes).
            10 => {
                let src = *pick(&mut rng, &frontier);
                let branches = draw(&mut rng, 2, 3);
                let mut parts = Vec::new();
                let mut c_total = 0usize;
                for bi in 0..branches {
                    let c_out = draw(&mut rng, 1, 4);
                    if c_total + c_out > cfg.max_channels {
                        break;
                    }
                    let w = Tensor::he_conv_weight(c_out, src.c, 1, 1, next_wseed());
                    let v = g.conv2d(src.id, w, None, 1, 0, format!("cat{i}_b{bi}"));
                    parts.push(v);
                    c_total += c_out;
                }
                (parts.len() >= 2).then(|| {
                    let v = g.concat(&parts, format!("cat{i}"));
                    Val { id: v, c: c_total, ..src }
                })
            }
            // A chain of 2–3 activations, each consuming the previous value
            // exactly once: every link is in-place eligible, so the whole
            // chain should collapse into a single buffer.
            11 => {
                let src = *pick(&mut rng, &frontier);
                let len = draw(&mut rng, 2, 3);
                let mut v = src.id;
                for (step, kind) in
                    [ActKind::Relu, ActKind::Tanh, ActKind::Sigmoid][..len].iter().enumerate()
                {
                    v = g.activation(v, *kind, format!("chain{i}_{step}"));
                }
                Some(Val { id: v, ..src })
            }
            // A whole shape-preserving skip chain: conv → act → conv → add.
            // This is the exact pattern skip-opt and fusion hunt for.
            _ => {
                let src = *pick(&mut rng, &frontier);
                if src.h < 3 || src.w < 3 {
                    None
                } else {
                    let w1 = Tensor::he_conv_weight(src.c, src.c, 3, 3, next_wseed());
                    let c1 = g.conv2d(src.id, w1, None, 1, 1, format!("skip{i}_c1"));
                    let r1 = g.relu(c1, format!("skip{i}_r"));
                    let w2 = Tensor::he_conv_weight(src.c, src.c, 3, 3, next_wseed());
                    let c2 = g.conv2d(r1, w2, None, 1, 1, format!("skip{i}_c2"));
                    let v = g.add(&[src.id, c2], format!("skip{i}_add"));
                    Some(Val { id: v, ..src })
                }
            }
        };
        if let Some(v) = emitted {
            frontier.push(v);
            last = v;
        }
    }

    // Optional classifier head — exercises GlobalAvgPool/Flatten/Linear/
    // Softmax and gives rebatch a non-4-D tail to re-infer.
    let head = (draw(&mut rng, 0, 1) == 1).then(|| {
        let p = g.global_avg_pool(last.id, "head_gap");
        let f = g.flatten(p, "head_flat");
        let classes = draw(&mut rng, 2, 10);
        let w = Tensor::randn(&[classes, last.c], next_wseed());
        let l = g.linear(f, w, None, "head_fc");
        g.softmax(l, "head_softmax")
    });

    // Every dead-end value becomes a graph output, so *no generated op is
    // dead code*: the compiler can't silently drop a branch, the executor
    // materializes everything, and the differential oracle compares every
    // branch's tensor at full resolution (not some pooled summary).
    for val in &frontier {
        let from_input =
            g.producer(val.id).is_none_or(|i| matches!(g.nodes[i].op, temco_ir::Op::Input));
        if g.users(val.id).is_empty() && !from_input {
            g.mark_output(val.id);
        }
    }
    if let Some(s) = head {
        g.mark_output(s);
    }
    if g.outputs.is_empty() {
        g.mark_output(last.id);
    }
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid_and_deterministic() {
        for seed in 0..40 {
            let g = random_cnn(seed, &GenConfig::default());
            let errs = temco_ir::verify(&g);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            assert_eq!(g.inputs.len(), 1);
            assert!(!g.outputs.is_empty());
            for node in &g.nodes {
                assert!(g.value_numel(node.output) > 0, "seed {seed}: degenerate {}", node.name);
                // No dead code: every non-output value feeds something.
                assert!(
                    !g.users(node.output).is_empty() || g.outputs.contains(&node.output),
                    "seed {seed}: '{}' is dead code",
                    node.name
                );
            }
            let h = random_cnn(seed, &GenConfig::default());
            assert_eq!(g.nodes.len(), h.nodes.len(), "seed {seed} not deterministic");
        }
    }

    #[test]
    fn corpus_covers_the_interesting_ops() {
        let (mut convs, mut adds, mut concats, mut grouped) = (0, 0, 0, 0);
        for seed in 0..60 {
            let g = random_cnn(seed, &GenConfig::default());
            for node in &g.nodes {
                match &node.op {
                    temco_ir::Op::Conv2d(spec) => {
                        convs += 1;
                        if spec.groups > 1 {
                            grouped += 1;
                        }
                    }
                    temco_ir::Op::Add => adds += 1,
                    temco_ir::Op::Concat => concats += 1,
                    _ => {}
                }
            }
        }
        assert!(convs > 50, "conv-starved corpus ({convs})");
        assert!(adds > 5, "no residual structure ({adds})");
        assert!(concats > 2, "no concat structure ({concats})");
        assert!(grouped > 2, "no grouped convs ({grouped})");
    }
}
