//! Serve-layer fault injection: hammer a live [`Server`] over real TCP
//! with every malformed input a hostile or broken client could produce,
//! then prove the server is still healthy. The server runs behind the
//! event-driven connection plane ([`temco_serve::serve`]), so the
//! campaign also exercises epoll readiness, the pooled request contexts,
//! and the idle sweep — not just the protocol parser.
//!
//! The attack mix (seeded, deterministic): valid inference, 1 ms-deadline
//! floods, truncated frames, hostile length prefixes past `MAX_FRAME`,
//! unknown opcodes, ragged `f32` payloads, wrong element counts,
//! disconnects before reading the response, direct-API queue-full storms,
//! stats/info/metrics probes, Prometheus scrape floods, truncated scrape
//! frames, slow-loris writers that trickle the frame header a byte at a
//! time, connections that die mid-handshake with a partial header on the
//! wire, a parked fleet of idle connections with a liveness probe racing
//! the flood, and a scrape racing the shutdown drain. Four health
//! properties are asserted at the end:
//!
//! 1. **No hung waits** — every response (and every direct-API ticket)
//!    arrives within a generous timeout; a hang means a completion path
//!    was lost.
//! 2. **Liveness under flood** — with the idle fleet still parked, a
//!    fresh connection must be accepted and served; accept starvation is
//!    exactly the failure slow-loris and idle floods aim for.
//! 3. **Liveness after abuse** — a final valid inference must still
//!    succeed, which also proves no worker thread panicked (a dead worker
//!    pool would never answer).
//! 4. **Counter conservation** — after a graceful shutdown,
//!    `submitted == completed + deadline_expired + failed_shutdown` with an
//!    empty queue ([`StatsSnapshot::is_conserved_at_rest`]); any leak means
//!    a request was double-counted or silently dropped.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temco_ir::Graph;
use temco_serve::proto::{self, op, status, MAX_FRAME};
use temco_serve::{serve, EventConfig, ServeConfig, ServeError, Server};
use temco_tensor::Tensor;

/// How long to wait for any single response before declaring it hung.
/// Generous on purpose: the point is catching *lost* completions, not
/// scheduler jitter.
const HANG_TIMEOUT: Duration = Duration::from_secs(10);

/// Fault-injection run parameters.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Adversarial episodes to run (each sends one or more frames).
    pub frames: usize,
    /// RNG seed for the attack sequence.
    pub seed: u64,
    /// Worker threads on the server under test.
    pub workers: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { frames: 1000, seed: 0xF417, workers: 2 }
    }
}

/// What the injection run observed. `passed()` is the health verdict.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Adversarial episodes executed.
    pub frames: usize,
    /// Requests answered `OK`.
    pub ok: usize,
    /// Requests answered with a structured rejection (queue full,
    /// deadline exceeded, shutting down).
    pub rejected: usize,
    /// Malformed inputs the server answered `BAD_REQUEST` or dropped the
    /// connection over (both are correct handling).
    pub proto_errors: usize,
    /// Connections the injector deliberately broke mid-exchange.
    pub disconnects: usize,
    /// Responses or tickets that never arrived within [`HANG_TIMEOUT`].
    pub hung: usize,
    /// Idle connections parked on the server during the flood phase.
    pub idle_flooded: usize,
    /// A fresh connection was accepted and served while the idle fleet
    /// was still parked (accept liveness under flood).
    pub alive_under_flood: bool,
    /// Stats counters conserved after shutdown.
    pub conserved: bool,
    /// A valid inference succeeded after all the abuse (workers alive).
    pub alive_after: bool,
}

impl FaultReport {
    /// The four health properties the injector exists to check.
    pub fn passed(&self) -> bool {
        self.hung == 0 && self.conserved && self.alive_under_flood && self.alive_after
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} episodes: {} ok, {} rejected, {} proto errors, {} disconnects, \
             {} hung, {} idle flooded (alive under flood={}), conserved={}, alive after={}",
            self.frames,
            self.ok,
            self.rejected,
            self.proto_errors,
            self.disconnects,
            self.hung,
            self.idle_flooded,
            self.alive_under_flood,
            self.conserved,
            self.alive_after
        )
    }
}

/// What one episode observed; folded into the report's counters.
enum Outcome {
    Ok,
    Rejected,
    ProtoError,
    Disconnect,
    Hung,
}

/// A small MLP — cheap per batch so the queue actually drains under load,
/// real enough (two GEMMs + an activation) to exercise the full
/// batch-gather/scatter path.
fn tiny_model() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 11), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 12), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

fn draw(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    lo + (rng.random::<u64>() as usize) % (hi - lo + 1)
}

fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(HANG_TIMEOUT))?;
    s.set_write_timeout(Some(HANG_TIMEOUT))?;
    s.set_nodelay(true)?;
    Ok(s)
}

/// `deadline_ms` + `numel` little-endian f32s: a well-formed INFER payload.
fn infer_payload(deadline_ms: u32, numel: usize, fill: f32) -> Vec<u8> {
    let mut p = deadline_ms.to_le_bytes().to_vec();
    proto::put_f32s(&mut p, &vec![fill; numel]);
    p
}

/// Send one frame, read one response, classify it. A read timeout is a
/// hang; a closed connection is a protocol error (the server is allowed to
/// drop abusive clients, never to stall them).
fn exchange(addr: SocketAddr, tag: u8, payload: &[u8]) -> Outcome {
    let Ok(mut s) = connect(addr) else { return Outcome::Disconnect };
    if proto::write_frame(&mut s, tag, payload).is_err() {
        return Outcome::Disconnect;
    }
    classify_response(&mut s)
}

fn classify_response(s: &mut TcpStream) -> Outcome {
    match proto::read_frame(s) {
        Ok(Some((status::OK, _))) => Outcome::Ok,
        Ok(Some((status::QUEUE_FULL | status::DEADLINE_EXCEEDED | status::SHUTTING_DOWN, _))) => {
            Outcome::Rejected
        }
        Ok(Some(_)) => Outcome::ProtoError, // BAD_REQUEST or unknown
        Ok(None) => Outcome::ProtoError,    // server hung up on the abuse
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Outcome::Hung
        }
        Err(_) => Outcome::ProtoError,
    }
}

/// Raw bytes that are *not* a well-formed frame, then a half-close. The
/// write shutdown hands the server an EOF where it expected more payload;
/// a correct server tears the connection down promptly, and one that keeps
/// the socket open past the hang timeout is reported as hung.
fn send_raw_and_close(addr: SocketAddr, bytes: &[u8]) -> Outcome {
    let Ok(mut s) = connect(addr) else { return Outcome::Disconnect };
    let _ = s.write_all(bytes);
    let _ = s.flush();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 256];
    loop {
        match s.read(&mut sink) {
            Ok(0) => return Outcome::Disconnect,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Outcome::Hung
            }
            Err(_) => return Outcome::Disconnect,
            Ok(_) => {}
        }
    }
}

/// Scrape flood: many `METRICS` frames back to back on one connection.
/// The scrape path is read-only and allocates only in the response; every
/// frame must answer `OK` without perturbing the workers.
fn metrics_flood(addr: SocketAddr, report: &mut FaultReport) {
    let Ok(mut s) = connect(addr) else {
        report.disconnects += 1;
        return;
    };
    for _ in 0..16 {
        if proto::write_frame(&mut s, op::METRICS, &[]).is_err() {
            report.disconnects += 1;
            return;
        }
        match classify_response(&mut s) {
            Outcome::Ok => report.ok += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::ProtoError => report.proto_errors += 1,
            Outcome::Disconnect => report.disconnects += 1,
            Outcome::Hung => report.hung += 1,
        }
    }
}

/// Slow-loris: trickle the five frame-header bytes onto the wire one at
/// a time with a pause between each, then the payload. The frame is
/// ultimately valid, so a correct event loop accumulates it patiently in
/// bounded state (five header bytes, then the preallocated payload
/// buffer) and answers like any other request — slowness alone must
/// never wedge the parser, starve the accept path, or leak a context.
fn slow_loris(addr: SocketAddr, numel: usize) -> Outcome {
    let Ok(mut s) = connect(addr) else { return Outcome::Disconnect };
    let payload = infer_payload(0, numel, 0.125);
    let mut framed = Vec::with_capacity(5 + payload.len());
    if proto::write_frame(&mut framed, op::INFER, &payload).is_err() {
        return Outcome::Disconnect;
    }
    for byte in &framed[..5] {
        if s.write_all(std::slice::from_ref(byte)).is_err() || s.flush().is_err() {
            return Outcome::Disconnect;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if s.write_all(&framed[5..]).is_err() {
        return Outcome::Disconnect;
    }
    classify_response(&mut s)
}

/// Mid-handshake disconnect: a few header bytes, then an abrupt close
/// before the frame ever completes. No request exists yet, so nothing
/// may be counted as submitted and the connection slot must be reclaimed.
fn mid_handshake_disconnect(addr: SocketAddr, rng: &mut StdRng) -> Outcome {
    let Ok(mut s) = connect(addr) else { return Outcome::Disconnect };
    let hdr = [64u8, 0, 0, 0, op::INFER];
    let cut = draw(rng, 1, 4);
    let _ = s.write_all(&hdr[..cut]);
    let _ = s.flush();
    drop(s);
    Outcome::Disconnect
}

/// Direct-API storm: submit past the queue cap, then wait out every
/// ticket. The queue-full rejections are expected; a ticket that never
/// settles is the bug this hunts.
fn queue_storm(server: &Server, numel: usize, report: &mut FaultReport) {
    let sample = || Tensor::from_vec(&[1, numel], vec![0.5; numel]);
    let mut tickets = Vec::new();
    for _ in 0..32 {
        match server.submit(sample()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull) => report.rejected += 1,
            Err(_) => report.rejected += 1,
        }
    }
    for t in tickets {
        match t.wait_timeout(HANG_TIMEOUT) {
            Ok(Ok(_)) => report.ok += 1,
            Ok(Err(_)) => report.rejected += 1,
            Err(_) => report.hung += 1,
        }
    }
}

/// Run the fault-injection campaign. Binds an ephemeral local port,
/// serves [`tiny_model`] behind `cfg.workers` workers, runs `cfg.frames`
/// seeded adversarial episodes, then gracefully shuts down and audits the
/// counters.
pub fn run_fault_injection(cfg: &FaultConfig) -> io::Result<FaultReport> {
    let server = Server::new(
        tiny_model(),
        ServeConfig {
            workers: cfg.workers.max(1),
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            queue_cap: 16,
            default_deadline: None,
        },
    )
    .expect("the built-in model is servable");
    let numel: usize = server.sample_shape().iter().product();

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tcp_server = server.clone();
    // Event-driven plane with headroom for the idle flood; the idle
    // timeout is kept above the campaign length so the sweep never races
    // the episodes it is not under test here.
    let ecfg =
        EventConfig { max_conns: 2048, idle_timeout: Duration::from_secs(120), max_inflight: 32 };
    let serve_thread = std::thread::spawn(move || serve(tcp_server, listener, ecfg));

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = FaultReport {
        frames: cfg.frames,
        ok: 0,
        rejected: 0,
        proto_errors: 0,
        disconnects: 0,
        hung: 0,
        idle_flooded: 0,
        alive_under_flood: false,
        conserved: false,
        alive_after: false,
    };

    for _ in 0..cfg.frames {
        let outcome = match draw(&mut rng, 0, 12) {
            // Valid inference — the control group; must come back OK.
            0 | 1 => exchange(addr, op::INFER, &infer_payload(0, numel, 0.25)),
            // Deadline flood: 1 ms deadlines race the worker; OK and
            // DEADLINE_EXCEEDED are both legitimate, a hang is not.
            2 => exchange(addr, op::INFER, &infer_payload(1, numel, 0.5)),
            // Truncated frame: the prefix promises more than arrives.
            3 => {
                let mut bytes = 64u32.to_le_bytes().to_vec();
                bytes.push(op::INFER);
                bytes.extend_from_slice(&[0u8; 7]);
                send_raw_and_close(addr, &bytes)
            }
            // Hostile length prefix past MAX_FRAME: must be refused
            // without a matching allocation.
            4 => {
                let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
                bytes.push(op::INFER);
                send_raw_and_close(addr, &bytes)
            }
            // Unknown opcode with a plausible payload.
            5 => exchange(addr, 0xEE, &infer_payload(0, numel, 0.0)),
            // Ragged f32 payload (not a multiple of 4 after the deadline).
            6 => {
                let mut p = infer_payload(0, numel, 0.0);
                p.pop();
                exchange(addr, op::INFER, &p)
            }
            // Wrong element count for the model's input shape.
            7 => exchange(addr, op::INFER, &infer_payload(0, numel + 1, 0.0)),
            // Disconnect before reading the response: the worker's write
            // fails, nothing may leak or hang.
            8 => match connect(addr) {
                Ok(mut s) => {
                    let _ = proto::write_frame(&mut s, op::INFER, &infer_payload(0, numel, 1.0));
                    drop(s);
                    Outcome::Disconnect
                }
                Err(_) => Outcome::Disconnect,
            },
            // Metrics-opcode abuse: scrape floods on one connection, or a
            // truncated scrape frame (the prefix promises payload that
            // never arrives). Scraping is read-only — no variant may
            // perturb the workers.
            9 => {
                if draw(&mut rng, 0, 1) == 0 {
                    metrics_flood(addr, &mut report);
                    continue;
                }
                let mut bytes = 16u32.to_le_bytes().to_vec();
                bytes.push(op::METRICS);
                bytes.extend_from_slice(&[0u8; 3]);
                send_raw_and_close(addr, &bytes)
            }
            // Slow-loris header trickle: the event loop must absorb it in
            // bounded state and still answer.
            11 => slow_loris(addr, numel),
            // Mid-handshake disconnect: partial header, abrupt close.
            12 => mid_handshake_disconnect(addr, &mut rng),
            // Stats/info/metrics probes interleaved with the abuse, plus
            // the direct-API queue storm.
            _ => {
                if draw(&mut rng, 0, 2) == 0 {
                    queue_storm(&server, numel, &mut report);
                    continue;
                }
                let probe = match draw(&mut rng, 0, 2) {
                    0 => op::STATS,
                    1 => op::INFO,
                    _ => op::METRICS,
                };
                exchange(addr, probe, &[])
            }
        };
        match outcome {
            Outcome::Ok => report.ok += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::ProtoError => report.proto_errors += 1,
            Outcome::Disconnect => report.disconnects += 1,
            Outcome::Hung => report.hung += 1,
        }
    }

    // Idle-connection flood: park a silent fleet on the connection table,
    // then prove accept liveness *while flooded* — a fresh connection
    // must still be admitted and a valid request served end to end. The
    // fleet scales with the campaign so `temco check --faults 2000` parks
    // over a thousand connections.
    let flood = cfg.frames.clamp(200, 1200);
    let mut parked = Vec::with_capacity(flood);
    for _ in 0..flood {
        match TcpStream::connect(addr) {
            Ok(s) => parked.push(s),
            Err(_) => report.disconnects += 1,
        }
    }
    report.idle_flooded = parked.len();
    for attempt in 0..3 {
        if matches!(exchange(addr, op::INFER, &infer_payload(0, numel, 0.375)), Outcome::Ok) {
            report.alive_under_flood = true;
            report.ok += 1;
            break;
        }
        if attempt + 1 < 3 {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    drop(parked);

    // Liveness probe: after everything above, a clean request must work.
    report.alive_after =
        matches!(exchange(addr, op::INFER, &infer_payload(0, numel, 0.75)), Outcome::Ok);

    // Graceful shutdown over the wire — with a scrape connection opened
    // *before* the drain and driven during it. The event loop keeps
    // turning while it owes responses, so scrapes racing the drain must
    // keep answering (or drop cleanly), never hang, and never break
    // conservation.
    let mut drain_scraper = connect(addr).ok();
    let _ = exchange(addr, op::SHUTDOWN, &[]);
    if let Some(s) = drain_scraper.as_mut() {
        for _ in 0..3 {
            if proto::write_frame(s, op::METRICS, &[]).is_err() {
                report.disconnects += 1;
                break;
            }
            match classify_response(s) {
                Outcome::Ok => report.ok += 1,
                Outcome::Rejected => report.rejected += 1,
                Outcome::ProtoError => report.proto_errors += 1,
                Outcome::Disconnect => report.disconnects += 1,
                Outcome::Hung => report.hung += 1,
            }
        }
    }
    // Drop the scrape connection so the event loop can retire it.
    drop(drain_scraper);
    serve_thread.join().expect("serve thread must not panic")?;
    report.conserved = server.stats().is_conserved_at_rest();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_leaves_the_server_healthy() {
        let report =
            run_fault_injection(&FaultConfig { frames: 120, seed: 7, workers: 2 }).unwrap();
        assert!(report.passed(), "unhealthy after faults: {report}");
        assert!(report.ok > 0, "no request ever succeeded: {report}");
        assert!(report.proto_errors > 0, "the campaign never hit a protocol path: {report}");
        assert!(report.idle_flooded >= 120, "the idle flood never parked its fleet: {report}");
    }
}
