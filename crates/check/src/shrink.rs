//! Greedy failure minimization: turn a 15-node failing graph into the
//! smallest graph that still fails.
//!
//! The shrinker never needs to know *why* a graph fails — it only needs a
//! property function returning `Some(message)` while the failure persists.
//! Four reduction moves run to fixpoint, last node first:
//!
//! * **Bypass** — remove a node and rewire every consumer of its output to
//!   the node's first operand, legal only when the two values have the same
//!   shape (so downstream shape inference is untouched).
//! * **Drop** — remove a node whose output nobody consumes and that is not
//!   a graph output.
//! * **Unmark** — remove a node whose output *is* a graph output but has no
//!   shape-compatible rewire target, deleting the output entry (as long as
//!   at least one output remains).
//! * **Narrow** — drop one operand of a ≥ 3-ary concat or add (shapes are
//!   re-inferred; downstream incompatibility is rejected by verification).
//!
//! After every candidate edit, orphaned nodes are garbage-collected, weights
//! are compacted, shapes are re-inferred, and the candidate must both pass
//! structural verification *and* still fail the property — otherwise the
//! edit is rejected and the previous graph kept. Every accepted step shrinks
//! the node list by ≥ 1, so termination is immediate; greediness (not
//! optimality) is the point: a 3-node repro found in milliseconds beats a
//! provably-minimal one found never.

use temco_ir::{Graph, Op};

/// The outcome of a shrink: the reduced graph, the failure message it still
/// produces, and how many candidate edits were evaluated.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimized failing graph.
    pub graph: Graph,
    /// The property's message on the minimized graph.
    pub message: String,
    /// Candidate graphs evaluated (accepted + rejected).
    pub attempts: usize,
}

/// Minimize `g` under `failing`. `failing(g)` must be `Some` on entry —
/// returns `None` otherwise (nothing to shrink).
pub fn shrink(g: &Graph, failing: &dyn Fn(&Graph) -> Option<String>) -> Option<Shrunk> {
    let mut message = failing(g)?;
    let mut current = g.clone();
    let mut attempts = 0usize;

    loop {
        let mut progressed = false;
        // Last node first: truncating the tail first strips whole suffixes
        // quickly before finer mid-graph surgery.
        let mut i = current.nodes.len();
        while i > 0 {
            i -= 1;
            let n_operands = current.nodes[i].inputs.len();
            let mut candidates = Vec::with_capacity(1 + n_operands);
            candidates.extend(remove_node(&current, i));
            candidates.extend((0..n_operands).filter_map(|j| remove_operand(&current, i, j)));
            for candidate in candidates {
                attempts += 1;
                if !temco_ir::verify(&candidate).is_empty() {
                    continue;
                }
                if let Some(msg) = failing(&candidate) {
                    // Every accepted edit strictly shrinks nodes + operands,
                    // so the fixpoint terminates.
                    current = candidate;
                    message = msg;
                    progressed = true;
                    // Restart the sweep over the (smaller) graph.
                    i = current.nodes.len();
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    Some(Shrunk { graph: current, message, attempts })
}

/// One-line-per-node dump of a (reduced) graph — what a failing run prints
/// so the repro can be reconstructed without re-running the generator.
pub fn dump(g: &Graph) -> String {
    let mut s = String::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let ins: Vec<&str> =
            node.inputs.iter().map(|v| g.values[v.0 as usize].name.as_str()).collect();
        let shape = g.values[node.output.0 as usize]
            .shape
            .as_ref()
            .map(|s| format!("{s:?}"))
            .unwrap_or_else(|| "?".into());
        s.push_str(&format!(
            "{i:>3}: {} = {}({}) -> {shape}\n",
            node.name,
            node.op.mnemonic(),
            ins.join(", ")
        ));
    }
    s.push_str(&format!(
        "outputs: {:?}\n",
        g.outputs.iter().map(|v| g.values[v.0 as usize].name.as_str()).collect::<Vec<_>>()
    ));
    s
}

/// Remove node `i`, rewiring its consumers to its first operand when shapes
/// allow. Returns `None` when the removal is structurally impossible.
fn remove_node(g: &Graph, i: usize) -> Option<Graph> {
    let node = &g.nodes[i];
    if matches!(node.op, Op::Input) {
        return None; // the input anchors the graph
    }
    let out = node.output;
    let used = g.nodes.iter().any(|n| n.inputs.contains(&out));
    let is_output = g.outputs.contains(&out);

    let mut drop_output = false;
    let replacement = if used || is_output {
        match node.inputs.first() {
            // Rewiring is only legal shape-preservingly.
            Some(&src) if g.values[src.0 as usize].shape == g.values[out.0 as usize].shape => {
                Some(src)
            }
            // No rewire target: other consumers make removal impossible,
            // but a pure output can simply stop being one.
            _ if used => return None,
            _ => {
                drop_output = true;
                None
            }
        }
    } else {
        None
    };

    let mut out_g = g.clone();
    out_g.nodes.remove(i);
    if drop_output {
        out_g.outputs.retain(|v| *v != out);
        if out_g.outputs.is_empty() {
            return None; // an output-less graph checks nothing
        }
    }
    if let Some(src) = replacement {
        for n in &mut out_g.nodes {
            for v in &mut n.inputs {
                if *v == out {
                    *v = src;
                }
            }
        }
        for v in &mut out_g.outputs {
            if *v == out {
                *v = src;
            }
        }
        // Rewiring can make an existing output and the replacement collide.
        let mut seen = std::collections::HashSet::new();
        out_g.outputs.retain(|v| seen.insert(*v));
    }
    sweep_orphans(&mut out_g);
    out_g.gc_weights();
    out_g.try_infer_shapes().ok()?;
    Some(out_g)
}

/// Drop operand `j` of node `i` — the *narrow* move. Only concat/add are
/// variadic, and both stay valid with any ≥ 2 operands; the output shape may
/// change (fewer concat channels), which re-inference propagates and
/// verification re-checks downstream.
fn remove_operand(g: &Graph, i: usize, j: usize) -> Option<Graph> {
    let node = &g.nodes[i];
    if !matches!(node.op, Op::Concat | Op::Add) || node.inputs.len() <= 2 {
        return None;
    }
    let mut out_g = g.clone();
    out_g.nodes[i].inputs.remove(j);
    sweep_orphans(&mut out_g);
    out_g.gc_weights();
    out_g.try_infer_shapes().ok()?;
    Some(out_g)
}

/// Remove nodes orphaned by an edit (their outputs now feed nothing) until
/// none remain.
fn sweep_orphans(g: &mut Graph) {
    loop {
        let dead = g.nodes.iter().position(|n| {
            !matches!(n.op, Op::Input)
                && !g.outputs.contains(&n.output)
                && !g.nodes.iter().any(|m| m.inputs.contains(&n.output))
        });
        match dead {
            Some(j) => {
                g.nodes.remove(j);
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_cnn, GenConfig};

    #[test]
    fn shrinks_contains_concat_to_a_tiny_repro() {
        // Find a corpus graph with a concat and minimize under the property
        // "graph still contains a Concat" — a stand-in failure with a known
        // minimal form (input + concat).
        let failing = |g: &Graph| {
            g.nodes
                .iter()
                .any(|n| matches!(n.op, Op::Concat))
                .then(|| "contains concat".to_string())
        };
        let g = (0..64)
            .map(|s| random_cnn(s, &GenConfig::default()))
            .find(|g| failing(g).is_some())
            .expect("corpus contains concats");
        let before = g.nodes.len();
        let shrunk = shrink(&g, &failing).unwrap();
        assert!(shrunk.graph.nodes.len() < before, "no reduction ({before} nodes)");
        assert!(
            shrunk.graph.nodes.len() <= 4,
            "expected a tiny repro, got {} nodes:\n{}",
            shrunk.graph.nodes.len(),
            dump(&shrunk.graph)
        );
        assert!(failing(&shrunk.graph).is_some(), "shrunk graph no longer fails");
        assert!(temco_ir::verify(&shrunk.graph).is_empty());
    }

    #[test]
    fn dump_names_every_node() {
        let g = random_cnn(0, &GenConfig::default());
        let d = dump(&g);
        assert_eq!(d.lines().count(), g.nodes.len() + 1);
        assert!(d.contains("outputs:"));
    }
}
