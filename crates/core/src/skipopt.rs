//! Skip-connection optimization (paper Section 3.1, Algorithms 1 and 2).
//!
//! A *skip connection* is an internal tensor whose lifespan (distance from
//! definition to last use under the schedule) exceeds `DISTANCE_THRESHOLD`.
//! For each such tensor the pass walks the program dependence graph
//! backwards to the restoring `lconv`(s) (`FindReduced`), checks that
//! copying those restore layers is affordable (`Overhead`), and then inserts
//! a private copy of the restore chain immediately before every distant use,
//! rewiring the use to the copy. The long-lived full-size tensor is thereby
//! replaced by the long-lived *reduced* tensor; the full-size value only
//! exists briefly around each use.

use std::collections::HashMap;

use temco_ir::{liveness, node_flops, Graph, Node, Op, Pdg, ValueId};

use crate::decompose::{is_lconv, DecomposeStats};

/// Options for the skip-connection optimization.
#[derive(Clone, Debug)]
pub struct SkipOptOptions {
    /// Lifespan above which a tensor counts as a skip connection
    /// (`DISTANCE_THRESHOLD` in Algorithm 1).
    pub distance_threshold: usize,
    /// Maximum number of layers `FindReduced` may collect before giving up;
    /// bounds recursion through deep residual blocks.
    pub max_restore_layers: usize,
    /// Copied-FLOPs allowance as a multiple of the original non-decomposed
    /// convolution's FLOPs (`COMPUTE_THRESHOLD`; the paper sets 1.0×).
    pub compute_multiplier: f64,
    /// When the original FLOPs are unknown (hand-built graphs), allow the
    /// total copied FLOPs to be at most this multiple of one restore-chain
    /// evaluation.
    pub fallback_copies: f64,
    /// Transient peak of one restore-chain evaluation may be at most this
    /// multiple of the model's *current* peak internal memory (the
    /// `l.peak ≤ m` check: copying must not raise the global peak).
    pub peak_multiplier: f64,
}

impl Default for SkipOptOptions {
    fn default() -> Self {
        SkipOptOptions {
            distance_threshold: 4,
            max_restore_layers: 4,
            compute_multiplier: 1.0,
            fallback_copies: 10.0,
            peak_multiplier: 1.0,
        }
    }
}

/// Statistics of one skip-connection optimization run.
#[derive(Clone, Debug, Default)]
pub struct SkipOptStats {
    /// Values whose lifespan exceeded the distance threshold.
    pub skips_found: usize,
    /// Skips successfully rewritten.
    pub skips_optimized: usize,
    /// Skips rejected because no restore chain was found (`FindReduced`
    /// hit a non-traversable producer).
    pub rejected_structure: usize,
    /// Skips rejected by the `Overhead` check.
    pub rejected_overhead: usize,
    /// Restore-layer copies inserted.
    pub copies_inserted: usize,
}

/// Result of `FindReduced` (Algorithm 2): the ordered restore-layer list
/// plus the size/peak bookkeeping used by `Compare`/`Peak`.
#[derive(Clone, Debug)]
struct Restore {
    /// Node indices of the restore layers, producers before consumers.
    list: Vec<usize>,
    /// `SIZE(v)` of the tensor this chain restores.
    size: usize,
    /// Transient peak bytes of evaluating the chain.
    peak: usize,
}

/// Algorithm 2, `FindReduced`: walk producers of `node_idx` until every
/// path bottoms out at an `lconv`; `None` when a path hits a layer that
/// cannot be cheaply replayed.
fn find_reduced(g: &Graph, pdg: &Pdg, node_idx: usize, opts: &SkipOptOptions) -> Option<Restore> {
    let node = &g.nodes[node_idx];
    let out_size = g.value_bytes(node.output);
    if is_lconv(g, node_idx) {
        let in_size = g.value_bytes(node.inputs[0]);
        return Some(Restore { list: vec![node_idx], size: out_size, peak: out_size + in_size });
    }
    // Only cheap, replayable layers may sit on a restore path: activations,
    // folded batch-norm, pooling, and the add/concat joins. Anything else
    // (input, standard conv, upconv) ends the search. Pooling matters: the
    // ResNet stem's identity skip is `pool(relu(bn(lconv(…))))`, and the
    // restore kernel later computes the whole chain strip-wise.
    if !matches!(
        node.op,
        Op::Activation(_) | Op::Affine { .. } | Op::Pool { .. } | Op::Add | Op::Concat
    ) {
        return None;
    }
    let mut children: Vec<Restore> = Vec::with_capacity(node.inputs.len());
    for &v in &node.inputs {
        let p = pdg.producer(v)?;
        children.push(find_reduced(g, pdg, p, opts)?);
    }
    // ORDER(Compare, predList): run the child whose `size + other.peak` is
    // smaller first — the execution order that minimizes transient peak.
    children.sort_by(|a, b| {
        let ab = a.size + b.peak;
        let ba = b.size + a.peak;
        ab.cmp(&ba)
    });
    // Peak(l, v) from Algorithm 2 lines 10–16.
    let mut peak = 0usize;
    let mut resided = 0usize;
    for e in &children {
        peak = peak.max(resided + e.peak);
        resided += e.size;
    }
    let peak = peak.max(resided + out_size);

    let mut list: Vec<usize> = Vec::new();
    for c in children {
        list.extend(c.list);
    }
    list.push(node_idx);
    if list.len() > opts.max_restore_layers {
        return None;
    }
    Some(Restore { list, size: out_size, peak })
}

/// The `Overhead` check (Algorithm 1 lines 1–9): copying is allowed when
/// the total copied FLOPs stay within the original model's budget for this
/// part and replaying the chain does not transiently need much more memory
/// than the skip tensor it eliminates.
fn overhead_ok(
    g: &Graph,
    restore: &Restore,
    n_copies: usize,
    model_peak: usize,
    decomp: &DecomposeStats,
    opts: &SkipOptOptions,
) -> bool {
    let chain_flops: u64 = restore.list.iter().map(|&i| node_flops(g, i)).sum();
    let copied_flops = chain_flops * n_copies as u64;

    // COMPUTE_THRESHOLD: the FLOPs of the corresponding original
    // (non-decomposed) convolutions, where known.
    let mut orig_budget: u64 = 0;
    for &i in &restore.list {
        if let Some(&f) = decomp.original_conv_flops.get(&g.nodes[i].output) {
            orig_budget += f;
        }
    }
    let budget = if orig_budget > 0 {
        (orig_budget as f64 * opts.compute_multiplier) as u64
    } else {
        (chain_flops as f64 * opts.fallback_copies) as u64
    };
    if copied_flops > budget {
        return false;
    }
    restore.peak as f64 <= opts.peak_multiplier * model_peak as f64
}

/// Run the skip-connection optimization in place (Algorithm 1).
///
/// `decomp` supplies the per-`lconv` original-convolution FLOPs used by the
/// overhead check; pass a default `DecomposeStats` for hand-built graphs.
pub fn optimize_skip_connections(
    g: &mut Graph,
    opts: &SkipOptOptions,
    decomp: &DecomposeStats,
) -> SkipOptStats {
    let mut stats = SkipOptStats::default();
    let lv = liveness(g);
    let pdg = Pdg::build(g);
    // `m` of Algorithm 1's Overhead check: the model's current peak — a
    // copy chain may not transiently exceed what the unoptimized model
    // already uses (fusion later shrinks the chains strip-wise anyway).
    let model_peak = temco_runtime::plan_memory(g).peak_internal_bytes;

    // Plan: copies to insert before a node, and operand rewrites per node.
    let mut insertions: HashMap<usize, Vec<Vec<Node>>> = HashMap::new();
    let mut rewrites: HashMap<(usize, ValueId), ValueId> = HashMap::new();

    for vi in 0..g.values.len() {
        let v = ValueId(vi as u32);
        let begin = lv.begin[vi];
        if begin == usize::MAX || g.outputs.contains(&v) || g.inputs.contains(&v) {
            continue;
        }
        if lv.lifespan(v) <= opts.distance_threshold {
            continue;
        }
        stats.skips_found += 1;

        let Some(producer) = pdg.producer(v) else { continue };
        let Some(restore) = find_reduced(g, &pdg, producer, opts) else {
            stats.rejected_structure += 1;
            continue;
        };

        let distant_uses: Vec<usize> = pdg
            .users(v)
            .iter()
            .copied()
            .filter(|&u| u.saturating_sub(begin) > opts.distance_threshold)
            .collect();
        if distant_uses.is_empty() {
            continue;
        }
        if !overhead_ok(g, &restore, distant_uses.len(), model_peak, decomp, opts) {
            stats.rejected_overhead += 1;
            continue;
        }

        // Copy the restore chain before each distant use and rewire it.
        for (k, &use_idx) in distant_uses.iter().enumerate() {
            let mut remap: HashMap<ValueId, ValueId> = HashMap::new();
            let mut chain: Vec<Node> = Vec::with_capacity(restore.list.len());
            for &ni in &restore.list {
                let orig = g.nodes[ni].clone();
                let name = format!("{}.copy{}", orig.name, k);
                let fresh = g.fresh_value(format!("{name}.out"));
                let inputs =
                    orig.inputs.iter().map(|iv| remap.get(iv).copied().unwrap_or(*iv)).collect();
                remap.insert(orig.output, fresh);
                chain.push(Node { op: orig.op, inputs, output: fresh, name });
            }
            let replacement = remap[&v];
            rewrites.insert((use_idx, v), replacement);
            stats.copies_inserted += chain.len();
            insertions.entry(use_idx).or_default().push(chain);
        }
        stats.skips_optimized += 1;
    }

    if insertions.is_empty() {
        return stats;
    }

    // Rebuild the schedule with copies spliced in and uses rewired.
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut new_nodes = Vec::with_capacity(old_nodes.len() + stats.copies_inserted);
    for (i, mut node) in old_nodes.into_iter().enumerate() {
        if let Some(chains) = insertions.remove(&i) {
            for chain in chains {
                new_nodes.extend(chain);
            }
        }
        for input in &mut node.inputs {
            if let Some(&r) = rewrites.get(&(i, *input)) {
                *input = r;
            }
        }
        new_nodes.push(node);
    }
    g.nodes = new_nodes;
    g.infer_shapes();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, DecomposeOptions};
    use temco_runtime::{execute, plan_memory, ExecOptions};
    use temco_tensor::Tensor;

    /// A two-level UNet: two nested long skips, so that while the inner
    /// levels run, the outer skip tensor sits idle in memory — the exact
    /// situation Figure 4a shows for UNet.
    fn long_skip_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 32, 32], "x");
        let c1 = g.conv2d(x, Tensor::he_conv_weight(64, 32, 3, 3, 1), None, 1, 1, "down1_conv");
        let skip1 = g.relu(c1, "down1_relu");
        let p1 = g.max_pool(skip1, 2, 2, "pool1");
        let c2 = g.conv2d(p1, Tensor::he_conv_weight(64, 64, 3, 3, 2), None, 1, 1, "down2_conv");
        let skip2 = g.relu(c2, "down2_relu");
        let p2 = g.max_pool(skip2, 2, 2, "pool2");
        let c3 = g.conv2d(p2, Tensor::he_conv_weight(128, 64, 3, 3, 3), None, 1, 1, "mid_conv");
        let r3 = g.relu(c3, "mid_relu");
        let up2 = g.conv_transpose2d(
            r3,
            Tensor::he_conv_weight(128, 64, 2, 2, 4).reshape(&[128, 64, 2, 2]),
            None,
            2,
            "up2",
        );
        let cat2 = g.concat(&[skip2, up2], "upcat2");
        let c4 = g.conv2d(cat2, Tensor::he_conv_weight(64, 128, 3, 3, 5), None, 1, 1, "updc2");
        let r4 = g.relu(c4, "updc2_relu");
        let up1 = g.conv_transpose2d(
            r4,
            Tensor::he_conv_weight(64, 64, 2, 2, 6).reshape(&[64, 64, 2, 2]),
            None,
            2,
            "up1",
        );
        let cat1 = g.concat(&[skip1, up1], "upcat1");
        let c5 = g.conv2d(cat1, Tensor::he_conv_weight(32, 128, 3, 3, 7), None, 1, 1, "out_conv");
        g.mark_output(c5);
        g.infer_shapes();
        g
    }

    #[test]
    fn finds_and_optimizes_the_long_skip() {
        let mut g = long_skip_graph();
        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let stats = optimize_skip_connections(&mut g, &SkipOptOptions::default(), &dstats);
        assert!(stats.skips_found >= 1, "{stats:?}");
        assert!(stats.skips_optimized >= 1, "{stats:?}");
        assert!(stats.copies_inserted >= 2, "{stats:?}"); // lconv + relu
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn optimization_preserves_semantics_exactly() {
        let mut g = long_skip_graph();
        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let decomposed = g.clone();
        optimize_skip_connections(&mut g, &SkipOptOptions::default(), &dstats);

        let x = Tensor::randn(&[1, 32, 32, 32], 77);
        let a = execute(&decomposed, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
        // The copies compute the identical restore chain: bitwise-equal up
        // to floating-point reassociation inside identical kernels.
        assert!(
            a.outputs[0].all_close(&b.outputs[0], 1e-5),
            "diff {}",
            a.outputs[0].max_abs_diff(&b.outputs[0])
        );
    }

    #[test]
    fn optimization_reduces_planned_peak_memory() {
        // The peak must occur while the skip is *idle* for skip-opt alone to
        // lower it (when the peak is at the join itself, only fusion +
        // transforms move it — see the Compiler integration tests). Here a
        // 64-channel skip sits idle across a wide 128-channel middle.
        let mut g = Graph::new();
        let x = g.input(&[1, 64, 16, 16], "x");
        let c1 = g.conv2d(x, Tensor::he_conv_weight(64, 64, 3, 3, 1), None, 1, 1, "conv1");
        let skip = g.relu(c1, "skip_relu");
        let c2 = g.conv2d(skip, Tensor::he_conv_weight(128, 64, 3, 3, 2), None, 1, 1, "wide_conv");
        let r2 = g.relu(c2, "wide_relu");
        let c3 = g.conv2d(r2, Tensor::he_conv_weight(64, 128, 3, 3, 3), None, 1, 1, "narrow_conv");
        let s = g.add(&[skip, c3], "skip_add");
        g.mark_output(s);
        g.infer_shapes();

        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let before = plan_memory(&g).peak_internal_bytes;
        let stats = optimize_skip_connections(&mut g, &SkipOptOptions::default(), &dstats);
        assert!(stats.skips_optimized >= 1, "{stats:?}");
        let after = plan_memory(&g).peak_internal_bytes;
        assert!(after < before, "peak {before} → {after}");
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn large_distance_threshold_disables_the_pass() {
        let mut g = long_skip_graph();
        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let opts = SkipOptOptions { distance_threshold: 10_000, ..Default::default() };
        let stats = optimize_skip_connections(&mut g, &opts, &dstats);
        assert_eq!(stats.skips_found, 0);
        assert_eq!(stats.copies_inserted, 0);
    }

    #[test]
    fn skip_without_lconv_ancestry_is_rejected() {
        // A pool output used distantly: FindReduced cannot traverse a pool.
        let mut g = Graph::new();
        let x = g.input(&[1, 16, 16, 16], "x");
        let p = g.max_pool(x, 2, 2, "pool");
        let mut t = p;
        for i in 0..6 {
            t = g.relu(t, format!("r{i}"));
        }
        let cat = g.concat(&[p, t], "cat");
        g.mark_output(cat);
        g.infer_shapes();
        let stats = optimize_skip_connections(
            &mut g,
            &SkipOptOptions::default(),
            &DecomposeStats::default(),
        );
        assert!(stats.rejected_structure >= 1, "{stats:?}");
        assert_eq!(stats.skips_optimized, 0);
    }

    #[test]
    fn densenet_style_growth_tensors_get_per_use_copies() {
        // Growth pattern: one lconv output consumed by several distant
        // concats — each distant use gets its own single-node restore copy
        // while the near use keeps the original.
        let mut g = Graph::new();
        let x = g.input(&[1, 16, 8, 8], "x");
        let growth = g.conv2d(x, Tensor::he_conv_weight(16, 16, 3, 3, 1), None, 1, 1, "growth");
        let near = g.concat(&[x, growth], "near_cat");
        let mut t = near;
        for i in 0..6 {
            t = g.relu(t, format!("mid{i}"));
        }
        let far1 = g.concat(&[growth, t], "far_cat1");
        let f1 = g.relu(far1, "f1");
        let far2 = g.concat(&[growth, f1], "far_cat2");
        g.mark_output(far2);
        g.infer_shapes();
        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let stats = optimize_skip_connections(&mut g, &SkipOptOptions::default(), &dstats);
        assert!(stats.skips_optimized >= 1, "{stats:?}");
        // Two distant uses → two lconv copies.
        let copies = g.nodes.iter().filter(|n| n.name.contains(".copy")).count();
        assert!(copies >= 2, "copies {copies}");
        // The near use still consumes the original restored tensor.
        let near_node = g.nodes.iter().find(|n| n.name == "near_cat").unwrap();
        assert!(near_node.inputs.iter().any(|v| {
            g.producer(*v).map(|p| g.nodes[p].name == "growth.lconv").unwrap_or(false)
        }));
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn deep_restore_chains_hit_the_layer_cap() {
        // ResNet-like: the skip is relu(add(..)) whose chain exceeds the cap.
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::he_conv_weight(32, 32, 3, 3, 1), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let c2 = g.conv2d(r1, Tensor::he_conv_weight(32, 32, 3, 3, 2), None, 1, 1, "c2");
        let s = g.add(&[c2, x], "add");
        let blk = g.relu(s, "blk_out");
        // Long tail so blk_out is a distant skip for the final add.
        let mut t = blk;
        for i in 0..6 {
            t = g.relu(t, format!("tail{i}"));
        }
        let fin = g.add(&[blk, t], "final_add");
        g.mark_output(fin);
        g.infer_shapes();
        let dstats = decompose(&mut g, &DecomposeOptions::default());
        let opts = SkipOptOptions { max_restore_layers: 2, ..Default::default() };
        let stats = optimize_skip_connections(&mut g, &opts, &dstats);
        // blk_out's chain needs > 2 layers → structurally rejected.
        assert!(stats.rejected_structure >= 1, "{stats:?}");
    }
}
