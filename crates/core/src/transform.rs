//! Layer transformations (paper Section 3.3, Figure 9).
//!
//! Four rewrites that expose `lconv → activation → fconv` chains to the
//! fusion pass across concat/add joins:
//!
//! * [`merge_sibling_lconvs`] — Figure 9 (b→a): a concat/add whose operands
//!   are single-use `lconv`s becomes one block-diagonal (concat) or
//!   horizontally-stacked (add) `lconv` over the concatenation of the
//!   *reduced* tensors. Trades weight bytes for fewer fused kernels.
//! * [`sink_concats`] — move a concat below a single-use elementwise layer
//!   (activation or folded batch-norm), splitting the layer per branch.
//! * [`split_concat_conv1x1`] — Figure 9 (b→c): `concat → 1×1 conv` becomes
//!   per-branch 1×1 convolutions (weight column slices) summed by an `add`,
//!   eliminating the materialized concatenated tensor.
//! * [`fold_affine_into_conv`] — fold an inference batch-norm affine into
//!   the preceding convolution's weights (so it cannot block fusion).

use std::collections::HashMap;

use temco_ir::{ConvRole, ConvSpec, Graph, Node, Op, ValueId};
use temco_tensor::Tensor;

use crate::decompose::is_lconv;

/// Counters for the transformation passes.
#[derive(Clone, Debug, Default)]
pub struct TransformStats {
    /// Sibling `lconv` groups merged.
    pub lconvs_merged: usize,
    /// Concat nodes sunk below an elementwise layer.
    pub concats_sunk: usize,
    /// `concat → 1×1 conv` pairs split into per-branch convs + add.
    pub concats_split: usize,
    /// Affine layers folded into convolutions.
    pub affines_folded: usize,
    /// Adjacent pointwise convolutions composed (`lconv∘fconv` pairs).
    pub pointwise_composed: usize,
}

/// True when `v` is used exactly once and is not a graph output.
fn single_use_internal(g: &Graph, v: ValueId) -> bool {
    g.users(v).len() == 1 && !g.outputs.contains(&v)
}

// ---------------------------------------------------------------------
// fold_affine_into_conv
// ---------------------------------------------------------------------

/// Fold `affine(conv(x))` into the convolution: scale each output-channel
/// filter and rewrite the bias. Runs to fixpoint; returns the fold count.
pub fn fold_affine_into_conv(g: &mut Graph) -> usize {
    let mut total = 0;
    loop {
        let folded = fold_affine_once(g);
        total += folded;
        if folded == 0 {
            return total;
        }
    }
}

fn fold_affine_once(g: &mut Graph) -> usize {
    // Find (conv_idx, affine_idx) pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut used: Vec<bool> = vec![false; g.nodes.len()];
    for (ci, node) in g.nodes.iter().enumerate() {
        let Op::Conv2d(_) = node.op else { continue };
        if !single_use_internal(g, node.output) {
            continue;
        }
        let ai = g.users(node.output)[0];
        if !matches!(g.nodes[ai].op, Op::Affine { .. }) || used[ci] || used[ai] {
            continue;
        }
        used[ci] = true;
        used[ai] = true;
        pairs.push((ci, ai));
    }
    if pairs.is_empty() {
        return 0;
    }
    let mut remove: Vec<bool> = vec![false; g.nodes.len()];
    for &(ci, ai) in &pairs {
        let Op::Affine { scale, bias } = g.nodes[ai].op else { unreachable!() };
        let scale = g.weight(scale).clone();
        let bias = g.weight(bias).clone();
        let Op::Conv2d(spec) = g.nodes[ci].op.clone() else { unreachable!() };
        let w = g.weight(spec.weight).clone();
        let c_out = w.dim(0);
        let per_filter: usize = w.numel() / c_out;
        let mut new_w = w.clone();
        for o in 0..c_out {
            let s = scale.data()[o];
            for x in &mut new_w.data_mut()[o * per_filter..(o + 1) * per_filter] {
                *x *= s;
            }
        }
        let mut new_b = vec![0.0f32; c_out];
        if let Some(ob) = spec.bias {
            let ob = g.weight(ob).clone();
            for ((nb, &b0), &s0) in new_b.iter_mut().zip(ob.data()).zip(scale.data()) {
                *nb = b0 * s0;
            }
        }
        for (nb, &b0) in new_b.iter_mut().zip(bias.data()) {
            *nb += b0;
        }
        let new_spec = ConvSpec {
            weight: g.add_weight(new_w),
            bias: Some(g.add_weight(Tensor::from_vec(&[c_out], new_b))),
            ..spec
        };
        // The conv now produces the affine's output directly.
        let affine_out = g.nodes[ai].output;
        g.nodes[ci].op = Op::Conv2d(new_spec);
        g.nodes[ci].output = affine_out;
        remove[ai] = true;
    }
    retain_nodes(g, &remove);
    pairs.len()
}

// ---------------------------------------------------------------------
// sink_concats
// ---------------------------------------------------------------------

/// Sink concat nodes below single-use elementwise layers. Runs to fixpoint
/// (a concat sinks through `bn` then `relu` in two rounds).
pub fn sink_concats(g: &mut Graph) -> usize {
    let mut total = 0;
    loop {
        let sunk = sink_once(g);
        total += sunk;
        if sunk == 0 {
            return total;
        }
    }
}

fn sink_once(g: &mut Graph) -> usize {
    let mut count = 0;
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut remove: Vec<bool> = vec![false; old_nodes.len()];
    let mut rewritten: Vec<Option<Vec<Node>>> = vec![None; old_nodes.len()];

    // Restore nodes temporarily to query users/shapes.
    g.nodes = old_nodes;
    for ci in 0..g.nodes.len() {
        if remove[ci] {
            continue;
        }
        let Op::Concat = g.nodes[ci].op else { continue };
        if !single_use_internal(g, g.nodes[ci].output) {
            continue;
        }
        let ui = g.users(g.nodes[ci].output)[0];
        if remove[ui] {
            continue;
        }
        let elementwise = matches!(g.nodes[ui].op, Op::Activation(_) | Op::Affine { .. });
        if !elementwise {
            continue;
        }
        let branches = g.nodes[ci].inputs.clone();
        let user_out = g.nodes[ui].output;
        let user_name = g.nodes[ui].name.clone();
        let mut new_nodes: Vec<Node> = Vec::with_capacity(branches.len() + 1);
        let mut branch_outs = Vec::with_capacity(branches.len());
        let mut c_off = 0usize;
        for (k, &b) in branches.iter().enumerate() {
            let c_k = g.shape(b)[1];
            let op = match &g.nodes[ui].op {
                Op::Activation(a) => Op::Activation(*a),
                Op::Affine { scale, bias } => {
                    let s = g.weight(*scale).data()[c_off..c_off + c_k].to_vec();
                    let bb = g.weight(*bias).data()[c_off..c_off + c_k].to_vec();
                    Op::Affine {
                        scale: g.add_weight(Tensor::from_vec(&[c_k], s)),
                        bias: g.add_weight(Tensor::from_vec(&[c_k], bb)),
                    }
                }
                _ => unreachable!(),
            };
            let name = format!("{user_name}.b{k}");
            let out = g.fresh_value(format!("{name}.out"));
            new_nodes.push(Node { op, inputs: vec![b], output: out, name });
            branch_outs.push(out);
            c_off += c_k;
        }
        new_nodes.push(Node {
            op: Op::Concat,
            inputs: branch_outs,
            output: user_out,
            name: format!("{}.sunk", g.nodes[ci].name),
        });
        rewritten[ci] = Some(new_nodes);
        remove[ui] = true;
        count += 1;
    }
    if count == 0 {
        return 0;
    }
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut nodes = Vec::with_capacity(old_nodes.len());
    for (i, node) in old_nodes.into_iter().enumerate() {
        if let Some(replacement) = rewritten[i].take() {
            nodes.extend(replacement);
        } else if !remove[i] {
            nodes.push(node);
        }
    }
    g.nodes = nodes;
    g.infer_shapes();
    count
}

// ---------------------------------------------------------------------
// split_concat_conv1x1
// ---------------------------------------------------------------------

/// Split `concat → 1×1 conv` into per-branch 1×1 convolutions plus an add
/// (Figure 9c). The concatenated tensor is never materialized.
pub fn split_concat_conv1x1(g: &mut Graph) -> usize {
    let mut count = 0;
    let mut remove: Vec<bool> = vec![false; g.nodes.len()];
    let mut rewritten: Vec<Option<Vec<Node>>> = vec![None; g.nodes.len()];

    #[allow(clippy::needless_range_loop)] // parallel index into remove/rewritten
    for ci in 0..g.nodes.len() {
        let Op::Concat = g.nodes[ci].op else { continue };
        if !single_use_internal(g, g.nodes[ci].output) {
            continue;
        }
        let ui = g.users(g.nodes[ci].output)[0];
        let Op::Conv2d(spec) = g.nodes[ui].op.clone() else { continue };
        let w = g.weight(spec.weight).clone();
        let is_1x1 = w.dim(2) == 1 && w.dim(3) == 1;
        if !is_1x1 || spec.stride != (1, 1) || spec.padding != (0, 0) || spec.groups != 1 {
            continue;
        }
        let branches = g.nodes[ci].inputs.clone();
        let conv_out = g.nodes[ui].output;
        let conv_name = g.nodes[ui].name.clone();
        let c_out = w.dim(0);
        // Profitability: the split replaces one `c_total`-channel tensor by
        // `N` simultaneous `c_out`-channel branch outputs. Splitting a
        // channel-*reducing* conv (the fconv case of Figure 9c) wins;
        // splitting a restoring lconv would multiply full-width tensors.
        let c_total = w.dim(1);
        if branches.len() * c_out >= c_total {
            continue;
        }

        let mut new_nodes = Vec::with_capacity(branches.len() + 1);
        let mut branch_outs = Vec::with_capacity(branches.len());
        let mut c_off = 0usize;
        for (k, &b) in branches.iter().enumerate() {
            let c_k = g.shape(b)[1];
            // Column slice W[:, c_off..c_off+c_k].
            let mut wk = Tensor::zeros(&[c_out, c_k, 1, 1]);
            for o in 0..c_out {
                for i in 0..c_k {
                    *wk.at4_mut(o, i, 0, 0) = w.at4(o, c_off + i, 0, 0);
                }
            }
            let spec_k = ConvSpec {
                weight: g.add_weight(wk),
                bias: if k == 0 { spec.bias } else { None },
                stride: (1, 1),
                padding: (0, 0),
                groups: 1,
                role: spec.role,
            };
            let name = format!("{conv_name}.b{k}");
            let out = g.fresh_value(format!("{name}.out"));
            new_nodes.push(Node { op: Op::Conv2d(spec_k), inputs: vec![b], output: out, name });
            branch_outs.push(out);
            c_off += c_k;
        }
        new_nodes.push(Node {
            op: Op::Add,
            inputs: branch_outs,
            output: conv_out,
            name: format!("{conv_name}.sum"),
        });
        rewritten[ci] = Some(new_nodes);
        remove[ui] = true;
        count += 1;
    }
    if count == 0 {
        return 0;
    }
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut nodes = Vec::with_capacity(old_nodes.len());
    for (i, node) in old_nodes.into_iter().enumerate() {
        if let Some(replacement) = rewritten[i].take() {
            nodes.extend(replacement);
        } else if !remove[i] {
            nodes.push(node);
        }
    }
    g.nodes = nodes;
    g.infer_shapes();
    count
}

// ---------------------------------------------------------------------
// merge_sibling_lconvs
// ---------------------------------------------------------------------

/// Merge runs of single-use sibling `lconv`s feeding one concat/add into a
/// single `lconv` over the concatenation of their *reduced* inputs
/// (Figure 9a). For a concat join the merged weight is block-diagonal; for
/// an add join the blocks sit side by side.
pub fn merge_sibling_lconvs(g: &mut Graph) -> usize {
    let mut count = 0;
    let mut remove: Vec<bool> = vec![false; g.nodes.len()];
    let mut rewritten: Vec<Option<Vec<Node>>> = vec![None; g.nodes.len()];

    for ji in 0..g.nodes.len() {
        let is_concat = matches!(g.nodes[ji].op, Op::Concat);
        let is_add = matches!(g.nodes[ji].op, Op::Add);
        if !is_concat && !is_add {
            continue;
        }
        let inputs = g.nodes[ji].inputs.clone();
        // Identify which operands are single-use lconv outputs.
        let lconv_of: Vec<Option<usize>> = inputs
            .iter()
            .map(|&v| {
                if !single_use_internal(g, v) {
                    return None;
                }
                let p = g.producer(v)?;
                (is_lconv(g, p) && !remove[p]).then_some(p)
            })
            .collect();

        // For concat, channel order must be preserved: merge maximal runs of
        // consecutive lconv operands. For add, order is irrelevant: one run.
        let runs: Vec<Vec<usize>> = if is_add {
            let all: Vec<usize> = (0..inputs.len()).filter(|&k| lconv_of[k].is_some()).collect();
            if all.len() >= 2 {
                vec![all]
            } else {
                vec![]
            }
        } else {
            let mut runs = Vec::new();
            let mut cur: Vec<usize> = Vec::new();
            for (k, l) in lconv_of.iter().enumerate() {
                if l.is_some() {
                    cur.push(k);
                } else if cur.len() >= 2 {
                    runs.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
            if cur.len() >= 2 {
                runs.push(cur);
            }
            runs
        };
        if runs.is_empty() {
            continue;
        }

        let join_name = g.nodes[ji].name.clone();
        let join_out = g.nodes[ji].output;
        let mut new_nodes: Vec<Node> = Vec::new();
        // Map: operand position → replacement value (for merged runs, the
        // first position of the run maps to the merged lconv output, the
        // rest are dropped).
        let mut replaced: HashMap<usize, Option<ValueId>> = HashMap::new();

        for (ri, run) in runs.iter().enumerate() {
            let members: Vec<usize> = run.iter().map(|&k| lconv_of[k].unwrap()).collect();
            let (merged_w, merged_b, reduced_inputs) = if is_add {
                merge_weights_add(g, &members)
            } else {
                merge_weights_concat(g, &members)
            };
            let rcat_name = format!("{join_name}.reduced_cat{ri}");
            let rcat_out = g.fresh_value(format!("{rcat_name}.out"));
            new_nodes.push(Node {
                op: Op::Concat,
                inputs: reduced_inputs,
                output: rcat_out,
                name: rcat_name,
            });
            let spec = ConvSpec {
                weight: g.add_weight(merged_w),
                bias: merged_b.map(|b| g.add_weight(b)),
                stride: (1, 1),
                padding: (0, 0),
                groups: 1,
                role: ConvRole::LConv,
            };
            let mname = format!("{join_name}.merged_lconv{ri}");
            let mout = g.fresh_value(format!("{mname}.out"));
            new_nodes.push(Node {
                op: Op::Conv2d(spec),
                inputs: vec![rcat_out],
                output: mout,
                name: mname,
            });
            for m in &members {
                remove[*m] = true;
            }
            replaced.insert(run[0], Some(mout));
            for &k in &run[1..] {
                replaced.insert(k, None);
            }
            count += 1;
        }

        // Rebuild the join's operand list.
        let mut new_inputs: Vec<ValueId> = Vec::new();
        for (k, &v) in inputs.iter().enumerate() {
            match replaced.get(&k) {
                Some(Some(m)) => new_inputs.push(*m),
                Some(None) => {}
                None => new_inputs.push(v),
            }
        }
        if new_inputs.len() == 1 {
            // The whole join collapsed into one merged lconv: rename its
            // output to the join's output.
            let last = new_nodes.last_mut().expect("merged nodes present");
            last.output = join_out;
        } else {
            let op = if is_add { Op::Add } else { Op::Concat };
            new_nodes.push(Node {
                op,
                inputs: new_inputs,
                output: join_out,
                name: format!("{join_name}.merged"),
            });
        }
        rewritten[ji] = Some(new_nodes);
        remove[ji] = true;
    }
    if count == 0 {
        return 0;
    }
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut nodes = Vec::with_capacity(old_nodes.len());
    for (i, node) in old_nodes.into_iter().enumerate() {
        if remove[i] && rewritten[i].is_none() {
            continue;
        }
        if let Some(replacement) = rewritten[i].take() {
            nodes.extend(replacement);
        } else {
            nodes.push(node);
        }
    }
    g.nodes = nodes;
    g.infer_shapes();
    count
}

/// Block-diagonal merge for a concat join.
fn merge_weights_concat(g: &Graph, members: &[usize]) -> (Tensor, Option<Tensor>, Vec<ValueId>) {
    let specs: Vec<(Tensor, Option<Tensor>, ValueId)> = collect_members(g, members);
    let c_total: usize = specs.iter().map(|(w, _, _)| w.dim(0)).sum();
    let r_total: usize = specs.iter().map(|(w, _, _)| w.dim(1)).sum();
    let mut merged = Tensor::zeros(&[c_total, r_total, 1, 1]);
    let mut bias = vec![0.0f32; c_total];
    let mut has_bias = false;
    let (mut co, mut ro) = (0usize, 0usize);
    for (w, b, _) in &specs {
        for o in 0..w.dim(0) {
            for i in 0..w.dim(1) {
                *merged.at4_mut(co + o, ro + i, 0, 0) = w.at4(o, i, 0, 0);
            }
        }
        if let Some(b) = b {
            has_bias = true;
            bias[co..co + w.dim(0)].copy_from_slice(b.data());
        }
        co += w.dim(0);
        ro += w.dim(1);
    }
    let bias = has_bias.then(|| Tensor::from_vec(&[c_total], bias));
    (merged, bias, specs.into_iter().map(|(_, _, v)| v).collect())
}

/// Side-by-side merge for an add join (all members share `c_out`).
fn merge_weights_add(g: &Graph, members: &[usize]) -> (Tensor, Option<Tensor>, Vec<ValueId>) {
    let specs: Vec<(Tensor, Option<Tensor>, ValueId)> = collect_members(g, members);
    let c_out = specs[0].0.dim(0);
    let r_total: usize = specs.iter().map(|(w, _, _)| w.dim(1)).sum();
    let mut merged = Tensor::zeros(&[c_out, r_total, 1, 1]);
    let mut bias = vec![0.0f32; c_out];
    let mut has_bias = false;
    let mut ro = 0usize;
    for (w, b, _) in &specs {
        assert_eq!(w.dim(0), c_out, "add-merge requires equal output channels");
        for o in 0..c_out {
            for i in 0..w.dim(1) {
                *merged.at4_mut(o, ro + i, 0, 0) = w.at4(o, i, 0, 0);
            }
        }
        if let Some(b) = b {
            has_bias = true;
            for (bo, &bv) in bias.iter_mut().zip(b.data()) {
                *bo += bv;
            }
        }
        ro += w.dim(1);
    }
    let bias = has_bias.then(|| Tensor::from_vec(&[c_out], bias));
    (merged, bias, specs.into_iter().map(|(_, _, v)| v).collect())
}

fn collect_members(g: &Graph, members: &[usize]) -> Vec<(Tensor, Option<Tensor>, ValueId)> {
    members
        .iter()
        .map(|&m| {
            let Op::Conv2d(spec) = &g.nodes[m].op else { unreachable!("member is lconv") };
            (
                g.weight(spec.weight).clone(),
                spec.bias.map(|b| g.weight(b).clone()),
                g.nodes[m].inputs[0],
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// compose_pointwise_convs
// ---------------------------------------------------------------------

/// Compose adjacent 1×1 convolutions `b(a(x))` into one when the
/// intermediate is the *widest* of the three tensors — i.e. an
/// `lconv → fconv` pair with no activation in between, which the
/// concat-splitting rewrite produces at UNet's up-conv joins. The composite
/// weight is `W_b · W_a` and the full-width intermediate disappears.
///
/// The guard (`c_mid ≥ max(c_in, c_out)`) rejects the opposite
/// `fconv → lconv` direction, whose composition would undo the
/// decomposition.
pub fn compose_pointwise_convs(g: &mut Graph) -> usize {
    let mut total = 0;
    loop {
        let n = compose_once(g);
        total += n;
        if n == 0 {
            return total;
        }
    }
}

fn compose_once(g: &mut Graph) -> usize {
    let mut count = 0;
    let mut remove = vec![false; g.nodes.len()];
    for ai in 0..g.nodes.len() {
        if remove[ai] {
            continue;
        }
        let Op::Conv2d(a) = g.nodes[ai].op else { continue };
        if !pointwise(g, &a) || !single_use_internal(g, g.nodes[ai].output) {
            continue;
        }
        let bi = g.users(g.nodes[ai].output)[0];
        if remove[bi] {
            continue;
        }
        let Op::Conv2d(b) = g.nodes[bi].op else { continue };
        if !pointwise(g, &b) {
            continue;
        }
        let wa = g.weight(a.weight).clone(); // [c_mid, c_in, 1, 1]
        let wb = g.weight(b.weight).clone(); // [c_out, c_mid, 1, 1]
        let (c_mid, c_in) = (wa.dim(0), wa.dim(1));
        let c_out = wb.dim(0);
        if c_mid < c_in.max(c_out) {
            continue;
        }
        // W = Wb · Wa, bias = b_b + Wb · b_a.
        let mut w = Tensor::zeros(&[c_out, c_in, 1, 1]);
        for o in 0..c_out {
            for i in 0..c_in {
                let mut s = 0.0f32;
                for m in 0..c_mid {
                    s += wb.at4(o, m, 0, 0) * wa.at4(m, i, 0, 0);
                }
                *w.at4_mut(o, i, 0, 0) = s;
            }
        }
        let mut bias = vec![0.0f32; c_out];
        let mut has_bias = false;
        if let Some(bb) = b.bias {
            has_bias = true;
            bias.copy_from_slice(g.weight(bb).data());
        }
        if let Some(ba) = a.bias {
            has_bias = true;
            let ba = g.weight(ba).clone();
            for (o, bo) in bias.iter_mut().enumerate() {
                for m in 0..c_mid {
                    *bo += wb.at4(o, m, 0, 0) * ba.data()[m];
                }
            }
        }
        let spec = ConvSpec {
            weight: g.add_weight(w),
            bias: has_bias.then(|| g.add_weight(Tensor::from_vec(&[c_out], bias))),
            stride: (1, 1),
            padding: (0, 0),
            groups: 1,
            role: ConvRole::Core,
        };
        let b_out = g.nodes[bi].output;
        let b_name = g.nodes[bi].name.clone();
        g.nodes[ai].op = Op::Conv2d(spec);
        g.nodes[ai].output = b_out;
        g.nodes[ai].name = format!("{}∘{}", b_name, g.nodes[ai].name.clone());
        remove[bi] = true;
        remove[ai] = false;
        count += 1;
    }
    if count > 0 {
        retain_nodes(g, &remove);
        g.infer_shapes();
    }
    count
}

fn pointwise(g: &Graph, spec: &ConvSpec) -> bool {
    let w = g.weight(spec.weight);
    w.dim(2) == 1
        && w.dim(3) == 1
        && spec.stride == (1, 1)
        && spec.padding == (0, 0)
        && spec.groups == 1
}

/// Drop the nodes flagged in `remove`, keeping everything else in order.
fn retain_nodes(g: &mut Graph, remove: &[bool]) {
    let old = std::mem::take(&mut g.nodes);
    g.nodes = old.into_iter().enumerate().filter(|(i, _)| !remove[*i]).map(|(_, n)| n).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::ActKind;
    use temco_runtime::{execute, plan_memory, ExecOptions};

    fn run(g: &Graph, seed: u64) -> Tensor {
        let shape = g.shape(g.inputs[0]).to_vec();
        let x = Tensor::randn(&shape, seed);
        execute(g, &[x], ExecOptions::default()).expect("execution failed").outputs[0].clone()
    }

    #[test]
    fn affine_fold_preserves_semantics() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 6, 6], "x");
        let c =
            g.conv2d(x, Tensor::randn(&[8, 4, 3, 3], 1), Some(Tensor::randn(&[8], 2)), 1, 1, "c");
        let a = g.affine(c, Tensor::rand_uniform(&[8], 3, 0.5, 1.5), Tensor::randn(&[8], 4), "bn");
        let r = g.relu(a, "r");
        g.mark_output(r);
        g.infer_shapes();
        let before = run(&g, 9);
        let n = fold_affine_into_conv(&mut g);
        assert_eq!(n, 1);
        assert!(!g.nodes.iter().any(|n| matches!(n.op, Op::Affine { .. })));
        g.infer_shapes();
        let after = run(&g, 9);
        assert!(before.all_close(&after, 1e-4), "diff {}", before.max_abs_diff(&after));
    }

    #[test]
    fn sink_moves_concat_below_bn_and_relu() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "x");
        let a = g.relu(x, "a");
        let b = g.activation(x, ActKind::Silu, "b");
        let cat = g.concat(&[a, b], "cat");
        let bn =
            g.affine(cat, Tensor::rand_uniform(&[8], 1, 0.5, 1.5), Tensor::randn(&[8], 2), "bn");
        let r = g.relu(bn, "r");
        let c = g.conv2d(r, Tensor::randn(&[2, 8, 3, 3], 3), None, 1, 1, "head");
        g.mark_output(c);
        g.infer_shapes();
        let before = run(&g, 5);
        let sunk = sink_concats(&mut g);
        assert_eq!(sunk, 2, "bn then relu");
        assert!(temco_ir::verify(&g).is_empty());
        let after = run(&g, 5);
        assert!(before.all_close(&after, 1e-4));
        // The concat now feeds the head conv directly.
        let cat_node = g.nodes.iter().find(|n| matches!(n.op, Op::Concat)).unwrap();
        let user = g.users(cat_node.output)[0];
        assert!(matches!(g.nodes[user].op, Op::Conv2d(_)));
    }

    #[test]
    fn split_concat_conv_preserves_semantics_and_drops_peak() {
        let mut g = Graph::new();
        let x = g.input(&[1, 16, 8, 8], "x");
        let a = g.relu(x, "a");
        let b = g.activation(x, ActKind::Silu, "b");
        let cat = g.concat(&[a, b], "cat");
        let c = g.conv2d(
            cat,
            Tensor::randn(&[4, 32, 1, 1], 1),
            Some(Tensor::randn(&[4], 2)),
            1,
            0,
            "fconv",
        );
        g.mark_output(c);
        g.infer_shapes();
        let before = run(&g, 5);
        let peak_before = plan_memory(&g).peak_internal_bytes;
        let n = split_concat_conv1x1(&mut g);
        assert_eq!(n, 1);
        assert!(temco_ir::verify(&g).is_empty());
        let after = run(&g, 5);
        assert!(before.all_close(&after, 1e-4), "diff {}", before.max_abs_diff(&after));
        let peak_after = plan_memory(&g).peak_internal_bytes;
        assert!(peak_after < peak_before, "{peak_before} → {peak_after}");
    }

    #[test]
    fn merge_lconvs_over_concat_is_block_diagonal() {
        let mut g = Graph::new();
        let x1 = g.input(&[1, 3, 5, 5], "x1");
        let x2 = g.input(&[1, 2, 5, 5], "x2");
        let l1 =
            g.conv2d(x1, Tensor::randn(&[8, 3, 1, 1], 1), Some(Tensor::randn(&[8], 2)), 1, 0, "l1");
        let l2 = g.conv2d(x2, Tensor::randn(&[6, 2, 1, 1], 3), None, 1, 0, "l2");
        let cat = g.concat(&[l1, l2], "cat");
        let r = g.relu(cat, "r");
        g.mark_output(r);
        g.infer_shapes();
        let before = run_two(&g);
        let n = merge_sibling_lconvs(&mut g);
        assert_eq!(n, 1);
        assert!(temco_ir::verify(&g).is_empty());
        // Exactly one conv remains: the merged lconv over concat(x1, x2).
        let convs: Vec<_> = g.nodes.iter().filter(|n| matches!(n.op, Op::Conv2d(_))).collect();
        assert_eq!(convs.len(), 1);
        let Op::Conv2d(spec) = &convs[0].op else { unreachable!() };
        assert_eq!(g.weight(spec.weight).shape(), &[14, 5, 1, 1]);
        let after = run_two(&g);
        assert!(before.all_close(&after, 1e-4), "diff {}", before.max_abs_diff(&after));
    }

    #[test]
    fn merge_lconvs_over_add_stacks_columns() {
        let mut g = Graph::new();
        let x1 = g.input(&[1, 3, 5, 5], "x1");
        let x2 = g.input(&[1, 2, 5, 5], "x2");
        let l1 =
            g.conv2d(x1, Tensor::randn(&[8, 3, 1, 1], 1), Some(Tensor::randn(&[8], 2)), 1, 0, "l1");
        let l2 =
            g.conv2d(x2, Tensor::randn(&[8, 2, 1, 1], 3), Some(Tensor::randn(&[8], 4)), 1, 0, "l2");
        let s = g.add(&[l1, l2], "sum");
        let r = g.relu(s, "r");
        g.mark_output(r);
        g.infer_shapes();
        let before = run_two(&g);
        let n = merge_sibling_lconvs(&mut g);
        assert_eq!(n, 1);
        assert!(temco_ir::verify(&g).is_empty());
        let after = run_two(&g);
        assert!(before.all_close(&after, 1e-4), "diff {}", before.max_abs_diff(&after));
    }

    #[test]
    fn partial_merge_keeps_non_lconv_operands() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 5, 5], "x");
        let plain = g.relu(x, "plain");
        let l1 = g.conv2d(x, Tensor::randn(&[8, 4, 1, 1], 1), None, 1, 0, "l1");
        let l2 = g.conv2d(x, Tensor::randn(&[6, 4, 1, 1], 2), None, 1, 0, "l2");
        let cat = g.concat(&[plain, l1, l2], "cat");
        let r = g.relu(cat, "r");
        g.mark_output(r);
        g.infer_shapes();
        let shape = g.shape(g.inputs[0]).to_vec();
        let x_t = Tensor::randn(&shape, 7);
        let before = execute(&g, std::slice::from_ref(&x_t), ExecOptions::default())
            .expect("execution failed")
            .outputs[0]
            .clone();
        let n = merge_sibling_lconvs(&mut g);
        assert_eq!(n, 1);
        assert!(temco_ir::verify(&g).is_empty());
        let after = execute(&g, &[x_t], ExecOptions::default()).expect("execution failed").outputs
            [0]
        .clone();
        assert!(before.all_close(&after, 1e-4));
        // The surviving concat has 2 operands: plain + merged lconv.
        let cat_node = g
            .nodes
            .iter()
            .find(|n| matches!(n.op, Op::Concat) && n.name.contains("merged"))
            .unwrap();
        assert_eq!(cat_node.inputs.len(), 2);
    }

    #[test]
    fn compose_collapses_lconv_fconv_pairs() {
        // lconv (4→32) directly followed by fconv (32→6): the composite is
        // a tiny 4→6 conv and the 32-channel intermediate disappears.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 6, 6], "x");
        let l =
            g.conv2d(x, Tensor::randn(&[32, 4, 1, 1], 1), Some(Tensor::randn(&[32], 2)), 1, 0, "l");
        let f =
            g.conv2d(l, Tensor::randn(&[6, 32, 1, 1], 3), Some(Tensor::randn(&[6], 4)), 1, 0, "f");
        let r = g.relu(f, "r");
        g.mark_output(r);
        g.infer_shapes();
        let before = run(&g, 13);
        let peak_before = plan_memory(&g).peak_internal_bytes;
        let n = compose_pointwise_convs(&mut g);
        assert_eq!(n, 1);
        assert!(temco_ir::verify(&g).is_empty());
        let after = run(&g, 13);
        assert!(before.all_close(&after, 1e-3), "diff {}", before.max_abs_diff(&after));
        assert!(plan_memory(&g).peak_internal_bytes < peak_before);
        // Exactly one conv remains.
        assert_eq!(g.nodes.iter().filter(|n| matches!(n.op, Op::Conv2d(_))).count(), 1);
    }

    #[test]
    fn compose_refuses_fconv_lconv_direction() {
        // fconv (32→4) then lconv (4→32): composing would materialize a
        // 32×32 dense weight and undo the decomposition.
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 5, 5], "x");
        let f = g.conv2d(x, Tensor::randn(&[4, 32, 1, 1], 1), None, 1, 0, "f");
        let l = g.conv2d(f, Tensor::randn(&[32, 4, 1, 1], 2), None, 1, 0, "l");
        g.mark_output(l);
        g.infer_shapes();
        assert_eq!(compose_pointwise_convs(&mut g), 0);
    }

    #[test]
    fn compose_chains_run_to_fixpoint() {
        // wide → wider → narrow: two rounds collapse all three into one.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "x");
        let a = g.conv2d(x, Tensor::randn(&[16, 4, 1, 1], 1), None, 1, 0, "a");
        let b = g.conv2d(a, Tensor::randn(&[24, 16, 1, 1], 2), None, 1, 0, "b");
        let c = g.conv2d(b, Tensor::randn(&[3, 24, 1, 1], 3), None, 1, 0, "c");
        g.mark_output(c);
        g.infer_shapes();
        let before = run(&g, 21);
        let n = compose_pointwise_convs(&mut g);
        assert!(n >= 2, "composed {n}");
        let after = run(&g, 21);
        assert!(before.all_close(&after, 1e-3));
        assert_eq!(g.nodes.iter().filter(|n| matches!(n.op, Op::Conv2d(_))).count(), 1);
    }

    fn run_two(g: &Graph) -> Tensor {
        let s1 = g.shape(g.inputs[0]).to_vec();
        let s2 = g.shape(g.inputs[1]).to_vec();
        let a = Tensor::randn(&s1, 11);
        let b = Tensor::randn(&s2, 12);
        execute(g, &[a, b], ExecOptions::default()).expect("execution failed").outputs[0].clone()
    }
}
