//! The decomposition pass: replace convolutions with decomposed sequences.
//!
//! This reproduces what existing tensor-decomposition work does to a model
//! (Section 2.1 / Figure 2): each eligible convolution becomes
//! `fconv (1×1, reducing) → core convolution(s) → lconv (1×1, restoring)`,
//! with the original bias attached to the `lconv`. The pass records, per
//! `lconv`, the FLOPs of the *original* (non-decomposed) convolution — the
//! quantity the paper uses as `COMPUTE_THRESHOLD` in the skip-connection
//! optimization's overhead check.

use std::collections::HashMap;

use temco_decomp::{cp_decompose, cp_rank, tt_decompose, tt_ranks, tucker2, tucker_ranks, Method};
use temco_ir::{ConvRole, ConvSpec, Graph, Node, Op, ValueId};

/// Decomposition pass options.
#[derive(Clone, Debug)]
pub struct DecomposeOptions {
    /// Decomposition family.
    pub method: Method,
    /// The paper's decomposition ratio (0.1 in the evaluation).
    pub ratio: f64,
    /// Skip convolutions whose input or output channels are below this.
    /// The paper decomposes every convolution (that is what lets fusion
    /// reach the stem layers whose activations dominate VGG's peak), so the
    /// default is 0; deployments worried about stem accuracy can raise it.
    pub min_channels: usize,
    /// Skip kernels whose decomposition would not shrink parameters (tiny
    /// heads). Disable to force decomposition regardless (used by the
    /// full-rank losslessness tests).
    pub only_if_smaller: bool,
    /// HOOI refinement rounds for Tucker.
    pub hooi_iters: usize,
    /// ALS rounds for CP.
    pub cp_iters: usize,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            method: Method::Tucker,
            ratio: 0.1,
            min_channels: 0,
            only_if_smaller: true,
            hooi_iters: 1,
            cp_iters: 20,
        }
    }
}

/// Result of the decomposition pass.
#[derive(Clone, Debug, Default)]
pub struct DecomposeStats {
    /// Convolutions replaced by decomposed sequences.
    pub convs_decomposed: usize,
    /// Convolutions left intact (stem convs, grouped convs, heads).
    pub convs_skipped: usize,
    /// Weight bytes before the pass.
    pub weight_bytes_before: usize,
    /// Weight bytes referenced after the pass (decomposed factors replace
    /// the originals; originals stay in the store but unreferenced).
    pub weight_bytes_after: usize,
    /// Per-`lconv`-output FLOPs of the original convolution it restores —
    /// consumed by the skip-connection optimization's `Overhead` check.
    pub original_conv_flops: HashMap<ValueId, u64>,
}

/// Live weight bytes: bytes of weights actually referenced by nodes.
fn referenced_weight_bytes(g: &Graph) -> usize {
    use std::collections::HashSet;
    let mut seen: HashSet<u32> = HashSet::new();
    let mut total = 0usize;
    for node in &g.nodes {
        for w in node.op.weight_ids() {
            if seen.insert(w.0) {
                total += g.weight(w).bytes();
            }
        }
    }
    total
}

/// Run the decomposition pass in place. Shapes must be inferred beforehand;
/// they are re-inferred afterwards.
pub fn decompose(g: &mut Graph, opts: &DecomposeOptions) -> DecomposeStats {
    let mut stats =
        DecomposeStats { weight_bytes_before: referenced_weight_bytes(g), ..Default::default() };
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut new_nodes: Vec<Node> = Vec::with_capacity(old_nodes.len() * 2);

    for node in old_nodes {
        let eligible = match &node.op {
            Op::Conv2d(spec) if spec.role == ConvRole::Standard && spec.groups == 1 => {
                let w = g.weight(spec.weight);
                w.dim(0) >= opts.min_channels
                    && w.dim(1) >= opts.min_channels
                    && (!opts.only_if_smaller
                        || decomposition_shrinks(opts, w.dim(0), w.dim(1), w.dim(2), w.dim(3)))
            }
            Op::ConvTranspose2d { weight, .. } => {
                // weight is [c_in, c_out, kh, kw]
                let w = g.weight(*weight);
                let tucker = DecomposeOptions { method: Method::Tucker, ..opts.clone() };
                w.dim(0) >= opts.min_channels
                    && w.dim(1) >= opts.min_channels
                    && (!opts.only_if_smaller
                        || decomposition_shrinks(&tucker, w.dim(1), w.dim(0), w.dim(2), w.dim(3)))
            }
            _ => false,
        };
        if !eligible {
            if matches!(node.op, Op::Conv2d(_)) {
                stats.convs_skipped += 1;
            }
            new_nodes.push(node);
            continue;
        }
        if let Op::ConvTranspose2d { weight, bias, stride } = &node.op {
            decompose_upconv(g, &mut new_nodes, &mut stats, &node, *weight, *bias, *stride, opts);
            continue;
        }
        let Op::Conv2d(spec) = node.op else { unreachable!() };
        let w = g.weight(spec.weight).clone();
        let (c_out, c_in) = (w.dim(0), w.dim(1));
        // FLOPs of the original conv (2 · out_numel · c_in · kh · kw).
        let out_numel: u64 = g.values[node.output.0 as usize]
            .shape
            .as_ref()
            .expect("run shape inference before decompose")
            .iter()
            .product::<usize>() as u64;
        let orig_flops = 2 * out_numel * (c_in * w.dim(2) * w.dim(3)) as u64;

        let x = node.inputs[0];
        let base = node.name.clone();
        let mk = |g: &mut Graph,
                  nodes: &mut Vec<Node>,
                  weight: temco_tensor::Tensor,
                  bias: Option<temco_ir::WeightId>,
                  stride: (usize, usize),
                  padding: (usize, usize),
                  groups: usize,
                  role: ConvRole,
                  input: ValueId,
                  output: Option<ValueId>,
                  suffix: &str| {
            let weight = g.add_weight(weight);
            let name = format!("{base}.{suffix}");
            let output = output.unwrap_or_else(|| g.fresh_value(format!("{name}.out")));
            nodes.push(Node {
                op: Op::Conv2d(ConvSpec { weight, bias, stride, padding, groups, role }),
                inputs: vec![input],
                output,
                name,
            });
            output
        };

        match opts.method {
            Method::Tucker => {
                let (r_out, r_in) = tucker_ranks(c_out, c_in, opts.ratio);
                let t = tucker2(&w, r_out, r_in, opts.hooi_iters);
                let v1 = mk(
                    g,
                    &mut new_nodes,
                    t.fconv,
                    None,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::FConv,
                    x,
                    None,
                    "fconv",
                );
                let v2 = mk(
                    g,
                    &mut new_nodes,
                    t.core,
                    None,
                    spec.stride,
                    spec.padding,
                    1,
                    ConvRole::Core,
                    v1,
                    None,
                    "core",
                );
                mk(
                    g,
                    &mut new_nodes,
                    t.lconv,
                    spec.bias,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::LConv,
                    v2,
                    Some(node.output),
                    "lconv",
                );
            }
            Method::Cp => {
                let r = cp_rank(c_out, c_in, opts.ratio);
                let cp = cp_decompose(&w, r, opts.cp_iters);
                let v1 = mk(
                    g,
                    &mut new_nodes,
                    cp.fconv,
                    None,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::FConv,
                    x,
                    None,
                    "fconv",
                );
                let v2 = mk(
                    g,
                    &mut new_nodes,
                    cp.conv_h,
                    None,
                    (spec.stride.0, 1),
                    (spec.padding.0, 0),
                    r,
                    ConvRole::Core,
                    v1,
                    None,
                    "core_h",
                );
                let v3 = mk(
                    g,
                    &mut new_nodes,
                    cp.conv_w,
                    None,
                    (1, spec.stride.1),
                    (0, spec.padding.1),
                    r,
                    ConvRole::Core,
                    v2,
                    None,
                    "core_w",
                );
                mk(
                    g,
                    &mut new_nodes,
                    cp.lconv,
                    spec.bias,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::LConv,
                    v3,
                    Some(node.output),
                    "lconv",
                );
            }
            Method::TensorTrain => {
                let ranks = tt_ranks(c_out, c_in, opts.ratio);
                let tt = tt_decompose(&w, ranks);
                let v1 = mk(
                    g,
                    &mut new_nodes,
                    tt.fconv,
                    None,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::FConv,
                    x,
                    None,
                    "fconv",
                );
                let v2 = mk(
                    g,
                    &mut new_nodes,
                    tt.core_h,
                    None,
                    (spec.stride.0, 1),
                    (spec.padding.0, 0),
                    1,
                    ConvRole::Core,
                    v1,
                    None,
                    "core_h",
                );
                let v3 = mk(
                    g,
                    &mut new_nodes,
                    tt.core_w,
                    None,
                    (1, spec.stride.1),
                    (0, spec.padding.1),
                    1,
                    ConvRole::Core,
                    v2,
                    None,
                    "core_w",
                );
                mk(
                    g,
                    &mut new_nodes,
                    tt.lconv,
                    spec.bias,
                    (1, 1),
                    (0, 0),
                    1,
                    ConvRole::LConv,
                    v3,
                    Some(node.output),
                    "lconv",
                );
            }
        }
        stats.original_conv_flops.insert(node.output, orig_flops);
        stats.convs_decomposed += 1;
    }

    g.nodes = new_nodes;
    g.infer_shapes();
    stats.weight_bytes_after = referenced_weight_bytes(g);
    stats
}

/// Decompose a transposed convolution (UNet up-conv) into
/// `fconv (1×1) → small transposed conv → lconv (1×1)` via Tucker-2 on the
/// `[c_out, c_in, kh, kw]`-permuted kernel. CP/TT requests fall back to
/// Tucker here: the separable spatial split does not commute with the
/// scatter semantics of transposed convolution.
#[allow(clippy::too_many_arguments)]
fn decompose_upconv(
    g: &mut Graph,
    new_nodes: &mut Vec<Node>,
    stats: &mut DecomposeStats,
    node: &Node,
    weight: temco_ir::WeightId,
    bias: Option<temco_ir::WeightId>,
    stride: (usize, usize),
    opts: &DecomposeOptions,
) {
    let w = g.weight(weight).clone(); // [c_in, c_out, kh, kw]
    let (c_in, c_out, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    let mut perm = temco_tensor::Tensor::zeros(&[c_out, c_in, kh, kw]);
    for ci in 0..c_in {
        for co in 0..c_out {
            for a in 0..kh {
                for b in 0..kw {
                    *perm.at4_mut(co, ci, a, b) = w.at4(ci, co, a, b);
                }
            }
        }
    }
    let (r_out, r_in) = tucker_ranks(c_out, c_in, opts.ratio);
    let t = tucker2(&perm, r_out, r_in, opts.hooi_iters);
    // Core back to transposed layout: [r_in, r_out, kh, kw].
    let mut core_t = temco_tensor::Tensor::zeros(&[r_in, r_out, kh, kw]);
    for ro in 0..r_out {
        for ri in 0..r_in {
            for a in 0..kh {
                for b in 0..kw {
                    *core_t.at4_mut(ri, ro, a, b) = t.core.at4(ro, ri, a, b);
                }
            }
        }
    }
    let in_shape = g.values[node.inputs[0].0 as usize]
        .shape
        .as_ref()
        .expect("run shape inference before decompose");
    let in_numel: u64 = in_shape.iter().product::<usize>() as u64;
    stats.original_conv_flops.insert(node.output, 2 * in_numel * (c_out * kh * kw) as u64);

    let base = node.name.clone();
    let fconv_w = g.add_weight(t.fconv);
    let v1 = g.fresh_value(format!("{base}.fconv.out"));
    new_nodes.push(Node {
        op: Op::Conv2d(ConvSpec {
            weight: fconv_w,
            bias: None,
            stride: (1, 1),
            padding: (0, 0),
            groups: 1,
            role: ConvRole::FConv,
        }),
        inputs: vec![node.inputs[0]],
        output: v1,
        name: format!("{base}.fconv"),
    });
    let core_w = g.add_weight(core_t);
    let v2 = g.fresh_value(format!("{base}.core.out"));
    new_nodes.push(Node {
        op: Op::ConvTranspose2d { weight: core_w, bias: None, stride },
        inputs: vec![v1],
        output: v2,
        name: format!("{base}.core"),
    });
    let lconv_w = g.add_weight(t.lconv);
    new_nodes.push(Node {
        op: Op::Conv2d(ConvSpec {
            weight: lconv_w,
            bias,
            stride: (1, 1),
            padding: (0, 0),
            groups: 1,
            role: ConvRole::LConv,
        }),
        inputs: vec![v2],
        output: node.output,
        name: format!("{base}.lconv"),
    });
    stats.convs_decomposed += 1;
}

/// Would decomposing a `[c_out, c_in, kh, kw]` kernel at these options
/// actually shrink its parameters? Tiny heads (e.g. UNet's 1-channel 1×1
/// output conv) would *grow*, so they are left intact.
fn decomposition_shrinks(
    opts: &DecomposeOptions,
    c_out: usize,
    c_in: usize,
    kh: usize,
    kw: usize,
) -> bool {
    let orig = c_out * c_in * kh * kw;
    let dec = match opts.method {
        Method::Tucker => {
            let (r_out, r_in) = tucker_ranks(c_out, c_in, opts.ratio);
            c_in * r_in + r_in * r_out * kh * kw + r_out * c_out
        }
        Method::Cp => {
            let r = cp_rank(c_out, c_in, opts.ratio);
            r * (c_in + kh + kw + c_out)
        }
        Method::TensorTrain => {
            let (r1, r2, r3) = tt_ranks(c_out, c_in, opts.ratio);
            r1 * c_in + r1 * r2 * kh + r2 * r3 * kw + r3 * c_out
        }
    };
    dec < orig
}

/// The paper's structural `IsLConv` test (Algorithm 2, lines 1–7): a 1×1,
/// stride-1, ungrouped convolution that *increases* the channel count.
pub fn is_lconv(g: &Graph, node_idx: usize) -> bool {
    let node = &g.nodes[node_idx];
    let Op::Conv2d(spec) = &node.op else { return false };
    if spec.stride != (1, 1) || spec.groups != 1 {
        return false;
    }
    let w = g.weight(spec.weight);
    w.dim(2) == 1 && w.dim(3) == 1 && w.dim(0) > w.dim(1)
}

/// Structural `IsFConv`: a 1×1, stride-1, ungrouped convolution that
/// *decreases* the channel count.
pub fn is_fconv(g: &Graph, node_idx: usize) -> bool {
    let node = &g.nodes[node_idx];
    let Op::Conv2d(spec) = &node.op else { return false };
    if spec.stride != (1, 1) || spec.padding != (0, 0) || spec.groups != 1 {
        return false;
    }
    let w = g.weight(spec.weight);
    w.dim(2) == 1 && w.dim(3) == 1 && w.dim(0) < w.dim(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_runtime::{execute, ExecOptions};
    use temco_tensor::Tensor;

    fn chain_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 12, 12], "x");
        let c1 = g.conv2d(
            x,
            Tensor::he_conv_weight(48, 32, 3, 3, 1),
            Some(Tensor::rand_uniform(&[48], 2, -0.1, 0.1)),
            1,
            1,
            "conv1",
        );
        let r1 = g.relu(c1, "relu1");
        let c2 = g.conv2d(r1, Tensor::he_conv_weight(32, 48, 3, 3, 3), None, 2, 1, "conv2");
        g.mark_output(c2);
        g.infer_shapes();
        g
    }

    #[test]
    fn tucker_replaces_each_conv_with_three_nodes() {
        let mut g = chain_graph();
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert_eq!(stats.convs_decomposed, 2);
        let convs: Vec<ConvRole> = g
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Op::Conv2d(s) => Some(s.role),
                _ => None,
            })
            .collect();
        assert_eq!(
            convs,
            vec![
                ConvRole::FConv,
                ConvRole::Core,
                ConvRole::LConv,
                ConvRole::FConv,
                ConvRole::Core,
                ConvRole::LConv,
            ]
        );
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn full_rank_tucker_preserves_outputs() {
        let g0 = chain_graph();
        let mut g = g0.clone();
        // Tucker at ratio 1.0 is a full-rank factorization: outputs match.
        let opts = DecomposeOptions {
            method: Method::Tucker,
            ratio: 1.0,
            only_if_smaller: false,
            ..Default::default()
        };
        let stats = decompose(&mut g, &opts);
        assert_eq!(stats.convs_decomposed, 2, "full-rank test must actually decompose");
        let x = Tensor::randn(&[1, 32, 12, 12], 9);
        let a = execute(&g0, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
        assert_eq!(a.outputs[0].shape(), b.outputs[0].shape());
        let diff = a.outputs[0].max_abs_diff(&b.outputs[0]);
        let scale = a.outputs[0].fro_norm() / (a.outputs[0].numel() as f32).sqrt();
        assert!(diff < 1e-2 * scale.max(1.0), "diff {diff} (scale {scale})");
    }

    #[test]
    fn tt_recovers_low_tt_rank_kernels_exactly() {
        // TT at ratio 1.0 still bounds the middle bond by max(c_in, c_out),
        // which truncates random kernels — so exactness is tested on kernels
        // that genuinely have low TT rank.
        use temco_decomp::tt_decompose;
        let low_tt = |c_out: usize, c_in: usize, seed: u64| {
            let probe = Tensor::randn(&[c_out, c_in, 3, 3], seed);
            let tt = tt_decompose(&probe, (3, 4, 3));
            tt.reconstruct()
        };
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 10, 10], "x");
        let c1 = g.conv2d(x, low_tt(48, 32, 31), None, 1, 1, "conv1");
        let r1 = g.relu(c1, "relu1");
        let c2 = g.conv2d(r1, low_tt(32, 48, 32), None, 1, 1, "conv2");
        g.mark_output(c2);
        g.infer_shapes();
        let g0 = g.clone();
        let opts =
            DecomposeOptions { method: Method::TensorTrain, ratio: 0.5, ..Default::default() };
        decompose(&mut g, &opts);
        let x = Tensor::randn(&[1, 32, 10, 10], 33);
        let a = execute(&g0, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
        let diff = a.outputs[0].max_abs_diff(&b.outputs[0]);
        assert!(diff < 1e-2, "diff {diff}");
    }

    #[test]
    fn cp_decomposition_runs_and_keeps_shapes() {
        // A random 4-D kernel has CP rank far above max(c_out, c_in), so
        // full-rank value recovery is not expected — only the structural
        // contract (shape preservation, fconv/core/core/lconv layout).
        let g0 = chain_graph();
        let mut g = g0.clone();
        let opts = DecomposeOptions {
            method: Method::Cp,
            ratio: 0.25,
            cp_iters: 10,
            ..Default::default()
        };
        let stats = decompose(&mut g, &opts);
        assert_eq!(stats.convs_decomposed, 2);
        let x = Tensor::randn(&[1, 32, 12, 12], 9);
        let a = execute(&g0, std::slice::from_ref(&x), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
        assert_eq!(a.outputs[0].shape(), b.outputs[0].shape());
        // Four conv nodes per decomposed sequence for CP.
        let roles: Vec<ConvRole> = g
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Op::Conv2d(s) => Some(s.role),
                _ => None,
            })
            .collect();
        assert_eq!(roles.len(), 8);
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn low_ratio_shrinks_weights_and_flops() {
        let mut g = chain_graph();
        let flops_before = temco_ir::graph_flops(&g);
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert!(stats.weight_bytes_after < stats.weight_bytes_before / 2);
        assert!(temco_ir::graph_flops(&g) < flops_before / 2);
    }

    #[test]
    fn stem_is_decomposed_by_default_but_protectable() {
        let mk = || {
            let mut g = Graph::new();
            let x = g.input(&[1, 3, 8, 8], "x");
            let c = g.conv2d(x, Tensor::he_conv_weight(64, 3, 3, 3, 1), None, 1, 1, "stem");
            g.mark_output(c);
            g.infer_shapes();
            g
        };
        // Default (paper configuration): every conv is decomposed.
        let mut g = mk();
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert_eq!(stats.convs_decomposed, 1);
        // min_channels opts the stem out.
        let mut g = mk();
        let opts = DecomposeOptions { min_channels: 16, ..Default::default() };
        let stats = decompose(&mut g, &opts);
        assert_eq!(stats.convs_decomposed, 0);
        assert_eq!(stats.convs_skipped, 1);
    }

    #[test]
    fn decomposition_that_would_grow_weights_is_skipped() {
        // A 1-channel 1×1 head: factors would have more parameters than the
        // kernel itself.
        let mut g = Graph::new();
        let x = g.input(&[1, 64, 8, 8], "x");
        let c = g.conv2d(x, Tensor::he_conv_weight(1, 64, 1, 1, 1), None, 1, 0, "head");
        g.mark_output(c);
        g.infer_shapes();
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert_eq!(stats.convs_decomposed, 0);
        assert_eq!(stats.convs_skipped, 1);
    }

    #[test]
    fn lconv_structural_test_matches_roles() {
        let mut g = chain_graph();
        decompose(&mut g, &DecomposeOptions::default());
        for (i, n) in g.nodes.iter().enumerate() {
            if let Op::Conv2d(s) = &n.op {
                assert_eq!(s.role == ConvRole::LConv, is_lconv(&g, i), "node {}", n.name);
                assert_eq!(s.role == ConvRole::FConv, is_fconv(&g, i), "node {}", n.name);
            }
        }
    }

    #[test]
    fn upconv_is_decomposed_and_preserved_at_full_rank() {
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 7, 7], "x");
        let w = Tensor::he_conv_weight(32, 16, 2, 2, 5).reshape(&[32, 16, 2, 2]);
        let up = g.conv_transpose2d(x, w, Some(Tensor::randn(&[16], 6)), 2, "up");
        g.mark_output(up);
        g.infer_shapes();
        let g0 = g.clone();
        // Full-rank Tucker: lossless.
        let opts = DecomposeOptions { ratio: 1.0, only_if_smaller: false, ..Default::default() };
        let stats = decompose(&mut g, &opts);
        assert_eq!(stats.convs_decomposed, 1);
        assert!(temco_ir::verify(&g).is_empty());
        // fconv → small upconv → lconv structure.
        assert!(matches!(g.nodes[1].op, Op::Conv2d(ConvSpec { role: ConvRole::FConv, .. })));
        assert!(matches!(g.nodes[2].op, Op::ConvTranspose2d { .. }));
        assert!(matches!(g.nodes[3].op, Op::Conv2d(ConvSpec { role: ConvRole::LConv, .. })));

        let x_t = Tensor::randn(&[1, 32, 7, 7], 7);
        let a = execute(&g0, std::slice::from_ref(&x_t), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x_t], ExecOptions::default()).expect("execution failed");
        assert_eq!(a.outputs[0].shape(), b.outputs[0].shape());
        let diff = a.outputs[0].max_abs_diff(&b.outputs[0]);
        assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn upconv_low_rank_shrinks_params() {
        let mut g = Graph::new();
        let x = g.input(&[1, 64, 8, 8], "x");
        let w = Tensor::he_conv_weight(64, 32, 2, 2, 9).reshape(&[64, 32, 2, 2]);
        let up = g.conv_transpose2d(x, w, None, 2, "up");
        g.mark_output(up);
        g.infer_shapes();
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert_eq!(stats.convs_decomposed, 1);
        assert!(stats.weight_bytes_after < stats.weight_bytes_before / 2);
    }

    #[test]
    fn original_flops_recorded_per_lconv_output() {
        let mut g = chain_graph();
        let stats = decompose(&mut g, &DecomposeOptions::default());
        assert_eq!(stats.original_conv_flops.len(), 2);
        for &f in stats.original_conv_flops.values() {
            assert!(f > 0);
        }
    }
}
