//! TeMCO: Tensor Memory Compiler Optimization across tensor decompositions.
//!
//! This crate is the paper's primary contribution: a compiler that takes a
//! (possibly already decomposed) model graph and reduces the peak memory of
//! its *internal tensors* while preserving semantics exactly. The pipeline:
//!
//! 1. [`decompose`] — replace convolutions by decomposed sequences
//!    (`fconv → core(s) → lconv`), the setup step existing tensor
//!    decomposition work performs (Section 2.1).
//! 2. [`skipopt`] — the skip-connection optimization (Algorithms 1 and 2):
//!    find long-lived tensors via liveness, walk the PDG back to the
//!    restoring `lconv`s, and replace the skip with the *reduced* tensor
//!    plus cheap per-use restore copies.
//! 3. [`transform`] — the layer transformations of Section 3.3: sinking
//!    concats through elementwise layers, splitting `concat → fconv` into
//!    per-branch convolutions plus `add` (Figure 9c), merging sibling
//!    `lconv`s into one block-diagonal `lconv` (Figure 9a), and folding
//!    inference batch-norm affines into adjacent convolutions.
//! 4. [`fusion`] — activation-layer fusion (Section 3.2): rewrite
//!    `lconv → activation (→ pool) → fconv` chains into the single fused
//!    operator whose kernel never materializes the full-width tensor.
//!
//! [`Compiler`] wires the passes together behind one call; [`analysis`]
//! implements the paper's closed-form peak-memory model (Equations 1–4) and
//! [`equiv`] the semantic-equivalence checking used by the accuracy
//! experiment.

pub mod analysis;
pub mod decompose;
pub mod equiv;
pub mod fusion;
pub mod skipopt;
pub mod transform;

pub use decompose::{decompose, DecomposeOptions, DecomposeStats};
pub use equiv::{compare_outputs, dice_score, OutputAgreement};
pub use fusion::{fuse_activations, FusionStats};
pub use skipopt::{optimize_skip_connections, SkipOptOptions, SkipOptStats};
pub use temco_decomp::Method;
pub use transform::{
    compose_pointwise_convs, fold_affine_into_conv, merge_sibling_lconvs, sink_concats,
    split_concat_conv1x1, TransformStats,
};

use temco_ir::Graph;

/// Which optimization level to apply on top of a decomposed model —
/// mirrors the paper's evaluation legend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// Tensor decomposition only (the paper's `Decomposed` baseline).
    Decomposed,
    /// Decomposition + activation-layer fusion (`Fusion`).
    Fusion,
    /// Decomposition + skip-connection optimization (`Skip-Opt`).
    SkipOpt,
    /// All of TeMCO (`Skip-Opt+Fusion`, including layer transformations).
    SkipOptFusion,
}

impl OptLevel {
    /// Evaluation-legend label.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Decomposed => "Decomposed",
            OptLevel::Fusion => "Fusion",
            OptLevel::SkipOpt => "Skip-Opt",
            OptLevel::SkipOptFusion => "Skip-Opt+Fusion",
        }
    }
}

/// End-to-end compiler configuration.
#[derive(Clone, Debug, Default)]
pub struct CompilerOptions {
    /// Decomposition settings (method, ratio, …).
    pub decompose: DecomposeOptions,
    /// Skip-connection optimization settings.
    pub skip_opt: SkipOptOptions,
    /// Merge sibling `lconv`s (Figure 9a) before splitting concats.
    pub merge_lconvs: bool,
    /// Run the memory-aware list scheduler after all rewrites (the
    /// operator-scheduling extension the paper defers to references 19, 31, 50).
    pub reschedule: bool,
}

/// Statistics of one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Decomposition pass statistics.
    pub decompose: DecomposeStats,
    /// Skip-connection optimization statistics.
    pub skip_opt: SkipOptStats,
    /// Layer-transformation statistics.
    pub transform: TransformStats,
    /// Fusion statistics.
    pub fusion: FusionStats,
}

/// The TeMCO compiler.
///
/// ```
/// use temco::{Compiler, OptLevel};
/// use temco_ir::Graph;
/// use temco_tensor::Tensor;
///
/// let mut g = Graph::new();
/// let x = g.input(&[1, 32, 16, 16], "x");
/// let c = g.conv2d(x, Tensor::he_conv_weight(32, 32, 3, 3, 7), None, 1, 1, "conv");
/// let r = g.relu(c, "relu");
/// let c2 = g.conv2d(r, Tensor::he_conv_weight(32, 32, 3, 3, 8), None, 1, 1, "conv2");
/// g.mark_output(c2);
/// g.infer_shapes();
///
/// let (optimized, stats) = Compiler::default().compile(&g, OptLevel::SkipOptFusion);
/// assert!(stats.decompose.convs_decomposed > 0);
/// assert!(temco_ir::verify(&optimized).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Compiler {
    opts: CompilerOptions,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler { opts: CompilerOptions { merge_lconvs: true, ..Default::default() } }
    }
}

impl Compiler {
    /// Compiler with explicit options.
    pub fn new(opts: CompilerOptions) -> Self {
        Compiler { opts }
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.opts
    }

    /// Compile `graph` at the requested optimization level. Returns the
    /// optimized graph and per-pass statistics. The input graph is not
    /// modified.
    ///
    /// # Panics
    /// Panics if the input graph fails verification.
    #[allow(clippy::field_reassign_with_default)] // stats fill in pass order
    pub fn compile(&self, graph: &Graph, level: OptLevel) -> (Graph, CompileStats) {
        let errs = temco_ir::verify(graph);
        assert!(errs.is_empty(), "input graph is malformed: {errs:?}");
        let mut g = graph.clone();
        g.infer_shapes();
        let mut stats = CompileStats::default();

        stats.decompose = decompose(&mut g, &self.opts.decompose);

        if matches!(level, OptLevel::SkipOpt | OptLevel::SkipOptFusion) {
            stats.skip_opt =
                optimize_skip_connections(&mut g, &self.opts.skip_opt, &stats.decompose);
        }

        if matches!(level, OptLevel::Fusion | OptLevel::SkipOptFusion) {
            if self.opts.merge_lconvs {
                stats.transform.lconvs_merged = merge_sibling_lconvs(&mut g);
            }
            stats.transform.concats_sunk = sink_concats(&mut g);
            stats.transform.concats_split = split_concat_conv1x1(&mut g);
            stats.transform.affines_folded = fold_affine_into_conv(&mut g);
            stats.transform.pointwise_composed = compose_pointwise_convs(&mut g);
            stats.fusion = fuse_activations(&mut g);
        }

        if self.opts.reschedule {
            let order = temco_ir::memory_aware_order_ranked(&g);
            temco_ir::apply_order(&mut g, &order);
        }

        // Rewrites orphan replaced weights in the store; reclaim them so the
        // result's weight_bytes reflects what an inference actually loads.
        g.gc_weights();
        g.infer_shapes();
        let errs = temco_ir::verify(&g);
        assert!(errs.is_empty(), "compiler produced a malformed graph: {errs:?}");
        (g, stats)
    }
}
