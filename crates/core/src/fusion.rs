//! Activation-layer fusion (paper Section 3.2).
//!
//! Rewrites `lconv → activation (→ pool) → fconv` chains into the single
//! [`temco_ir::Op::Fused`] operator. After this pass the full-channel
//! tensors between the two factor convolutions (`Output1`/`Input2` in
//! Figure 3b) are gone from the graph, so both the static planner and the
//! executor see only reduced tensors at those program points — the entire
//! point of TeMCO.

use temco_ir::{FusedSpec, Graph, Node, Op, ValueId};

use crate::decompose::{is_fconv, is_lconv};

/// Fusion statistics.
#[derive(Clone, Debug, Default)]
pub struct FusionStats {
    /// `lconv-act-fconv` chains fused.
    pub fused_without_pool: usize,
    /// `lconv-act-pool-fconv` chains fused.
    pub fused_with_pool: usize,
    /// Restore-only kernels (`lconv-act(-pool)` with a non-fconv consumer):
    /// the strip-wise form of copied restore chains (Section 3.3).
    pub restore_kernels: usize,
}

impl FusionStats {
    /// Total fused kernels emitted.
    pub fn total(&self) -> usize {
        self.fused_without_pool + self.fused_with_pool + self.restore_kernels
    }
}

/// True when `v` has exactly one user and is not a graph output.
fn fusible_edge(g: &Graph, v: ValueId) -> bool {
    g.users(v).len() == 1 && !g.outputs.contains(&v)
}

/// Run activation-layer fusion in place.
pub fn fuse_activations(g: &mut Graph) -> FusionStats {
    let mut stats = FusionStats::default();
    let mut remove = vec![false; g.nodes.len()];
    let mut replacement: Vec<Option<Node>> = (0..g.nodes.len()).map(|_| None).collect();

    for li in 0..g.nodes.len() {
        if remove[li] || !is_lconv(g, li) {
            continue;
        }
        let lconv_out = g.nodes[li].output;
        if !fusible_edge(g, lconv_out) {
            continue;
        }
        let ai = g.users(lconv_out)[0];
        let Op::Activation(act) = g.nodes[ai].op else { continue };
        if remove[ai] || !fusible_edge(g, g.nodes[ai].output) {
            continue;
        }
        let mut next = g.users(g.nodes[ai].output)[0];
        let mut pool = None;
        let mut tail = g.nodes[ai].output; // last value covered by the chain
        if let Op::Pool { kind, kernel, stride } = g.nodes[next].op {
            if !remove[next] && fusible_edge(g, g.nodes[next].output) {
                pool = Some((kind, kernel, stride, next));
                tail = g.nodes[next].output;
                next = g.users(g.nodes[next].output)[0];
            }
        }
        let Op::Conv2d(lspec) = g.nodes[li].op else { unreachable!() };

        // Full fusion when the chain ends at an fconv; otherwise emit the
        // restore kernel covering lconv-act(-pool), which still keeps the
        // pre-pool full-width tensor out of memory.
        let full = !remove[next] && is_fconv(g, next);
        let (fconv, output, tail_name, removed_tail) = if full {
            let Op::Conv2d(fspec) = g.nodes[next].op else { unreachable!() };
            (
                Some(temco_ir::FconvSpec { weight: fspec.weight, bias: fspec.bias }),
                g.nodes[next].output,
                g.nodes[next].name.clone(),
                Some(next),
            )
        } else {
            (None, tail, "restore".to_string(), None)
        };

        let spec = FusedSpec {
            lconv_w: lspec.weight,
            lconv_b: lspec.bias,
            act,
            pool: pool.map(|(k, ks, ss, _)| (k, ks, ss)),
            fconv,
        };
        let name = format!("fused[{}+{}]", g.nodes[li].name, tail_name);
        // The fused node replaces the lconv's position; it consumes the
        // reduced input and produces the chain tail's output value.
        replacement[li] =
            Some(Node { op: Op::Fused(spec), inputs: vec![g.nodes[li].inputs[0]], output, name });
        remove[li] = true;
        remove[ai] = true;
        if let Some((_, _, _, pi)) = pool {
            remove[pi] = true;
        }
        if let Some(fi) = removed_tail {
            remove[fi] = true;
            if pool.is_some() {
                stats.fused_with_pool += 1;
            } else {
                stats.fused_without_pool += 1;
            }
        } else {
            stats.restore_kernels += 1;
        }
    }
    if stats.total() == 0 {
        return stats;
    }

    let old_nodes = std::mem::take(&mut g.nodes);
    let mut nodes = Vec::with_capacity(old_nodes.len());
    for (i, node) in old_nodes.into_iter().enumerate() {
        if let Some(rep) = replacement[i].take() {
            nodes.push(rep);
        } else if !remove[i] {
            nodes.push(node);
        }
    }
    g.nodes = nodes;
    g.infer_shapes();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, DecomposeOptions};
    use temco_ir::{ActKind, PoolKind};
    use temco_runtime::{execute, plan_memory, ExecOptions};
    use temco_tensor::Tensor;

    /// conv-relu-conv (the Figure 3 microbench, VGG-style).
    fn vgg_block(with_pool: bool) -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 32, 16, 16], "x");
        let c1 = g.conv2d(
            x,
            Tensor::he_conv_weight(64, 32, 3, 3, 1),
            Some(Tensor::rand_uniform(&[64], 2, -0.1, 0.1)),
            1,
            1,
            "conv1",
        );
        let r = g.relu(c1, "relu");
        let mid = if with_pool { g.max_pool(r, 2, 2, "pool") } else { r };
        let c2 = g.conv2d(mid, Tensor::he_conv_weight(32, 64, 3, 3, 3), None, 1, 1, "conv2");
        g.mark_output(c2);
        g.infer_shapes();
        g
    }

    #[test]
    fn fuses_lconv_relu_fconv() {
        let mut g = vgg_block(false);
        decompose(&mut g, &DecomposeOptions::default());
        let stats = fuse_activations(&mut g);
        assert_eq!(stats.fused_without_pool, 1);
        assert_eq!(stats.fused_with_pool, 0);
        assert!(g.nodes.iter().any(|n| matches!(n.op, Op::Fused(_))));
        // The relu is gone; no full-width (64-channel) value remains between
        // the decomposed sequences.
        assert!(!g.nodes.iter().any(|n| matches!(n.op, Op::Activation(ActKind::Relu))));
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn fuses_through_pool() {
        let mut g = vgg_block(true);
        decompose(&mut g, &DecomposeOptions::default());
        let stats = fuse_activations(&mut g);
        assert_eq!(stats.fused_with_pool, 1);
        let fused = g.nodes.iter().find(|n| matches!(n.op, Op::Fused(_))).unwrap();
        let Op::Fused(spec) = &fused.op else { unreachable!() };
        assert_eq!(spec.pool, Some((PoolKind::Max, 2, 2)));
    }

    #[test]
    fn fusion_preserves_semantics() {
        for with_pool in [false, true] {
            let mut g = vgg_block(with_pool);
            decompose(&mut g, &DecomposeOptions::default());
            let unfused = g.clone();
            fuse_activations(&mut g);
            let x = Tensor::randn(&[1, 32, 16, 16], 5);
            let a = execute(&unfused, std::slice::from_ref(&x), ExecOptions::default())
                .expect("execution failed");
            let b = execute(&g, &[x], ExecOptions::default()).expect("execution failed");
            assert!(
                a.outputs[0].all_close(&b.outputs[0], 1e-3),
                "pool={with_pool}: diff {}",
                a.outputs[0].max_abs_diff(&b.outputs[0])
            );
        }
    }

    #[test]
    fn fusion_reduces_planned_peak() {
        let mut g = vgg_block(false);
        decompose(&mut g, &DecomposeOptions::default());
        let before = plan_memory(&g).peak_internal_bytes;
        fuse_activations(&mut g);
        let after = plan_memory(&g).peak_internal_bytes;
        assert!(after < before, "{before} → {after}");
    }

    #[test]
    fn multi_user_intermediate_blocks_fusion() {
        // The lconv output is also a graph output → cannot fuse.
        let mut g = vgg_block(false);
        decompose(&mut g, &DecomposeOptions::default());
        let lconv_out = g.nodes.iter().find(|n| n.name == "conv1.lconv").unwrap().output;
        g.mark_output(lconv_out);
        let stats = fuse_activations(&mut g);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn gap_tail_degrades_to_restore_kernel() {
        // GlobalAvgPool cannot be folded into the kernel, so the chain
        // becomes a restore kernel (lconv+relu) feeding the gap — the
        // full-width tensor still exists (it is the restore kernel's
        // output), but the *pair* of full tensors is gone.
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 8, 8], "x");
        let l = g.conv2d(x, Tensor::randn(&[32, 8, 1, 1], 1), None, 1, 0, "l");
        let r = g.relu(l, "r");
        let gap = g.global_avg_pool(r, "gap");
        let f = g.conv2d(gap, Tensor::randn(&[4, 32, 1, 1], 2), None, 1, 0, "f");
        g.mark_output(f);
        g.infer_shapes();
        let before = crate::decompose::is_lconv(&g, 1);
        assert!(before);
        let stats = fuse_activations(&mut g);
        assert_eq!(stats.restore_kernels, 1);
        assert_eq!(stats.fused_without_pool + stats.fused_with_pool, 0);
        assert!(temco_ir::verify(&g).is_empty());
    }

    #[test]
    fn restore_kernel_preserves_semantics() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 6, 6], "x");
        let l =
            g.conv2d(x, Tensor::randn(&[16, 4, 1, 1], 3), Some(Tensor::randn(&[16], 4)), 1, 0, "l");
        let r = g.relu(l, "r");
        let p = g.max_pool(r, 2, 2, "p");
        let s = g.add(&[p, p], "dbl"); // non-fconv consumer
        g.mark_output(s);
        g.infer_shapes();
        let unfused = g.clone();
        let stats = fuse_activations(&mut g);
        assert_eq!(stats.restore_kernels, 1);
        let x_t = Tensor::randn(&[1, 4, 6, 6], 5);
        let a = execute(&unfused, std::slice::from_ref(&x_t), ExecOptions::default())
            .expect("execution failed");
        let b = execute(&g, &[x_t], ExecOptions::default()).expect("execution failed");
        assert!(a.outputs[0].all_close(&b.outputs[0], 1e-4));
    }
}
