//! The paper's closed-form memory model (Section 2.2, Equations 1–4).
//!
//! Each equation is implemented over the two-convolution microbenchmark of
//! Figure 3 and cross-checked against the static planner on the actual
//! graphs — the analytic model and the planner must agree exactly.

use temco_ir::Graph;
use temco_tensor::{conv_out_dim, Tensor};

/// Parameters of the Figure 3 scenario: two convolutions with an activation
/// layer in between, optionally decomposed.
#[derive(Clone, Copy, Debug)]
pub struct TwoConvScenario {
    /// Batch size.
    pub batch: usize,
    /// Input channels `C` and spatial size `H×W`.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// First conv: `C → C'` with `K×K` kernel (stride 1, same padding).
    pub c1: usize,
    /// First kernel size `K` (odd, same padding).
    pub k: usize,
    /// Second conv: `C' → C''` with `K'×K'` kernel.
    pub c2: usize,
    /// Second kernel size `K'`.
    pub k2: usize,
    /// Reduced channels `(C₁, C₂, C₃, C₄)` of the two decomposed sequences.
    pub ranks: (usize, usize, usize, usize),
}

impl TwoConvScenario {
    /// Output spatial dims (same padding keeps them equal to the input).
    fn dims(&self) -> (usize, usize) {
        let h1 = conv_out_dim(self.h, self.k, 1, self.k / 2);
        let w1 = conv_out_dim(self.w, self.k, 1, self.k / 2);
        (h1, w1)
    }

    /// Equation (1): weight bytes of the two original convolutions,
    /// `C·C'·K² + C'·C''·K'²` (×4 bytes).
    pub fn eq1_weight_bytes(&self) -> usize {
        4 * (self.c * self.c1 * self.k * self.k + self.c1 * self.c2 * self.k2 * self.k2)
    }

    /// Equation (2): weight bytes of the decomposed sequences,
    /// `C·C₁ + C₁·C₂·K² + C₂·C' + C'·C₃ + C₃·C₄·K'² + C₄·C''`.
    pub fn eq2_weight_bytes(&self) -> usize {
        let (r1, r2, r3, r4) = self.ranks;
        4 * (self.c * r1
            + r1 * r2 * self.k * self.k
            + r2 * self.c1
            + self.c1 * r3
            + r3 * r4 * self.k2 * self.k2
            + r4 * self.c2)
    }

    /// Equation (3): peak internal-tensor bytes of the original layers,
    /// `MAX(CHW + C'H'W', 2C'H'W', C'H'W' + C''H''W'')` (per batch, ×4).
    pub fn eq3_peak_internal_bytes(&self) -> usize {
        let (h1, w1) = self.dims();
        let (h2, w2) =
            (conv_out_dim(h1, self.k2, 1, self.k2 / 2), conv_out_dim(w1, self.k2, 1, self.k2 / 2));
        let in_t = self.c * self.h * self.w;
        let mid = self.c1 * h1 * w1;
        let out_t = self.c2 * h2 * w2;
        4 * self.batch * (in_t + mid).max(2 * mid).max(mid + out_t)
    }

    /// Equation (4): peak internal-tensor bytes of the decomposed layers.
    pub fn eq4_peak_internal_bytes(&self) -> usize {
        let (r1, r2, r3, r4) = self.ranks;
        let (h1, w1) = self.dims();
        let (h2, w2) =
            (conv_out_dim(h1, self.k2, 1, self.k2 / 2), conv_out_dim(w1, self.k2, 1, self.k2 / 2));
        let chw = self.c * self.h * self.w;
        let c1hw = r1 * self.h * self.w;
        let c2h1w1 = r2 * h1 * w1;
        let cph1w1 = self.c1 * h1 * w1;
        let c3h1w1 = r3 * h1 * w1;
        let c4h2w2 = r4 * h2 * w2;
        let cpph2w2 = self.c2 * h2 * w2;
        4 * self.batch
            * (chw + c1hw)
                .max(c1hw + c2h1w1)
                .max(c2h1w1 + cph1w1)
                .max(2 * cph1w1)
                .max(cph1w1 + c3h1w1)
                .max(c3h1w1 + c4h2w2)
                .max(c4h2w2 + cpph2w2)
    }

    /// Build the *original* two-conv graph of Figure 3a.
    pub fn build_original(&self) -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[self.batch, self.c, self.h, self.w], "x");
        let w1 = Tensor::he_conv_weight(self.c1, self.c, self.k, self.k, 1);
        let c1 = g.conv2d(x, w1, None, 1, self.k / 2, "conv1");
        let r = g.relu(c1, "relu");
        let w2 = Tensor::he_conv_weight(self.c2, self.c1, self.k2, self.k2, 2);
        let c2 = g.conv2d(r, w2, None, 1, self.k2 / 2, "conv2");
        g.mark_output(c2);
        g.infer_shapes();
        g
    }

    /// Build the *decomposed* graph of Figure 3b with the scenario's ranks
    /// (weights random — the memory model only depends on shapes).
    pub fn build_decomposed(&self) -> Graph {
        let (r1, r2, r3, r4) = self.ranks;
        let mut g = Graph::new();
        let x = g.input(&[self.batch, self.c, self.h, self.w], "x");
        let f1 =
            g.conv2d(x, Tensor::he_conv_weight(r1, self.c, 1, 1, 3), None, 1, 0, "conv1.fconv");
        let k1 = g.conv2d(
            f1,
            Tensor::he_conv_weight(r2, r1, self.k, self.k, 4),
            None,
            1,
            self.k / 2,
            "conv1.core",
        );
        let l1 =
            g.conv2d(k1, Tensor::he_conv_weight(self.c1, r2, 1, 1, 5), None, 1, 0, "conv1.lconv");
        let r = g.relu(l1, "relu");
        let f2 =
            g.conv2d(r, Tensor::he_conv_weight(r3, self.c1, 1, 1, 6), None, 1, 0, "conv2.fconv");
        let k2n = g.conv2d(
            f2,
            Tensor::he_conv_weight(r4, r3, self.k2, self.k2, 7),
            None,
            1,
            self.k2 / 2,
            "conv2.core",
        );
        let l2 =
            g.conv2d(k2n, Tensor::he_conv_weight(self.c2, r4, 1, 1, 8), None, 1, 0, "conv2.lconv");
        g.mark_output(l2);
        g.infer_shapes();
        g
    }
}

impl Default for TwoConvScenario {
    /// A VGG-like default: 4-batch, 64→128→128 channels, 3×3 kernels,
    /// ratio-0.1 ranks.
    fn default() -> Self {
        TwoConvScenario {
            batch: 4,
            c: 64,
            h: 56,
            w: 56,
            c1: 128,
            k: 3,
            c2: 128,
            k2: 3,
            ranks: (6, 13, 13, 13),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_runtime::plan_memory;

    #[test]
    fn eq3_matches_planner_on_original_graph() {
        let s = TwoConvScenario::default();
        let g = s.build_original();
        assert_eq!(plan_memory(&g).peak_internal_bytes, s.eq3_peak_internal_bytes());
    }

    #[test]
    fn eq4_matches_planner_on_decomposed_graph() {
        let s = TwoConvScenario::default();
        let g = s.build_decomposed();
        assert_eq!(plan_memory(&g).peak_internal_bytes, s.eq4_peak_internal_bytes());
    }

    #[test]
    fn eq1_eq2_match_graph_weight_bytes() {
        let s = TwoConvScenario::default();
        assert_eq!(s.build_original().weight_bytes(), s.eq1_weight_bytes());
        assert_eq!(s.build_decomposed().weight_bytes(), s.eq2_weight_bytes());
    }

    #[test]
    fn decomposition_shrinks_weights_but_not_internal_peak() {
        // The paper's key observation: Eq (2) ≪ Eq (1), yet Eq (4) ≈ Eq (3)
        // because the activation layer pins 2·C'H'W'.
        let s = TwoConvScenario::default();
        assert!(s.eq2_weight_bytes() < s.eq1_weight_bytes() / 4);
        let e3 = s.eq3_peak_internal_bytes() as f64;
        let e4 = s.eq4_peak_internal_bytes() as f64;
        assert!(e4 >= 0.9 * e3, "eq4 {e4} vs eq3 {e3}");
        // And the binding term of Eq (4) is exactly the activation's
        // 2·C'H'W' pair.
        assert_eq!(s.eq4_peak_internal_bytes(), 4 * s.batch * 2 * s.c1 * 56 * 56);
    }

    #[test]
    fn non_square_scenario_still_agrees() {
        let s = TwoConvScenario {
            batch: 2,
            c: 16,
            h: 20,
            w: 12,
            c1: 48,
            k: 5,
            c2: 24,
            k2: 3,
            ranks: (2, 5, 5, 3),
        };
        assert_eq!(
            plan_memory(&s.build_original()).peak_internal_bytes,
            s.eq3_peak_internal_bytes()
        );
        assert_eq!(
            plan_memory(&s.build_decomposed()).peak_internal_bytes,
            s.eq4_peak_internal_bytes()
        );
    }
}
