//! Semantic-equivalence measurement (the Figure 12 experiment).
//!
//! The paper's accuracy claim is structural: TeMCO's rewrites preserve the
//! decomposed model's semantics exactly, so accuracy cannot change. We
//! measure that directly: run the baseline and the optimized graph on the
//! same inputs and report numeric agreement — max/mean absolute difference
//! plus a task-level agreement metric (top-k class overlap for classifiers,
//! thresholded-mask agreement for segmentation).

use temco_tensor::Tensor;

/// Agreement between two model outputs.
#[derive(Clone, Copy, Debug)]
pub struct OutputAgreement {
    /// Largest elementwise |a - b|.
    pub max_abs_diff: f32,
    /// Mean elementwise |a - b|.
    pub mean_abs_diff: f32,
    /// Task-level agreement in `[0, 1]`: average top-k overlap for 2-D
    /// logits, fraction of matching thresholded pixels for 4-D masks.
    pub task_agreement: f64,
}

/// Compare two same-shaped outputs; `k` is the top-k width for logits
/// (the paper reports top-5).
///
/// # Panics
/// Panics on shape mismatch.
pub fn compare_outputs(a: &Tensor, b: &Tensor, k: usize) -> OutputAgreement {
    assert_eq!(a.shape(), b.shape(), "compare_outputs shape mismatch");
    let mut max = 0.0f32;
    let mut sum = 0.0f64;
    for (x, y) in a.data().iter().zip(b.data()) {
        let d = (x - y).abs();
        max = max.max(d);
        sum += d as f64;
    }
    let mean = (sum / a.numel() as f64) as f32;
    let task = if a.shape().len() == 2 { topk_overlap(a, b, k) } else { mask_agreement(a, b, 0.5) };
    OutputAgreement { max_abs_diff: max, mean_abs_diff: mean, task_agreement: task }
}

/// Average |top-k(a) ∩ top-k(b)| / k over the batch.
fn topk_overlap(a: &Tensor, b: &Tensor, k: usize) -> f64 {
    let (n, c) = (a.dim(0), a.dim(1));
    let k = k.min(c);
    let mut total = 0.0f64;
    for r in 0..n {
        let ta = topk(&a.data()[r * c..(r + 1) * c], k);
        let tb = topk(&b.data()[r * c..(r + 1) * c], k);
        let inter = ta.iter().filter(|i| tb.contains(i)).count();
        total += inter as f64 / k as f64;
    }
    total / n as f64
}

fn topk(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&i, &j| row[j].partial_cmp(&row[i]).expect("NaN logit"));
    idx.truncate(k);
    idx
}

/// Fraction of positions where `a > thr` agrees with `b > thr`.
fn mask_agreement(a: &Tensor, b: &Tensor, thr: f32) -> f64 {
    let same = a.data().iter().zip(b.data()).filter(|(x, y)| (**x > thr) == (**y > thr)).count();
    same as f64 / a.numel() as f64
}

/// Dice score between two thresholded masks (the paper's UNet metric).
pub fn dice_score(a: &Tensor, b: &Tensor, thr: f32) -> f64 {
    assert_eq!(a.shape(), b.shape(), "dice shape mismatch");
    let mut inter = 0usize;
    let mut asum = 0usize;
    let mut bsum = 0usize;
    for (x, y) in a.data().iter().zip(b.data()) {
        let xa = *x > thr;
        let yb = *y > thr;
        inter += (xa && yb) as usize;
        asum += xa as usize;
        bsum += yb as usize;
    }
    if asum + bsum == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (asum + bsum) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_agree_perfectly() {
        let a = Tensor::randn(&[4, 10], 1);
        let r = compare_outputs(&a, &a, 5);
        assert_eq!(r.max_abs_diff, 0.0);
        assert_eq!(r.task_agreement, 1.0);
    }

    #[test]
    fn topk_overlap_detects_reordering() {
        let a = Tensor::from_vec(&[1, 4], vec![4.0, 3.0, 2.0, 1.0]);
        let b = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        // top-2 of a = {0,1}, of b = {2,3} → zero overlap.
        let r = compare_outputs(&a, &b, 2);
        assert_eq!(r.task_agreement, 0.0);
        // top-4 trivially overlaps fully.
        assert_eq!(compare_outputs(&a, &b, 4).task_agreement, 1.0);
    }

    #[test]
    fn mask_agreement_counts_matching_pixels() {
        let a = Tensor::from_vec(&[1, 1, 2, 2], vec![0.9, 0.1, 0.8, 0.2]);
        let b = Tensor::from_vec(&[1, 1, 2, 2], vec![0.7, 0.3, 0.1, 0.4]);
        // thresholded: a = [1,0,1,0], b = [1,0,0,0] → 3/4 agree.
        let r = compare_outputs(&a, &b, 5);
        assert!((r.task_agreement - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dice_score_known_values() {
        let a = Tensor::from_vec(&[4], vec![1.0, 1.0, 0.0, 0.0]);
        let b = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        // |A|=2, |B|=2, inter=1 → dice = 2/4.
        assert!((dice_score(&a, &b, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(dice_score(&a, &a, 0.5), 1.0);
    }

    #[test]
    fn perfect_dice_on_empty_masks() {
        let z = Tensor::zeros(&[8]);
        assert_eq!(dice_score(&z, &z, 0.5), 1.0);
    }
}
