//! Tensor decompositions of convolution kernels.
//!
//! Implements the three decomposition families of the paper's Figure 1 on
//! 4-D convolution weights `[c_out, c_in, kh, kw]`:
//!
//! * **Tucker-2** (the paper's evaluation baseline, ratio 0.1): HOSVD
//!   initialization + HOOI refinement on the two channel modes, producing
//!   `fconv (1×1) → core (kh×kw) → lconv (1×1)`;
//! * **CP** (Lebedev-style): rank-R ALS producing
//!   `fconv (1×1) → depthwise (kh×1) → depthwise (1×kw) → lconv (1×1)`;
//! * **Tensor-Train**: TT-SVD over the `(c_in, kh, kw, c_out)` ordering,
//!   producing `fconv (1×1) → core (kh×1) → core (1×kw) → lconv (1×1)`.
//!
//! Every decomposition satisfies the structural contract the TeMCO passes
//! rely on: the first layer is a channel-*reducing* 1×1 convolution
//! (`fconv`) and the last is a channel-*restoring* 1×1 convolution
//! (`lconv`), with small "reduced tensors" flowing in between.

pub mod cp;
pub mod ranks;
pub mod tt;
pub mod tucker;
pub mod unfold;

pub use cp::{cp_decompose, CpConv};
pub use ranks::{cp_rank, tt_ranks, tucker_ranks};
pub use tt::{tt_decompose, TtConv};
pub use tucker::{tucker2, tucker2_reconstruct, Tucker2};

/// Which decomposition family to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Tucker-2 with HOOI refinement (the paper's baseline).
    Tucker,
    /// Canonical Polyadic via ALS.
    Cp,
    /// Tensor-Train via TT-SVD.
    TensorTrain,
}

impl Method {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Tucker => "tucker",
            Method::Cp => "cp",
            Method::TensorTrain => "tt",
        }
    }
}

/// Relative Frobenius reconstruction error `‖w - ŵ‖ / ‖w‖`.
pub fn relative_error(
    original: &temco_tensor::Tensor,
    reconstructed: &temco_tensor::Tensor,
) -> f64 {
    assert_eq!(original.shape(), reconstructed.shape(), "relative_error shape mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (a, b) in original.data().iter().zip(reconstructed.data()) {
        num += ((a - b) as f64).powi(2);
        den += (*a as f64).powi(2);
    }
    (num / den.max(1e-30)).sqrt()
}
