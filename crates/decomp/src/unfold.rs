//! Mode-n unfolding and mode-n products for 4-D tensors (f64 workspace).
//!
//! Convention: `unfold(t, m)` has `dims[m]` rows; its columns enumerate the
//! remaining axes in increasing axis order, row-major (later axes vary
//! fastest). `fold` and `ttm` use the same convention, so
//! `fold(unfold(t, m), m) == t` and reconstruction identities hold by
//! construction (and are property-tested).

use temco_linalg::Mat;
use temco_tensor::Tensor;

/// A 4-D `f64` working tensor.
#[derive(Clone, Debug)]
pub struct Tensor4 {
    /// Dimensions.
    pub dims: [usize; 4],
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Tensor4 {
    /// Convert an `f32` IR tensor (must be 4-D) into the f64 workspace.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.shape().len(), 4, "Tensor4 requires a 4-D tensor");
        let dims = [t.dim(0), t.dim(1), t.dim(2), t.dim(3)];
        Tensor4 { dims, data: t.data().iter().map(|&x| x as f64).collect() }
    }

    /// Convert back to an `f32` tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(&self.dims, self.data.iter().map(|&x| x as f32).collect())
    }

    /// Zero tensor of the given dims.
    pub fn zeros(dims: [usize; 4]) -> Self {
        Tensor4 { dims, data: vec![0.0; dims.iter().product()] }
    }

    /// Linear index for `[i, j, k, l]`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize, l: usize) -> usize {
        ((i * self.dims[1] + j) * self.dims[2] + k) * self.dims[3] + l
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Mode-`m` unfolding: `dims[m] × (numel / dims[m])`.
pub fn unfold(t: &Tensor4, mode: usize) -> Mat {
    assert!(mode < 4, "mode out of range");
    let d = t.dims;
    let rows = d[mode];
    let cols = t.data.len() / rows;
    let mut out = Mat::zeros(rows, cols);
    let others: Vec<usize> = (0..4).filter(|&a| a != mode).collect();
    let mut idx = [0usize; 4];
    for r in 0..rows {
        idx[mode] = r;
        let mut c = 0usize;
        for a in 0..d[others[0]] {
            idx[others[0]] = a;
            for b in 0..d[others[1]] {
                idx[others[1]] = b;
                for e in 0..d[others[2]] {
                    idx[others[2]] = e;
                    out[(r, c)] = t.data[t.idx(idx[0], idx[1], idx[2], idx[3])];
                    c += 1;
                }
            }
        }
    }
    out
}

/// Inverse of [`unfold`]: rebuild a tensor of `dims` from its mode-`m`
/// unfolding.
pub fn fold(m: &Mat, mode: usize, dims: [usize; 4]) -> Tensor4 {
    assert!(mode < 4, "mode out of range");
    assert_eq!(m.rows(), dims[mode], "fold row mismatch");
    let mut t = Tensor4::zeros(dims);
    let others: Vec<usize> = (0..4).filter(|&a| a != mode).collect();
    let mut idx = [0usize; 4];
    for r in 0..dims[mode] {
        idx[mode] = r;
        let mut c = 0usize;
        for a in 0..dims[others[0]] {
            idx[others[0]] = a;
            for b in 0..dims[others[1]] {
                idx[others[1]] = b;
                for e in 0..dims[others[2]] {
                    idx[others[2]] = e;
                    let linear = t.idx(idx[0], idx[1], idx[2], idx[3]);
                    t.data[linear] = m[(r, c)];
                    c += 1;
                }
            }
        }
    }
    t
}

/// Mode-`m` product `t ×_m u`: contracts `dims[m]` with the columns of `u`
/// (`u` is `new_dim × dims[m]`), replacing that axis with `new_dim`.
pub fn ttm(t: &Tensor4, u: &Mat, mode: usize) -> Tensor4 {
    assert_eq!(u.cols(), t.dims[mode], "ttm dimension mismatch");
    let unf = unfold(t, mode);
    let prod = u.matmul(&unf);
    let mut dims = t.dims;
    dims[mode] = u.rows();
    fold(&prod, mode, dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_linalg::Mat;

    fn sample() -> Tensor4 {
        let dims = [2, 3, 2, 2];
        let data = (0..24).map(|i| i as f64).collect();
        Tensor4 { dims, data }
    }

    #[test]
    fn unfold_fold_roundtrip_all_modes() {
        let t = sample();
        for mode in 0..4 {
            let m = unfold(&t, mode);
            let back = fold(&m, mode, t.dims);
            assert_eq!(back.data, t.data, "mode {mode}");
        }
    }

    #[test]
    fn unfold_mode0_rows_are_contiguous_slices() {
        // With our convention, mode-0 unfolding of a row-major tensor is
        // exactly the natural [d0, rest] reshape.
        let t = sample();
        let m = unfold(&t, 0);
        assert_eq!(m.row(0), &t.data[..12]);
        assert_eq!(m.row(1), &t.data[12..]);
    }

    #[test]
    fn ttm_identity_is_noop() {
        let t = sample();
        for mode in 0..4 {
            let e = Mat::eye(t.dims[mode]);
            let r = ttm(&t, &e, mode);
            assert_eq!(r.data, t.data);
        }
    }

    #[test]
    fn ttm_changes_the_right_dim() {
        let t = sample();
        let u = Mat::from_fn(5, 3, |r, c| (r + c) as f64);
        let r = ttm(&t, &u, 1);
        assert_eq!(r.dims, [2, 5, 2, 2]);
    }

    #[test]
    fn ttm_commutes_across_distinct_modes() {
        let t = sample();
        let u0 = Mat::from_fn(4, 2, |r, c| (r * 2 + c) as f64 * 0.5);
        let u1 = Mat::from_fn(2, 3, |r, c| (r + 3 * c) as f64 * 0.25);
        let a = ttm(&ttm(&t, &u0, 0), &u1, 1);
        let b = ttm(&ttm(&t, &u1, 1), &u0, 0);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_conversion_roundtrip() {
        let t = temco_tensor::Tensor::randn(&[2, 3, 4, 5], 3);
        let t4 = Tensor4::from_tensor(&t);
        let back = t4.to_tensor();
        assert!(t.all_close(&back, 1e-6));
    }
}
