//! Tucker-2 decomposition of convolution kernels (the paper's baseline).

use temco_linalg::{leading_evecs_sym, Mat};
use temco_tensor::Tensor;

use crate::unfold::{ttm, unfold, Tensor4};

/// A Tucker-2 factorization of a conv weight `[c_out, c_in, kh, kw]`,
/// already laid out as the three convolution weights of the decomposed
/// sequence in Figure 2b of the paper.
#[derive(Clone, Debug)]
pub struct Tucker2 {
    /// First (reducing) 1×1 convolution weight `[r_in, c_in, 1, 1]`.
    pub fconv: Tensor,
    /// Core convolution weight `[r_out, r_in, kh, kw]`.
    pub core: Tensor,
    /// Last (restoring) 1×1 convolution weight `[c_out, r_out, 1, 1]`.
    pub lconv: Tensor,
}

impl Tucker2 {
    /// `(r_out, r_in)` ranks of the factorization.
    pub fn ranks(&self) -> (usize, usize) {
        (self.core.dim(0), self.core.dim(1))
    }

    /// Total parameter count of the three factors.
    pub fn param_count(&self) -> usize {
        self.fconv.numel() + self.core.numel() + self.lconv.numel()
    }
}

/// Tucker-2 decomposition with HOSVD initialization and `hooi_iters` rounds
/// of HOOI refinement on the two channel modes.
///
/// `weight` is `[c_out, c_in, kh, kw]`; the spatial modes are kept intact
/// (that is what makes the core a `kh×kw` convolution).
///
/// # Panics
/// Panics if ranks exceed the channel dims or the weight is not 4-D.
pub fn tucker2(weight: &Tensor, r_out: usize, r_in: usize, hooi_iters: usize) -> Tucker2 {
    assert_eq!(weight.shape().len(), 4, "tucker2 expects a 4-D conv weight");
    let (c_out, c_in) = (weight.dim(0), weight.dim(1));
    assert!(r_out >= 1 && r_out <= c_out, "r_out {r_out} out of range (c_out {c_out})");
    assert!(r_in >= 1 && r_in <= c_in, "r_in {r_in} out of range (c_in {c_in})");

    let w = Tensor4::from_tensor(weight);

    // HOSVD init: leading eigenvectors of the mode Gram matrices.
    let mut u0 = leading_evecs(&unfold(&w, 0), r_out); // c_out × r_out
    let mut u1 = leading_evecs(&unfold(&w, 1), r_in); // c_in × r_in

    // HOOI: alternately re-fit each factor against the other's projection.
    for _ in 0..hooi_iters {
        let proj1 = ttm(&w, &u1.transpose(), 1); // contract c_in → r_in
        u0 = leading_evecs(&unfold(&proj1, 0), r_out);
        let proj0 = ttm(&w, &u0.transpose(), 0); // contract c_out → r_out
        u1 = leading_evecs(&unfold(&proj0, 1), r_in);
    }

    // Core: G = W ×0 U0ᵀ ×1 U1ᵀ  →  [r_out, r_in, kh, kw].
    let core4 = ttm(&ttm(&w, &u0.transpose(), 0), &u1.transpose(), 1);

    let fconv = mat_to_conv1x1(&u1.transpose()); // [r_in, c_in, 1, 1]
    let lconv = mat_to_conv1x1(&u0); // [c_out, r_out, 1, 1]
    Tucker2 { fconv, core: core4.to_tensor(), lconv }
}

/// Reconstruct the full kernel `Ŵ = G ×0 U0 ×1 U1` for error measurement.
pub fn tucker2_reconstruct(t: &Tucker2) -> Tensor {
    let core = Tensor4::from_tensor(&t.core);
    let u0 = conv1x1_to_mat(&t.lconv); // c_out × r_out
    let u1 = conv1x1_to_mat(&t.fconv).transpose(); // c_in × r_in
    let rec = ttm(&ttm(&core, &u0, 0), &u1, 1);
    rec.to_tensor()
}

/// Leading `k` eigenvectors (as columns) of `m mᵀ`.
fn leading_evecs(m: &Mat, k: usize) -> Mat {
    leading_evecs_sym(&m.gram(), k, 8)
}

/// `[r, c]` matrix → `[r, c, 1, 1]` conv weight.
fn mat_to_conv1x1(m: &Mat) -> Tensor {
    Tensor::from_vec(&[m.rows(), m.cols(), 1, 1], m.as_slice().iter().map(|&x| x as f32).collect())
}

/// `[r, c, 1, 1]` conv weight → `[r, c]` matrix.
fn conv1x1_to_mat(t: &Tensor) -> Mat {
    assert_eq!(t.dim(2), 1);
    assert_eq!(t.dim(3), 1);
    Mat::from_vec(t.dim(0), t.dim(1), t.data().iter().map(|&x| x as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative_error;
    use temco_tensor::{conv2d, Conv2dParams};

    /// Build an exactly Tucker-2-rank-(ro, ri) kernel.
    fn low_rank_kernel(c_out: usize, c_in: usize, k: usize, ro: usize, ri: usize) -> Tensor {
        let g = Tensor4::from_tensor(&Tensor::randn(&[ro, ri, k, k], 11));
        let u0 = Mat::from_fn(c_out, ro, |r, c| (((r * 13 + c * 7) % 9) as f64 - 4.0) / 4.0);
        let u1 = Mat::from_fn(c_in, ri, |r, c| (((r * 5 + c * 11) % 7) as f64 - 3.0) / 3.0);
        ttm(&ttm(&g, &u0, 0), &u1, 1).to_tensor()
    }

    #[test]
    fn shapes_follow_figure_2b() {
        let w = Tensor::randn(&[16, 8, 3, 3], 1);
        let t = tucker2(&w, 4, 2, 2);
        assert_eq!(t.fconv.shape(), &[2, 8, 1, 1]);
        assert_eq!(t.core.shape(), &[4, 2, 3, 3]);
        assert_eq!(t.lconv.shape(), &[16, 4, 1, 1]);
    }

    #[test]
    fn exact_recovery_of_low_rank_kernel() {
        let w = low_rank_kernel(12, 10, 3, 3, 2);
        let t = tucker2(&w, 3, 2, 2);
        let rec = tucker2_reconstruct(&t);
        assert!(relative_error(&w, &rec) < 1e-4, "err {}", relative_error(&w, &rec));
    }

    #[test]
    fn error_decreases_with_rank() {
        let w = Tensor::randn(&[16, 16, 3, 3], 5);
        let errs: Vec<f64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&r| relative_error(&w, &tucker2_reconstruct(&tucker2(&w, r, r, 2))))
            .collect();
        for pair in errs.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "{errs:?}");
        }
        // Full rank must be (numerically) exact.
        assert!(errs[3] < 1e-4, "{errs:?}");
    }

    #[test]
    fn hooi_does_not_hurt_fit() {
        let w = Tensor::randn(&[20, 12, 3, 3], 9);
        let e0 = relative_error(&w, &tucker2_reconstruct(&tucker2(&w, 5, 3, 0)));
        let e3 = relative_error(&w, &tucker2_reconstruct(&tucker2(&w, 5, 3, 3)));
        assert!(e3 <= e0 + 1e-6, "HOSVD {e0} vs HOOI {e3}");
    }

    #[test]
    fn decomposed_sequence_matches_reconstructed_conv() {
        // conv(x, Ŵ) must equal fconv → core → lconv applied in sequence.
        let w = Tensor::randn(&[8, 6, 3, 3], 21);
        let t = tucker2(&w, 3, 2, 2);
        let rec = tucker2_reconstruct(&t);

        let x = Tensor::randn(&[2, 6, 9, 9], 22);
        let p = Conv2dParams::new(1, 1);
        let direct = conv2d(&x, &rec, None, &p);

        let p1x1 = Conv2dParams::default();
        let reduced1 = conv2d(&x, &t.fconv, None, &p1x1);
        let reduced2 = conv2d(&reduced1, &t.core, None, &p);
        let restored = conv2d(&reduced2, &t.lconv, None, &p1x1);

        assert!(direct.all_close(&restored, 1e-3), "diff {}", direct.max_abs_diff(&restored));
    }

    #[test]
    fn works_on_1x1_kernels() {
        // DenseNet bottlenecks are 1×1; Tucker-2 degrades to a two-sided SVD.
        let w = Tensor::randn(&[32, 16, 1, 1], 31);
        let t = tucker2(&w, 8, 4, 1);
        assert_eq!(t.core.shape(), &[8, 4, 1, 1]);
        let rec = tucker2_reconstruct(&t);
        assert_eq!(rec.shape(), w.shape());
    }

    #[test]
    fn param_count_shrinks_at_low_rank() {
        let w = Tensor::randn(&[64, 64, 3, 3], 41);
        let t = tucker2(&w, 7, 7, 1);
        assert!(t.param_count() < w.numel() / 10);
    }
}
