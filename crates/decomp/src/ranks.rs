//! Rank-selection policy: the paper's "decomposition ratio".
//!
//! The evaluation applies Tucker with ratio 0.1: each channel mode's rank is
//! the ratio times the channel count, floored at 1. CP and TT translate the
//! same ratio into their own rank structures.

/// Tucker-2 ranks `(r_out, r_in)` for a `[c_out, c_in, ..]` kernel.
pub fn tucker_ranks(c_out: usize, c_in: usize, ratio: f64) -> (usize, usize) {
    (rank_of(c_out, ratio), rank_of(c_in, ratio))
}

/// CP rank for a `[c_out, c_in, ..]` kernel: ratio times the larger channel
/// count (a single rank must carry both modes).
pub fn cp_rank(c_out: usize, c_in: usize, ratio: f64) -> usize {
    rank_of(c_out.max(c_in), ratio)
}

/// TT ranks `(r1, r2, r3)` for a `[c_out, c_in, kh, kw]` kernel.
pub fn tt_ranks(c_out: usize, c_in: usize, ratio: f64) -> (usize, usize, usize) {
    let r1 = rank_of(c_in, ratio);
    let r3 = rank_of(c_out, ratio);
    // The middle rank bridges the spatial cores; give it the larger of the
    // two channel ranks so it is never the bottleneck of the chain.
    (r1, r1.max(r3), r3)
}

fn rank_of(channels: usize, ratio: f64) -> usize {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1], got {ratio}");
    ((channels as f64 * ratio).round() as usize).clamp(1, channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_on_vgg_conv() {
        // 512→512 conv at ratio 0.1 → ranks (51, 51).
        assert_eq!(tucker_ranks(512, 512, 0.1), (51, 51));
    }

    #[test]
    fn rank_never_below_one() {
        assert_eq!(tucker_ranks(3, 3, 0.1), (1, 1));
        assert_eq!(cp_rank(2, 2, 0.01), 1);
    }

    #[test]
    fn rank_never_exceeds_channels() {
        assert_eq!(tucker_ranks(4, 4, 1.0), (4, 4));
    }

    #[test]
    fn tt_middle_rank_bridges_both_sides() {
        let (r1, r2, r3) = tt_ranks(64, 128, 0.1);
        assert_eq!(r1, 13);
        assert_eq!(r3, 6);
        assert_eq!(r2, 13);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn zero_ratio_panics() {
        tucker_ranks(8, 8, 0.0);
    }
}
