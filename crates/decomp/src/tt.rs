//! Tensor-Train decomposition via TT-SVD.

use temco_linalg::{truncated_svd, Mat};
use temco_tensor::Tensor;

/// A TT factorization of a conv weight `[c_out, c_in, kh, kw]`, laid out as
/// the four convolution weights of the decomposed sequence: pointwise
/// factor convolutions around two spatially-separable core convolutions.
#[derive(Clone, Debug)]
pub struct TtConv {
    /// Reducing 1×1 convolution `[r1, c_in, 1, 1]`.
    pub fconv: Tensor,
    /// Vertical core convolution `[r2, r1, kh, 1]`.
    pub core_h: Tensor,
    /// Horizontal core convolution `[r3, r2, 1, kw]`.
    pub core_w: Tensor,
    /// Restoring 1×1 convolution `[c_out, r3, 1, 1]`.
    pub lconv: Tensor,
}

impl TtConv {
    /// `(r1, r2, r3)` TT ranks.
    pub fn ranks(&self) -> (usize, usize, usize) {
        (self.fconv.dim(0), self.core_h.dim(0), self.core_w.dim(0))
    }

    /// Total parameter count of the four factors.
    pub fn param_count(&self) -> usize {
        self.fconv.numel() + self.core_h.numel() + self.core_w.numel() + self.lconv.numel()
    }

    /// Reconstruct the full kernel
    /// `Ŵ[o,i,h,w] = Σ U1[i,r1] G2[r1,h,r2] G3[r2,w,r3] G4[r3,o]`.
    pub fn reconstruct(&self) -> Tensor {
        let (r1, r2, r3) = self.ranks();
        let c_in = self.fconv.dim(1);
        let c_out = self.lconv.dim(0);
        let (kh, kw) = (self.core_h.dim(2), self.core_w.dim(3));
        let mut out = Tensor::zeros(&[c_out, c_in, kh, kw]);
        for o in 0..c_out {
            for i in 0..c_in {
                for h in 0..kh {
                    for w in 0..kw {
                        let mut s = 0.0f32;
                        for a in 0..r1 {
                            for b in 0..r2 {
                                for c in 0..r3 {
                                    s += self.fconv.at4(a, i, 0, 0)
                                        * self.core_h.at4(b, a, h, 0)
                                        * self.core_w.at4(c, b, 0, w)
                                        * self.lconv.at4(o, c, 0, 0);
                                }
                            }
                        }
                        *out.at4_mut(o, i, h, w) = s;
                    }
                }
            }
        }
        out
    }
}

/// TT-SVD over the `(c_in, kh, kw, c_out)` axis ordering with target ranks
/// `(r1, r2, r3)` (each clamped to its feasible maximum).
pub fn tt_decompose(weight: &Tensor, ranks: (usize, usize, usize)) -> TtConv {
    assert_eq!(weight.shape().len(), 4, "tt expects a 4-D conv weight");
    let (c_out, c_in, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));

    // Permute to (c_in, kh, kw, c_out), row-major.
    let mut perm = vec![0.0f64; weight.numel()];
    for o in 0..c_out {
        for i in 0..c_in {
            for h in 0..kh {
                for w in 0..kw {
                    perm[((i * kh + h) * kw + w) * c_out + o] = weight.at4(o, i, h, w) as f64;
                }
            }
        }
    }

    let r1 = ranks.0.clamp(1, c_in.min(kh * kw * c_out));
    // Step 1: (c_in) × (kh·kw·c_out)
    let m1 = Mat::from_vec(c_in, kh * kw * c_out, perm);
    let s1 = truncated_svd(&m1, r1);
    let r1 = s1.s.len(); // may shrink if numerically rank-deficient
    let u1 = s1.u.clone(); // c_in × r1
    let rest1 = scale_rows(&s1.vt, &s1.s); // r1 × (kh·kw·c_out)

    // Step 2: (r1·kh) × (kw·c_out) — row-major reshape is free.
    let r2 = ranks.1.clamp(1, (r1 * kh).min(kw * c_out));
    let m2 = Mat::from_vec(r1 * kh, kw * c_out, rest1.into_vec());
    let s2 = truncated_svd(&m2, r2);
    let r2 = s2.s.len();
    let u2 = s2.u.clone(); // (r1·kh) × r2
    let rest2 = scale_rows(&s2.vt, &s2.s); // r2 × (kw·c_out)

    // Step 3: (r2·kw) × c_out
    let r3 = ranks.2.clamp(1, (r2 * kw).min(c_out));
    let m3 = Mat::from_vec(r2 * kw, c_out, rest2.into_vec());
    let s3 = truncated_svd(&m3, r3);
    let r3 = s3.s.len();
    let u3 = s3.u.clone(); // (r2·kw) × r3
    let g4 = scale_rows(&s3.vt, &s3.s); // r3 × c_out

    // Lay the cores out as conv weights.
    let mut fconv = Tensor::zeros(&[r1, c_in, 1, 1]);
    for a in 0..r1 {
        for i in 0..c_in {
            *fconv.at4_mut(a, i, 0, 0) = u1[(i, a)] as f32;
        }
    }
    let mut core_h = Tensor::zeros(&[r2, r1, kh, 1]);
    for b in 0..r2 {
        for a in 0..r1 {
            for h in 0..kh {
                *core_h.at4_mut(b, a, h, 0) = u2[(a * kh + h, b)] as f32;
            }
        }
    }
    let mut core_w = Tensor::zeros(&[r3, r2, 1, kw]);
    for c in 0..r3 {
        for b in 0..r2 {
            for w in 0..kw {
                *core_w.at4_mut(c, b, 0, w) = u3[(b * kw + w, c)] as f32;
            }
        }
    }
    let mut lconv = Tensor::zeros(&[c_out, r3, 1, 1]);
    for o in 0..c_out {
        for c in 0..r3 {
            *lconv.at4_mut(o, c, 0, 0) = g4[(c, o)] as f32;
        }
    }
    TtConv { fconv, core_h, core_w, lconv }
}

/// Multiply row `r` of `m` by `s[r]`.
fn scale_rows(m: &Mat, s: &[f64]) -> Mat {
    let mut out = m.clone();
    for (r, &sv) in s.iter().enumerate() {
        for x in out.row_mut(r) {
            *x *= sv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative_error;
    use temco_tensor::{conv2d, Conv2dParams};

    #[test]
    fn shapes_follow_tt_layout() {
        let w = Tensor::randn(&[8, 6, 3, 3], 1);
        let tt = tt_decompose(&w, (4, 5, 6));
        assert_eq!(tt.fconv.shape(), &[4, 6, 1, 1]);
        assert_eq!(tt.core_h.dim(1), 4);
        assert_eq!(tt.core_w.dim(1), tt.core_h.dim(0));
        assert_eq!(tt.lconv.shape()[0], 8);
    }

    #[test]
    fn full_rank_tt_is_exact() {
        let w = Tensor::randn(&[5, 4, 3, 3], 3);
        // Generous ranks: TT-SVD with untruncated ranks is exact.
        let tt = tt_decompose(&w, (4, 12, 5));
        let err = relative_error(&w, &tt.reconstruct());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn error_decreases_with_rank() {
        let w = Tensor::randn(&[12, 12, 3, 3], 5);
        let errs: Vec<f64> = [2usize, 4, 8, 12]
            .iter()
            .map(|&r| {
                let tt = tt_decompose(&w, (r, 2 * r, r));
                relative_error(&w, &tt.reconstruct())
            })
            .collect();
        for pair in errs.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "{errs:?}");
        }
    }

    #[test]
    fn decomposed_sequence_matches_reconstructed_conv() {
        let w = Tensor::randn(&[6, 4, 3, 3], 13);
        let tt = tt_decompose(&w, (3, 5, 4));
        let rec = tt.reconstruct();

        let x = Tensor::randn(&[2, 4, 7, 7], 14);
        let p = Conv2dParams::new(1, 1);
        let direct = conv2d(&x, &rec, None, &p);

        let z1 = conv2d(&x, &tt.fconv, None, &Conv2dParams::default());
        let ph = Conv2dParams { stride: (1, 1), padding: (1, 0), groups: 1 };
        let z2 = conv2d(&z1, &tt.core_h, None, &ph);
        let pw = Conv2dParams { stride: (1, 1), padding: (0, 1), groups: 1 };
        let z3 = conv2d(&z2, &tt.core_w, None, &pw);
        let out = conv2d(&z3, &tt.lconv, None, &Conv2dParams::default());

        assert!(direct.all_close(&out, 1e-3), "diff {}", direct.max_abs_diff(&out));
    }

    #[test]
    fn ranks_are_clamped_to_feasible_values() {
        let w = Tensor::randn(&[4, 3, 3, 3], 19);
        let tt = tt_decompose(&w, (100, 100, 100));
        let (r1, r2, r3) = tt.ranks();
        assert!(r1 <= 3);
        assert!(r2 <= r1 * 3);
        assert!(r3 <= 4);
    }
}
