//! Canonical Polyadic decomposition via ALS (Lebedev-style conv splitting).

use temco_linalg::{solve_ridge, Mat};
use temco_tensor::Tensor;

use crate::unfold::Tensor4;

/// A rank-R CP factorization of a conv weight laid out as the four
/// convolution weights of the decomposed sequence: two pointwise factor
/// convolutions around a separable depthwise pair.
#[derive(Clone, Debug)]
pub struct CpConv {
    /// Reducing 1×1 convolution `[r, c_in, 1, 1]`.
    pub fconv: Tensor,
    /// Depthwise vertical convolution `[r, 1, kh, 1]` (groups = r).
    pub conv_h: Tensor,
    /// Depthwise horizontal convolution `[r, 1, 1, kw]` (groups = r).
    pub conv_w: Tensor,
    /// Restoring 1×1 convolution `[c_out, r, 1, 1]`.
    pub lconv: Tensor,
}

impl CpConv {
    /// CP rank.
    pub fn rank(&self) -> usize {
        self.fconv.dim(0)
    }

    /// Total parameter count of the four factors.
    pub fn param_count(&self) -> usize {
        self.fconv.numel() + self.conv_h.numel() + self.conv_w.numel() + self.lconv.numel()
    }

    /// Reconstruct the full kernel
    /// `Ŵ[o,i,h,w] = Σ_r A[o,r] B[i,r] C[h,r] D[w,r]`.
    pub fn reconstruct(&self) -> Tensor {
        let r = self.rank();
        let (c_out, c_in) = (self.lconv.dim(0), self.fconv.dim(1));
        let (kh, kw) = (self.conv_h.dim(2), self.conv_w.dim(3));
        let mut out = Tensor::zeros(&[c_out, c_in, kh, kw]);
        for o in 0..c_out {
            for i in 0..c_in {
                for h in 0..kh {
                    for w in 0..kw {
                        let mut s = 0.0f32;
                        for rr in 0..r {
                            s += self.lconv.at4(o, rr, 0, 0)
                                * self.fconv.at4(rr, i, 0, 0)
                                * self.conv_h.at4(rr, 0, h, 0)
                                * self.conv_w.at4(rr, 0, 0, w);
                        }
                        *out.at4_mut(o, i, h, w) = s;
                    }
                }
            }
        }
        out
    }
}

/// Rank-`rank` CP decomposition of `weight [c_out, c_in, kh, kw]` by
/// alternating least squares with `iters` full rounds.
///
/// Factor columns are normalized each round with the scale absorbed into the
/// output-channel factor, the standard ALS conditioning trick.
pub fn cp_decompose(weight: &Tensor, rank: usize, iters: usize) -> CpConv {
    assert_eq!(weight.shape().len(), 4, "cp expects a 4-D conv weight");
    assert!(rank >= 1, "rank must be positive");
    let w = Tensor4::from_tensor(weight);
    let dims = w.dims;

    // Deterministic random init, scaled small.
    let mut factors: Vec<Mat> = (0..4)
        .map(|m| {
            let t = Tensor::rand_uniform(&[dims[m], rank], 1000 + m as u64, -1.0, 1.0);
            Mat::from_vec(dims[m], rank, t.data().iter().map(|&x| x as f64).collect())
        })
        .collect();

    for _ in 0..iters {
        for mode in 0..4 {
            let g = mttkrp(&w, &factors, mode, rank);
            // H = Hadamard product of the other factors' Grams.
            let mut h = Mat::from_fn(rank, rank, |_, _| 1.0);
            for (m, f) in factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let gram = f.transpose().matmul(f);
                for r in 0..rank {
                    for c in 0..rank {
                        h[(r, c)] *= gram[(r, c)];
                    }
                }
            }
            // Solve H Xᵀ = Gᵀ  →  X = G H⁻¹ (ridge keeps H invertible).
            let xt = solve_ridge(&h, &g.transpose(), 1e-10);
            factors[mode] = xt.transpose();
            if mode != 0 {
                normalize_into_mode0(&mut factors, mode, rank);
            }
        }
    }

    let (a, b, c, d) = (&factors[0], &factors[1], &factors[2], &factors[3]);
    let to_f32 = |m: &Mat| -> Vec<f32> { m.as_slice().iter().map(|&x| x as f32).collect() };

    // fconv = Bᵀ as [r, c_in, 1, 1]
    let fconv = Tensor::from_vec(&[rank, dims[1], 1, 1], to_f32(&b.transpose()));
    // conv_h from C [kh, r] → [r, 1, kh, 1]
    let mut conv_h = Tensor::zeros(&[rank, 1, dims[2], 1]);
    for r in 0..rank {
        for h in 0..dims[2] {
            *conv_h.at4_mut(r, 0, h, 0) = c[(h, r)] as f32;
        }
    }
    // conv_w from D [kw, r] → [r, 1, 1, kw]
    let mut conv_w = Tensor::zeros(&[rank, 1, 1, dims[3]]);
    for r in 0..rank {
        for w_i in 0..dims[3] {
            *conv_w.at4_mut(r, 0, 0, w_i) = d[(w_i, r)] as f32;
        }
    }
    // lconv = A as [c_out, r, 1, 1]
    let lconv = Tensor::from_vec(&[dims[0], rank, 1, 1], to_f32(a));
    CpConv { fconv, conv_h, conv_w, lconv }
}

/// Matricized tensor times Khatri–Rao product, computed by direct iteration
/// (clarity over speed; kernels are at most a few MiB).
fn mttkrp(w: &Tensor4, factors: &[Mat], mode: usize, rank: usize) -> Mat {
    let d = w.dims;
    let mut g = Mat::zeros(d[mode], rank);
    let mut idx = [0usize; 4];
    for i0 in 0..d[0] {
        idx[0] = i0;
        for i1 in 0..d[1] {
            idx[1] = i1;
            for i2 in 0..d[2] {
                idx[2] = i2;
                for i3 in 0..d[3] {
                    idx[3] = i3;
                    let x = w.data[w.idx(i0, i1, i2, i3)];
                    if x == 0.0 {
                        continue;
                    }
                    let row = idx[mode];
                    for r in 0..rank {
                        let mut prod = x;
                        for (m, f) in factors.iter().enumerate() {
                            if m != mode {
                                prod *= f[(idx[m], r)];
                            }
                        }
                        g[(row, r)] += prod;
                    }
                }
            }
        }
    }
    g
}

/// Normalize the columns of `factors[mode]` to unit norm, pushing the scale
/// into the mode-0 (output-channel) factor.
fn normalize_into_mode0(factors: &mut [Mat], mode: usize, rank: usize) {
    for r in 0..rank {
        let norm: f64 =
            (0..factors[mode].rows()).map(|i| factors[mode][(i, r)].powi(2)).sum::<f64>().sqrt();
        if norm < 1e-30 {
            continue;
        }
        for i in 0..factors[mode].rows() {
            factors[mode][(i, r)] /= norm;
        }
        for i in 0..factors[0].rows() {
            factors[0][(i, r)] *= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative_error;
    use temco_tensor::{conv2d, Conv2dParams};

    fn rank_k_kernel(c_out: usize, c_in: usize, kh: usize, kw: usize, k: usize) -> Tensor {
        let a = Tensor::rand_uniform(&[c_out, k], 1, -1.0, 1.0);
        let b = Tensor::rand_uniform(&[c_in, k], 2, -1.0, 1.0);
        let c = Tensor::rand_uniform(&[kh, k], 3, -1.0, 1.0);
        let d = Tensor::rand_uniform(&[kw, k], 4, -1.0, 1.0);
        let mut out = Tensor::zeros(&[c_out, c_in, kh, kw]);
        for o in 0..c_out {
            for i in 0..c_in {
                for h in 0..kh {
                    for w in 0..kw {
                        let mut s = 0.0;
                        for r in 0..k {
                            s += a.data()[o * k + r]
                                * b.data()[i * k + r]
                                * c.data()[h * k + r]
                                * d.data()[w * k + r];
                        }
                        *out.at4_mut(o, i, h, w) = s;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn shapes_follow_separable_layout() {
        let w = Tensor::randn(&[8, 6, 3, 5], 1);
        let cp = cp_decompose(&w, 4, 3);
        assert_eq!(cp.fconv.shape(), &[4, 6, 1, 1]);
        assert_eq!(cp.conv_h.shape(), &[4, 1, 3, 1]);
        assert_eq!(cp.conv_w.shape(), &[4, 1, 1, 5]);
        assert_eq!(cp.lconv.shape(), &[8, 4, 1, 1]);
    }

    #[test]
    fn recovers_rank_one_kernel_exactly() {
        let w = rank_k_kernel(6, 5, 3, 3, 1);
        let cp = cp_decompose(&w, 1, 30);
        assert!(relative_error(&w, &cp.reconstruct()) < 1e-3);
    }

    #[test]
    fn recovers_low_rank_kernel_well() {
        let w = rank_k_kernel(8, 8, 3, 3, 2);
        let cp = cp_decompose(&w, 3, 60);
        assert!(
            relative_error(&w, &cp.reconstruct()) < 0.05,
            "err {}",
            relative_error(&w, &cp.reconstruct())
        );
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let w = Tensor::randn(&[6, 6, 3, 3], 7);
        let e5 = relative_error(&w, &cp_decompose(&w, 4, 5).reconstruct());
        let e40 = relative_error(&w, &cp_decompose(&w, 4, 40).reconstruct());
        assert!(e40 <= e5 + 1e-6, "{e5} vs {e40}");
    }

    #[test]
    fn decomposed_sequence_matches_reconstructed_conv() {
        let w = Tensor::randn(&[6, 4, 3, 3], 17);
        let cp = cp_decompose(&w, 5, 40);
        let rec = cp.reconstruct();

        let x = Tensor::randn(&[1, 4, 8, 8], 18);
        let p = Conv2dParams::new(1, 1);
        let direct = conv2d(&x, &rec, None, &p);

        let r = cp.rank();
        let z1 = conv2d(&x, &cp.fconv, None, &Conv2dParams::default());
        let ph = Conv2dParams { stride: (1, 1), padding: (1, 0), groups: r };
        let z2 = conv2d(&z1, &cp.conv_h, None, &ph);
        let pw = Conv2dParams { stride: (1, 1), padding: (0, 1), groups: r };
        let z3 = conv2d(&z2, &cp.conv_w, None, &pw);
        let out = conv2d(&z3, &cp.lconv, None, &Conv2dParams::default());

        assert!(direct.all_close(&out, 1e-3), "diff {}", direct.max_abs_diff(&out));
    }
}
