//! Property tests for the decomposition crate: structural contracts and
//! error monotonicity over random kernel shapes.

use proptest::prelude::*;
use temco_decomp::{
    cp_decompose, relative_error, tt_decompose, tucker2, tucker2_reconstruct, tucker_ranks,
};
use temco_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn tucker_shapes_and_error_bounds(
        c_out in 2usize..20,
        c_in in 2usize..20,
        k in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        seed in 0u64..500,
    ) {
        let w = Tensor::randn(&[c_out, c_in, k, k], seed);
        let (ro, ri) = tucker_ranks(c_out, c_in, 0.5);
        let t = tucker2(&w, ro, ri, 1);
        // Structural contract: fconv reduces, lconv restores.
        let fshape = [ri, c_in, 1, 1];
        let cshape = [ro, ri, k, k];
        let lshape = [c_out, ro, 1, 1];
        prop_assert_eq!(t.fconv.shape(), &fshape);
        prop_assert_eq!(t.core.shape(), &cshape);
        prop_assert_eq!(t.lconv.shape(), &lshape);
        // The reconstruction is a projection: error within [0, ~1] for
        // random kernels (cannot exceed the original's norm).
        let err = relative_error(&w, &tucker2_reconstruct(&t));
        prop_assert!((0.0..=1.0 + 1e-6).contains(&err), "err {}", err);
    }

    #[test]
    fn tucker_error_monotone_in_rank(
        c in 4usize..16,
        seed in 0u64..500,
    ) {
        let w = Tensor::randn(&[c, c, 3, 3], seed);
        let mut last = f64::INFINITY;
        for r in [1usize, c / 2, c] {
            let r = r.max(1);
            let t = tucker2(&w, r, r, 1);
            let err = relative_error(&w, &tucker2_reconstruct(&t));
            prop_assert!(err <= last + 1e-6, "rank {} err {} > prev {}", r, err, last);
            last = err;
        }
        // Full rank is (numerically) exact.
        prop_assert!(last < 1e-3, "full-rank error {}", last);
    }

    #[test]
    fn tt_ranks_are_feasible_for_any_request(
        c_out in 2usize..16,
        c_in in 2usize..16,
        r1 in 1usize..40,
        r2 in 1usize..40,
        r3 in 1usize..40,
        seed in 0u64..300,
    ) {
        let w = Tensor::randn(&[c_out, c_in, 3, 3], seed);
        let tt = tt_decompose(&w, (r1, r2, r3));
        let (a, b, c) = tt.ranks();
        prop_assert!(a <= c_in.min(9 * c_out));
        prop_assert!(b <= (a * 3).min(3 * c_out));
        prop_assert!(c <= (b * 3).min(c_out));
        let rec = tt.reconstruct();
        prop_assert_eq!(rec.shape(), w.shape());
    }

    #[test]
    fn cp_parameters_scale_linearly_with_rank(
        c in 3usize..10,
        r in 1usize..6,
        seed in 0u64..200,
    ) {
        let w = Tensor::randn(&[c, c, 3, 3], seed);
        let cp = cp_decompose(&w, r, 2);
        prop_assert_eq!(cp.rank(), r);
        prop_assert_eq!(cp.param_count(), r * (c + 3 + 3 + c));
    }
}
