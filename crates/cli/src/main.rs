//! `temco` — command-line front end for the TeMCO compiler.
//!
//! ```text
//! temco list
//! temco compile vgg16 --level skip-opt+fusion --ratio 0.1 --image 224 --batch 4
//! temco run unet_small --level fusion --image 64
//! temco dot resnet18 --level skip-opt+fusion > resnet18.dot
//! temco profile resnet34 --level skip-opt+fusion --trace resnet34.trace.json
//! temco serve alexnet --addr 127.0.0.1:7077 --workers 4 --max-batch 8 --max-conns 2048
//! temco loadgen --addr 127.0.0.1:7077 --clients 8 --requests 64 --shutdown
//! ```

use std::process::ExitCode;
use std::time::Duration;

use temco::{compare_outputs, Compiler, CompilerOptions, DecomposeOptions, Method, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_allocation_with_mode, plan_memory, AliasMode, ExecOptions};
use temco_tensor::Tensor;

/// Parsed command-line options.
struct Cli {
    command: String,
    model: Option<ModelId>,
    level: OptLevel,
    method: Method,
    ratio: f64,
    image: usize,
    batch: usize,
    classes: usize,
    reschedule: bool,
    save: Option<String>,
    addr: String,
    workers: usize,
    max_batch: usize,
    max_delay_ms: u64,
    queue_cap: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    clients: usize,
    requests: usize,
    deadline_ms: u32,
    shutdown: bool,
    iters: usize,
    seed: u64,
    seed_set: bool,
    faults: usize,
    reps: usize,
    reps_set: bool,
    trace: Option<String>,
    metrics: bool,
    db: Option<String>,
    trials: usize,
    smoke: bool,
    shapes: bool,
}

fn usage() -> ! {
    eprintln!(
        "temco — Tensor Memory Compiler Optimization

USAGE:
  temco list                          list the 10 zoo models
  temco compile <model> [opts]        compile and print memory/pass report
  temco run <model> [opts]            compile, execute, and verify semantics
  temco dot <model> [opts]            emit the optimized graph as Graphviz DOT
  temco plan <model> [opts]           alias-aware allocation plan vs the alias-free layout
  temco info <model.temco>            describe a saved .temco model file
  temco profile <model> [opts]        per-node kernel timing + slab attribution
  temco serve <model> [opts]          serve the model over TCP (dynamic batching)
  temco loadgen [opts]                closed-loop load against a serve instance
  temco check [opts]                  differential + fault-injection harness
  temco tune <model|--shapes> [opts]  search kernel schedules, persist winners

OPTIONS:
  --level <decomposed|fusion|skip-opt|skip-opt+fusion>   (default: skip-opt+fusion)
  --method <tucker|cp|tt>                                (default: tucker)
  --ratio <f64>        decomposition ratio               (default: 0.1)
  --image <n>          input resolution                  (default: 64)
  --batch <n>          batch size                        (default: 4)
  --classes <n>        classifier width                  (default: 1000)
  --reschedule         apply the memory-aware scheduler
  --save <path>        (compile) write the optimized model as .temco

PROFILE OPTIONS:
  --reps <n>           recorded inference repetitions    (default: 10)
  --trace <path>       write spans as chrome://tracing JSON
  --db <path>          compile with schedules from this tuning DB

TUNE OPTIONS:
  --shapes             tune the built-in hot-shape suite instead of a model
  --trials <n>         candidate schedules per shape group (default: 8)
  --seed <n>           search seed                        (default: 42)
  --reps <n>           timed runs per candidate, median   (default: 3)
  --db <path>          tuning database to read and write  (default: temco-tune.db)
  --smoke              fast deterministic self-check (CI gate)

SERVE OPTIONS:
  --addr <host:port>   bind/connect address              (default: 127.0.0.1:7077)
  --workers <n>        serving worker threads            (default: 2)
  --max-batch <n>      largest coalesced batch           (default: 8)
  --max-delay-ms <n>   batching window, milliseconds     (default: 2)
  --queue-cap <n>      bounded per-worker queue capacity (default: 128)
  --max-conns <n>      concurrent-connection table size  (default: 1024)
  --idle-timeout-ms <n> reap idle connections after this (default: 60000)
  --metrics            print the final Prometheus scrape on exit

LOADGEN OPTIONS:
  --clients <n>        concurrent closed-loop clients    (default: 4)
  --requests <n>       requests per client               (default: 64)
  --deadline-ms <n>    per-request deadline, 0 = none    (default: 0)
  --shutdown           send SHUTDOWN to the server afterwards
  --metrics            print the server's Prometheus scrape afterwards

CHECK OPTIONS:
  --iters <n>          differential seeds to sweep       (default: 25)
  --seed <n>           first seed of the sweep           (default: 0)
  --faults <n>         fault-injection episodes, 0 = off (default: 10000)"
    );
    std::process::exit(2)
}

/// Named argument error: say what was wrong, then the usage block.
fn arg_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}\n");
    usage()
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cli = Cli {
        command: args[0].clone(),
        model: None,
        level: OptLevel::SkipOptFusion,
        method: Method::Tucker,
        ratio: 0.1,
        image: 64,
        batch: 4,
        classes: 1000,
        reschedule: false,
        save: None,
        addr: "127.0.0.1:7077".to_string(),
        workers: 2,
        max_batch: 8,
        max_delay_ms: 2,
        queue_cap: 128,
        max_conns: 1024,
        idle_timeout_ms: 60_000,
        clients: 4,
        requests: 64,
        deadline_ms: 0,
        shutdown: false,
        iters: 25,
        seed: 0,
        seed_set: false,
        faults: 10_000,
        reps: 10,
        reps_set: false,
        trace: None,
        metrics: false,
        db: None,
        trials: 8,
        smoke: false,
        shapes: false,
    };
    let mut i = 1;
    // `info` takes a file path, not a model name; `loadgen` and `check`
    // take neither.
    if !matches!(cli.command.as_str(), "info" | "loadgen" | "check")
        && i < args.len()
        && !args[i].starts_with("--")
    {
        cli.model = ModelId::all().into_iter().find(|m| m.name() == args[i]);
        if cli.model.is_none() {
            eprintln!("unknown model '{}' — try `temco list`", args[i]);
            std::process::exit(2);
        }
        i += 1;
    } else if cli.command == "info" {
        i += 1; // the path is re-read in main
    }
    while i < args.len() {
        let flag = args[i].as_str();
        // A flag's value is the next argument; a missing one is a named
        // error (not a panic, not a silent reuse of the next flag).
        let value = |i: &mut usize| -> String {
            *i += 1;
            match args.get(*i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => arg_error(format_args!("flag '{flag}' requires a value")),
            }
        };
        match flag {
            "--level" => {
                cli.level = match value(&mut i).as_str() {
                    "decomposed" => OptLevel::Decomposed,
                    "fusion" => OptLevel::Fusion,
                    "skip-opt" => OptLevel::SkipOpt,
                    "skip-opt+fusion" => OptLevel::SkipOptFusion,
                    other => {
                        eprintln!("unknown level '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--method" => {
                cli.method = match value(&mut i).as_str() {
                    "tucker" => Method::Tucker,
                    "cp" => Method::Cp,
                    "tt" => Method::TensorTrain,
                    other => {
                        eprintln!("unknown method '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--ratio" => cli.ratio = parse_value(flag, &value(&mut i)),
            "--image" => cli.image = parse_value(flag, &value(&mut i)),
            "--batch" => cli.batch = parse_value(flag, &value(&mut i)),
            "--classes" => cli.classes = parse_value(flag, &value(&mut i)),
            "--reschedule" => cli.reschedule = true,
            "--save" => cli.save = Some(value(&mut i)),
            "--addr" => cli.addr = value(&mut i),
            "--workers" => cli.workers = parse_value(flag, &value(&mut i)),
            "--max-batch" => cli.max_batch = parse_value(flag, &value(&mut i)),
            "--max-delay-ms" => cli.max_delay_ms = parse_value(flag, &value(&mut i)),
            "--queue-cap" => cli.queue_cap = parse_value(flag, &value(&mut i)),
            "--max-conns" => cli.max_conns = parse_value(flag, &value(&mut i)),
            "--idle-timeout-ms" => cli.idle_timeout_ms = parse_value(flag, &value(&mut i)),
            "--clients" => cli.clients = parse_value(flag, &value(&mut i)),
            "--requests" => cli.requests = parse_value(flag, &value(&mut i)),
            "--deadline-ms" => cli.deadline_ms = parse_value(flag, &value(&mut i)),
            "--shutdown" => cli.shutdown = true,
            "--iters" => cli.iters = parse_value(flag, &value(&mut i)),
            "--seed" => {
                cli.seed = parse_value(flag, &value(&mut i));
                cli.seed_set = true;
            }
            "--faults" => cli.faults = parse_value(flag, &value(&mut i)),
            "--reps" => {
                cli.reps = parse_value(flag, &value(&mut i));
                cli.reps_set = true;
            }
            "--trace" => cli.trace = Some(value(&mut i)),
            "--metrics" => cli.metrics = true,
            "--db" => cli.db = Some(value(&mut i)),
            "--trials" => cli.trials = parse_value(flag, &value(&mut i)),
            "--smoke" => cli.smoke = true,
            "--shapes" => cli.shapes = true,
            _ => arg_error(format_args!("unknown flag '{flag}'")),
        }
        i += 1;
    }
    cli
}

/// Parse a flag's value, naming the flag on failure.
fn parse_value<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| arg_error(format_args!("invalid value '{raw}' for '{flag}'")))
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() -> ExitCode {
    let cli = parse_args();
    match cli.command.as_str() {
        "info" => {
            let path = std::env::args().nth(2).unwrap_or_else(|| usage());
            let mut f = std::fs::File::open(&path).expect("open model file");
            let g = temco_ir::load_graph(&mut f).expect("parse .temco model");
            let plan = plan_memory(&g);
            println!("file:     {path}");
            println!("nodes:    {}", g.nodes.len());
            println!("weights:  {} tensors, {:.2} MiB", g.weights.len(), mib(g.weight_bytes()));
            println!("internal: {:.2} MiB peak", mib(plan.peak_internal_bytes));
            println!(
                "inputs:   {:?}",
                g.inputs.iter().map(|v| g.shape(*v).to_vec()).collect::<Vec<_>>()
            );
            println!(
                "outputs:  {:?}",
                g.outputs.iter().map(|v| g.shape(*v).to_vec()).collect::<Vec<_>>()
            );
            ExitCode::SUCCESS
        }
        "list" => {
            println!("{:<14} {:<12} skip connections", "model", "architecture");
            for m in ModelId::all() {
                let arch = match m {
                    ModelId::Alexnet => "AlexNet",
                    ModelId::Vgg11 | ModelId::Vgg16 | ModelId::Vgg19 => "VGG",
                    ModelId::Resnet18 | ModelId::Resnet34 => "ResNet",
                    ModelId::Densenet121 | ModelId::Densenet169 => "DenseNet",
                    ModelId::Unet | ModelId::UnetSmall => "UNet",
                };
                println!(
                    "{:<14} {:<12} {}",
                    m.name(),
                    arch,
                    if m.has_skip_connections() { "yes" } else { "no" }
                );
            }
            ExitCode::SUCCESS
        }
        "compile" | "run" | "dot" | "plan" => {
            let Some(model) = cli.model else { usage() };
            let cfg = ModelConfig {
                batch: cli.batch,
                image: cli.image,
                num_classes: cli.classes,
                classifier_width: 1024,
                seed: 42,
            };
            let graph = model.build(&cfg);
            let compiler = Compiler::new(CompilerOptions {
                decompose: DecomposeOptions {
                    method: cli.method,
                    ratio: cli.ratio,
                    ..Default::default()
                },
                merge_lconvs: true,
                reschedule: cli.reschedule,
                ..Default::default()
            });
            let (opt, stats) = compiler.compile(&graph, cli.level);

            match cli.command.as_str() {
                "dot" => {
                    print!("{}", temco_ir::dot::to_dot(&opt));
                }
                "plan" => {
                    let lv = temco_ir::liveness(&opt);
                    let full = plan_allocation_with_mode(&opt, &lv, AliasMode::Full);
                    let off = plan_allocation_with_mode(&opt, &lv, AliasMode::Off);
                    let mem = plan_memory(&opt);
                    let stats = full.alias_stats();
                    let pct = |a: usize, b: usize| {
                        if b == 0 {
                            0.0
                        } else {
                            100.0 * (1.0 - a as f64 / b as f64)
                        }
                    };
                    println!(
                        "model:        {} @ {} ({}x{} batch {})",
                        model.name(),
                        cli.level.label(),
                        cfg.image,
                        cfg.image,
                        cfg.batch
                    );
                    println!(
                        "logical peak: {:.2} MiB (sum of live values)",
                        mib(mem.peak_internal_bytes)
                    );
                    println!(
                        "value slab:   {:.2} MiB aliased vs {:.2} MiB alias-free ({:.1}% saved)",
                        mib(full.value_bytes),
                        mib(off.value_bytes),
                        pct(full.value_bytes, off.value_bytes)
                    );
                    println!(
                        "bytes moved:  {:.2} MiB aliased vs {:.2} MiB alias-free ({:.1}% saved)",
                        mib(full.bytes_moved),
                        mib(off.bytes_moved),
                        pct(full.bytes_moved, off.bytes_moved)
                    );
                    println!(
                        "aliasing:     {} in-place nodes, {} overlap nodes, {} embedded concat operands, {} view-bound values",
                        stats.inplace_nodes,
                        stats.overlap_nodes,
                        stats.aliased_concat_operands,
                        stats.aliased_values
                    );
                    println!(
                        "slab total:   {:.2} MiB ({:.2} MiB scratch), fragmentation {:.3}",
                        mib(full.slab_bytes),
                        mib(full.scratch_bytes),
                        mem.fragmentation()
                    );
                }
                "compile" => {
                    let before = plan_memory(&graph);
                    let after = plan_memory(&opt);
                    println!(
                        "model:    {} @ {}x{} batch {}",
                        model.name(),
                        cfg.image,
                        cfg.image,
                        cfg.batch
                    );
                    println!("level:    {}", cli.level.label());
                    println!(
                        "passes:   {} convs decomposed, {} skips optimized ({} copies),",
                        stats.decompose.convs_decomposed,
                        stats.skip_opt.skips_optimized,
                        stats.skip_opt.copies_inserted
                    );
                    println!(
                        "          {} lconvs merged, {} concats split, {} fused kernels",
                        stats.transform.lconvs_merged,
                        stats.transform.concats_split,
                        stats.fusion.total()
                    );
                    println!("nodes:    {} → {}", graph.nodes.len(), opt.nodes.len());
                    println!(
                        "weights:  {:.2} MiB → {:.2} MiB",
                        mib(before.weight_bytes),
                        mib(after.weight_bytes)
                    );
                    println!(
                        "internal: {:.2} MiB → {:.2} MiB ({:.1}% reduction)",
                        mib(before.peak_internal_bytes),
                        mib(after.peak_internal_bytes),
                        100.0
                            * (1.0
                                - after.peak_internal_bytes as f64
                                    / before.peak_internal_bytes as f64)
                    );
                    println!(
                        "slab:     {:.2} MiB static allocation (fragmentation {:.3})",
                        mib(after.slab_bytes),
                        after.fragmentation()
                    );
                    if let Some(path) = &cli.save {
                        let mut f = std::fs::File::create(path).expect("create model file");
                        temco_ir::save_graph(&opt, &mut f).expect("write model");
                        println!("saved:    {path}");
                    }
                }
                "run" => {
                    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 7);
                    let (dec, _) = compiler.compile(&graph, OptLevel::Decomposed);
                    let base = match execute(&dec, std::slice::from_ref(&x), ExecOptions::default())
                    {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("executing decomposed baseline failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let res = match execute(&opt, &[x], ExecOptions::default()) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("executing optimized model failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let agree = compare_outputs(&base.outputs[0], &res.outputs[0], 5);
                    println!("model:     {} @ {}", model.name(), cli.level.label());
                    println!(
                        "decomposed: {:.3}s   optimized: {:.3}s   ratio: {:.2}x",
                        base.total_time,
                        res.total_time,
                        res.total_time / base.total_time.max(1e-9)
                    );
                    println!(
                        "peak internal: {:.2} MiB → {:.2} MiB",
                        mib(base.memory.peak_bytes()),
                        mib(res.memory.peak_bytes())
                    );
                    println!(
                        "slab:      {:.2} MiB → {:.2} MiB (high-water match: {})",
                        mib(base.slab_bytes),
                        mib(res.slab_bytes),
                        if res.slab_high_water == res.slab_bytes { "exact" } else { "MISMATCH" }
                    );
                    println!(
                        "agreement vs decomposed: {:.4} (max|Δ| {:.2e})",
                        agree.task_agreement, agree.max_abs_diff
                    );
                    if agree.task_agreement < 0.999 {
                        eprintln!("semantic drift detected!");
                        return ExitCode::FAILURE;
                    }
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        "profile" => {
            let Some(model) = cli.model else {
                arg_error("profile requires a model name — try `temco list`")
            };
            let cfg = ModelConfig {
                batch: cli.batch,
                image: cli.image,
                num_classes: cli.classes,
                classifier_width: 1024,
                seed: 42,
            };
            let graph = model.build(&cfg);
            let compiler = Compiler::new(CompilerOptions {
                decompose: DecomposeOptions {
                    method: cli.method,
                    ratio: cli.ratio,
                    ..Default::default()
                },
                merge_lconvs: true,
                reschedule: cli.reschedule,
                ..Default::default()
            });
            let (opt, _) = compiler.compile(&graph, cli.level);
            // With --db, compile against tuned schedules; the report's
            // schedule column then names what produced each timing.
            let compiled = match &cli.db {
                Some(path) => {
                    let db = temco_tune::TuningDb::load(std::path::Path::new(path));
                    for w in db.warnings() {
                        eprintln!("warning: {w}");
                    }
                    temco_tune::compile_with_db(opt, &db)
                }
                None => temco_runtime::CompiledGraph::new(opt),
            };
            let mut engine = match compiled {
                Ok(c) => temco_runtime::Engine::from_compiled(std::sync::Arc::new(c)),
                Err(e) => {
                    eprintln!("cannot compile {}: {e}", model.name());
                    return ExitCode::FAILURE;
                }
            };
            let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 7);
            // Warm-up outside the recording window (first-touch effects).
            if let Err(e) = engine.run(std::slice::from_ref(&x)) {
                eprintln!("warm-up run failed: {e}");
                return ExitCode::FAILURE;
            }
            let reps = cli.reps.max(1);
            let spans_per_run = engine.graph().nodes.len() + 1;
            let mut rec = temco_obs::Recorder::with_capacity(reps * spans_per_run + 16);
            for _ in 0..reps {
                engine
                    .run_recorded(std::slice::from_ref(&x), &mut rec)
                    .expect("inputs validated by the warm-up run");
            }
            let report = temco_runtime::engine_report(engine.compiled(), &rec);
            println!(
                "model:    {} @ {} ({}x{} batch {}, {} reps)",
                model.name(),
                cli.level.label(),
                cfg.image,
                cfg.image,
                cfg.batch,
                reps
            );
            print!("{}", report.render_table(15));
            if let Some(path) = &cli.trace {
                let json = temco_runtime::engine_trace_json(engine.compiled(), &rec);
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("trace:    {path} (open in chrome://tracing or Perfetto)");
            }
            ExitCode::SUCCESS
        }
        "tune" => {
            if cli.smoke {
                let seed = if cli.seed_set { cli.seed } else { 42 };
                let report = match temco_tune::run_smoke(cli.trials.min(4), seed) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("smoke run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let gate = |ok: bool| if ok { "ok" } else { "FAIL" };
                println!(
                    "candidate generation deterministic: {}",
                    gate(report.candidates_deterministic)
                );
                println!(
                    "selection deterministic:            {}",
                    gate(report.selection_deterministic)
                );
                println!("database round-trips:               {}", gate(report.db_round_trip));
                println!("tuned-or-default never loses:       {}", gate(report.never_loses));
                for g in &report.groups {
                    println!(
                        "  {:<50} {:>4} cand  default {:>9} ns  best {:>9} ns  {:.2}x  {}",
                        g.key,
                        g.candidates,
                        g.default_ns,
                        g.best_ns,
                        g.speedup(),
                        g.best.label()
                    );
                }
                return if report.ok() {
                    println!("smoke: all gates green");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("smoke: gate failure");
                    ExitCode::FAILURE
                };
            }
            let graph = if cli.shapes {
                println!("tuning the built-in hot-shape suite");
                temco_tune::shape_suite_graph()
            } else {
                let Some(model) = cli.model else {
                    arg_error("tune requires a model name or --shapes — try `temco list`")
                };
                let cfg = ModelConfig {
                    batch: cli.batch,
                    image: cli.image,
                    num_classes: cli.classes,
                    classifier_width: 1024,
                    seed: 42,
                };
                let compiler = Compiler::new(CompilerOptions {
                    decompose: DecomposeOptions {
                        method: cli.method,
                        ratio: cli.ratio,
                        ..Default::default()
                    },
                    merge_lconvs: true,
                    reschedule: cli.reschedule,
                    ..Default::default()
                });
                println!(
                    "tuning {} @ {} ({}x{} batch {})",
                    model.name(),
                    cli.level.label(),
                    cli.image,
                    cli.image,
                    cli.batch
                );
                compiler.compile(&model.build(&cfg), cli.level).0
            };
            let db_path = cli.db.clone().unwrap_or_else(|| "temco-tune.db".to_string());
            let mut db = temco_tune::TuningDb::load(std::path::Path::new(&db_path));
            for w in db.warnings() {
                eprintln!("warning: {w}");
            }
            let opts = temco_tune::TuneOptions {
                trials: cli.trials,
                seed: if cli.seed_set { cli.seed } else { 42 },
                reps: if cli.reps_set { cli.reps } else { 3 },
            };
            let reports = match temco_tune::tune_graph(&graph, &opts, &mut db) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("tuning failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{} shape groups, {} trials each, seed {}, {} reps",
                reports.len(),
                opts.trials,
                opts.seed,
                opts.reps
            );
            for g in &reports {
                println!(
                    "  {:<58} x{:<2} default {:>9} ns  best {:>9} ns  {:.2}x  {}",
                    g.key,
                    g.nodes,
                    g.default_ns,
                    g.best_ns,
                    g.speedup(),
                    g.best.label()
                );
            }
            if let Err(e) = db.save(std::path::Path::new(&db_path)) {
                eprintln!("cannot write {db_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("saved:    {db_path} ({} entries)", db.len());
            ExitCode::SUCCESS
        }
        "serve" => {
            let Some(model) = cli.model else {
                arg_error("serve requires a model name — try `temco list`")
            };
            // Serving is single-sample: the model is built at batch 1 and
            // the server rebatches it per plan-cache bucket.
            let cfg = ModelConfig {
                batch: 1,
                image: cli.image,
                num_classes: cli.classes,
                classifier_width: 1024,
                seed: 42,
            };
            let graph = model.build(&cfg);
            let compiler = Compiler::new(CompilerOptions {
                decompose: DecomposeOptions {
                    method: cli.method,
                    ratio: cli.ratio,
                    ..Default::default()
                },
                merge_lconvs: true,
                reschedule: cli.reschedule,
                ..Default::default()
            });
            let (opt, _) = compiler.compile(&graph, cli.level);
            let serve_cfg = temco_serve::ServeConfig {
                workers: cli.workers,
                max_batch: cli.max_batch,
                max_delay: Duration::from_millis(cli.max_delay_ms),
                queue_cap: cli.queue_cap,
                default_deadline: None,
            };
            let server = match temco_serve::Server::new(opt, serve_cfg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot serve {}: {e}", model.name());
                    return ExitCode::FAILURE;
                }
            };
            let listener = match std::net::TcpListener::bind(&cli.addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {}: {e}", cli.addr);
                    return ExitCode::FAILURE;
                }
            };
            let snap = server.stats();
            println!(
                "serving {} @ {} on {} — {} workers, buckets {:?}, {:.2} MiB slab/worker, \
                 {} conns max",
                model.name(),
                cli.level.label(),
                cli.addr,
                cli.workers,
                server.buckets(),
                mib(snap.slab_bytes_per_worker),
                cli.max_conns,
            );
            println!("stop with: temco loadgen --addr {} --shutdown", cli.addr);
            let ecfg = temco_serve::EventConfig {
                max_conns: cli.max_conns,
                idle_timeout: Duration::from_millis(cli.idle_timeout_ms),
                max_inflight: 32,
            };
            if let Err(e) = temco_serve::serve(server.clone(), listener, ecfg) {
                eprintln!("serve loop failed: {e}");
                return ExitCode::FAILURE;
            }
            print!("{}", server.stats().render());
            if cli.metrics {
                print!("{}", server.prometheus_metrics());
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let cfg = temco_check::DiffConfig::default();
            println!(
                "differential: seeds {}..{} ({} opt levels, buckets up to {})",
                cli.seed,
                cli.seed + cli.iters as u64,
                4,
                cfg.max_batch
            );
            let mut failed = false;
            for seed in cli.seed..cli.seed + cli.iters as u64 {
                let Err(f) = temco_check::check_seed(seed, &cfg) else { continue };
                failed = true;
                eprintln!("FAIL {f}");
                // Hand the investigator a minimized repro, not the full
                // generated graph.
                let g = temco_check::random_cnn(seed, &cfg.gen);
                let failing = |g: &temco_ir::Graph| {
                    temco_check::check_graph(g, seed, &cfg).err().map(|f| f.to_string())
                };
                match temco_check::shrink(&g, &failing) {
                    Some(s) => eprintln!(
                        "shrunk to {} nodes ({} attempts): {}\n{}",
                        s.graph.nodes.len(),
                        s.attempts,
                        s.message,
                        temco_check::dump(&s.graph)
                    ),
                    None => eprintln!("(failure did not reproduce during shrinking)"),
                }
            }
            if failed {
                return ExitCode::FAILURE;
            }
            println!("differential: {} seeds clean", cli.iters);
            if cli.faults > 0 {
                let report = match temco_check::run_fault_injection(&temco_check::FaultConfig {
                    frames: cli.faults,
                    seed: cli.seed ^ 0xFA17,
                    workers: cli.workers,
                }) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("fault injection could not run: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!("fault injection: {report}");
                if !report.passed() {
                    eprintln!("fault injection left the server unhealthy");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        "loadgen" => {
            let lg = temco_serve::LoadgenConfig {
                clients: cli.clients,
                requests_per_client: cli.requests,
                deadline_ms: cli.deadline_ms,
                seed: 7,
            };
            let report = match temco_serve::loadgen::run(&cli.addr, lg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("loadgen cannot reach {}: {e}", cli.addr);
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "requests:   {} ({} ok, {} rejected, {} errors)",
                report.requests, report.ok, report.rejected, report.errors
            );
            println!("elapsed:    {:.3}s", report.elapsed.as_secs_f64());
            println!("throughput: {:.1} req/s", report.throughput_rps);
            println!(
                "latency ms: p50 {:.3}  p95 {:.3}  p99 {:.3}  mean {:.3}",
                report.p50_ms, report.p95_ms, report.p99_ms, report.mean_ms
            );
            if cli.metrics {
                match temco_serve::Client::connect(&cli.addr) {
                    Ok(mut c) => print!("{}", c.metrics_text().unwrap_or_default()),
                    Err(e) => {
                        eprintln!("metrics scrape failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if cli.shutdown {
                match temco_serve::Client::connect(&cli.addr) {
                    Ok(mut c) => {
                        print!("{}", c.stats_text().unwrap_or_default());
                        if let Err(e) = c.shutdown_server() {
                            eprintln!("shutdown request failed: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("server draining");
                    }
                    Err(e) => {
                        eprintln!("shutdown request failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if report.errors > 0 {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        other => arg_error(format_args!("unknown command '{other}'")),
    }
}
