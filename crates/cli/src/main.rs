//! `temco` — command-line front end for the TeMCO compiler.
//!
//! ```text
//! temco list
//! temco compile vgg16 --level skip-opt+fusion --ratio 0.1 --image 224 --batch 4
//! temco run unet_small --level fusion --image 64
//! temco dot resnet18 --level skip-opt+fusion > resnet18.dot
//! ```

use std::process::ExitCode;

use temco::{compare_outputs, Compiler, CompilerOptions, DecomposeOptions, Method, OptLevel};
use temco_models::{ModelConfig, ModelId};
use temco_runtime::{execute, plan_memory, ExecOptions};
use temco_tensor::Tensor;

/// Parsed command-line options.
struct Cli {
    command: String,
    model: Option<ModelId>,
    level: OptLevel,
    method: Method,
    ratio: f64,
    image: usize,
    batch: usize,
    classes: usize,
    reschedule: bool,
    save: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "temco — Tensor Memory Compiler Optimization

USAGE:
  temco list                          list the 10 zoo models
  temco compile <model> [opts]        compile and print memory/pass report
  temco run <model> [opts]            compile, execute, and verify semantics
  temco dot <model> [opts]            emit the optimized graph as Graphviz DOT
  temco info <model.temco>            describe a saved .temco model file

OPTIONS:
  --level <decomposed|fusion|skip-opt|skip-opt+fusion>   (default: skip-opt+fusion)
  --method <tucker|cp|tt>                                (default: tucker)
  --ratio <f64>        decomposition ratio               (default: 0.1)
  --image <n>          input resolution                  (default: 64)
  --batch <n>          batch size                        (default: 4)
  --classes <n>        classifier width                  (default: 1000)
  --reschedule         apply the memory-aware scheduler
  --save <path>        (compile) write the optimized model as .temco"
    );
    std::process::exit(2)
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cli = Cli {
        command: args[0].clone(),
        model: None,
        level: OptLevel::SkipOptFusion,
        method: Method::Tucker,
        ratio: 0.1,
        image: 64,
        batch: 4,
        classes: 1000,
        reschedule: false,
        save: None,
    };
    let mut i = 1;
    // `info` takes a file path, not a model name.
    if cli.command != "info" && i < args.len() && !args[i].starts_with("--") {
        cli.model = ModelId::all().into_iter().find(|m| m.name() == args[i]);
        if cli.model.is_none() {
            eprintln!("unknown model '{}' — try `temco list`", args[i]);
            std::process::exit(2);
        }
        i += 1;
    } else if cli.command == "info" {
        i += 1; // the path is re-read in main
    }
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--level" => {
                cli.level = match value(&mut i).as_str() {
                    "decomposed" => OptLevel::Decomposed,
                    "fusion" => OptLevel::Fusion,
                    "skip-opt" => OptLevel::SkipOpt,
                    "skip-opt+fusion" => OptLevel::SkipOptFusion,
                    other => {
                        eprintln!("unknown level '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--method" => {
                cli.method = match value(&mut i).as_str() {
                    "tucker" => Method::Tucker,
                    "cp" => Method::Cp,
                    "tt" => Method::TensorTrain,
                    other => {
                        eprintln!("unknown method '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--ratio" => cli.ratio = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--image" => cli.image = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch" => cli.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--classes" => cli.classes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--reschedule" => cli.reschedule = true,
            "--save" => cli.save = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    cli
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() -> ExitCode {
    let cli = parse_args();
    match cli.command.as_str() {
        "info" => {
            let path = std::env::args().nth(2).unwrap_or_else(|| usage());
            let mut f = std::fs::File::open(&path).expect("open model file");
            let g = temco_ir::load_graph(&mut f).expect("parse .temco model");
            let plan = plan_memory(&g);
            println!("file:     {path}");
            println!("nodes:    {}", g.nodes.len());
            println!("weights:  {} tensors, {:.2} MiB", g.weights.len(), mib(g.weight_bytes()));
            println!("internal: {:.2} MiB peak", mib(plan.peak_internal_bytes));
            println!(
                "inputs:   {:?}",
                g.inputs.iter().map(|v| g.shape(*v).to_vec()).collect::<Vec<_>>()
            );
            println!(
                "outputs:  {:?}",
                g.outputs.iter().map(|v| g.shape(*v).to_vec()).collect::<Vec<_>>()
            );
            ExitCode::SUCCESS
        }
        "list" => {
            println!("{:<14} {:<12} skip connections", "model", "architecture");
            for m in ModelId::all() {
                let arch = match m {
                    ModelId::Alexnet => "AlexNet",
                    ModelId::Vgg11 | ModelId::Vgg16 | ModelId::Vgg19 => "VGG",
                    ModelId::Resnet18 | ModelId::Resnet34 => "ResNet",
                    ModelId::Densenet121 | ModelId::Densenet169 => "DenseNet",
                    ModelId::Unet | ModelId::UnetSmall => "UNet",
                };
                println!(
                    "{:<14} {:<12} {}",
                    m.name(),
                    arch,
                    if m.has_skip_connections() { "yes" } else { "no" }
                );
            }
            ExitCode::SUCCESS
        }
        "compile" | "run" | "dot" => {
            let Some(model) = cli.model else { usage() };
            let cfg = ModelConfig {
                batch: cli.batch,
                image: cli.image,
                num_classes: cli.classes,
                classifier_width: 1024,
                seed: 42,
            };
            let graph = model.build(&cfg);
            let compiler = Compiler::new(CompilerOptions {
                decompose: DecomposeOptions {
                    method: cli.method,
                    ratio: cli.ratio,
                    ..Default::default()
                },
                merge_lconvs: true,
                reschedule: cli.reschedule,
                ..Default::default()
            });
            let (opt, stats) = compiler.compile(&graph, cli.level);

            match cli.command.as_str() {
                "dot" => {
                    print!("{}", temco_ir::dot::to_dot(&opt));
                }
                "compile" => {
                    let before = plan_memory(&graph);
                    let after = plan_memory(&opt);
                    println!(
                        "model:    {} @ {}x{} batch {}",
                        model.name(),
                        cfg.image,
                        cfg.image,
                        cfg.batch
                    );
                    println!("level:    {}", cli.level.label());
                    println!(
                        "passes:   {} convs decomposed, {} skips optimized ({} copies),",
                        stats.decompose.convs_decomposed,
                        stats.skip_opt.skips_optimized,
                        stats.skip_opt.copies_inserted
                    );
                    println!(
                        "          {} lconvs merged, {} concats split, {} fused kernels",
                        stats.transform.lconvs_merged,
                        stats.transform.concats_split,
                        stats.fusion.total()
                    );
                    println!("nodes:    {} → {}", graph.nodes.len(), opt.nodes.len());
                    println!(
                        "weights:  {:.2} MiB → {:.2} MiB",
                        mib(before.weight_bytes),
                        mib(after.weight_bytes)
                    );
                    println!(
                        "internal: {:.2} MiB → {:.2} MiB ({:.1}% reduction)",
                        mib(before.peak_internal_bytes),
                        mib(after.peak_internal_bytes),
                        100.0
                            * (1.0
                                - after.peak_internal_bytes as f64
                                    / before.peak_internal_bytes as f64)
                    );
                    println!(
                        "slab:     {:.2} MiB static allocation (fragmentation {:.3})",
                        mib(after.slab_bytes),
                        after.fragmentation()
                    );
                    if let Some(path) = &cli.save {
                        let mut f = std::fs::File::create(path).expect("create model file");
                        temco_ir::save_graph(&opt, &mut f).expect("write model");
                        println!("saved:    {path}");
                    }
                }
                "run" => {
                    let x = Tensor::randn(&[cfg.batch, 3, cfg.image, cfg.image], 7);
                    let (dec, _) = compiler.compile(&graph, OptLevel::Decomposed);
                    let base = match execute(&dec, std::slice::from_ref(&x), ExecOptions::default())
                    {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("executing decomposed baseline failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let res = match execute(&opt, &[x], ExecOptions::default()) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("executing optimized model failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let agree = compare_outputs(&base.outputs[0], &res.outputs[0], 5);
                    println!("model:     {} @ {}", model.name(), cli.level.label());
                    println!(
                        "decomposed: {:.3}s   optimized: {:.3}s   ratio: {:.2}x",
                        base.total_time,
                        res.total_time,
                        res.total_time / base.total_time.max(1e-9)
                    );
                    println!(
                        "peak internal: {:.2} MiB → {:.2} MiB",
                        mib(base.memory.peak_bytes()),
                        mib(res.memory.peak_bytes())
                    );
                    println!(
                        "slab:      {:.2} MiB → {:.2} MiB (high-water match: {})",
                        mib(base.slab_bytes),
                        mib(res.slab_bytes),
                        if res.slab_high_water == res.slab_bytes { "exact" } else { "MISMATCH" }
                    );
                    println!(
                        "agreement vs decomposed: {:.4} (max|Δ| {:.2e})",
                        agree.task_agreement, agree.max_abs_diff
                    );
                    if agree.task_agreement < 0.999 {
                        eprintln!("semantic drift detected!");
                        return ExitCode::FAILURE;
                    }
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
