//! SSA graph IR for the TeMCO compiler.
//!
//! A model is an *ordered tensor node list in SSA form* (the exact input
//! representation of the paper's Algorithm 1): `Graph::nodes` is both the
//! def-use structure and the execution schedule. Values (`ValueId`) are the
//! internal tensors; weights live in a side table (`WeightId`) because the
//! paper's memory accounting treats weight tensors and internal tensors as
//! disjoint pools (Section 2.2).
//!
//! The crate provides:
//! * the operator set ([`Op`]) covering all 10 benchmark models plus the
//!   fused operator TeMCO introduces,
//! * shape inference ([`graph::Graph::infer_shapes`]),
//! * the program-dependence-graph views Algorithm 1/2 traverse ([`pdg`]),
//! * tensor liveness analysis ([`liveness`]),
//! * a FLOPs cost model ([`cost`]),
//! * a structural verifier ([`verify`]) and DOT export ([`dot`]).

pub mod cost;
pub mod dot;
pub mod graph;
pub mod liveness;
pub mod op;
pub mod pdg;
pub mod schedule;
pub mod serialize;
pub mod shape;
pub mod verify;

pub use cost::{graph_flops, node_flops};
pub use graph::{Graph, Node, ValueId, ValueInfo, WeightId, WeightStore};
pub use liveness::{liveness, LiveInterval, Liveness};
pub use op::{ActKind, ConvRole, ConvSpec, FconvSpec, FusedSpec, Op, PoolKind};
pub use pdg::Pdg;
pub use schedule::{apply_order, memory_aware_order, memory_aware_order_ranked};
pub use serialize::{load_graph, save_graph};
pub use shape::ShapeError;
pub use verify::verify;
