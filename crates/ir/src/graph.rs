//! The graph structure and its builder API.

use std::ops::Deref;
use std::sync::Arc;

use temco_tensor::Tensor;

use crate::op::{ActKind, ConvRole, ConvSpec, FusedSpec, Op, PoolKind};

/// Identifier of an internal (SSA) tensor value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifier of a weight tensor in the graph's weight store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightId(pub u32);

/// Metadata for one SSA value.
#[derive(Clone, Debug, Default)]
pub struct ValueInfo {
    /// Human-readable name (for DOT output and reports).
    pub name: String,
    /// Inferred shape; `None` until [`Graph::infer_shapes`] runs.
    pub shape: Option<Vec<usize>>,
}

/// The graph's weight tensors, shared copy-on-write across graph clones.
///
/// Cloning a [`Graph`] (including [`Graph::rebatch`]) shares the underlying
/// tensor storage through an `Arc`; builder/rewrite mutation copies only if
/// the store is actually shared at that moment. N serving workers (or N
/// batch-size variants of one model) therefore reference **one** copy of
/// the model's constants instead of N.
#[derive(Clone, Debug, Default)]
pub struct WeightStore(Arc<Vec<Tensor>>);

impl WeightStore {
    /// Append a tensor, copying the store first if it is shared.
    pub fn push(&mut self, t: Tensor) {
        Arc::make_mut(&mut self.0).push(t);
    }

    /// Move the tensors out, leaving this store empty. A shared store is
    /// copied first, so sibling graphs keep their weights.
    pub fn take(&mut self) -> Vec<Tensor> {
        std::mem::take(Arc::make_mut(&mut self.0))
    }

    /// Whether two stores point at the same allocation (weights shared,
    /// not merely equal).
    pub fn shares_storage_with(&self, other: &WeightStore) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for WeightStore {
    type Target = [Tensor];
    fn deref(&self) -> &[Tensor] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a WeightStore {
    type Item = &'a Tensor;
    type IntoIter = std::slice::Iter<'a, Tensor>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl From<Vec<Tensor>> for WeightStore {
    fn from(v: Vec<Tensor>) -> Self {
        WeightStore(Arc::new(v))
    }
}

/// One operation in the ordered node list.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// SSA operands.
    pub inputs: Vec<ValueId>,
    /// The single SSA result.
    pub output: ValueId,
    /// Human-readable name.
    pub name: String,
}

/// A model: an ordered node list in SSA form plus value/weight stores.
///
/// The vector order of `nodes` *is* the execution schedule, exactly like the
/// "ordered tensor node list L" consumed by the paper's Algorithm 1.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Nodes in execution order.
    pub nodes: Vec<Node>,
    /// Per-value metadata, indexed by `ValueId`.
    pub values: Vec<ValueInfo>,
    /// Weight store, indexed by `WeightId`. Shared (copy-on-write) across
    /// graph clones — see [`WeightStore`].
    pub weights: WeightStore,
    /// Graph input values.
    pub inputs: Vec<ValueId>,
    /// Graph output values.
    pub outputs: Vec<ValueId>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Allocate a fresh SSA value.
    pub fn fresh_value(&mut self, name: impl Into<String>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo { name: name.into(), shape: None });
        id
    }

    /// Intern a weight tensor.
    pub fn add_weight(&mut self, t: Tensor) -> WeightId {
        let id = WeightId(self.weights.len() as u32);
        self.weights.push(t);
        id
    }

    /// Borrow a weight.
    pub fn weight(&self, id: WeightId) -> &Tensor {
        &self.weights[id.0 as usize]
    }

    /// Shape of a value (panics if shape inference has not run).
    pub fn shape(&self, v: ValueId) -> &[usize] {
        self.values[v.0 as usize]
            .shape
            .as_deref()
            .expect("value shape not inferred yet — call infer_shapes()")
    }

    /// Element count of a value.
    pub fn value_numel(&self, v: ValueId) -> usize {
        self.shape(v).iter().product()
    }

    /// Byte size of a value (`f32` elements). This is the paper's `SIZE(v)`.
    pub fn value_bytes(&self, v: ValueId) -> usize {
        self.value_numel(v) * std::mem::size_of::<f32>()
    }

    /// Total bytes of all weight tensors (the paper's weight-memory pool).
    ///
    /// Counts the whole store; run [`Graph::gc_weights`] first if passes may
    /// have orphaned entries.
    pub fn weight_bytes(&self) -> usize {
        self.weights.iter().map(Tensor::bytes).sum()
    }

    /// Drop weight-store entries no node references anymore, compacting ids.
    ///
    /// Rewrite passes (decomposition, concat splitting, affine folding)
    /// replace weights rather than mutating them, leaving the originals
    /// orphaned; this reclaims them so `weight_bytes` reflects what an
    /// inference actually loads.
    pub fn gc_weights(&mut self) {
        let mut used = vec![false; self.weights.len()];
        for node in &self.nodes {
            for w in node.op.weight_ids() {
                used[w.0 as usize] = true;
            }
        }
        let mut remap = vec![u32::MAX; self.weights.len()];
        let old = self.weights.take();
        for (i, (t, keep)) in old.into_iter().zip(&used).enumerate() {
            if *keep {
                remap[i] = self.weights.len() as u32;
                self.weights.push(t);
            }
        }
        for node in &mut self.nodes {
            for w in node.op.weight_ids_mut() {
                debug_assert_ne!(remap[w.0 as usize], u32::MAX);
                w.0 = remap[w.0 as usize];
            }
        }
    }

    /// Append a node computing `op` over `inputs`; returns its output value.
    pub fn push(&mut self, op: Op, inputs: Vec<ValueId>, name: impl Into<String>) -> ValueId {
        let name = name.into();
        let output = self.fresh_value(format!("{name}.out"));
        self.nodes.push(Node { op, inputs, output, name });
        output
    }

    /// Index of the node producing `v`, if any (graph inputs have none).
    pub fn producer(&self, v: ValueId) -> Option<usize> {
        self.nodes.iter().position(|n| n.output == v)
    }

    /// Indices of all nodes consuming `v`, in schedule order.
    pub fn users(&self, v: ValueId) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Run shape inference over the whole node list.
    ///
    /// # Panics
    /// Panics on malformed graphs (shape mismatch, use before def). Callers
    /// holding untrusted graphs should use [`Graph::try_infer_shapes`].
    pub fn infer_shapes(&mut self) {
        crate::shape::infer(self);
    }

    /// Run shape inference, reporting inconsistencies as a typed
    /// [`ShapeError`](crate::shape::ShapeError) instead of panicking.
    pub fn try_infer_shapes(&mut self) -> Result<(), crate::shape::ShapeError> {
        crate::shape::try_infer(self)
    }

    /// Clone the graph with every input's leading (batch) dimension set to
    /// `batch`, re-inferring all value shapes. Weights are **shared** with
    /// `self` (see [`WeightStore`]), so a family of batch-size variants of
    /// one model costs one copy of the constants — the basis of the serving
    /// layer's batch-size-bucketed plan cache.
    ///
    /// # Panics
    /// Panics where [`Graph::try_rebatch`] reports an error — a zero batch,
    /// a scalar input, or re-inference failure.
    pub fn rebatch(&self, batch: usize) -> Graph {
        match self.try_rebatch(batch) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Graph::rebatch`] with typed errors: a zero batch, a scalar input,
    /// an op whose output shape is not batch-independent at this size, or a
    /// value that collapses to zero elements all surface as a
    /// [`ShapeError`](crate::shape::ShapeError) instead of aborting. This is
    /// what lets a serving process reject a hostile or malformed model
    /// configuration without crashing.
    pub fn try_rebatch(&self, batch: usize) -> Result<Graph, crate::shape::ShapeError> {
        use crate::shape::ShapeError;
        if batch == 0 {
            return Err(ShapeError::ZeroBatch);
        }
        let mut out = self.clone();
        for v in &mut out.values {
            v.shape = None;
        }
        for i in 0..out.inputs.len() {
            let input = out.inputs[i];
            let mut shape = self.shape(input).to_vec();
            if shape.is_empty() {
                return Err(ShapeError::ScalarInput {
                    input: self.values[input.0 as usize].name.clone(),
                });
            }
            shape[0] = batch;
            out.values[input.0 as usize].shape = Some(shape);
        }
        out.try_infer_shapes()?;
        // A graph whose values collapsed to nothing can never execute;
        // report the first empty value rather than letting the runtime (or
        // worse, a serving worker) trip over it later.
        for node in &out.nodes {
            if out.value_numel(node.output) == 0 {
                return Err(ShapeError::Degenerate {
                    node: node.name.clone(),
                    shape: out.shape(node.output).to_vec(),
                });
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Builder API
    // ------------------------------------------------------------------

    /// Declare a graph input of the given shape.
    pub fn input(&mut self, shape: &[usize], name: impl Into<String>) -> ValueId {
        let name = name.into();
        let v = self.fresh_value(name.clone());
        self.values[v.0 as usize].shape = Some(shape.to_vec());
        self.nodes.push(Node { op: Op::Input, inputs: vec![], output: v, name });
        self.inputs.push(v);
        v
    }

    /// Mark `v` as a graph output.
    pub fn mark_output(&mut self, v: ValueId) {
        self.outputs.push(v);
    }

    /// Standard dense convolution from weight/bias tensors.
    pub fn conv2d(
        &mut self,
        x: ValueId,
        weight: Tensor,
        bias: Option<Tensor>,
        stride: usize,
        padding: usize,
        name: impl Into<String>,
    ) -> ValueId {
        let spec = ConvSpec {
            weight: self.add_weight(weight),
            bias: bias.map(|b| self.add_weight(b)),
            stride: (stride, stride),
            padding: (padding, padding),
            groups: 1,
            role: ConvRole::Standard,
        };
        self.push(Op::Conv2d(spec), vec![x], name)
    }

    /// Convolution from an explicit [`ConvSpec`] (used by compiler passes).
    pub fn conv2d_spec(&mut self, x: ValueId, spec: ConvSpec, name: impl Into<String>) -> ValueId {
        self.push(Op::Conv2d(spec), vec![x], name)
    }

    /// Transposed convolution (`weight [c_in, c_out, kh, kw]`).
    pub fn conv_transpose2d(
        &mut self,
        x: ValueId,
        weight: Tensor,
        bias: Option<Tensor>,
        stride: usize,
        name: impl Into<String>,
    ) -> ValueId {
        let weight = self.add_weight(weight);
        let bias = bias.map(|b| self.add_weight(b));
        self.push(Op::ConvTranspose2d { weight, bias, stride: (stride, stride) }, vec![x], name)
    }

    /// Elementwise activation.
    pub fn activation(&mut self, x: ValueId, kind: ActKind, name: impl Into<String>) -> ValueId {
        self.push(Op::Activation(kind), vec![x], name)
    }

    /// ReLU shorthand.
    pub fn relu(&mut self, x: ValueId, name: impl Into<String>) -> ValueId {
        self.activation(x, ActKind::Relu, name)
    }

    /// Max pooling.
    pub fn max_pool(
        &mut self,
        x: ValueId,
        kernel: usize,
        stride: usize,
        name: impl Into<String>,
    ) -> ValueId {
        self.push(Op::Pool { kind: PoolKind::Max, kernel, stride }, vec![x], name)
    }

    /// Average pooling.
    pub fn avg_pool(
        &mut self,
        x: ValueId,
        kernel: usize,
        stride: usize,
        name: impl Into<String>,
    ) -> ValueId {
        self.push(Op::Pool { kind: PoolKind::Avg, kernel, stride }, vec![x], name)
    }

    /// Global average pooling.
    pub fn global_avg_pool(&mut self, x: ValueId, name: impl Into<String>) -> ValueId {
        self.push(Op::GlobalAvgPool, vec![x], name)
    }

    /// Folded batch-norm affine.
    pub fn affine(
        &mut self,
        x: ValueId,
        scale: Tensor,
        bias: Tensor,
        name: impl Into<String>,
    ) -> ValueId {
        let scale = self.add_weight(scale);
        let bias = self.add_weight(bias);
        self.push(Op::Affine { scale, bias }, vec![x], name)
    }

    /// Elementwise sum.
    pub fn add(&mut self, xs: &[ValueId], name: impl Into<String>) -> ValueId {
        assert!(xs.len() >= 2, "add needs at least two operands");
        self.push(Op::Add, xs.to_vec(), name)
    }

    /// Channel concatenation.
    pub fn concat(&mut self, xs: &[ValueId], name: impl Into<String>) -> ValueId {
        assert!(xs.len() >= 2, "concat needs at least two operands");
        self.push(Op::Concat, xs.to_vec(), name)
    }

    /// Fully connected layer.
    pub fn linear(
        &mut self,
        x: ValueId,
        weight: Tensor,
        bias: Option<Tensor>,
        name: impl Into<String>,
    ) -> ValueId {
        let weight = self.add_weight(weight);
        let bias = bias.map(|b| self.add_weight(b));
        self.push(Op::Linear { weight, bias }, vec![x], name)
    }

    /// Flatten to 2-D.
    pub fn flatten(&mut self, x: ValueId, name: impl Into<String>) -> ValueId {
        self.push(Op::Flatten, vec![x], name)
    }

    /// Softmax over the last dim.
    pub fn softmax(&mut self, x: ValueId, name: impl Into<String>) -> ValueId {
        self.push(Op::Softmax, vec![x], name)
    }

    /// TeMCO fused operator (used by the fusion pass and tests).
    pub fn fused(&mut self, x: ValueId, spec: FusedSpec, name: impl Into<String>) -> ValueId {
        self.push(Op::Fused(spec), vec![x], name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let w = Tensor::randn(&[4, 3, 3, 3], 1);
        let c = g.conv2d(x, w, None, 1, 1, "conv1");
        let r = g.relu(c, "relu1");
        g.mark_output(r);
        g
    }

    #[test]
    fn builder_creates_ordered_nodes() {
        let g = tiny_graph();
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.nodes[0].op, Op::Input);
        assert!(matches!(g.nodes[1].op, Op::Conv2d(_)));
        assert!(matches!(g.nodes[2].op, Op::Activation(ActKind::Relu)));
    }

    #[test]
    fn producer_and_users() {
        let g = tiny_graph();
        let conv_out = g.nodes[1].output;
        assert_eq!(g.producer(conv_out), Some(1));
        assert_eq!(g.users(conv_out), vec![2]);
        let x = g.inputs[0];
        assert_eq!(g.users(x), vec![1]);
    }

    #[test]
    fn weight_store_and_bytes() {
        let g = tiny_graph();
        assert_eq!(g.weights.len(), 1);
        assert_eq!(g.weight_bytes(), 4 * 3 * 3 * 3 * 4);
    }

    #[test]
    #[should_panic(expected = "shape not inferred")]
    fn shape_before_inference_panics() {
        let g = tiny_graph();
        let out = g.outputs[0];
        let _ = g.shape(out);
    }

    #[test]
    fn gc_weights_drops_orphans_and_remaps_ids() {
        let mut g = tiny_graph();
        let orphan = g.add_weight(Tensor::zeros(&[100, 100])); // never referenced
        assert_eq!(g.weights.len(), 2);
        let bytes_with_orphan = g.weight_bytes();
        g.gc_weights();
        assert_eq!(g.weights.len(), 1);
        assert!(g.weight_bytes() < bytes_with_orphan);
        assert!(verify_ok(&g));
        // The conv still sees its (remapped) weight.
        let Op::Conv2d(spec) = &g.nodes[1].op else { panic!() };
        assert_eq!(g.weight(spec.weight).shape(), &[4, 3, 3, 3]);
        let _ = orphan;
    }

    fn verify_ok(g: &Graph) -> bool {
        crate::verify::verify(g).is_empty()
    }

    #[test]
    fn input_shape_is_known_immediately() {
        let g = tiny_graph();
        assert_eq!(g.shape(g.inputs[0]), &[1, 3, 8, 8]);
    }

    #[test]
    fn cloned_graphs_share_weight_storage() {
        let g = tiny_graph();
        let c = g.clone();
        assert!(g.weights.shares_storage_with(&c.weights));
        // Mutation un-shares the mutated clone only.
        let mut m = g.clone();
        m.add_weight(Tensor::zeros(&[2, 2]));
        assert!(!m.weights.shares_storage_with(&g.weights));
        assert!(g.weights.shares_storage_with(&c.weights));
        assert_eq!(g.weights.len(), 1);
        assert_eq!(m.weights.len(), 2);
    }

    #[test]
    fn gc_weights_on_a_shared_store_preserves_siblings() {
        let mut g = tiny_graph();
        g.add_weight(Tensor::zeros(&[100, 100])); // orphan
        let sibling = g.clone();
        g.gc_weights();
        assert_eq!(g.weights.len(), 1);
        assert_eq!(sibling.weights.len(), 2, "gc must copy-on-write, not steal");
    }

    #[test]
    fn try_rebatch_reports_typed_errors() {
        use crate::shape::ShapeError;
        let mut g = tiny_graph();
        g.infer_shapes();
        assert_eq!(g.try_rebatch(0).unwrap_err(), ShapeError::ZeroBatch);

        // A kernel larger than the (padded) input collapses the output to
        // zero elements — a malformed config, not a panic.
        let mut deg = Graph::new();
        let x = deg.input(&[1, 3, 4, 4], "x");
        let c = deg.conv2d(x, Tensor::zeros(&[4, 3, 9, 9]), None, 1, 0, "huge");
        deg.mark_output(c);
        let _ = (x, c);
        let err = deg.try_rebatch(2).unwrap_err();
        assert!(matches!(err, ShapeError::Degenerate { .. }), "{err:?}");
        assert!(err.to_string().contains("zero-sized"), "{err}");

        // A scalar input has no batch dimension to rewrite.
        let mut scalar = Graph::new();
        scalar.input(&[], "s");
        let err = scalar.try_rebatch(2).unwrap_err();
        assert!(matches!(err, ShapeError::ScalarInput { .. }), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn rebatch_zero_still_panics_for_builder_callers() {
        let mut g = tiny_graph();
        g.infer_shapes();
        let _ = g.rebatch(0);
    }

    #[test]
    fn rebatch_reshapes_every_value_and_shares_weights() {
        let mut g = tiny_graph();
        g.infer_shapes();
        let b4 = g.rebatch(4);
        assert!(g.weights.shares_storage_with(&b4.weights));
        assert_eq!(b4.shape(b4.inputs[0]), &[4, 3, 8, 8]);
        for node in &b4.nodes {
            assert_eq!(b4.shape(node.output)[0], 4, "node '{}' not rebatched", node.name);
        }
        // The original is untouched.
        assert_eq!(g.shape(g.outputs[0])[0], 1);
        assert!(crate::verify::verify(&b4).is_empty());
    }
}
