//! Memory-aware execution scheduling.
//!
//! The node-list order *is* the schedule, and liveness — hence peak memory —
//! depends on it. The paper's Algorithm 2 orders restore chains with its
//! `Compare` heuristic (`a` before `b` iff `a.size + b.peak <
//! b.size + a.peak`) and cites operator-scheduling work (references 19, 31, 50)
//! for the general problem. This module generalizes that same `Compare` to
//! whole graphs: a post-order DFS from the outputs in which every node's
//! predecessor subtrees are visited in `Compare` order, so the subtree whose
//! *result* is small relative to its transient peak runs first and nothing
//! bulky lingers across an expensive sibling.

use std::collections::HashMap;

use crate::graph::{Graph, ValueId};

/// Memoized per-subtree bookkeeping, exactly Algorithm 2's `res`.
#[derive(Clone, Copy, Debug)]
struct SubtreeCost {
    /// Bytes of the subtree's result tensor (`SIZE(v)`).
    size: usize,
    /// Estimated transient peak of computing the subtree.
    peak: usize,
}

/// Compute a demand-driven order of `g.nodes` (a permutation of indices):
/// post-order DFS from the outputs with children in operand order.
///
/// This is the *baseline* scheduler — it already avoids materializing dead
/// side chains early, but keeps sibling subtrees in program order. Use
/// [`memory_aware_order_ranked`] for the Compare-ordered variant the
/// compiler applies.
///
/// # Panics
/// Panics if shape inference has not run.
pub fn memory_aware_order(g: &Graph) -> Vec<usize> {
    let producer: HashMap<ValueId, usize> =
        g.nodes.iter().enumerate().map(|(i, node)| (node.output, i)).collect();

    let mut state = Dfs {
        g,
        producer,
        visited: vec![false; g.nodes.len()],
        costs: vec![None; g.nodes.len()],
        order: Vec::with_capacity(g.nodes.len()),
    };
    // Schedule everything reachable from the outputs, then any dead code in
    // original order (its operands are then already defined).
    let out_nodes: Vec<usize> =
        g.outputs.iter().filter_map(|v| state.producer.get(v).copied()).collect();
    for i in out_nodes {
        state.visit(i);
    }
    for i in 0..g.nodes.len() {
        state.visit(i);
    }
    assert_eq!(state.order.len(), g.nodes.len(), "cycle in graph");
    state.order
}

struct Dfs<'a> {
    g: &'a Graph,
    producer: HashMap<ValueId, usize>,
    visited: Vec<bool>,
    costs: Vec<Option<SubtreeCost>>,
    order: Vec<usize>,
}

impl Dfs<'_> {
    /// Post-order visit; returns the node's subtree cost.
    fn visit(&mut self, i: usize) -> SubtreeCost {
        if self.visited[i] {
            // Already scheduled: its result is materialized, so re-use costs
            // nothing new.
            return SubtreeCost { size: self.costs[i].map_or(0, |c| c.size), peak: 0 };
        }
        self.visited[i] = true;

        let mut child_nodes: Vec<usize> =
            self.g.nodes[i].inputs.iter().filter_map(|v| self.producer.get(v).copied()).collect();
        child_nodes.sort_unstable();
        child_nodes.dedup();

        // Visit children in operand order (the baseline strategy;
        // `memory_aware_order_ranked` pre-ranks siblings with Compare
        // instead — the ablation bench contrasts the two).
        let mut children: Vec<(usize, SubtreeCost)> = Vec::with_capacity(child_nodes.len());
        for c in child_nodes {
            if self.visited[c] {
                continue;
            }
            let cost = self.visit(c);
            children.push((c, cost));
        }

        let size = self.g.value_bytes(self.g.nodes[i].output);
        // Peak(l, v) from Algorithm 2.
        let mut peak = 0usize;
        let mut resided = 0usize;
        for (_, c) in &children {
            peak = peak.max(resided + c.peak);
            resided += c.size;
        }
        let peak = peak.max(resided + size);

        self.order.push(i);
        let cost = SubtreeCost { size, peak };
        self.costs[i] = Some(cost);
        cost
    }
}

/// Standalone subtree cost estimate used to pre-rank siblings before the
/// emitting DFS runs: size = result bytes, peak = max(result + heaviest
/// input, result) along the subtree, memoized.
fn estimate(
    g: &Graph,
    producer: &HashMap<ValueId, usize>,
    memo: &mut Vec<Option<SubtreeCost>>,
    i: usize,
) -> SubtreeCost {
    if let Some(c) = memo[i] {
        return c;
    }
    // Seed the memo to terminate on (impossible) cycles.
    memo[i] = Some(SubtreeCost { size: 0, peak: 0 });
    let size = g.value_bytes(g.nodes[i].output);
    let mut child_nodes: Vec<usize> =
        g.nodes[i].inputs.iter().filter_map(|v| producer.get(v).copied()).collect();
    child_nodes.sort_unstable();
    child_nodes.dedup();
    let mut children: Vec<SubtreeCost> =
        child_nodes.iter().map(|&c| estimate(g, producer, memo, c)).collect();
    children.sort_by(|a, b| (a.size + b.peak).cmp(&(b.size + a.peak)));
    let mut peak = 0usize;
    let mut resided = 0usize;
    for c in &children {
        peak = peak.max(resided + c.peak);
        resided += c.size;
    }
    let cost = SubtreeCost { size, peak: peak.max(resided + size) };
    memo[i] = Some(cost);
    cost
}

/// Reorder the node list according to `order` (a permutation).
pub fn apply_order(g: &mut Graph, order: &[usize]) {
    assert_eq!(order.len(), g.nodes.len(), "order must be a full permutation");
    let old = std::mem::take(&mut g.nodes);
    let mut slots: Vec<Option<crate::graph::Node>> = old.into_iter().map(Some).collect();
    g.nodes =
        order.iter().map(|&i| slots[i].take().expect("order must not repeat indices")).collect();
}

/// Convenience: schedule with sibling pre-ranking and return the new order.
///
/// This is the entry the compiler uses: it pre-ranks every node's
/// predecessor list by the standalone estimate (Algorithm 2's `ORDER`),
/// rewrites the operand traversal order accordingly, and then runs the
/// emitting DFS.
pub fn memory_aware_order_ranked(g: &Graph) -> Vec<usize> {
    let producer: HashMap<ValueId, usize> =
        g.nodes.iter().enumerate().map(|(i, node)| (node.output, i)).collect();
    let mut memo = vec![None; g.nodes.len()];

    let mut visited = vec![false; g.nodes.len()];
    let mut order = Vec::with_capacity(g.nodes.len());
    // Iterative DFS with Compare-ordered children.
    let roots: Vec<usize> =
        g.outputs.iter().filter_map(|v| producer.get(v).copied()).chain(0..g.nodes.len()).collect();
    for root in roots {
        if visited[root] {
            continue;
        }
        let mut stack: Vec<(usize, bool)> = vec![(root, false)];
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                if !visited[i] {
                    visited[i] = true;
                    order.push(i);
                }
                continue;
            }
            if visited[i] {
                continue;
            }
            stack.push((i, true));
            let mut child_nodes: Vec<usize> = g.nodes[i]
                .inputs
                .iter()
                .filter_map(|v| producer.get(v).copied())
                .filter(|&c| !visited[c])
                .collect();
            child_nodes.sort_unstable();
            child_nodes.dedup();
            let mut ranked: Vec<(usize, SubtreeCost)> = child_nodes
                .into_iter()
                .map(|c| (c, estimate(g, &producer, &mut memo, c)))
                .collect();
            // Compare order: earlier-run children first. The stack reverses,
            // so push in reverse Compare order.
            ranked.sort_by(|(_, a), (_, b)| (a.size + b.peak).cmp(&(b.size + a.peak)));
            for (c, _) in ranked.into_iter().rev() {
                stack.push((c, false));
            }
        }
    }
    assert_eq!(order.len(), g.nodes.len(), "cycle in graph");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::liveness;
    use temco_tensor::Tensor;

    /// Peak bytes under the current schedule (mirror of the runtime planner,
    /// local to avoid the dependency).
    fn peak(g: &Graph) -> usize {
        let lv = liveness(g);
        (0..g.nodes.len())
            .map(|i| {
                (0..g.values.len())
                    .filter(|&v| lv.live_at(ValueId(v as u32), i))
                    .map(|v| g.value_bytes(ValueId(v as u32)))
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Two branches off one input: a cheap one and an expensive one joined
    /// by an add; running the cheap branch eagerly would hold its result
    /// alive across the expensive branch.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 8, 8], "x");
        // Expanding branch declared FIRST so program order is pessimal: its
        // 32-channel result (4× larger than x) would sit across the
        // expensive branch if computed eagerly.
        let cheap = g.conv2d(x, Tensor::zeros(&[32, 8, 1, 1]), None, 1, 0, "cheap");
        // Expensive branch: blows up to 64 channels then back down.
        let big = g.conv2d(x, Tensor::zeros(&[64, 8, 3, 3]), None, 1, 1, "big");
        let bigr = g.relu(big, "bigr");
        let down = g.conv2d(bigr, Tensor::zeros(&[8, 64, 3, 3]), None, 1, 1, "down");
        let s = g.concat(&[down, cheap], "join");
        g.mark_output(s);
        g.infer_shapes();
        g
    }

    #[test]
    fn order_is_a_valid_permutation_and_topological() {
        let g = diamond();
        for order in [memory_aware_order(&g), memory_aware_order_ranked(&g)] {
            let mut seen = vec![false; g.nodes.len()];
            let mut defined: Vec<ValueId> = Vec::new();
            for &i in &order {
                assert!(!seen[i]);
                seen[i] = true;
                for v in &g.nodes[i].inputs {
                    assert!(defined.contains(v), "use before def after scheduling");
                }
                defined.push(g.nodes[i].output);
            }
            assert_eq!(order.len(), g.nodes.len());
        }
    }

    #[test]
    fn rescheduling_never_increases_peak_on_diamond() {
        let mut g = diamond();
        let before = peak(&g);
        let order = memory_aware_order_ranked(&g);
        apply_order(&mut g, &order);
        assert!(crate::verify::verify(&g).is_empty());
        let after = peak(&g);
        assert!(after <= before, "{before} → {after}");
    }

    #[test]
    fn delays_the_cheap_branch_until_needed() {
        // In program order "cheap" sits before the expensive chain; the
        // Compare-ordered scheduler pushes it after (its result would
        // otherwise ride across the 64-channel bump).
        let mut g = diamond();
        let order = memory_aware_order_ranked(&g);
        apply_order(&mut g, &order);
        let cheap_pos = g.nodes.iter().position(|n| n.name == "cheap").unwrap();
        let down_pos = g.nodes.iter().position(|n| n.name == "down").unwrap();
        assert!(cheap_pos > down_pos, "cheap at {cheap_pos}, down at {down_pos}");
        // And the reschedule actually lowers peak memory here.
        let mut orig = diamond();
        let before = peak(&orig);
        let after = peak(&g);
        assert!(after < before, "{before} → {after}");
        orig.infer_shapes();
    }

    #[test]
    fn linear_chains_keep_their_order() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "x");
        let a = g.relu(x, "a");
        let b = g.relu(a, "b");
        let c = g.relu(b, "c");
        g.mark_output(c);
        g.infer_shapes();
        assert_eq!(memory_aware_order_ranked(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dead_code_is_scheduled_after_live_code() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "x");
        let dead = g.relu(x, "dead");
        let _dead2 = g.relu(dead, "dead2");
        let live = g.relu(x, "live");
        g.mark_output(live);
        g.infer_shapes();
        let order = memory_aware_order_ranked(&g);
        let live_pos = order.iter().position(|&i| g.nodes[i].name == "live").unwrap();
        let dead_pos = order.iter().position(|&i| g.nodes[i].name == "dead").unwrap();
        assert!(live_pos < dead_pos);
    }
}
