//! Shape inference.

use std::fmt;

use temco_tensor::conv_out_dim;

use crate::graph::Graph;
use crate::op::Op;

/// A typed shape-inference failure.
///
/// Every inconsistency [`try_infer`] can hit is reported as a value instead
/// of a panic, so callers holding untrusted or machine-generated graphs (the
/// serving layer's [`Graph::try_rebatch`](crate::Graph::try_rebatch), the
/// `temco-check` harness) can reject them without aborting the process. The
/// panicking [`infer`] wrapper keeps the builder-path ergonomics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// An `Input` node carries no shape.
    MissingInputShape {
        /// The input node's name.
        node: String,
    },
    /// A node consumes a value no earlier node defined.
    UseBeforeDef {
        /// The offending node's name.
        node: String,
    },
    /// Operand/weight shapes are inconsistent at a node. The message keeps
    /// the exact wording the old assertion-based inference used.
    Mismatch {
        /// Human-readable description naming the node.
        msg: String,
    },
    /// `rebatch` was asked for a zero batch size.
    ZeroBatch,
    /// `rebatch` found a graph input with no leading (batch) dimension.
    ScalarInput {
        /// The input value's name.
        input: String,
    },
    /// A node's output collapsed to zero elements (a convolution or pooling
    /// window larger than its padded input). Such a graph can never execute;
    /// [`Graph::try_rebatch`](crate::Graph::try_rebatch) reports it up front.
    Degenerate {
        /// The node whose output is empty.
        node: String,
        /// The degenerate output shape.
        shape: Vec<usize>,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::MissingInputShape { node } => {
                write!(f, "input '{node}' must carry a shape")
            }
            ShapeError::UseBeforeDef { node } => {
                write!(f, "node '{node}' uses value before definition")
            }
            ShapeError::Mismatch { msg } => write!(f, "{msg}"),
            ShapeError::ZeroBatch => write!(f, "rebatch: batch must be positive"),
            ShapeError::ScalarInput { input } => {
                write!(f, "rebatch: input '{input}' has no batch dimension")
            }
            ShapeError::Degenerate { node, shape } => {
                write!(
                    f,
                    "node '{node}' produces a zero-sized tensor {shape:?} \
                     (kernel or pooling window larger than its padded input)"
                )
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Build a [`ShapeError::Mismatch`] from format arguments.
macro_rules! mismatch {
    ($($arg:tt)*) => {
        return Err(ShapeError::Mismatch { msg: format!($($arg)*) })
    };
}

/// Require `cond`, reporting a [`ShapeError::Mismatch`] otherwise.
macro_rules! require {
    ($cond:expr, $($arg:tt)*) => {
        if !$cond {
            mismatch!($($arg)*);
        }
    };
}

/// Infer the shape of every value in schedule order.
///
/// # Panics
/// Panics on inconsistent graphs (mismatched operand shapes, use before
/// definition) with a message naming the offending node. Fallible callers
/// should use [`try_infer`].
pub fn infer(g: &mut Graph) {
    if let Err(e) = try_infer(g) {
        panic!("{e}");
    }
}

/// Infer the shape of every value in schedule order, reporting
/// inconsistencies as a typed [`ShapeError`] instead of panicking.
///
/// On error the graph's value shapes are left partially inferred; callers
/// that keep the graph should re-run inference after repairing it.
pub fn try_infer(g: &mut Graph) -> Result<(), ShapeError> {
    for i in 0..g.nodes.len() {
        let node = g.nodes[i].clone();
        if matches!(node.op, Op::Input) {
            if g.values[node.output.0 as usize].shape.is_none() {
                return Err(ShapeError::MissingInputShape { node: node.name });
            }
            continue;
        }
        let mut in_shapes = Vec::with_capacity(node.inputs.len());
        for &v in &node.inputs {
            match g.values[v.0 as usize].shape.clone() {
                Some(s) => in_shapes.push(s),
                None => return Err(ShapeError::UseBeforeDef { node: node.name }),
            }
        }
        let out = out_shape(g, &node.op, &in_shapes, &node.name)?;
        g.values[node.output.0 as usize].shape = Some(out);
    }
    Ok(())
}

fn out_shape(g: &Graph, op: &Op, ins: &[Vec<usize>], name: &str) -> Result<Vec<usize>, ShapeError> {
    Ok(match op {
        Op::Input => unreachable!("input nodes are handled by the caller"),
        Op::Conv2d(spec) => {
            let x = &ins[0];
            require!(x.len() == 4, "conv input must be 4-D at '{name}'");
            let w = g.weight(spec.weight);
            let (c_out, c_in_g, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
            require!(
                c_in_g * spec.groups == x[1],
                "conv '{name}': weight expects {} input channels, got {}",
                c_in_g * spec.groups,
                x[1]
            );
            require!(
                spec.groups > 0 && c_out.is_multiple_of(spec.groups),
                "conv '{name}': {} output channels not divisible by {} groups",
                c_out,
                spec.groups
            );
            require!(
                spec.stride.0 > 0 && spec.stride.1 > 0,
                "conv '{name}': stride must be positive"
            );
            let oh = conv_out_dim(x[2], kh, spec.stride.0, spec.padding.0);
            let ow = conv_out_dim(x[3], kw, spec.stride.1, spec.padding.1);
            vec![x[0], c_out, oh, ow]
        }
        Op::ConvTranspose2d { weight, stride, .. } => {
            let x = &ins[0];
            require!(x.len() == 4, "upconv input must be 4-D at '{name}'");
            let w = g.weight(*weight);
            require!(w.dim(0) == x[1], "upconv '{name}' channel mismatch");
            require!(
                x[2] > 0 && x[3] > 0,
                "upconv '{name}': input has a zero-sized spatial dimension"
            );
            let oh = (x[2] - 1) * stride.0 + w.dim(2);
            let ow = (x[3] - 1) * stride.1 + w.dim(3);
            vec![x[0], w.dim(1), oh, ow]
        }
        Op::Activation(_) => ins[0].clone(),
        Op::Pool { kernel, stride, .. } => {
            let x = &ins[0];
            require!(x.len() == 4, "pool input must be 4-D at '{name}'");
            require!(*stride > 0, "pool '{name}': stride must be positive");
            vec![
                x[0],
                x[1],
                conv_out_dim(x[2], *kernel, *stride, 0),
                conv_out_dim(x[3], *kernel, *stride, 0),
            ]
        }
        Op::GlobalAvgPool => {
            let x = &ins[0];
            require!(x.len() == 4, "global pool input must be 4-D at '{name}'");
            vec![x[0], x[1], 1, 1]
        }
        Op::Affine { scale, .. } => {
            let x = &ins[0];
            require!(x.len() >= 2, "affine input must have channels at '{name}'");
            require!(g.weight(*scale).numel() == x[1], "affine '{name}' channel mismatch");
            x.clone()
        }
        Op::Add => {
            for s in &ins[1..] {
                require!(s == &ins[0], "add '{name}' operand shape mismatch");
            }
            ins[0].clone()
        }
        Op::Concat => {
            let first = &ins[0];
            require!(first.len() == 4, "concat expects 4-D at '{name}'");
            let mut c = 0;
            for s in ins {
                require!(s.len() == 4, "concat expects 4-D at '{name}'");
                require!(s[0] == first[0], "concat '{name}' batch mismatch");
                require!(s[2] == first[2], "concat '{name}' height mismatch");
                require!(s[3] == first[3], "concat '{name}' width mismatch");
                c += s[1];
            }
            vec![first[0], c, first[2], first[3]]
        }
        Op::Linear { weight, .. } => {
            let x = &ins[0];
            require!(x.len() >= 2, "linear input must have features at '{name}'");
            let w = g.weight(*weight);
            require!(x[1] == w.dim(1), "linear '{name}' feature mismatch");
            vec![x[0], w.dim(0)]
        }
        Op::Flatten => {
            let x = &ins[0];
            require!(!x.is_empty(), "flatten input must have a batch dim at '{name}'");
            vec![x[0], x[1..].iter().product()]
        }
        Op::Softmax => ins[0].clone(),
        Op::Fused(spec) => {
            let x = &ins[0];
            require!(x.len() == 4, "fused input must be 4-D at '{name}'");
            let lw = g.weight(spec.lconv_w);
            require!(lw.dim(1) == x[1], "fused '{name}': lconv input channel mismatch");
            let (mut h, mut w) = (x[2], x[3]);
            if let Some((_, k, s)) = spec.pool {
                require!(s > 0, "fused '{name}': pool stride must be positive");
                h = conv_out_dim(h, k, s, 0);
                w = conv_out_dim(w, k, s, 0);
            }
            let c_out = match &spec.fconv {
                Some(fc) => {
                    let fw = g.weight(fc.weight);
                    require!(
                        fw.dim(1) == lw.dim(0),
                        "fused '{name}': fconv/lconv channel mismatch"
                    );
                    fw.dim(0)
                }
                None => lw.dim(0), // restore kernel: full channel width out
            };
            vec![x[0], c_out, h, w]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::ShapeError;
    use crate::graph::Graph;
    use crate::op::ActKind;
    use temco_tensor::Tensor;

    #[test]
    fn infers_conv_chain() {
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 32, 32], "x");
        let c1 = g.conv2d(x, Tensor::zeros(&[8, 3, 3, 3]), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let p1 = g.max_pool(r1, 2, 2, "p1");
        let f = g.flatten(p1, "f");
        let l = g.linear(f, Tensor::zeros(&[10, 8 * 16 * 16]), None, "fc");
        let s = g.softmax(l, "sm");
        g.mark_output(s);
        g.infer_shapes();
        assert_eq!(g.shape(c1), &[2, 8, 32, 32]);
        assert_eq!(g.shape(p1), &[2, 8, 16, 16]);
        assert_eq!(g.shape(f), &[2, 2048]);
        assert_eq!(g.shape(s), &[2, 10]);
    }

    #[test]
    fn infers_concat_and_add() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let a = g.relu(x, "a");
        let b = g.activation(x, ActKind::Silu, "b");
        let cat = g.concat(&[a, b], "cat");
        let sum = g.add(&[a, b], "sum");
        g.mark_output(cat);
        g.mark_output(sum);
        g.infer_shapes();
        assert_eq!(g.shape(cat), &[1, 8, 8, 8]);
        assert_eq!(g.shape(sum), &[1, 4, 8, 8]);
    }

    #[test]
    fn infers_upconv() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 14, 14], "x");
        let u = g.conv_transpose2d(x, Tensor::zeros(&[8, 4, 2, 2]), None, 2, "up");
        g.mark_output(u);
        g.infer_shapes();
        assert_eq!(g.shape(u), &[1, 4, 28, 28]);
    }

    #[test]
    fn infers_fused_shapes_with_and_without_fconv() {
        use crate::op::{FconvSpec, FusedSpec, PoolKind};
        let mut g = Graph::new();
        let x = g.input(&[2, 4, 8, 8], "x");
        let lw = g.add_weight(Tensor::zeros(&[32, 4, 1, 1]));
        let fw = g.add_weight(Tensor::zeros(&[6, 32, 1, 1]));
        let full = g.fused(
            x,
            FusedSpec {
                lconv_w: lw,
                lconv_b: None,
                act: ActKind::Relu,
                pool: Some((PoolKind::Max, 2, 2)),
                fconv: Some(FconvSpec { weight: fw, bias: None }),
            },
            "full",
        );
        let restore = g.fused(
            x,
            FusedSpec { lconv_w: lw, lconv_b: None, act: ActKind::Relu, pool: None, fconv: None },
            "restore",
        );
        g.mark_output(full);
        g.mark_output(restore);
        g.infer_shapes();
        assert_eq!(g.shape(full), &[2, 6, 4, 4]); // reduced + pooled
        assert_eq!(g.shape(restore), &[2, 32, 8, 8]); // full width, unpooled
    }

    #[test]
    #[should_panic(expected = "channel")]
    fn conv_channel_mismatch_panics() {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let c = g.conv2d(x, Tensor::zeros(&[4, 5, 3, 3]), None, 1, 1, "bad");
        g.mark_output(c);
        g.infer_shapes();
    }

    #[test]
    fn try_infer_reports_mismatch_as_value() {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let c = g.conv2d(x, Tensor::zeros(&[4, 5, 3, 3]), None, 1, 1, "bad");
        g.mark_output(c);
        let err = g.try_infer_shapes().unwrap_err();
        assert!(matches!(err, ShapeError::Mismatch { .. }));
        assert!(err.to_string().contains("channel"), "{err}");
    }

    #[test]
    fn try_infer_reports_upconv_on_collapsed_input_as_value() {
        // A pooling window larger than the image collapses the spatial dims
        // to zero; the downstream transposed convolution used to underflow
        // (`0 - 1`) and abort. It must now be a typed error.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 3, 3], "x");
        let p = g.max_pool(x, 7, 2, "bigpool");
        let u = g.conv_transpose2d(p, Tensor::zeros(&[4, 2, 2, 2]), None, 2, "up");
        g.mark_output(u);
        let err = g.try_infer_shapes().unwrap_err();
        assert!(err.to_string().contains("zero-sized"), "{err}");
    }
}
