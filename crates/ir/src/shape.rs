//! Shape inference.

use temco_tensor::conv_out_dim;

use crate::graph::Graph;
use crate::op::Op;

/// Infer the shape of every value in schedule order.
///
/// # Panics
/// Panics on inconsistent graphs (mismatched operand shapes, use before
/// definition) with a message naming the offending node.
pub fn infer(g: &mut Graph) {
    for i in 0..g.nodes.len() {
        let node = g.nodes[i].clone();
        if matches!(node.op, Op::Input) {
            assert!(
                g.values[node.output.0 as usize].shape.is_some(),
                "input '{}' must carry a shape",
                node.name
            );
            continue;
        }
        let in_shapes: Vec<Vec<usize>> =
            node.inputs
                .iter()
                .map(|&v| {
                    g.values[v.0 as usize].shape.clone().unwrap_or_else(|| {
                        panic!("node '{}' uses value before definition", node.name)
                    })
                })
                .collect();
        let out = out_shape(g, &node.op, &in_shapes, &node.name);
        g.values[node.output.0 as usize].shape = Some(out);
    }
}

fn out_shape(g: &Graph, op: &Op, ins: &[Vec<usize>], name: &str) -> Vec<usize> {
    match op {
        Op::Input => unreachable!("input nodes are handled by the caller"),
        Op::Conv2d(spec) => {
            let x = &ins[0];
            assert_eq!(x.len(), 4, "conv input must be 4-D at '{name}'");
            let w = g.weight(spec.weight);
            let (c_out, c_in_g, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
            assert_eq!(
                c_in_g * spec.groups,
                x[1],
                "conv '{name}': weight expects {} input channels, got {}",
                c_in_g * spec.groups,
                x[1]
            );
            let oh = conv_out_dim(x[2], kh, spec.stride.0, spec.padding.0);
            let ow = conv_out_dim(x[3], kw, spec.stride.1, spec.padding.1);
            vec![x[0], c_out, oh, ow]
        }
        Op::ConvTranspose2d { weight, stride, .. } => {
            let x = &ins[0];
            let w = g.weight(*weight);
            assert_eq!(w.dim(0), x[1], "upconv '{name}' channel mismatch");
            let oh = (x[2] - 1) * stride.0 + w.dim(2);
            let ow = (x[3] - 1) * stride.1 + w.dim(3);
            vec![x[0], w.dim(1), oh, ow]
        }
        Op::Activation(_) => ins[0].clone(),
        Op::Pool { kernel, stride, .. } => {
            let x = &ins[0];
            vec![
                x[0],
                x[1],
                conv_out_dim(x[2], *kernel, *stride, 0),
                conv_out_dim(x[3], *kernel, *stride, 0),
            ]
        }
        Op::GlobalAvgPool => {
            let x = &ins[0];
            vec![x[0], x[1], 1, 1]
        }
        Op::Affine { scale, .. } => {
            let x = &ins[0];
            assert_eq!(g.weight(*scale).numel(), x[1], "affine '{name}' channel mismatch");
            x.clone()
        }
        Op::Add => {
            for s in &ins[1..] {
                assert_eq!(s, &ins[0], "add '{name}' operand shape mismatch");
            }
            ins[0].clone()
        }
        Op::Concat => {
            let first = &ins[0];
            assert_eq!(first.len(), 4, "concat expects 4-D at '{name}'");
            let mut c = 0;
            for s in ins {
                assert_eq!(s[0], first[0], "concat '{name}' batch mismatch");
                assert_eq!(s[2], first[2], "concat '{name}' height mismatch");
                assert_eq!(s[3], first[3], "concat '{name}' width mismatch");
                c += s[1];
            }
            vec![first[0], c, first[2], first[3]]
        }
        Op::Linear { weight, .. } => {
            let x = &ins[0];
            let w = g.weight(*weight);
            assert_eq!(x[1], w.dim(1), "linear '{name}' feature mismatch");
            vec![x[0], w.dim(0)]
        }
        Op::Flatten => {
            let x = &ins[0];
            vec![x[0], x[1..].iter().product()]
        }
        Op::Softmax => ins[0].clone(),
        Op::Fused(spec) => {
            let x = &ins[0];
            let lw = g.weight(spec.lconv_w);
            assert_eq!(lw.dim(1), x[1], "fused '{name}': lconv input channel mismatch");
            let (mut h, mut w) = (x[2], x[3]);
            if let Some((_, k, s)) = spec.pool {
                h = conv_out_dim(h, k, s, 0);
                w = conv_out_dim(w, k, s, 0);
            }
            let c_out = match &spec.fconv {
                Some(fc) => {
                    let fw = g.weight(fc.weight);
                    assert_eq!(
                        fw.dim(1),
                        lw.dim(0),
                        "fused '{name}': fconv/lconv channel mismatch"
                    );
                    fw.dim(0)
                }
                None => lw.dim(0), // restore kernel: full channel width out
            };
            vec![x[0], c_out, h, w]
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crate::op::ActKind;
    use temco_tensor::Tensor;

    #[test]
    fn infers_conv_chain() {
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 32, 32], "x");
        let c1 = g.conv2d(x, Tensor::zeros(&[8, 3, 3, 3]), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let p1 = g.max_pool(r1, 2, 2, "p1");
        let f = g.flatten(p1, "f");
        let l = g.linear(f, Tensor::zeros(&[10, 8 * 16 * 16]), None, "fc");
        let s = g.softmax(l, "sm");
        g.mark_output(s);
        g.infer_shapes();
        assert_eq!(g.shape(c1), &[2, 8, 32, 32]);
        assert_eq!(g.shape(p1), &[2, 8, 16, 16]);
        assert_eq!(g.shape(f), &[2, 2048]);
        assert_eq!(g.shape(s), &[2, 10]);
    }

    #[test]
    fn infers_concat_and_add() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let a = g.relu(x, "a");
        let b = g.activation(x, ActKind::Silu, "b");
        let cat = g.concat(&[a, b], "cat");
        let sum = g.add(&[a, b], "sum");
        g.mark_output(cat);
        g.mark_output(sum);
        g.infer_shapes();
        assert_eq!(g.shape(cat), &[1, 8, 8, 8]);
        assert_eq!(g.shape(sum), &[1, 4, 8, 8]);
    }

    #[test]
    fn infers_upconv() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 14, 14], "x");
        let u = g.conv_transpose2d(x, Tensor::zeros(&[8, 4, 2, 2]), None, 2, "up");
        g.mark_output(u);
        g.infer_shapes();
        assert_eq!(g.shape(u), &[1, 4, 28, 28]);
    }

    #[test]
    fn infers_fused_shapes_with_and_without_fconv() {
        use crate::op::{FconvSpec, FusedSpec, PoolKind};
        let mut g = Graph::new();
        let x = g.input(&[2, 4, 8, 8], "x");
        let lw = g.add_weight(Tensor::zeros(&[32, 4, 1, 1]));
        let fw = g.add_weight(Tensor::zeros(&[6, 32, 1, 1]));
        let full = g.fused(
            x,
            FusedSpec {
                lconv_w: lw,
                lconv_b: None,
                act: ActKind::Relu,
                pool: Some((PoolKind::Max, 2, 2)),
                fconv: Some(FconvSpec { weight: fw, bias: None }),
            },
            "full",
        );
        let restore = g.fused(
            x,
            FusedSpec { lconv_w: lw, lconv_b: None, act: ActKind::Relu, pool: None, fconv: None },
            "restore",
        );
        g.mark_output(full);
        g.mark_output(restore);
        g.infer_shapes();
        assert_eq!(g.shape(full), &[2, 6, 4, 4]); // reduced + pooled
        assert_eq!(g.shape(restore), &[2, 32, 8, 8]); // full width, unpooled
    }

    #[test]
    #[should_panic(expected = "channel")]
    fn conv_channel_mismatch_panics() {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let c = g.conv2d(x, Tensor::zeros(&[4, 5, 3, 3]), None, 1, 1, "bad");
        g.mark_output(c);
        g.infer_shapes();
    }
}
