//! Binary serialization of graphs (the `.temco` model format).
//!
//! A compiled model is worth saving: decomposition is the expensive part of
//! the pipeline (SVD over every kernel), while loading a factorized graph is
//! instant. The format is a simple versioned little-endian layout written
//! by hand — no external dependencies, no schema drift:
//!
//! ```text
//! magic "TMCO" | version u32
//! weights: count, then per tensor: ndim, dims…, f32 data
//! values:  count, then per value: name, optional shape
//! nodes:   count, then per node: op tag + fields, inputs, output, name
//! inputs / outputs: value-id lists
//! ```

use std::io::{self, Read, Write};

use temco_tensor::Tensor;

use crate::graph::{Graph, Node, ValueId, ValueInfo, WeightId};
use crate::op::{ActKind, ConvRole, ConvSpec, FconvSpec, FusedSpec, Op, PoolKind};

const MAGIC: &[u8; 4] = b"TMCO";
const VERSION: u32 = 1;

/// Serialize `g` to `w`.
pub fn save_graph(g: &Graph, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    put_u32(w, VERSION)?;

    put_u32(w, g.weights.len() as u32)?;
    for t in g.weights.iter() {
        put_u32(w, t.shape().len() as u32)?;
        for &d in t.shape() {
            put_u32(w, d as u32)?;
        }
        for &x in t.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }

    put_u32(w, g.values.len() as u32)?;
    for v in &g.values {
        put_str(w, &v.name)?;
        match &v.shape {
            None => put_u32(w, u32::MAX)?,
            Some(s) => {
                put_u32(w, s.len() as u32)?;
                for &d in s {
                    put_u32(w, d as u32)?;
                }
            }
        }
    }

    put_u32(w, g.nodes.len() as u32)?;
    for n in &g.nodes {
        put_op(w, &n.op)?;
        put_u32(w, n.inputs.len() as u32)?;
        for v in &n.inputs {
            put_u32(w, v.0)?;
        }
        put_u32(w, n.output.0)?;
        put_str(w, &n.name)?;
    }

    put_u32(w, g.inputs.len() as u32)?;
    for v in &g.inputs {
        put_u32(w, v.0)?;
    }
    put_u32(w, g.outputs.len() as u32)?;
    for v in &g.outputs {
        put_u32(w, v.0)?;
    }
    Ok(())
}

/// Deserialize a graph from `r`.
///
/// # Errors
/// I/O errors, bad magic, or an unsupported version.
pub fn load_graph(r: &mut impl Read) -> io::Result<Graph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a .temco model file"));
    }
    let version = get_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported .temco version {version}"),
        ));
    }

    let n_weights = get_u32(r)? as usize;
    let mut weights = Vec::with_capacity(n_weights);
    for _ in 0..n_weights {
        let ndim = get_u32(r)? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(get_u32(r)? as usize);
        }
        let numel: usize = dims.iter().product();
        let mut data = vec![0f32; numel];
        for x in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *x = f32::from_le_bytes(b);
        }
        weights.push(Tensor::from_vec(&dims, data));
    }

    let n_values = get_u32(r)? as usize;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let name = get_str(r)?;
        let tag = get_u32(r)?;
        let shape = if tag == u32::MAX {
            None
        } else {
            let mut s = Vec::with_capacity(tag as usize);
            for _ in 0..tag {
                s.push(get_u32(r)? as usize);
            }
            Some(s)
        };
        values.push(ValueInfo { name, shape });
    }

    let n_nodes = get_u32(r)? as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let op = get_op(r)?;
        let n_in = get_u32(r)? as usize;
        let mut inputs = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            inputs.push(ValueId(get_u32(r)?));
        }
        let output = ValueId(get_u32(r)?);
        let name = get_str(r)?;
        nodes.push(Node { op, inputs, output, name });
    }

    let n_inputs = get_u32(r)? as usize;
    let mut inputs = Vec::with_capacity(n_inputs);
    for _ in 0..n_inputs {
        inputs.push(ValueId(get_u32(r)?));
    }
    let n_outputs = get_u32(r)? as usize;
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        outputs.push(ValueId(get_u32(r)?));
    }

    Ok(Graph { nodes, values, weights: weights.into(), inputs, outputs })
}

// ----------------------------------------------------------------------
// primitives
// ----------------------------------------------------------------------

fn put_u32(w: &mut impl Write, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn put_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn get_str(r: &mut impl Read) -> io::Result<String> {
    let len = get_u32(r)? as usize;
    let mut b = vec![0u8; len];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn put_opt_w(w: &mut impl Write, x: Option<WeightId>) -> io::Result<()> {
    put_u32(w, x.map_or(u32::MAX, |i| i.0))
}

fn get_opt_w(r: &mut impl Read) -> io::Result<Option<WeightId>> {
    let x = get_u32(r)?;
    Ok((x != u32::MAX).then_some(WeightId(x)))
}

fn act_tag(a: ActKind) -> u32 {
    match a {
        ActKind::Relu => 0,
        ActKind::Silu => 1,
        ActKind::Sigmoid => 2,
        ActKind::Tanh => 3,
    }
}

fn act_from(t: u32) -> io::Result<ActKind> {
    Ok(match t {
        0 => ActKind::Relu,
        1 => ActKind::Silu,
        2 => ActKind::Sigmoid,
        3 => ActKind::Tanh,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad activation tag")),
    })
}

fn put_op(w: &mut impl Write, op: &Op) -> io::Result<()> {
    match op {
        Op::Input => put_u32(w, 0)?,
        Op::Conv2d(s) => {
            put_u32(w, 1)?;
            put_u32(w, s.weight.0)?;
            put_opt_w(w, s.bias)?;
            put_u32(w, s.stride.0 as u32)?;
            put_u32(w, s.stride.1 as u32)?;
            put_u32(w, s.padding.0 as u32)?;
            put_u32(w, s.padding.1 as u32)?;
            put_u32(w, s.groups as u32)?;
            put_u32(
                w,
                match s.role {
                    ConvRole::Standard => 0,
                    ConvRole::FConv => 1,
                    ConvRole::Core => 2,
                    ConvRole::LConv => 3,
                },
            )?;
        }
        Op::ConvTranspose2d { weight, bias, stride } => {
            put_u32(w, 2)?;
            put_u32(w, weight.0)?;
            put_opt_w(w, *bias)?;
            put_u32(w, stride.0 as u32)?;
            put_u32(w, stride.1 as u32)?;
        }
        Op::Activation(a) => {
            put_u32(w, 3)?;
            put_u32(w, act_tag(*a))?;
        }
        Op::Pool { kind, kernel, stride } => {
            put_u32(w, 4)?;
            put_u32(w, matches!(kind, PoolKind::Avg) as u32)?;
            put_u32(w, *kernel as u32)?;
            put_u32(w, *stride as u32)?;
        }
        Op::GlobalAvgPool => put_u32(w, 5)?,
        Op::Affine { scale, bias } => {
            put_u32(w, 6)?;
            put_u32(w, scale.0)?;
            put_u32(w, bias.0)?;
        }
        Op::Add => put_u32(w, 7)?,
        Op::Concat => put_u32(w, 8)?,
        Op::Linear { weight, bias } => {
            put_u32(w, 9)?;
            put_u32(w, weight.0)?;
            put_opt_w(w, *bias)?;
        }
        Op::Flatten => put_u32(w, 10)?,
        Op::Softmax => put_u32(w, 11)?,
        Op::Fused(s) => {
            put_u32(w, 12)?;
            put_u32(w, s.lconv_w.0)?;
            put_opt_w(w, s.lconv_b)?;
            put_u32(w, act_tag(s.act))?;
            match s.pool {
                None => put_u32(w, u32::MAX)?,
                Some((kind, k, st)) => {
                    put_u32(w, matches!(kind, PoolKind::Avg) as u32)?;
                    put_u32(w, k as u32)?;
                    put_u32(w, st as u32)?;
                }
            }
            match &s.fconv {
                None => put_u32(w, u32::MAX)?,
                Some(fc) => {
                    put_u32(w, fc.weight.0)?;
                    put_opt_w(w, fc.bias)?;
                }
            }
        }
    }
    Ok(())
}

fn get_op(r: &mut impl Read) -> io::Result<Op> {
    let tag = get_u32(r)?;
    Ok(match tag {
        0 => Op::Input,
        1 => {
            let weight = WeightId(get_u32(r)?);
            let bias = get_opt_w(r)?;
            let stride = (get_u32(r)? as usize, get_u32(r)? as usize);
            let padding = (get_u32(r)? as usize, get_u32(r)? as usize);
            let groups = get_u32(r)? as usize;
            let role = match get_u32(r)? {
                0 => ConvRole::Standard,
                1 => ConvRole::FConv,
                2 => ConvRole::Core,
                3 => ConvRole::LConv,
                _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad conv role")),
            };
            Op::Conv2d(ConvSpec { weight, bias, stride, padding, groups, role })
        }
        2 => {
            let weight = WeightId(get_u32(r)?);
            let bias = get_opt_w(r)?;
            let stride = (get_u32(r)? as usize, get_u32(r)? as usize);
            Op::ConvTranspose2d { weight, bias, stride }
        }
        3 => Op::Activation(act_from(get_u32(r)?)?),
        4 => {
            let kind = if get_u32(r)? == 1 { PoolKind::Avg } else { PoolKind::Max };
            Op::Pool { kind, kernel: get_u32(r)? as usize, stride: get_u32(r)? as usize }
        }
        5 => Op::GlobalAvgPool,
        6 => Op::Affine { scale: WeightId(get_u32(r)?), bias: WeightId(get_u32(r)?) },
        7 => Op::Add,
        8 => Op::Concat,
        9 => {
            let weight = WeightId(get_u32(r)?);
            let bias = get_opt_w(r)?;
            Op::Linear { weight, bias }
        }
        10 => Op::Flatten,
        11 => Op::Softmax,
        12 => {
            let lconv_w = WeightId(get_u32(r)?);
            let lconv_b = get_opt_w(r)?;
            let act = act_from(get_u32(r)?)?;
            let pool_tag = get_u32(r)?;
            let pool = if pool_tag == u32::MAX {
                None
            } else {
                let kind = if pool_tag == 1 { PoolKind::Avg } else { PoolKind::Max };
                Some((kind, get_u32(r)? as usize, get_u32(r)? as usize))
            };
            let fconv_tag = get_u32(r)?;
            let fconv = if fconv_tag == u32::MAX {
                None
            } else {
                Some(FconvSpec { weight: WeightId(fconv_tag), bias: get_opt_w(r)? })
            };
            Op::Fused(FusedSpec { lconv_w, lconv_b, act, pool, fconv })
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad op tag {tag}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_tensor::Tensor;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save_graph(g, &mut buf).expect("save");
        load_graph(&mut buf.as_slice()).expect("load")
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let c =
            g.conv2d(x, Tensor::randn(&[8, 3, 3, 3], 1), Some(Tensor::randn(&[8], 2)), 2, 1, "c");
        let r = g.activation(c, ActKind::Silu, "r");
        let p = g.max_pool(r, 2, 2, "p");
        let a = g.affine(p, Tensor::randn(&[8], 3), Tensor::randn(&[8], 4), "bn");
        let s = g.add(&[a, a], "dbl");
        let cat = g.concat(&[s, a], "cat");
        let gp = g.global_avg_pool(cat, "gap");
        let f = g.flatten(gp, "flat");
        let l = g.linear(f, Tensor::randn(&[5, 16], 5), None, "fc");
        let sm = g.softmax(l, "sm");
        g.mark_output(sm);
        g.infer_shapes();
        g
    }

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        let g = sample_graph();
        let g2 = roundtrip(&g);
        assert_eq!(g.nodes.len(), g2.nodes.len());
        assert_eq!(g.weights.len(), g2.weights.len());
        for (a, b) in g.weights.iter().zip(&g2.weights) {
            assert_eq!(a, b);
        }
        for (a, b) in g.nodes.iter().zip(&g2.nodes) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.output, b.output);
            assert_eq!(a.name, b.name);
        }
        assert_eq!(g.inputs, g2.inputs);
        assert_eq!(g.outputs, g2.outputs);
        assert!(crate::verify::verify(&g2).is_empty());
    }

    #[test]
    fn roundtrip_preserves_fused_ops() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 4, 4], "x");
        let lw = g.add_weight(Tensor::randn(&[8, 2, 1, 1], 1));
        let fw = g.add_weight(Tensor::randn(&[3, 8, 1, 1], 2));
        let spec = FusedSpec {
            lconv_w: lw,
            lconv_b: None,
            act: ActKind::Relu,
            pool: Some((PoolKind::Max, 2, 2)),
            fconv: Some(FconvSpec { weight: fw, bias: None }),
        };
        let f = g.fused(x, spec, "fused");
        let restore = g.fused(
            x,
            FusedSpec { lconv_w: lw, lconv_b: None, act: ActKind::Tanh, pool: None, fconv: None },
            "restore",
        );
        g.mark_output(f);
        g.mark_output(restore);
        g.infer_shapes();
        let g2 = roundtrip(&g);
        assert_eq!(g.nodes[1].op, g2.nodes[1].op);
        assert_eq!(g.nodes[2].op, g2.nodes[2].op);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_graph(&mut &b"NOPE0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_future_versions() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = load_graph(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let g = sample_graph();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_graph(&mut buf.as_slice()).is_err());
    }
}
