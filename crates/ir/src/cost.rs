//! FLOPs cost model.
//!
//! The skip-connection optimization's `Overhead` check (Algorithm 1, lines
//! 1–9) compares the FLOPs of copied restore layers against a computation
//! threshold derived from the original model. This module provides the FLOP
//! counts for every operator; multiply-accumulate counts as 2 FLOPs.

use crate::graph::Graph;
use crate::op::Op;

/// FLOPs executed by node `i` under the graph's inferred shapes.
///
/// # Panics
/// Panics if shape inference has not run.
pub fn node_flops(g: &Graph, i: usize) -> u64 {
    let node = &g.nodes[i];
    let out_shape = g.shape(node.output).to_vec();
    let out_numel: u64 = out_shape.iter().product::<usize>() as u64;
    match &node.op {
        Op::Input | Op::Flatten | Op::Concat => 0,
        Op::Conv2d(spec) => {
            let w = g.weight(spec.weight);
            let k_work = (w.dim(1) * w.dim(2) * w.dim(3)) as u64;
            let bias = if spec.bias.is_some() { out_numel } else { 0 };
            2 * out_numel * k_work + bias
        }
        Op::ConvTranspose2d { weight, bias, .. } => {
            let w = g.weight(*weight);
            let in_shape = g.shape(node.inputs[0]);
            let in_numel: u64 = in_shape.iter().product::<usize>() as u64;
            let k_work = (w.dim(1) * w.dim(2) * w.dim(3)) as u64;
            let b = if bias.is_some() { out_numel } else { 0 };
            2 * in_numel * k_work + b
        }
        Op::Activation(_) => out_numel,
        Op::Pool { kernel, .. } => out_numel * (*kernel as u64) * (*kernel as u64),
        Op::GlobalAvgPool => g.shape(node.inputs[0]).iter().product::<usize>() as u64,
        Op::Affine { .. } => 2 * out_numel,
        Op::Add => out_numel * (node.inputs.len() as u64 - 1),
        Op::Linear { weight, bias } => {
            let w = g.weight(*weight);
            let n = out_shape[0] as u64;
            let b = if bias.is_some() { out_numel } else { 0 };
            2 * n * (w.dim(0) * w.dim(1)) as u64 + b
        }
        Op::Softmax => 4 * out_numel,
        Op::Fused(spec) => {
            // lconv at pre-pool resolution, activation, optional pool, fconv
            // at post-pool resolution — matching the work in Listing 1.
            let x = g.shape(node.inputs[0]);
            let (n, c_red_in, h, w) = (x[0] as u64, x[1] as u64, x[2] as u64, x[3] as u64);
            let c_full = g.weight(spec.lconv_w).dim(0) as u64;
            let lconv = 2 * n * c_full * h * w * c_red_in;
            let act = n * c_full * h * w;
            let (oh, ow) = (out_shape[2] as u64, out_shape[3] as u64);
            let pool = spec.pool.map_or(0, |(_, k, _)| n * c_full * oh * ow * (k * k) as u64);
            let fconv = spec
                .fconv
                .as_ref()
                .map_or(0, |fc| 2 * n * g.weight(fc.weight).dim(0) as u64 * oh * ow * c_full);
            lconv + act + pool + fconv
        }
    }
}

/// Total FLOPs of one inference of the whole graph.
pub fn graph_flops(g: &Graph) -> u64 {
    (0..g.nodes.len()).map(|i| node_flops(g, i)).sum()
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use temco_tensor::Tensor;

    use super::*;

    #[test]
    fn conv_flops_match_formula() {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "x");
        let c = g.conv2d(x, Tensor::zeros(&[4, 3, 3, 3]), None, 1, 1, "c");
        g.mark_output(c);
        g.infer_shapes();
        // 2 * (1*4*8*8) * (3*3*3)
        assert_eq!(node_flops(&g, 1), 2 * 256 * 27);
    }

    #[test]
    fn pointwise_conv_flops() {
        let mut g = Graph::new();
        let x = g.input(&[2, 16, 4, 4], "x");
        let c = g.conv2d(x, Tensor::zeros(&[8, 16, 1, 1]), None, 1, 0, "c");
        g.mark_output(c);
        g.infer_shapes();
        assert_eq!(node_flops(&g, 1), 2 * (2 * 8 * 4 * 4) * 16);
    }

    #[test]
    fn decomposition_reduces_flops() {
        // Original 64→64 3×3 conv vs Tucker-style fconv/core/lconv with rank 8.
        let mut orig = Graph::new();
        let x = orig.input(&[1, 64, 16, 16], "x");
        let c = orig.conv2d(x, Tensor::zeros(&[64, 64, 3, 3]), None, 1, 1, "c");
        orig.mark_output(c);
        orig.infer_shapes();

        let mut dec = Graph::new();
        let x = dec.input(&[1, 64, 16, 16], "x");
        let f = dec.conv2d(x, Tensor::zeros(&[8, 64, 1, 1]), None, 1, 0, "f");
        let k = dec.conv2d(f, Tensor::zeros(&[8, 8, 3, 3]), None, 1, 1, "k");
        let l = dec.conv2d(k, Tensor::zeros(&[64, 8, 1, 1]), None, 1, 0, "l");
        dec.mark_output(l);
        dec.infer_shapes();

        assert!(graph_flops(&dec) < graph_flops(&orig) / 4);
    }

    #[test]
    fn conv_transpose_flops_scale_with_input() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 7, 7], "x");
        let u = g.conv_transpose2d(x, Tensor::zeros(&[8, 4, 2, 2]), None, 2, "up");
        g.mark_output(u);
        g.infer_shapes();
        // 2 · in_numel · (c_out · kh · kw) = 2 · (8·49) · (4·4)
        assert_eq!(node_flops(&g, 1), 2 * 8 * 49 * 16);
    }

    #[test]
    fn linear_and_softmax_flops() {
        let mut g = Graph::new();
        let x = g.input(&[2, 10], "x");
        let l = g.linear(x, Tensor::zeros(&[5, 10]), Some(Tensor::zeros(&[5])), "fc");
        let s = g.softmax(l, "sm");
        g.mark_output(s);
        g.infer_shapes();
        assert_eq!(node_flops(&g, 1), 2 * 2 * 50 + 10); // matmul + bias
        assert_eq!(node_flops(&g, 2), 4 * 10); // softmax ~4 flops/elem
    }

    #[test]
    fn restore_kernel_flops_omit_fconv() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let lw = g.add_weight(Tensor::zeros(&[16, 4, 1, 1]));
        let spec = crate::op::FusedSpec {
            lconv_w: lw,
            lconv_b: None,
            act: crate::op::ActKind::Relu,
            pool: None,
            fconv: None,
        };
        let f = g.fused(x, spec, "restore");
        g.mark_output(f);
        g.infer_shapes();
        // lconv (2·16·64·4) + act (16·64), no fconv term.
        assert_eq!(node_flops(&g, 1), 2 * 16 * 64 * 4 + 16 * 64);
    }

    #[test]
    fn fused_flops_close_to_unfused_sequence() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 16, 16], "x");
        let lw = g.add_weight(Tensor::zeros(&[64, 8, 1, 1]));
        let fw = g.add_weight(Tensor::zeros(&[8, 64, 1, 1]));
        let spec = crate::op::FusedSpec {
            lconv_w: lw,
            lconv_b: None,
            act: crate::op::ActKind::Relu,
            pool: None,
            fconv: Some(crate::op::FconvSpec { weight: fw, bias: None }),
        };
        let f = g.fused(x, spec, "fused");
        g.mark_output(f);
        g.infer_shapes();
        let fused = node_flops(&g, 1);
        // lconv 2*64*256*8 + act 64*256 + fconv 2*8*256*64
        let expect = 2 * 64 * 256 * 8 + 64 * 256 + 2 * 8 * 256 * 64;
        assert_eq!(fused, expect as u64);
    }
}
