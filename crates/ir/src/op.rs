//! The operator set.

use crate::graph::WeightId;

pub use temco_tensor::ActKind;

/// Pooling flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Provenance of a convolution node with respect to tensor decomposition.
///
/// The *structural* test the paper's Algorithm 2 uses (`IsLConv`: 1×1 kernel,
/// stride 1, `out_channels > in_channels`) stays the source of truth in the
/// passes; the role is carried as metadata so tests can assert that the
/// structural test and the decomposition pass agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConvRole {
    /// An ordinary, non-decomposed convolution.
    Standard,
    /// The first 1×1 factor convolution of a decomposed sequence
    /// (channel-*reducing*).
    FConv,
    /// A core convolution of a decomposed sequence.
    Core,
    /// The last 1×1 factor convolution of a decomposed sequence
    /// (channel-*restoring*).
    LConv,
}

/// Full description of a convolution node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel weight `[c_out, c_in/groups, kh, kw]`.
    pub weight: WeightId,
    /// Optional bias `[c_out]`.
    pub bias: Option<WeightId>,
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Zero padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Channel groups.
    pub groups: usize,
    /// Decomposition provenance.
    pub role: ConvRole,
}

/// The trailing reducing convolution of a fused chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FconvSpec {
    /// Reducing 1×1 weight `[c_red_out, c_full]`.
    pub weight: WeightId,
    /// Optional bias.
    pub bias: Option<WeightId>,
}

/// The fused `lconv → activation (→ pool) (→ fconv)` operator TeMCO's
/// activation-layer fusion emits (paper Section 3.2, Listing 1).
///
/// With `fconv` present the node consumes a *reduced* tensor and produces a
/// *reduced* tensor; the full-channel intermediate exists only as
/// per-worker strip scratch inside the kernel, never as an allocated
/// internal tensor. With `fconv` absent it is a *restore kernel*: the
/// strip-wise form of the copied restore chains the skip-connection
/// optimization inserts ("restorations … hidden in the fused layers",
/// Section 3.3) — it still avoids materializing the intermediate
/// full-width activation tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusedSpec {
    /// Restoring 1×1 weight `[c_full, c_red_in]`.
    pub lconv_w: WeightId,
    /// Optional lconv bias.
    pub lconv_b: Option<WeightId>,
    /// The elementwise activation between the factor convolutions.
    pub act: ActKind,
    /// Optional pooling folded into the kernel: `(kind, kernel, stride)`.
    pub pool: Option<(PoolKind, usize, usize)>,
    /// Optional trailing reducing convolution.
    pub fconv: Option<FconvSpec>,
}

/// One IR operator.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A graph input; its shape is fixed at graph construction.
    Input,
    /// 2-D convolution.
    Conv2d(ConvSpec),
    /// Transposed convolution, `weight [c_in, c_out, kh, kw]` (UNet up-conv).
    ConvTranspose2d {
        /// Kernel weight.
        weight: WeightId,
        /// Optional bias.
        bias: Option<WeightId>,
        /// Stride.
        stride: (usize, usize),
    },
    /// Elementwise activation.
    Activation(ActKind),
    /// Spatial pooling with square window, no padding.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `[n, c, 1, 1]`.
    GlobalAvgPool,
    /// Per-channel affine `y = x * scale + bias` (inference-folded
    /// batch normalization).
    Affine {
        /// Per-channel scale `[c]`.
        scale: WeightId,
        /// Per-channel bias `[c]`.
        bias: WeightId,
    },
    /// Elementwise sum of all inputs (≥ 2).
    Add,
    /// Channel-axis concatenation of all inputs.
    Concat,
    /// Fully connected layer on `[n, f]`.
    Linear {
        /// Weight `[out_f, in_f]`.
        weight: WeightId,
        /// Optional bias `[out_f]`.
        bias: Option<WeightId>,
    },
    /// Collapse `[n, c, h, w]` to `[n, c*h*w]`.
    Flatten,
    /// Softmax over the last dim of a 2-D tensor.
    Softmax,
    /// TeMCO's fused decomposed-sequence operator.
    Fused(FusedSpec),
}

impl Op {
    /// All weight ids this operator references.
    pub fn weight_ids(&self) -> Vec<WeightId> {
        self.collect_weights(|w| *w)
    }

    /// Mutable references to every weight id (for store compaction).
    pub fn weight_ids_mut(&mut self) -> Vec<&mut WeightId> {
        match self {
            Op::Conv2d(s) => {
                let mut v = vec![&mut s.weight];
                v.extend(s.bias.as_mut());
                v
            }
            Op::ConvTranspose2d { weight, bias, .. } => {
                let mut v = vec![weight];
                v.extend(bias.as_mut());
                v
            }
            Op::Affine { scale, bias } => vec![scale, bias],
            Op::Linear { weight, bias } => {
                let mut v = vec![weight];
                v.extend(bias.as_mut());
                v
            }
            Op::Fused(s) => {
                let mut v = vec![&mut s.lconv_w];
                v.extend(s.lconv_b.as_mut());
                if let Some(f) = s.fconv.as_mut() {
                    v.push(&mut f.weight);
                    v.extend(f.bias.as_mut());
                }
                v
            }
            _ => Vec::new(),
        }
    }

    fn collect_weights(&self, f: impl Fn(&WeightId) -> WeightId) -> Vec<WeightId> {
        match self {
            Op::Conv2d(s) => {
                let mut v = vec![f(&s.weight)];
                v.extend(s.bias.as_ref().map(&f));
                v
            }
            Op::ConvTranspose2d { weight, bias, .. } => {
                let mut v = vec![f(weight)];
                v.extend(bias.as_ref().map(&f));
                v
            }
            Op::Affine { scale, bias } => vec![f(scale), f(bias)],
            Op::Linear { weight, bias } => {
                let mut v = vec![f(weight)];
                v.extend(bias.as_ref().map(&f));
                v
            }
            Op::Fused(s) => {
                let mut v = vec![f(&s.lconv_w)];
                v.extend(s.lconv_b.as_ref().map(&f));
                if let Some(fc) = &s.fconv {
                    v.push(f(&fc.weight));
                    v.extend(fc.bias.as_ref().map(&f));
                }
                v
            }
            _ => Vec::new(),
        }
    }

    /// Short mnemonic used in names, DOT output, and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv2d(spec) => match spec.role {
                ConvRole::Standard => "conv",
                ConvRole::FConv => "fconv",
                ConvRole::Core => "core",
                ConvRole::LConv => "lconv",
            },
            Op::ConvTranspose2d { .. } => "upconv",
            Op::Activation(ActKind::Relu) => "relu",
            Op::Activation(ActKind::Silu) => "silu",
            Op::Activation(ActKind::Sigmoid) => "sigmoid",
            Op::Activation(ActKind::Tanh) => "tanh",
            Op::Pool { kind: PoolKind::Max, .. } => "maxpool",
            Op::Pool { kind: PoolKind::Avg, .. } => "avgpool",
            Op::GlobalAvgPool => "gap",
            Op::Affine { .. } => "bn",
            Op::Add => "add",
            Op::Concat => "concat",
            Op::Linear { .. } => "linear",
            Op::Flatten => "flatten",
            Op::Softmax => "softmax",
            Op::Fused(_) => "fused",
        }
    }

    /// Whether this op is an elementwise activation layer (the
    /// "non-decomposed activation layers" of Section 3.2).
    pub fn is_activation(&self) -> bool {
        matches!(self, Op::Activation(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_reflect_conv_roles() {
        let mk = |role| {
            Op::Conv2d(ConvSpec {
                weight: WeightId(0),
                bias: None,
                stride: (1, 1),
                padding: (0, 0),
                groups: 1,
                role,
            })
        };
        assert_eq!(mk(ConvRole::Standard).mnemonic(), "conv");
        assert_eq!(mk(ConvRole::FConv).mnemonic(), "fconv");
        assert_eq!(mk(ConvRole::Core).mnemonic(), "core");
        assert_eq!(mk(ConvRole::LConv).mnemonic(), "lconv");
    }

    #[test]
    fn activation_predicate() {
        assert!(Op::Activation(ActKind::Relu).is_activation());
        assert!(!Op::Add.is_activation());
        assert!(!Op::Input.is_activation());
    }
}
