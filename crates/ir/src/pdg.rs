//! Program-dependence-graph view over the node list.
//!
//! Algorithm 1/2 of the paper navigate the model through `PRED(v, G)` /
//! `SUCC(v, G)` queries. This module materializes those adjacency maps once
//! so passes don't pay a linear scan per query.

use crate::graph::{Graph, ValueId};

/// Precomputed def-use adjacency for a graph's current node list.
///
/// Indices refer to positions in `Graph::nodes`; the PDG must be rebuilt
/// after any pass that edits the node list.
#[derive(Clone, Debug)]
pub struct Pdg {
    producer: Vec<Option<usize>>,
    users: Vec<Vec<usize>>,
}

impl Pdg {
    /// Build the PDG for the graph's current schedule.
    pub fn build(g: &Graph) -> Self {
        let nv = g.values.len();
        let mut producer = vec![None; nv];
        let mut users = vec![Vec::new(); nv];
        for (i, node) in g.nodes.iter().enumerate() {
            producer[node.output.0 as usize] = Some(i);
            for v in &node.inputs {
                users[v.0 as usize].push(i);
            }
        }
        Pdg { producer, users }
    }

    /// Node index that defines `v` (`None` only for dangling values).
    pub fn producer(&self, v: ValueId) -> Option<usize> {
        self.producer[v.0 as usize]
    }

    /// Node indices that consume `v`, in schedule order (paper's `SUCC`).
    pub fn users(&self, v: ValueId) -> &[usize] {
        &self.users[v.0 as usize]
    }

    /// Predecessor node indices of node `i` (paper's `PRED`): the producers
    /// of its operands.
    pub fn preds(&self, g: &Graph, i: usize) -> Vec<usize> {
        g.nodes[i].inputs.iter().filter_map(|&v| self.producer(v)).collect()
    }

    /// Successor node indices of node `i`: the users of its output.
    pub fn succs(&self, g: &Graph, i: usize) -> Vec<usize> {
        self.users(g.nodes[i].output).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use temco_tensor::Tensor;

    fn diamond() -> Graph {
        // x → conv → (relu_a, relu_b) → add
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 4, 4], "x");
        let c = g.conv2d(x, Tensor::zeros(&[2, 2, 1, 1]), None, 1, 0, "c");
        let a = g.relu(c, "a");
        let b = g.relu(c, "b");
        let s = g.add(&[a, b], "s");
        g.mark_output(s);
        g.infer_shapes();
        g
    }

    #[test]
    fn producer_matches_definition() {
        let g = diamond();
        let pdg = Pdg::build(&g);
        assert_eq!(pdg.producer(g.nodes[1].output), Some(1));
        assert_eq!(pdg.producer(g.inputs[0]), Some(0)); // input node defines it
    }

    #[test]
    fn users_in_schedule_order() {
        let g = diamond();
        let pdg = Pdg::build(&g);
        let conv_out = g.nodes[1].output;
        assert_eq!(pdg.users(conv_out), &[2, 3]);
    }

    #[test]
    fn preds_and_succs_traverse_the_diamond() {
        let g = diamond();
        let pdg = Pdg::build(&g);
        // add (index 4) has the two relus as predecessors
        assert_eq!(pdg.preds(&g, 4), vec![2, 3]);
        // conv (index 1) feeds both relus
        assert_eq!(pdg.succs(&g, 1), vec![2, 3]);
        // add's output is a graph output with no users
        assert!(pdg.succs(&g, 4).is_empty());
    }
}
