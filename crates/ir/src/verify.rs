//! Structural graph verification.

use std::collections::HashSet;

use crate::graph::Graph;
use crate::op::Op;

/// Check SSA well-formedness of a graph.
///
/// Verified properties:
/// * every value is defined exactly once;
/// * every operand is defined *before* (at a lower schedule index than) its
///   use — the node list must be a valid topological order;
/// * weight references are in range;
/// * graph inputs are produced by `Input` nodes and outputs are defined;
/// * operand arity matches the operator.
///
/// Returns a list of human-readable violations (empty ⇔ valid).
pub fn verify(g: &Graph) -> Vec<String> {
    let mut errors = Vec::new();
    let mut defined: HashSet<u32> = HashSet::new();

    for (i, node) in g.nodes.iter().enumerate() {
        for v in &node.inputs {
            if v.0 as usize >= g.values.len() {
                errors.push(format!("node {i} '{}' uses unknown value {:?}", node.name, v));
            } else if !defined.contains(&v.0) {
                errors.push(format!(
                    "node {i} '{}' uses value '{}' before its definition",
                    node.name, g.values[v.0 as usize].name
                ));
            }
        }
        if !defined.insert(node.output.0) {
            errors.push(format!(
                "node {i} '{}' redefines value '{}' (SSA violation)",
                node.name, g.values[node.output.0 as usize].name
            ));
        }
        let arity_ok = match &node.op {
            Op::Input => node.inputs.is_empty(),
            Op::Add | Op::Concat => node.inputs.len() >= 2,
            _ => node.inputs.len() == 1,
        };
        if !arity_ok {
            errors.push(format!(
                "node {i} '{}' ({}) has wrong arity {}",
                node.name,
                node.op.mnemonic(),
                node.inputs.len()
            ));
        }
        for w in node.op.weight_ids() {
            if w.0 as usize >= g.weights.len() {
                errors.push(format!("node {i} '{}' references missing weight {}", node.name, w.0));
            }
        }
    }

    for v in &g.inputs {
        match g.producer(*v) {
            Some(i) if matches!(g.nodes[i].op, Op::Input) => {}
            _ => errors.push(format!("graph input {v:?} is not produced by an Input node")),
        }
    }
    for v in &g.outputs {
        if !defined.contains(&v.0) {
            errors.push(format!("graph output {v:?} is never defined"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Node, ValueId};
    use crate::op::Op;
    use temco_tensor::Tensor;

    #[test]
    fn valid_graph_has_no_errors() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 4, 4], "x");
        let c = g.conv2d(x, Tensor::zeros(&[2, 2, 1, 1]), None, 1, 0, "c");
        let r = g.relu(c, "r");
        g.mark_output(r);
        assert!(verify(&g).is_empty());
    }

    #[test]
    fn detects_use_before_def() {
        let mut g = Graph::new();
        let phantom = g.fresh_value("phantom");
        let out = g.fresh_value("out");
        g.nodes.push(Node {
            op: Op::Activation(crate::op::ActKind::Relu),
            inputs: vec![phantom],
            output: out,
            name: "r".into(),
        });
        let errs = verify(&g);
        assert!(errs.iter().any(|e| e.contains("before its definition")), "{errs:?}");
    }

    #[test]
    fn detects_redefinition() {
        let mut g = Graph::new();
        let x = g.input(&[1], "x");
        g.nodes.push(Node {
            op: Op::Activation(crate::op::ActKind::Relu),
            inputs: vec![x],
            output: x, // redefines the input value
            name: "bad".into(),
        });
        let errs = verify(&g);
        assert!(errs.iter().any(|e| e.contains("SSA violation")), "{errs:?}");
    }

    #[test]
    fn detects_wrong_arity() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 4, 4], "x");
        let out = g.fresh_value("out");
        g.nodes.push(Node { op: Op::Add, inputs: vec![x], output: out, name: "add1".into() });
        let errs = verify(&g);
        assert!(errs.iter().any(|e| e.contains("wrong arity")), "{errs:?}");
    }

    #[test]
    fn detects_undefined_output() {
        let mut g = Graph::new();
        g.outputs.push(ValueId(99));
        g.values.resize_with(100, Default::default);
        let errs = verify(&g);
        assert!(errs.iter().any(|e| e.contains("never defined")), "{errs:?}");
    }
}
