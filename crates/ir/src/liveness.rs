//! Tensor liveness analysis (paper Algorithm 1, lines 11–16).
//!
//! The analyzer records, per SSA value, the node index of its first
//! definition (`begin`) and of its last use (`end`). The lifespan
//! `end - begin` is the `DISTANCE` the skip-connection optimization compares
//! against `DISTANCE_THRESHOLD` to identify skip connections.

use crate::graph::{Graph, ValueId};

/// Per-value `begin`/`end` node indices under the graph's schedule.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Node index at which each value is defined (`usize::MAX` if never).
    pub begin: Vec<usize>,
    /// Node index of each value's last use. Graph outputs are pinned to the
    /// end of the schedule; unused values die at their definition.
    pub end: Vec<usize>,
}

/// The `[begin, end]` schedule interval during which one value occupies
/// memory. Produced by [`Liveness::intervals`]; consumed by the static
/// buffer allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveInterval {
    /// The value.
    pub value: ValueId,
    /// Node index at which the value is defined.
    pub begin: usize,
    /// Node index of the value's last use (inclusive).
    pub end: usize,
}

impl LiveInterval {
    /// Whether two intervals are ever live at the same step.
    pub fn overlaps(&self, other: &LiveInterval) -> bool {
        self.begin <= other.end && other.begin <= self.end
    }
}

impl Liveness {
    /// Lifespan (`DISTANCE(begin, end)`) of a value in schedule steps.
    pub fn lifespan(&self, v: ValueId) -> usize {
        self.end[v.0 as usize].saturating_sub(self.begin[v.0 as usize])
    }

    /// Whether `v` is ever defined under this schedule. Values that are
    /// declared but produced by no node (possible after aggressive rewrite
    /// passes) occupy no memory and have no interval.
    pub fn is_materialized(&self, v: ValueId) -> bool {
        self.begin[v.0 as usize] != usize::MAX
    }

    /// The `[begin, end]` interval of `v`, or `None` if never materialized.
    pub fn interval(&self, v: ValueId) -> Option<LiveInterval> {
        if !self.is_materialized(v) {
            return None;
        }
        Some(LiveInterval {
            value: v,
            begin: self.begin[v.0 as usize],
            end: self.end[v.0 as usize],
        })
    }

    /// Iterate the intervals of every materialized value, in `ValueId` order.
    pub fn intervals(&self) -> impl Iterator<Item = LiveInterval> + '_ {
        (0..self.begin.len()).filter_map(|vi| self.interval(ValueId(vi as u32)))
    }

    /// Whether two values are ever live at the same step. A buffer allocator
    /// may share memory between `a` and `b` iff this is false.
    pub fn overlap(&self, a: ValueId, b: ValueId) -> bool {
        match (self.interval(a), self.interval(b)) {
            (Some(ia), Some(ib)) => ia.overlaps(&ib),
            _ => false,
        }
    }

    /// Whether `v` is live while node `i` executes.
    ///
    /// A value is live at step `i` if it was defined at or before `i` and is
    /// still used at or after `i` — mirroring a framework that allocates a
    /// layer's output when the layer runs and frees inputs after their last
    /// consumer finishes.
    pub fn live_at(&self, v: ValueId, i: usize) -> bool {
        let b = self.begin[v.0 as usize];
        let e = self.end[v.0 as usize];
        b != usize::MAX && b <= i && i <= e
    }
}

/// Compute liveness for the graph's current schedule.
pub fn liveness(g: &Graph) -> Liveness {
    let n_values = g.values.len();
    let mut begin = vec![usize::MAX; n_values];
    let mut end = vec![0usize; n_values];
    for (i, node) in g.nodes.iter().enumerate() {
        begin[node.output.0 as usize] = i;
        end[node.output.0 as usize] = end[node.output.0 as usize].max(i);
        for v in &node.inputs {
            end[v.0 as usize] = end[v.0 as usize].max(i);
        }
    }
    // Graph outputs must survive the entire inference.
    let last = g.nodes.len().saturating_sub(1);
    for v in &g.outputs {
        end[v.0 as usize] = end[v.0 as usize].max(last);
    }
    Liveness { begin, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use temco_tensor::Tensor;

    /// x → conv → relu → conv → add(relu_out, conv2_out): relu_out is a
    /// short "skip" spanning two nodes.
    fn skip_graph() -> (Graph, ValueId) {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::zeros(&[4, 4, 3, 3]), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let c2 = g.conv2d(r1, Tensor::zeros(&[4, 4, 3, 3]), None, 1, 1, "c2");
        let s = g.add(&[r1, c2], "add");
        g.mark_output(s);
        g.infer_shapes();
        (g, r1)
    }

    #[test]
    fn begin_is_definition_index() {
        let (g, r1) = skip_graph();
        let lv = liveness(&g);
        assert_eq!(lv.begin[r1.0 as usize], 2);
    }

    #[test]
    fn end_is_last_use_index() {
        let (g, r1) = skip_graph();
        let lv = liveness(&g);
        assert_eq!(lv.end[r1.0 as usize], 4); // used by add at index 4
        assert_eq!(lv.lifespan(r1), 2);
    }

    #[test]
    fn inputs_die_after_last_consumer() {
        let (g, _) = skip_graph();
        let lv = liveness(&g);
        let x = g.inputs[0];
        assert_eq!(lv.end[x.0 as usize], 1); // only conv1 consumes x
        assert!(lv.live_at(x, 0));
        assert!(lv.live_at(x, 1));
        assert!(!lv.live_at(x, 2));
    }

    #[test]
    fn outputs_live_to_schedule_end() {
        let (g, _) = skip_graph();
        let lv = liveness(&g);
        let out = g.outputs[0];
        assert_eq!(lv.end[out.0 as usize], g.nodes.len() - 1);
    }

    #[test]
    fn intervals_cover_exactly_the_materialized_values() {
        let (g, r1) = skip_graph();
        let lv = liveness(&g);
        let ivs: Vec<_> = lv.intervals().collect();
        assert_eq!(ivs.len(), g.nodes.len()); // one value per node, all defined
        let r1_iv = ivs.iter().find(|iv| iv.value == r1).unwrap();
        assert_eq!((r1_iv.begin, r1_iv.end), (2, 4));
        assert!(lv.is_materialized(r1));
    }

    #[test]
    fn overlap_is_symmetric_and_matches_live_at() {
        let (g, r1) = skip_graph();
        let lv = liveness(&g);
        let x = g.inputs[0];
        // x: [0,1], r1: [2,4] — disjoint.
        assert!(!lv.overlap(x, r1));
        assert!(!lv.overlap(r1, x));
        // c1: [1,2] touches both.
        let c1 = g.nodes[1].output;
        assert!(lv.overlap(x, c1));
        assert!(lv.overlap(c1, r1));
    }

    #[test]
    fn unused_values_die_at_definition() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 2, 2], "x");
        let dead = g.relu(x, "dead");
        let live = g.relu(x, "live");
        g.mark_output(live);
        g.infer_shapes();
        let lv = liveness(&g);
        assert_eq!(lv.lifespan(dead), 0);
    }
}
