//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::op::{ConvRole, Op};

/// Render the graph as a DOT digraph.
///
/// Decomposition roles are color-coded (fconv = blue, core = gray,
/// lconv = red, fused = purple) so skip-connection and fusion rewrites are
/// visible at a glance.
pub fn to_dot(g: &Graph) -> String {
    let mut s = String::from(
        "digraph temco {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for (i, node) in g.nodes.iter().enumerate() {
        let color = match &node.op {
            Op::Conv2d(spec) => match spec.role {
                ConvRole::FConv => "lightblue",
                ConvRole::Core => "lightgray",
                ConvRole::LConv => "lightcoral",
                ConvRole::Standard => "white",
            },
            Op::Fused(_) => "plum",
            Op::Input => "lightgreen",
            _ => "white",
        };
        let shape = g.values[node.output.0 as usize]
            .shape
            .as_ref()
            .map(|sh| format!("{sh:?}"))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  n{i} [label=\"{}\\n{} {}\", style=filled, fillcolor={color}];",
            node.name,
            node.op.mnemonic(),
            shape
        );
    }
    for (i, node) in g.nodes.iter().enumerate() {
        for v in &node.inputs {
            if let Some(p) = g.producer(*v) {
                let _ = writeln!(s, "  n{p} -> n{i};");
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use temco_tensor::Tensor;

    #[test]
    fn roles_are_color_coded() {
        use crate::op::{ConvRole, ConvSpec, Op};
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "x");
        let w = g.add_weight(Tensor::zeros(&[2, 4, 1, 1]));
        let spec = ConvSpec {
            weight: w,
            bias: None,
            stride: (1, 1),
            padding: (0, 0),
            groups: 1,
            role: ConvRole::FConv,
        };
        let f = g.push(Op::Conv2d(spec), vec![x], "fconv");
        g.mark_output(f);
        g.infer_shapes();
        let dot = to_dot(&g);
        assert!(dot.contains("lightblue"), "fconv color missing");
        assert!(dot.contains("lightgreen"), "input color missing");
    }

    #[test]
    fn uninferred_graphs_render_without_shapes() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 2, 2], "x");
        let r = g.relu(x, "r");
        g.mark_output(r);
        // No infer_shapes() — the relu output has no shape yet.
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("relu"));
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let x = g.input(&[1, 2, 4, 4], "x");
        let c = g.conv2d(x, Tensor::zeros(&[2, 2, 1, 1]), None, 1, 0, "c1");
        let r = g.relu(c, "r1");
        g.mark_output(r);
        g.infer_shapes();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph temco"));
        assert!(dot.contains("c1"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
    }
}
