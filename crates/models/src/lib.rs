//! Model zoo: the paper's 10 benchmark models across 5 architectures.
//!
//! | Architecture | Models | Skip connections |
//! |---|---|---|
//! | AlexNet | `alexnet` | none |
//! | VGG | `vgg11`, `vgg16`, `vgg19` | none |
//! | ResNet | `resnet18`, `resnet34` | add |
//! | DenseNet | `densenet121`, `densenet169` | concat |
//! | UNet | `unet`, `unet_small` | long-range concat |
//!
//! Models are built directly as IR graphs with deterministic He-initialized
//! weights (the paper's accuracy experiment is reproduced as output
//! *agreement*, for which trained weights are unnecessary — see DESIGN.md).
//!
//! One substitution: the 4096-wide VGG/AlexNet fully connected classifier is
//! narrowed to [`ModelConfig::classifier_width`] (default 1024). The
//! classifier is identical across all compared variants and TeMCO does not
//! touch linear layers, so this shifts every bar of Figure 10 by the same
//! constant without affecting any internal-tensor measurement.

pub mod alexnet;
pub mod densenet;
pub mod resnet;
pub mod unet;
pub mod vgg;

use temco_ir::Graph;

/// Shared model-construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Batch size (the paper uses 4 for memory and 4/32 for timing).
    pub batch: usize,
    /// Square input resolution. Classification models assume ≥ 64;
    /// UNet additionally requires divisibility by 16.
    pub image: usize,
    /// Number of classes for classification heads.
    pub num_classes: usize,
    /// Hidden width of the VGG/AlexNet classifier MLP.
    pub classifier_width: usize,
    /// Base RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { batch: 4, image: 224, num_classes: 1000, classifier_width: 1024, seed: 42 }
    }
}

impl ModelConfig {
    /// A small configuration suitable for actually *executing* models in
    /// tests and timing benches (64×64, 10 classes).
    pub fn small() -> Self {
        ModelConfig { batch: 1, image: 64, num_classes: 10, classifier_width: 128, seed: 42 }
    }
}

/// Deterministic per-layer seed dispenser.
#[derive(Debug)]
pub(crate) struct SeedGen(u64);

impl SeedGen {
    pub(crate) fn new(base: u64) -> Self {
        SeedGen(base)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
}

/// The 10 models of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// AlexNet (Krizhevsky et al., 2012).
    Alexnet,
    /// VGG-11, configuration A.
    Vgg11,
    /// VGG-16, configuration D.
    Vgg16,
    /// VGG-19, configuration E.
    Vgg19,
    /// ResNet-18 with basic blocks.
    Resnet18,
    /// ResNet-34 with basic blocks.
    Resnet34,
    /// DenseNet-121 (growth 32, blocks 6/12/24/16).
    Densenet121,
    /// DenseNet-169 (growth 32, blocks 6/12/32/32).
    Densenet169,
    /// UNet (Ronneberger et al., 2015), base width 64.
    Unet,
    /// UNet at half width (base 32).
    UnetSmall,
}

impl ModelId {
    /// All 10 models in the paper's presentation order.
    pub fn all() -> [ModelId; 10] {
        [
            ModelId::Alexnet,
            ModelId::Vgg11,
            ModelId::Vgg16,
            ModelId::Vgg19,
            ModelId::Resnet18,
            ModelId::Resnet34,
            ModelId::Densenet121,
            ModelId::Densenet169,
            ModelId::Unet,
            ModelId::UnetSmall,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Alexnet => "alexnet",
            ModelId::Vgg11 => "vgg11",
            ModelId::Vgg16 => "vgg16",
            ModelId::Vgg19 => "vgg19",
            ModelId::Resnet18 => "resnet18",
            ModelId::Resnet34 => "resnet34",
            ModelId::Densenet121 => "densenet121",
            ModelId::Densenet169 => "densenet169",
            ModelId::Unet => "unet",
            ModelId::UnetSmall => "unet_small",
        }
    }

    /// Whether the architecture contains skip connections (decides which
    /// TeMCO passes the paper applies: Fusion only vs Skip-Opt + Fusion).
    pub fn has_skip_connections(self) -> bool {
        !matches!(self, ModelId::Alexnet | ModelId::Vgg11 | ModelId::Vgg16 | ModelId::Vgg19)
    }

    /// Build the model as an IR graph (shapes already inferred).
    pub fn build(self, cfg: &ModelConfig) -> Graph {
        match self {
            ModelId::Alexnet => alexnet::build(cfg),
            ModelId::Vgg11 => vgg::build(cfg, vgg::Variant::Vgg11),
            ModelId::Vgg16 => vgg::build(cfg, vgg::Variant::Vgg16),
            ModelId::Vgg19 => vgg::build(cfg, vgg::Variant::Vgg19),
            ModelId::Resnet18 => resnet::build(cfg, resnet::Variant::Resnet18),
            ModelId::Resnet34 => resnet::build(cfg, resnet::Variant::Resnet34),
            ModelId::Densenet121 => densenet::build(cfg, densenet::Variant::Densenet121),
            ModelId::Densenet169 => densenet::build(cfg, densenet::Variant::Densenet169),
            ModelId::Unet => unet::build(cfg, 64),
            ModelId::UnetSmall => unet::build(cfg, 32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_models_five_architectures() {
        assert_eq!(ModelId::all().len(), 10);
        let with_skips = ModelId::all().iter().filter(|m| m.has_skip_connections()).count();
        assert_eq!(with_skips, 6); // ResNet ×2, DenseNet ×2, UNet ×2
    }

    #[test]
    fn seedgen_is_deterministic_and_nonrepeating() {
        let mut a = SeedGen::new(1);
        let mut b = SeedGen::new(1);
        let s1 = a.next();
        assert_eq!(s1, b.next());
        assert_ne!(s1, a.next());
    }

    #[test]
    fn all_models_build_and_verify_small() {
        let cfg = ModelConfig::small();
        for id in ModelId::all() {
            let g = id.build(&cfg);
            let errs = temco_ir::verify(&g);
            assert!(errs.is_empty(), "{}: {errs:?}", id.name());
            assert!(!g.outputs.is_empty(), "{} has no outputs", id.name());
        }
    }
}
