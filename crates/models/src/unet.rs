//! UNet: the hourglass segmentation network whose long-range concat skip
//! connections dominate internal-tensor memory (paper Figure 4a).

use temco_ir::{Graph, ValueId};
use temco_tensor::Tensor;

use crate::{ModelConfig, SeedGen};

struct Ctx {
    seeds: SeedGen,
}

impl Ctx {
    fn conv(
        &mut self,
        g: &mut Graph,
        x: ValueId,
        c_in: usize,
        c_out: usize,
        name: String,
    ) -> ValueId {
        let w = Tensor::he_conv_weight(c_out, c_in, 3, 3, self.seeds.next());
        g.conv2d(x, w, Some(Tensor::zeros(&[c_out])), 1, 1, name)
    }

    /// The UNet double-conv block: (conv3×3 → relu) × 2, same padding.
    fn double_conv(
        &mut self,
        g: &mut Graph,
        x: ValueId,
        c_in: usize,
        c_out: usize,
        tag: &str,
    ) -> ValueId {
        let c1 = self.conv(g, x, c_in, c_out, format!("{tag}.conv1"));
        let r1 = g.relu(c1, format!("{tag}.relu1"));
        let c2 = self.conv(g, r1, c_out, c_out, format!("{tag}.conv2"));
        g.relu(c2, format!("{tag}.relu2"))
    }
}

/// Build UNet with the given base channel width (64 = original paper,
/// 32 = the `unet_small` variant). Requires `cfg.image % 16 == 0`.
pub fn build(cfg: &ModelConfig, base: usize) -> Graph {
    assert_eq!(cfg.image % 16, 0, "UNet needs an input divisible by 16");
    let mut g = Graph::new();
    let mut ctx = Ctx { seeds: SeedGen::new(cfg.seed ^ 0x0E47 ^ base as u64) };
    let x = g.input(&[cfg.batch, 3, cfg.image, cfg.image], "image");

    let widths = [base, base * 2, base * 4, base * 8, base * 16];

    // Encoder: double-conv, remember the skip, pool down.
    let mut skips: Vec<(ValueId, usize)> = Vec::new();
    let mut feat = x;
    let mut c_in = 3usize;
    for (d, &w) in widths[..4].iter().enumerate() {
        let dc = ctx.double_conv(&mut g, feat, c_in, w, &format!("down{}", d + 1));
        skips.push((dc, w));
        feat = g.max_pool(dc, 2, 2, format!("pool{}", d + 1));
        c_in = w;
    }

    // Bottleneck.
    feat = ctx.double_conv(&mut g, feat, c_in, widths[4], "bottleneck");
    let mut c = widths[4];

    // Decoder: up-conv, concat the matching skip, double-conv.
    for (d, &(skip, sw)) in skips.iter().enumerate().rev() {
        let up_w = Tensor::he_conv_weight(c, sw, 2, 2, ctx.seeds.next()).reshape(&[c, sw, 2, 2]);
        let up = g.conv_transpose2d(feat, up_w, None, 2, format!("up{}", d + 1));
        let cat = g.concat(&[skip, up], format!("upcat{}", d + 1));
        feat = ctx.double_conv(&mut g, cat, sw * 2, sw, &format!("updc{}", d + 1));
        c = sw;
    }

    // 1×1 head + sigmoid → binary mask (Carvana-style segmentation).
    let head_w = Tensor::he_conv_weight(1, base, 1, 1, ctx.seeds.next());
    let logits = g.conv2d(feat, head_w, Some(Tensor::zeros(&[1])), 1, 0, "head");
    let mask = g.activation(logits, temco_ir::ActKind::Sigmoid, "mask");
    g.mark_output(mask);
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::Op;

    #[test]
    fn output_is_full_resolution_mask() {
        let cfg = ModelConfig { batch: 2, image: 64, ..ModelConfig::small() };
        let g = build(&cfg, 32);
        assert_eq!(g.shape(g.outputs[0]), &[2, 1, 64, 64]);
    }

    #[test]
    fn four_long_range_skips() {
        let g = build(&ModelConfig::small(), 32);
        let concats = g.nodes.iter().filter(|n| matches!(n.op, Op::Concat)).count();
        assert_eq!(concats, 4);
        let upconvs = g.nodes.iter().filter(|n| matches!(n.op, Op::ConvTranspose2d { .. })).count();
        assert_eq!(upconvs, 4);
    }

    #[test]
    fn skips_span_the_hourglass() {
        // The first skip (down1) is consumed by the *last* concat — its
        // lifespan covers nearly the whole schedule, the exact situation
        // Figure 4a shows.
        let g = build(&ModelConfig::small(), 32);
        let lv = temco_ir::liveness(&g);
        let down1_out = g.nodes.iter().find(|n| n.name == "down1.relu2").unwrap().output;
        let span = lv.lifespan(down1_out);
        assert!(span > g.nodes.len() / 2, "span {span} of {}", g.nodes.len());
    }

    #[test]
    fn bottleneck_width_is_16x_base() {
        let g = build(&ModelConfig::small(), 32);
        let bn = g.nodes.iter().find(|n| n.name == "bottleneck.relu2").unwrap();
        assert_eq!(g.shape(bn.output)[1], 512);
    }

    #[test]
    #[should_panic(expected = "divisible by 16")]
    fn rejects_bad_resolution() {
        let cfg = ModelConfig { image: 100, ..ModelConfig::small() };
        build(&cfg, 32);
    }
}
