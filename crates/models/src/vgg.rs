//! VGG-11/16/19: deep linear conv–relu chains with 2×2 pooling.

use temco_ir::Graph;
use temco_tensor::Tensor;

use crate::{ModelConfig, SeedGen};

/// VGG depth variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Configuration A (8 convs).
    Vgg11,
    /// Configuration D (13 convs).
    Vgg16,
    /// Configuration E (16 convs).
    Vgg19,
}

/// A layer in the VGG configuration string: a conv of given width or a pool.
enum Cfg {
    C(usize),
    M,
}

fn layers(v: Variant) -> Vec<Cfg> {
    use Cfg::{C, M};
    match v {
        Variant::Vgg11 => {
            vec![C(64), M, C(128), M, C(256), C(256), M, C(512), C(512), M, C(512), C(512), M]
        }
        Variant::Vgg16 => vec![
            C(64),
            C(64),
            M,
            C(128),
            C(128),
            M,
            C(256),
            C(256),
            C(256),
            M,
            C(512),
            C(512),
            C(512),
            M,
            C(512),
            C(512),
            C(512),
            M,
        ],
        Variant::Vgg19 => vec![
            C(64),
            C(64),
            M,
            C(128),
            C(128),
            M,
            C(256),
            C(256),
            C(256),
            C(256),
            M,
            C(512),
            C(512),
            C(512),
            C(512),
            M,
            C(512),
            C(512),
            C(512),
            C(512),
            M,
        ],
    }
}

/// Build the chosen VGG variant.
pub fn build(cfg: &ModelConfig, variant: Variant) -> Graph {
    let mut g = Graph::new();
    let mut seeds = SeedGen::new(cfg.seed ^ 0x5656);
    let mut x = g.input(&[cfg.batch, 3, cfg.image, cfg.image], "image");
    let mut c_in = 3;
    let mut conv_i = 0;
    let mut pool_i = 0;
    for layer in layers(variant) {
        match layer {
            Cfg::C(c_out) => {
                conv_i += 1;
                let w = Tensor::he_conv_weight(c_out, c_in, 3, 3, seeds.next());
                let b = Tensor::zeros(&[c_out]);
                let c = g.conv2d(x, w, Some(b), 1, 1, format!("conv{conv_i}"));
                x = g.relu(c, format!("relu{conv_i}"));
                c_in = c_out;
            }
            Cfg::M => {
                pool_i += 1;
                x = g.max_pool(x, 2, 2, format!("pool{pool_i}"));
            }
        }
    }
    g.infer_shapes();
    let feat: usize = g.shape(x)[1..].iter().product();
    let f = g.flatten(x, "flatten");
    let hidden = cfg.classifier_width;
    let mut fc = |g: &mut Graph, x, f_in: usize, f_out: usize, name: &str| {
        let w = Tensor::randn(&[f_out, f_in], seeds.next()).map(|v| v * (2.0 / f_in as f32).sqrt());
        g.linear(x, w, Some(Tensor::zeros(&[f_out])), name)
    };
    let l1 = fc(&mut g, f, feat, hidden, "fc1");
    let r1 = g.relu(l1, "fc_relu1");
    let l2 = fc(&mut g, r1, hidden, hidden, "fc2");
    let r2 = g.relu(l2, "fc_relu2");
    let l3 = fc(&mut g, r2, hidden, cfg.num_classes, "fc3");
    g.mark_output(l3);
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::Op;

    fn conv_count(g: &Graph) -> usize {
        g.nodes.iter().filter(|n| matches!(n.op, Op::Conv2d(_))).count()
    }

    #[test]
    fn conv_counts_match_variants() {
        let cfg = ModelConfig::small();
        assert_eq!(conv_count(&build(&cfg, Variant::Vgg11)), 8);
        assert_eq!(conv_count(&build(&cfg, Variant::Vgg16)), 13);
        assert_eq!(conv_count(&build(&cfg, Variant::Vgg19)), 16);
    }

    #[test]
    fn vgg16_imagenet_final_feature_map() {
        let cfg = ModelConfig { batch: 1, ..ModelConfig::default() };
        let g = build(&cfg, Variant::Vgg16);
        let pool5 = g.nodes.iter().find(|n| n.name == "pool5").unwrap();
        assert_eq!(g.shape(pool5.output), &[1, 512, 7, 7]);
    }

    #[test]
    fn output_is_class_logits() {
        let cfg = ModelConfig::small();
        let g = build(&cfg, Variant::Vgg11);
        assert_eq!(g.shape(g.outputs[0]), &[cfg.batch, cfg.num_classes]);
    }
}
