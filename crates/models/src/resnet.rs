//! ResNet-18/34: basic residual blocks with `add` skip connections.

use temco_ir::{Graph, ValueId};
use temco_tensor::Tensor;

use crate::{ModelConfig, SeedGen};

/// ResNet depth variant (basic-block family).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Blocks [2, 2, 2, 2].
    Resnet18,
    /// Blocks [3, 4, 6, 3].
    Resnet34,
}

fn blocks(v: Variant) -> [usize; 4] {
    match v {
        Variant::Resnet18 => [2, 2, 2, 2],
        Variant::Resnet34 => [3, 4, 6, 3],
    }
}

struct Ctx {
    seeds: SeedGen,
}

impl Ctx {
    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        g: &mut Graph,
        x: ValueId,
        c_in: usize,
        c_out: usize,
        k: usize,
        s: usize,
        p: usize,
        name: String,
    ) -> ValueId {
        let w = Tensor::he_conv_weight(c_out, c_in, k, k, self.seeds.next());
        g.conv2d(x, w, None, s, p, name)
    }

    /// Inference-folded batch norm: a per-channel affine with near-identity
    /// random parameters (scale ≈ 1, small bias).
    fn bn(&mut self, g: &mut Graph, x: ValueId, c: usize, name: String) -> ValueId {
        let scale = Tensor::rand_uniform(&[c], self.seeds.next(), 0.8, 1.2);
        let bias = Tensor::rand_uniform(&[c], self.seeds.next(), -0.1, 0.1);
        g.affine(x, scale, bias, name)
    }

    /// One basic block: conv-bn-relu-conv-bn + skip → relu.
    #[allow(clippy::too_many_arguments)]
    fn basic_block(
        &mut self,
        g: &mut Graph,
        x: ValueId,
        c_in: usize,
        c_out: usize,
        stride: usize,
        tag: &str,
    ) -> ValueId {
        let c1 = self.conv(g, x, c_in, c_out, 3, stride, 1, format!("{tag}.conv1"));
        let b1 = self.bn(g, c1, c_out, format!("{tag}.bn1"));
        let r1 = g.relu(b1, format!("{tag}.relu1"));
        let c2 = self.conv(g, r1, c_out, c_out, 3, 1, 1, format!("{tag}.conv2"));
        let b2 = self.bn(g, c2, c_out, format!("{tag}.bn2"));
        let identity = if stride != 1 || c_in != c_out {
            let d = self.conv(g, x, c_in, c_out, 1, stride, 0, format!("{tag}.down"));
            self.bn(g, d, c_out, format!("{tag}.down_bn"))
        } else {
            x
        };
        let s = g.add(&[b2, identity], format!("{tag}.add"));
        g.relu(s, format!("{tag}.relu2"))
    }
}

/// Build the chosen ResNet variant.
pub fn build(cfg: &ModelConfig, variant: Variant) -> Graph {
    let mut g = Graph::new();
    let mut ctx = Ctx { seeds: SeedGen::new(cfg.seed ^ 0x4E54) };
    let x = g.input(&[cfg.batch, 3, cfg.image, cfg.image], "image");

    let c1 = ctx.conv(&mut g, x, 3, 64, 7, 2, 3, "conv1".into());
    let b1 = ctx.bn(&mut g, c1, 64, "bn1".into());
    let r1 = g.relu(b1, "relu1");
    let mut feat = g.max_pool(r1, 3, 2, "maxpool");

    let widths = [64usize, 128, 256, 512];
    let mut c_in = 64usize;
    for (stage, &n_blocks) in blocks(variant).iter().enumerate() {
        let c_out = widths[stage];
        for b in 0..n_blocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            feat = ctx.basic_block(
                &mut g,
                feat,
                c_in,
                c_out,
                stride,
                &format!("layer{}.{}", stage + 1, b),
            );
            c_in = c_out;
        }
    }

    let gap = g.global_avg_pool(feat, "gap");
    let flat = g.flatten(gap, "flatten");
    let w = Tensor::randn(&[cfg.num_classes, 512], ctx.seeds.next())
        .map(|v| v * (2.0f32 / 512.0).sqrt());
    let logits = g.linear(flat, w, Some(Tensor::zeros(&[cfg.num_classes])), "fc");
    g.mark_output(logits);
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::Op;

    fn conv_count(g: &Graph) -> usize {
        g.nodes.iter().filter(|n| matches!(n.op, Op::Conv2d(_))).count()
    }

    #[test]
    fn resnet18_has_20_convs() {
        // conv1 + 16 block convs + 3 downsample convs.
        let g = build(&ModelConfig::small(), Variant::Resnet18);
        assert_eq!(conv_count(&g), 20);
    }

    #[test]
    fn resnet34_has_36_convs() {
        // conv1 + 32 block convs + 3 downsample convs.
        let g = build(&ModelConfig::small(), Variant::Resnet34);
        assert_eq!(conv_count(&g), 36);
    }

    #[test]
    fn add_nodes_realize_skip_connections() {
        let g = build(&ModelConfig::small(), Variant::Resnet18);
        let adds = g.nodes.iter().filter(|n| matches!(n.op, Op::Add)).count();
        assert_eq!(adds, 8); // one per basic block
    }

    #[test]
    fn output_shape_is_logits() {
        let cfg = ModelConfig::small();
        let g = build(&cfg, Variant::Resnet18);
        assert_eq!(g.shape(g.outputs[0]), &[cfg.batch, cfg.num_classes]);
    }

    #[test]
    fn identity_skips_reuse_the_same_value() {
        // In non-downsampling blocks the add's second operand is the block
        // input itself — a genuine multi-user value the skip-opt pass sees.
        let g = build(&ModelConfig::small(), Variant::Resnet18);
        let add_nodes: Vec<_> = g.nodes.iter().filter(|n| matches!(n.op, Op::Add)).collect();
        let mut identity_skips = 0;
        for a in &add_nodes {
            let second = a.inputs[1];
            if g.users(second).len() > 1 {
                identity_skips += 1;
            }
        }
        assert!(identity_skips >= 4, "found {identity_skips}");
    }
}
