//! AlexNet: a linear conv–relu–pool pipeline (no skip connections).

use temco_ir::Graph;
use temco_tensor::Tensor;

use crate::{ModelConfig, SeedGen};

/// Build AlexNet for the given config.
///
/// The feature extractor follows Krizhevsky et al. exactly; the classifier
/// MLP width is `cfg.classifier_width` (see crate docs).
pub fn build(cfg: &ModelConfig) -> Graph {
    let mut g = Graph::new();
    let mut seeds = SeedGen::new(cfg.seed);
    let mut conv = |g: &mut Graph, x, c_in, c_out, k, s, p, name: &str| {
        let w = Tensor::he_conv_weight(c_out, c_in, k, k, seeds.next());
        let b = Tensor::zeros(&[c_out]);
        g.conv2d(x, w, Some(b), s, p, name)
    };

    let x = g.input(&[cfg.batch, 3, cfg.image, cfg.image], "image");

    let c1 = conv(&mut g, x, 3, 64, 11, 4, 2, "conv1");
    let r1 = g.relu(c1, "relu1");
    let p1 = g.max_pool(r1, 3, 2, "pool1");

    let c2 = conv(&mut g, p1, 64, 192, 5, 1, 2, "conv2");
    let r2 = g.relu(c2, "relu2");
    let p2 = g.max_pool(r2, 3, 2, "pool2");

    let c3 = conv(&mut g, p2, 192, 384, 3, 1, 1, "conv3");
    let r3 = g.relu(c3, "relu3");
    let c4 = conv(&mut g, r3, 384, 256, 3, 1, 1, "conv4");
    let r4 = g.relu(c4, "relu4");
    let c5 = conv(&mut g, r4, 256, 256, 3, 1, 1, "conv5");
    let r5 = g.relu(c5, "relu5");
    let p5 = g.max_pool(r5, 3, 2, "pool5");

    g.infer_shapes();
    let feat: usize = g.shape(p5)[1..].iter().product();
    let f = g.flatten(p5, "flatten");
    let hidden = cfg.classifier_width;
    let mut fc = |g: &mut Graph, x, f_in: usize, f_out: usize, name: &str| {
        let w = Tensor::randn(&[f_out, f_in], seeds.next()).map(|v| v * (2.0 / f_in as f32).sqrt());
        g.linear(x, w, Some(Tensor::zeros(&[f_out])), name)
    };
    let l1 = fc(&mut g, f, feat, hidden, "fc1");
    let lr1 = g.relu(l1, "fc_relu1");
    let l2 = fc(&mut g, lr1, hidden, hidden, "fc2");
    let lr2 = g.relu(l2, "fc_relu2");
    let l3 = fc(&mut g, lr2, hidden, cfg.num_classes, "fc3");

    g.mark_output(l3);
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_shapes_match_reference() {
        let cfg = ModelConfig { batch: 4, ..ModelConfig::default() };
        let g = build(&cfg);
        // conv1 output 55×55, pool5 output 256×6×6 at 224².
        let c1 = g.nodes.iter().find(|n| n.name == "conv1").unwrap();
        assert_eq!(g.shape(c1.output), &[4, 64, 55, 55]);
        let p5 = g.nodes.iter().find(|n| n.name == "pool5").unwrap();
        assert_eq!(g.shape(p5.output), &[4, 256, 6, 6]);
        assert_eq!(g.shape(g.outputs[0]), &[4, 1000]);
    }

    #[test]
    fn has_five_conv_layers_and_no_skips() {
        let g = build(&ModelConfig::small());
        let convs = g.nodes.iter().filter(|n| matches!(n.op, temco_ir::Op::Conv2d(_))).count();
        assert_eq!(convs, 5);
        // Every value has at most one user: a pure pipeline.
        for v in 0..g.values.len() {
            assert!(g.users(temco_ir::ValueId(v as u32)).len() <= 1);
        }
    }
}
