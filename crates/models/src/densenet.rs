//! DenseNet-121/169: dense blocks with pervasive concat skip connections.

use temco_ir::{Graph, ValueId};
use temco_tensor::Tensor;

use crate::{ModelConfig, SeedGen};

/// DenseNet depth variant (growth rate 32).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Blocks [6, 12, 24, 16].
    Densenet121,
    /// Blocks [6, 12, 32, 32].
    Densenet169,
}

fn blocks(v: Variant) -> [usize; 4] {
    match v {
        Variant::Densenet121 => [6, 12, 24, 16],
        Variant::Densenet169 => [6, 12, 32, 32],
    }
}

const GROWTH: usize = 32;

struct Ctx {
    seeds: SeedGen,
}

impl Ctx {
    fn bn(&mut self, g: &mut Graph, x: ValueId, c: usize, name: String) -> ValueId {
        let scale = Tensor::rand_uniform(&[c], self.seeds.next(), 0.8, 1.2);
        let bias = Tensor::rand_uniform(&[c], self.seeds.next(), -0.1, 0.1);
        g.affine(x, scale, bias, name)
    }

    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        g: &mut Graph,
        x: ValueId,
        c_in: usize,
        c_out: usize,
        k: usize,
        s: usize,
        p: usize,
        name: String,
    ) -> ValueId {
        let w = Tensor::he_conv_weight(c_out, c_in, k, k, self.seeds.next());
        g.conv2d(x, w, None, s, p, name)
    }

    /// One dense layer: bn-relu-conv1×1(4g)-bn-relu-conv3×3(g).
    fn dense_layer(&mut self, g: &mut Graph, x: ValueId, c_in: usize, tag: &str) -> ValueId {
        let bottleneck = 4 * GROWTH;
        let b1 = self.bn(g, x, c_in, format!("{tag}.bn1"));
        let r1 = g.relu(b1, format!("{tag}.relu1"));
        let c1 = self.conv(g, r1, c_in, bottleneck, 1, 1, 0, format!("{tag}.conv1"));
        let b2 = self.bn(g, c1, bottleneck, format!("{tag}.bn2"));
        let r2 = g.relu(b2, format!("{tag}.relu2"));
        self.conv(g, r2, bottleneck, GROWTH, 3, 1, 1, format!("{tag}.conv2"))
    }
}

/// Build the chosen DenseNet variant.
pub fn build(cfg: &ModelConfig, variant: Variant) -> Graph {
    let mut g = Graph::new();
    let mut ctx = Ctx { seeds: SeedGen::new(cfg.seed ^ 0xDE45) };
    let x = g.input(&[cfg.batch, 3, cfg.image, cfg.image], "image");

    let c1 = ctx.conv(&mut g, x, 3, 64, 7, 2, 3, "conv1".into());
    let b1 = ctx.bn(&mut g, c1, 64, "bn1".into());
    let r1 = g.relu(b1, "relu1");
    let stem = g.max_pool(r1, 3, 2, "maxpool");
    let mut c = 64usize;

    // Like torchvision, every dense layer concatenates the *list* of all
    // previous feature tensors. This is what gives each growth tensor a
    // lifespan covering the rest of its block — the "numerous skip
    // connections" TeMCO's skip-connection optimization targets.
    let mut features: Vec<ValueId> = vec![stem];
    let mut feature_widths: Vec<usize> = vec![64];
    let cfg_blocks = blocks(variant);
    let mut feat = stem;
    for (bi, &n_layers) in cfg_blocks.iter().enumerate() {
        for li in 0..n_layers {
            let cat = if features.len() == 1 {
                features[0]
            } else {
                g.concat(&features, format!("block{}.cat{li}", bi + 1))
            };
            let new = ctx.dense_layer(&mut g, cat, c, &format!("block{}.layer{li}", bi + 1));
            features.push(new);
            feature_widths.push(GROWTH);
            c += GROWTH;
        }
        // Merge the block's features once for the next stage.
        feat = if features.len() == 1 {
            features[0]
        } else {
            g.concat(&features, format!("block{}.out", bi + 1))
        };
        if bi + 1 < cfg_blocks.len() {
            // Transition: bn-relu-conv1×1(c/2)-avgpool.
            let tb = ctx.bn(&mut g, feat, c, format!("trans{}.bn", bi + 1));
            let tr = g.relu(tb, format!("trans{}.relu", bi + 1));
            let half = c / 2;
            let tc = ctx.conv(&mut g, tr, c, half, 1, 1, 0, format!("trans{}.conv", bi + 1));
            feat = g.avg_pool(tc, 2, 2, format!("trans{}.pool", bi + 1));
            c = half;
            features = vec![feat];
            feature_widths = vec![c];
        }
    }

    let fb = ctx.bn(&mut g, feat, c, "final_bn".into());
    let fr = g.relu(fb, "final_relu");
    let gap = g.global_avg_pool(fr, "gap");
    let flat = g.flatten(gap, "flatten");
    let w =
        Tensor::randn(&[cfg.num_classes, c], ctx.seeds.next()).map(|v| v * (2.0 / c as f32).sqrt());
    let logits = g.linear(flat, w, Some(Tensor::zeros(&[cfg.num_classes])), "fc");
    g.mark_output(logits);
    g.infer_shapes();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::Op;

    #[test]
    fn densenet121_channel_arithmetic() {
        // After block1: 64 + 6·32 = 256 → transition halves to 128.
        // After block2: 128 + 12·32 = 512 → 256.
        // After block3: 256 + 24·32 = 1024 → 512.
        // After block4: 512 + 16·32 = 1024.
        let g = build(&ModelConfig::small(), Variant::Densenet121);
        let final_relu = g.nodes.iter().find(|n| n.name == "final_relu").unwrap();
        assert_eq!(g.shape(final_relu.output)[1], 1024);
    }

    #[test]
    fn densenet169_final_width() {
        // 64+192=256→128; +384=512→256; +1024=1280→640; +1024=1664.
        let g = build(&ModelConfig::small(), Variant::Densenet169);
        let final_relu = g.nodes.iter().find(|n| n.name == "final_relu").unwrap();
        assert_eq!(g.shape(final_relu.output)[1], 1664);
    }

    #[test]
    fn concat_per_dense_layer_plus_block_outputs() {
        // One concat per dense layer except the first of each block (which
        // sees a single feature tensor), plus one block-output concat per
        // block.
        let g = build(&ModelConfig::small(), Variant::Densenet121);
        let concats = g.nodes.iter().filter(|n| matches!(n.op, Op::Concat)).count();
        assert_eq!(concats, (6 - 1) + (12 - 1) + (24 - 1) + (16 - 1) + 4);
    }

    #[test]
    fn growth_tensors_are_long_lived_skip_connections() {
        // Each dense layer's output is consumed by every later concat in its
        // block: multi-user, long-lifespan internal tensors.
        let g = build(&ModelConfig::small(), Variant::Densenet121);
        let lv = temco_ir::liveness(&g);
        let layer0 = g.nodes.iter().find(|n| n.name == "block3.layer0.conv2").unwrap();
        assert!(g.users(layer0.output).len() >= 20);
        assert!(lv.lifespan(layer0.output) > 100);
    }
}
