//! Kernel schedules as data.
//!
//! The blocked GEMM in [`crate::matmul`] used to hard-code its cache
//! blocking (`KC`/`MC`/`NC`) as compile-time constants tuned for one
//! machine and one shape regime. The autotuning plane makes those
//! parameters *values*: a [`GemmSchedule`] travels with the call, the
//! scratch-size formulas are parameterized on it, and the planner and the
//! kernel agree on the same schedule by construction — the planner sizes
//! scratch with the identical function the kernel partitions it with.
//!
//! The register microkernel tile (`MR × NR`) is **not** part of the
//! schedule: the intrinsic bodies hard-wire it (and a const assert pins
//! it), so the legal space is the cache-blocking above the microkernel.
//!
//! Any `GemmSchedule` is safe: [`GemmSchedule::normalized`] clamps the
//! parameters into the legal space (`kc ≥ 1`, `mc` a positive multiple of
//! `MR`, `nc` a positive multiple of `NR`) and every consumer normalizes
//! first, so a wild schedule can change performance but never correctness
//! or scratch accounting.

use crate::matmul::{MR, NR};

/// Cache-blocking schedule for one blocked GEMM: the panel depths and the
/// pack-buffer capacities. See the module docs for the legality rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmSchedule {
    /// K-dimension panel depth (packed A/B panel depth).
    pub kc: usize,
    /// A-panel row block: the packed `mc × kc` A block should sit in L2.
    pub mc: usize,
    /// B-panel column block: the packed `kc × nc` B block sits in L2/L3.
    pub nc: usize,
}

impl GemmSchedule {
    /// The hand-tuned default (the former compile-time constants): a
    /// `256`-deep K panel, `64 × 256` A block (64 KiB packed) and
    /// `256 × 256` B block (256 KiB packed).
    pub const DEFAULT: GemmSchedule = GemmSchedule { kc: 256, mc: 64, nc: 256 };

    /// Clamp into the legal space: `kc ≥ 1`, `mc`/`nc` positive multiples
    /// of the microkernel tile. Every kernel and scratch formula calls
    /// this first, so any schedule value is safe to execute.
    #[must_use]
    pub fn normalized(self) -> GemmSchedule {
        GemmSchedule {
            kc: self.kc.max(1),
            mc: self.mc.max(1).div_ceil(MR) * MR,
            nc: self.nc.max(1).div_ceil(NR) * NR,
        }
    }

    /// Whether the schedule is already in the legal space (fixed point of
    /// [`Self::normalized`]). The tuner's candidate generator only emits
    /// legal schedules; this is the pre-check it uses.
    pub fn is_legal(&self) -> bool {
        *self == self.normalized()
    }

    /// Compact human-readable form for reports and the tuning database.
    pub fn label(&self) -> String {
        format!("kc{} mc{} nc{}", self.kc, self.mc, self.nc)
    }
}

impl Default for GemmSchedule {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_legal_and_matches_the_old_constants() {
        let d = GemmSchedule::default();
        assert!(d.is_legal());
        assert_eq!(d, GemmSchedule { kc: 256, mc: 64, nc: 256 });
    }

    #[test]
    fn normalization_clamps_into_the_legal_space() {
        let s = GemmSchedule { kc: 0, mc: 0, nc: 0 }.normalized();
        assert_eq!(s, GemmSchedule { kc: 1, mc: MR, nc: NR });
        let s = GemmSchedule { kc: 3, mc: 5, nc: 9 }.normalized();
        assert_eq!(s.kc, 3);
        assert_eq!(s.mc % MR, 0);
        assert_eq!(s.nc % NR, 0);
        assert!(s.is_legal());
        assert!(s.normalized() == s, "normalization is idempotent");
    }
}
