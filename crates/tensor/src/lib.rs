//! Dense NCHW `f32` tensor library for the TeMCO reproduction.
//!
//! This crate is the numeric substrate the paper gets from PyTorch: a dense
//! contiguous tensor type plus the CNN operator set the 10 benchmark models
//! need (convolution variants, pooling, activations, concat/add, linear,
//! softmax). Kernels are written for clarity first, with a small number of
//! deliberate fast paths:
//!
//! * 1×1 convolutions (the `fconv`/`lconv` layers every decomposed sequence
//!   introduces) lower to a single SGEMM per batch element;
//! * general convolutions use im2col + SGEMM, transposed convolutions a
//!   GEMM + col2im scatter;
//! * SGEMM itself is a cache-blocked, packed, register-tiled kernel
//!   (see [`matmul`]) parallelized over output tiles.
//!
//! Every compute kernel exposes a `*_scratch` entry point taking its
//! working memory as a caller-provided slice, sized by the matching
//! `*_scratch_floats` function — the runtime's allocation planner reserves
//! that scratch inside the inference slab so steady-state execution never
//! heap-allocates.
//!
//! A slow, obviously-correct direct convolution is kept for cross-validation
//! in tests.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod schedule;
pub mod tensor;

pub use conv::{
    conv2d, conv2d_direct, conv2d_into, conv2d_into_scratch, conv2d_into_scratch_with,
    conv2d_scratch_floats, conv2d_scratch_floats_with, conv_transpose2d, conv_transpose2d_into,
    conv_transpose2d_into_scratch, conv_transpose2d_into_scratch_with,
    conv_transpose2d_scratch_floats, conv_transpose2d_scratch_floats_with, Conv2dParams,
};
pub use elementwise::{
    add, add_n_assign_iter, add_n_into, add_n_into_iter, concat_channels, concat_channels_into,
    concat_channels_into_iter, linear, linear_into, linear_into_scratch, linear_into_scratch_with,
    linear_scratch_floats, linear_scratch_floats_with, softmax_lastdim, softmax_lastdim_inplace,
    softmax_lastdim_into, ActKind,
};
pub use matmul::{
    isa_level, sgemm, sgemm_nt, sgemm_nt_scratch, sgemm_nt_scratch_with, sgemm_reference,
    sgemm_scratch, sgemm_scratch_floats, sgemm_scratch_floats_with, sgemm_scratch_with, sgemm_tn,
    sgemm_tn_scratch, sgemm_tn_scratch_with, with_tl_scratch,
};
pub use pool::{
    avg_pool2d, avg_pool2d_inplace, avg_pool2d_into, global_avg_pool, global_avg_pool_inplace,
    global_avg_pool_into, max_pool2d, max_pool2d_inplace, max_pool2d_into,
};
pub use schedule::GemmSchedule;
pub use tensor::{Tensor, TensorView};

/// Compute the spatial output size of a convolution/pooling window.
#[inline]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let effective = input + 2 * padding;
    if effective < kernel {
        return 0;
    }
    (effective - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::conv_out_dim;

    #[test]
    fn out_dim_matches_torch_formula() {
        assert_eq!(conv_out_dim(224, 3, 1, 1), 224);
        assert_eq!(conv_out_dim(224, 11, 4, 2), 55); // AlexNet conv1
        assert_eq!(conv_out_dim(224, 2, 2, 0), 112); // 2x2 pool
        assert_eq!(conv_out_dim(5, 7, 1, 0), 0); // window larger than input
    }
}
