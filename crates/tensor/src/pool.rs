//! Pooling kernels.

use crate::conv_out_dim;
use crate::tensor::{Tensor, TensorView};

/// 2-D max pooling with square `kernel` and `stride`, no padding.
pub fn max_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Tensor {
    alloc_pool(input, kernel, stride, max_pool2d_into)
}

/// 2-D average pooling with square `kernel` and `stride`, no padding.
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Tensor {
    alloc_pool(input, kernel, stride, avg_pool2d_into)
}

/// [`max_pool2d`] writing into a preallocated output buffer.
pub fn max_pool2d_into(input: TensorView<'_>, kernel: usize, stride: usize, out: &mut [f32]) {
    pool_into(input, kernel, stride, f32::NEG_INFINITY, |acc, v| acc.max(v), |acc, _| acc, out)
}

/// [`avg_pool2d`] writing into a preallocated output buffer.
pub fn avg_pool2d_into(input: TensorView<'_>, kernel: usize, stride: usize, out: &mut [f32]) {
    pool_into(input, kernel, stride, 0.0, |acc, v| acc + v, |acc, k2| acc / k2 as f32, out)
}

fn alloc_pool(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    f: impl Fn(TensorView<'_>, usize, usize, &mut [f32]),
) -> Tensor {
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_out_dim(h, kernel, stride, 0);
    let ow = conv_out_dim(w, kernel, stride, 0);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    f(input.view(), kernel, stride, out.data_mut());
    out
}

#[allow(clippy::too_many_arguments)]
fn pool_into(
    input: TensorView<'_>,
    kernel: usize,
    stride: usize,
    init: f32,
    combine: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
    out: &mut [f32],
) {
    assert_eq!(input.shape().len(), 4, "pool input must be 4-D");
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_out_dim(h, kernel, stride, 0);
    let ow = conv_out_dim(w, kernel, stride, 0);
    assert_eq!(out.len(), n * c * oh * ow, "pool output buffer length");
    for b in 0..n {
        for ch in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = init;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            acc = combine(
                                acc,
                                input.at4(b, ch, ohi * stride + kh, owi * stride + kw),
                            );
                        }
                    }
                    out[((b * c + ch) * oh + ohi) * ow + owi] = finish(acc, kernel * kernel);
                }
            }
        }
    }
}

/// [`max_pool2d`] reading from and writing to the *same* buffer: the input
/// occupies `buf` on entry; on return its prefix holds the pooled output
/// (`n·c·oh·ow` floats). Safe under partial overlap because the traversal
/// is monotone — the output index never exceeds the smallest input index
/// of its window, and each window accumulates in a register before the
/// single store (the DMO argument; see the alias-aware executor).
pub fn max_pool2d_inplace(
    buf: &mut [f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
) {
    pool_inplace(
        buf,
        n,
        c,
        h,
        w,
        kernel,
        stride,
        f32::NEG_INFINITY,
        |acc, v| acc.max(v),
        |acc, _| acc,
    )
}

/// [`avg_pool2d`] reading from and writing to the same buffer — see
/// [`max_pool2d_inplace`] for the overlap-safety argument.
pub fn avg_pool2d_inplace(
    buf: &mut [f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
) {
    pool_inplace(buf, n, c, h, w, kernel, stride, 0.0, |acc, v| acc + v, |acc, k2| acc / k2 as f32)
}

#[allow(clippy::too_many_arguments)]
fn pool_inplace(
    buf: &mut [f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    init: f32,
    combine: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) {
    let oh = conv_out_dim(h, kernel, stride, 0);
    let ow = conv_out_dim(w, kernel, stride, 0);
    assert!(buf.len() >= n * c * h * w, "pool buffer shorter than its input");
    // Monotone traversal: for output position (b, ch, ohi, owi) the store
    // index is ((b·c+ch)·oh+ohi)·ow+owi and every read index of its window
    // is ≥ that term by term (h ≥ oh, w ≥ ow, stride ≥ 1), so no input
    // element is overwritten before its last read.
    for b in 0..n {
        for ch in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = init;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            acc = combine(
                                acc,
                                buf[((b * c + ch) * h + ohi * stride + kh) * w + owi * stride + kw],
                            );
                        }
                    }
                    buf[((b * c + ch) * oh + ohi) * ow + owi] = finish(acc, kernel * kernel);
                }
            }
        }
    }
}

/// Global average pooling: `[n, c, h, w] → [n, c, 1, 1]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (n, c) = (input.dim(0), input.dim(1));
    let mut out = Tensor::zeros(&[n, c, 1, 1]);
    global_avg_pool_into(input.view(), out.data_mut());
    out
}

/// [`global_avg_pool`] writing into a preallocated output buffer.
pub fn global_avg_pool_into(input: TensorView<'_>, out: &mut [f32]) {
    let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let plane = (h * w) as f32;
    assert_eq!(out.len(), n * c, "global_avg_pool output buffer length");
    for b in 0..n {
        for ch in 0..c {
            let mut s = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    s += input.at4(b, ch, hi, wi);
                }
            }
            out[b * c + ch] = s / plane;
        }
    }
}

/// [`global_avg_pool`] reading from and writing to the same buffer: the
/// `n·c` means land in the buffer's prefix. The write index `b·c+ch` never
/// exceeds the first read index of its plane, so the overlap is safe.
pub fn global_avg_pool_inplace(buf: &mut [f32], n: usize, c: usize, h: usize, w: usize) {
    let plane = h * w;
    assert!(buf.len() >= n * c * plane, "global_avg_pool buffer shorter than its input");
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * plane;
            let s: f32 = buf[base..base + plane].iter().sum();
            buf[b * c + ch] = s / plane as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_max() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, -2.0, 3.0, 0.5]);
        let out = max_pool2d(&t, 2, 2);
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data()[0], 3.0);
    }

    #[test]
    fn avg_pool_averages_window() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = avg_pool2d(&t, 2, 2);
        assert_eq!(out.data()[0], 2.5);
    }

    #[test]
    fn pool_shapes_with_overlap() {
        // AlexNet 3x3 stride-2 pooling: 55 → 27.
        let t = Tensor::zeros(&[1, 2, 55, 55]);
        let out = max_pool2d(&t, 3, 2);
        assert_eq!(out.shape(), &[1, 2, 27, 27]);
    }

    #[test]
    fn max_pool_preserves_negative_inputs() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![-1.0, -2.0, -3.0, -4.0]);
        let out = max_pool2d(&t, 2, 2);
        assert_eq!(out.data()[0], -1.0);
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let t = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), &[2, 3, 1, 1]);
        // mean of 0..16 is 7.5 for the first (n=0,c=0) plane
        assert!((out.at4(0, 0, 0, 0) - 7.5).abs() < 1e-5);
    }

    #[test]
    fn pool_channels_are_independent() {
        let mut t = Tensor::zeros(&[1, 2, 2, 2]);
        *t.at4_mut(0, 0, 0, 0) = 5.0;
        *t.at4_mut(0, 1, 1, 1) = 7.0;
        let out = max_pool2d(&t, 2, 2);
        assert_eq!(out.at4(0, 0, 0, 0), 5.0);
        assert_eq!(out.at4(0, 1, 0, 0), 7.0);
    }

    #[test]
    fn inplace_pools_match_into_variants_under_overlap() {
        // The in-place pools must agree with the disjoint-buffer kernels on
        // the exact shapes where input and output windows interleave —
        // overlapping stride-2 and the AlexNet 3×3/2 case.
        for (h, w, kernel, stride) in [(8, 8, 2, 2), (9, 7, 3, 2), (55, 55, 3, 2)] {
            let t = Tensor::from_fn(&[2, 3, h, w], |i| ((i * 37) % 101) as f32 - 50.0);
            let oh = conv_out_dim(h, kernel, stride, 0);
            let ow = conv_out_dim(w, kernel, stride, 0);
            let mut want = vec![0.0f32; 2 * 3 * oh * ow];

            max_pool2d_into(t.view(), kernel, stride, &mut want);
            let mut buf = t.data().to_vec();
            max_pool2d_inplace(&mut buf, 2, 3, h, w, kernel, stride);
            assert_eq!(&buf[..want.len()], &want[..], "max {h}x{w} k{kernel}s{stride}");

            avg_pool2d_into(t.view(), kernel, stride, &mut want);
            let mut buf = t.data().to_vec();
            avg_pool2d_inplace(&mut buf, 2, 3, h, w, kernel, stride);
            assert_eq!(&buf[..want.len()], &want[..], "avg {h}x{w} k{kernel}s{stride}");
        }
    }

    #[test]
    fn inplace_global_avg_pool_matches_into() {
        let t = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let mut want = vec![0.0f32; 6];
        global_avg_pool_into(t.view(), &mut want);
        let mut buf = t.data().to_vec();
        global_avg_pool_inplace(&mut buf, 2, 3, 4, 4);
        assert_eq!(&buf[..6], &want[..]);
    }

    #[test]
    fn into_variants_overwrite_dirty_buffers() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mut dirty = vec![99.0f32; 1];
        max_pool2d_into(t.view(), 2, 2, &mut dirty);
        assert_eq!(dirty[0], 4.0);
        avg_pool2d_into(t.view(), 2, 2, &mut dirty);
        assert_eq!(dirty[0], 2.5);
        global_avg_pool_into(t.view(), &mut dirty);
        assert_eq!(dirty[0], 2.5);
    }
}
