//! Convolution kernels: im2col + SGEMM, pointwise fast path, transposed
//! convolution, and a naive reference implementation.
//!
//! Every kernel has three entry points: the allocating form (`conv2d`),
//! the preallocated-output form (`conv2d_into`), and the fully planned
//! form (`conv2d_into_scratch`) that also takes the kernel's working
//! memory — im2col columns plus GEMM pack buffers — as a caller-provided
//! slice. The matching `*_scratch_floats` function computes exactly how
//! much working memory a given shape needs; the allocation planner calls
//! it to reserve slab scratch, so steady-state inference never allocates.
//! The `_into` forms borrow a reusable thread-local buffer instead, which
//! keeps ad-hoc callers allocation-free after their first call.

use rayon::prelude::*;

use crate::conv_out_dim;
use crate::matmul::{
    sgemm_scratch_floats_with, sgemm_scratch_with, sgemm_tn_scratch_with, with_tl_scratch, SyncPtr,
};
use crate::schedule::GemmSchedule;
use crate::tensor::{Tensor, TensorView};

/// Hyper-parameters of a 2-D convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Zero padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Channel groups (`1` = dense, `c_in` = depthwise).
    pub groups: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: (1, 1), padding: (0, 0), groups: 1 }
    }
}

impl Conv2dParams {
    /// Dense convolution with symmetric stride/padding.
    pub fn new(stride: usize, padding: usize) -> Self {
        Conv2dParams { stride: (stride, stride), padding: (padding, padding), groups: 1 }
    }

    /// Output spatial dims for an input of `(h, w)` and kernel `(kh, kw)`.
    pub fn out_hw(&self, h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
        (
            conv_out_dim(h, kh, self.stride.0, self.padding.0),
            conv_out_dim(w, kw, self.stride.1, self.padding.1),
        )
    }

    fn is_pointwise(&self, kh: usize, kw: usize) -> bool {
        kh == 1 && kw == 1 && self.stride == (1, 1) && self.padding == (0, 0) && self.groups == 1
    }
}

/// Working-memory floats a `conv2d` of these dimensions needs: the im2col
/// column matrix (shared across batch elements and groups) plus the GEMM
/// pack buffers; the pointwise fast path needs only the latter. Mirrors
/// the dispatch in [`conv2d_into_scratch`] exactly — the planner and the
/// kernel must agree byte-for-byte.
pub fn conv2d_scratch_floats(
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
) -> usize {
    conv2d_scratch_floats_with(c_in, h, w, c_out, kh, kw, p, GemmSchedule::DEFAULT)
}

/// [`conv2d_scratch_floats`] under an explicit GEMM schedule — the pack
/// buffers are schedule-sized, the im2col column matrix is not.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_scratch_floats_with(
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    schedule: GemmSchedule,
) -> usize {
    if p.is_pointwise(kh, kw) {
        return sgemm_scratch_floats_with(c_out, c_in, h * w, schedule);
    }
    let (oh, ow) = p.out_hw(h, w, kh, kw);
    let c_in_g = c_in / p.groups;
    let c_out_g = c_out / p.groups;
    let col_rows = c_in_g * kh * kw;
    col_rows * oh * ow + sgemm_scratch_floats_with(c_out_g, col_rows, oh * ow, schedule)
}

/// 2-D convolution. `input` is `[n, c_in, h, w]`, `weight` is
/// `[c_out, c_in/groups, kh, kw]`, `bias` is `[c_out]` if present.
///
/// Dispatches to a pointwise SGEMM for 1×1/stride-1/dense kernels — the
/// layout every decomposed sequence's `fconv`/`lconv` has — and to
/// im2col + SGEMM otherwise.
///
/// # Panics
/// Panics on shape inconsistencies.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&[f32]>, p: &Conv2dParams) -> Tensor {
    let (n, _, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (c_out, kh, kw) = (weight.dim(0), weight.dim(2), weight.dim(3));
    let (oh, ow) = p.out_hw(h, w, kh, kw);
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    conv2d_into(input.view(), weight, bias, p, out.data_mut());
    out
}

/// [`conv2d`] writing into a preallocated output buffer of exactly
/// `n × c_out × oh × ow` elements. Working memory comes from the reusable
/// thread-local buffer.
///
/// # Panics
/// Panics on shape inconsistencies or if `out` has the wrong length.
pub fn conv2d_into(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: &Conv2dParams,
    out: &mut [f32],
) {
    let (c_in, h, w) = (input.dim(1), input.dim(2), input.dim(3));
    let (c_out, kh, kw) = (weight.dim(0), weight.dim(2), weight.dim(3));
    with_tl_scratch(conv2d_scratch_floats(c_in, h, w, c_out, kh, kw, p), |s| {
        conv2d_into_scratch(input, weight, bias, p, out, s);
    });
}

/// [`conv2d_into`] with explicit working memory of at least
/// [`conv2d_scratch_floats`] elements — the slab executor's entry point.
///
/// # Panics
/// Panics on shape inconsistencies, wrong `out` length, or undersized
/// scratch.
pub fn conv2d_into_scratch(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: &Conv2dParams,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    conv2d_into_scratch_with(input, weight, bias, p, out, scratch, GemmSchedule::DEFAULT);
}

/// [`conv2d_into_scratch`] under an explicit GEMM schedule; scratch must
/// hold [`conv2d_scratch_floats_with`] floats for the *same* schedule.
///
/// # Panics
/// Panics on shape inconsistencies, wrong `out` length, or undersized
/// scratch.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into_scratch_with(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: &Conv2dParams,
    out: &mut [f32],
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    assert_eq!(input.shape().len(), 4, "conv2d input must be 4-D");
    assert_eq!(weight.shape().len(), 4, "conv2d weight must be 4-D");
    let (n, c_in, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (c_out, c_in_g, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(c_in_g * p.groups, c_in, "groups/channel mismatch");
    assert_eq!(c_out % p.groups, 0, "c_out must divide by groups");
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "bias length mismatch");
    }
    let (oh, ow) = p.out_hw(h, w, kh, kw);
    assert_eq!(out.len(), n * c_out * oh * ow, "conv2d output buffer length");
    assert!(
        scratch.len() >= conv2d_scratch_floats_with(c_in, h, w, c_out, kh, kw, p, schedule),
        "conv2d scratch undersized"
    );

    if p.is_pointwise(kh, kw) {
        return pointwise_into(input, weight, bias, out, scratch, schedule);
    }

    let c_out_g = c_out / p.groups;
    let col_rows = c_in_g * kh * kw;
    let (col, gemm_scratch) = scratch.split_at_mut(col_rows * oh * ow);
    let in_plane = h * w;
    let out_plane = oh * ow;
    for b_i in 0..n {
        for g in 0..p.groups {
            im2col(
                &input.data()[(b_i * c_in + g * c_in_g) * in_plane..],
                col,
                c_in_g,
                h,
                w,
                kh,
                kw,
                p.stride,
                p.padding,
                oh,
                ow,
            );
            let w_slice = &weight.data()[g * c_out_g * col_rows..(g + 1) * c_out_g * col_rows];
            let out_off = (b_i * c_out + g * c_out_g) * out_plane;
            let out_slice = &mut out[out_off..out_off + c_out_g * out_plane];
            if let Some(b) = bias {
                for (co, chunk) in out_slice.chunks_mut(out_plane).enumerate() {
                    chunk.fill(b[g * c_out_g + co]);
                }
            } else {
                out_slice.fill(0.0);
            }
            sgemm_scratch_with(
                w_slice,
                col,
                out_slice,
                c_out_g,
                col_rows,
                out_plane,
                gemm_scratch,
                schedule,
            );
        }
    }
}

/// Fast path: 1×1 dense convolution is one SGEMM per batch element.
fn pointwise_into(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    out: &mut [f32],
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    let (n, c_in, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let c_out = weight.dim(0);
    let plane = h * w;
    for b_i in 0..n {
        let in_slice = &input.data()[b_i * c_in * plane..(b_i + 1) * c_in * plane];
        let out_slice = &mut out[b_i * c_out * plane..(b_i + 1) * c_out * plane];
        if let Some(b) = bias {
            for (co, chunk) in out_slice.chunks_mut(plane).enumerate() {
                chunk.fill(b[co]);
            }
        } else {
            out_slice.fill(0.0);
        }
        sgemm_scratch_with(
            weight.data(),
            in_slice,
            out_slice,
            c_out,
            c_in,
            plane,
            scratch,
            schedule,
        );
    }
}

/// Unpack convolution windows into a `[c_in_g*kh*kw, oh*ow]` column
/// matrix, parallel over output rows: each worker fills the disjoint
/// `ohi`-th `ow`-segment of every column row. The caller reuses `col`
/// across batch elements and groups.
#[allow(clippy::too_many_arguments)]
fn im2col(
    input: &[f32],
    col: &mut [f32],
    c_in_g: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
) {
    let (sh, sw) = stride;
    let (ph, pw) = padding;
    let out_plane = oh * ow;
    let col_ptr = SyncPtr(col.as_mut_ptr());
    let fill_row = |ohi: usize| {
        for ci in 0..c_in_g {
            let plane = &input[ci * h * w..(ci + 1) * h * w];
            for khi in 0..kh {
                let ih = (ohi * sh + khi) as isize - ph as isize;
                for kwi in 0..kw {
                    let row = ((ci * kh + khi) * kw + kwi) * out_plane;
                    // SAFETY: segment `[row + ohi*ow, row + (ohi+1)*ow)` is
                    // owned exclusively by this `ohi` job.
                    let dst =
                        unsafe { std::slice::from_raw_parts_mut(col_ptr.add(row + ohi * ow), ow) };
                    if ih < 0 || ih as usize >= h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[ih as usize * w..(ih as usize + 1) * w];
                    for (owi, d) in dst.iter_mut().enumerate() {
                        let iw = (owi * sw + kwi) as isize - pw as isize;
                        *d = if iw < 0 || iw as usize >= w { 0.0 } else { src_row[iw as usize] };
                    }
                }
            }
        }
    };
    // Below ~64 KiB of column data the parallel dispatch isn't worth it.
    if c_in_g * kh * kw * out_plane < 16 * 1024 {
        for ohi in 0..oh {
            fill_row(ohi);
        }
    } else {
        (0..oh).into_par_iter().for_each(fill_row);
    }
}

/// Naive direct convolution used as the correctness oracle in tests.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: &Conv2dParams,
) -> Tensor {
    let (n, c_in, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (c_out, c_in_g, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    let (oh, ow) = p.out_hw(h, w, kh, kw);
    let c_out_g = c_out / p.groups;
    assert_eq!(c_in_g * p.groups, c_in);
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    for b_i in 0..n {
        for co in 0..c_out {
            let g = co / c_out_g;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = bias.map_or(0.0, |b| b[co]);
                    for ci in 0..c_in_g {
                        for khi in 0..kh {
                            for kwi in 0..kw {
                                let ih = (ohi * p.stride.0 + khi) as isize - p.padding.0 as isize;
                                let iw = (owi * p.stride.1 + kwi) as isize - p.padding.1 as isize;
                                if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= w {
                                    continue;
                                }
                                acc += input.at4(b_i, g * c_in_g + ci, ih as usize, iw as usize)
                                    * weight.at4(co, ci, khi, kwi);
                            }
                        }
                    }
                    *out.at4_mut(b_i, co, ohi, owi) = acc;
                }
            }
        }
    }
    out
}

/// Working-memory floats a `conv_transpose2d` of these dimensions needs:
/// the `[c_out·kh·kw, h·w]` column matrix produced by the GEMM plus the
/// GEMM pack buffers.
pub fn conv_transpose2d_scratch_floats(
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    h: usize,
    w: usize,
) -> usize {
    conv_transpose2d_scratch_floats_with(c_in, c_out, kh, kw, h, w, GemmSchedule::DEFAULT)
}

/// [`conv_transpose2d_scratch_floats`] under an explicit GEMM schedule.
pub fn conv_transpose2d_scratch_floats_with(
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    h: usize,
    w: usize,
    schedule: GemmSchedule,
) -> usize {
    let col_rows = c_out * kh * kw;
    col_rows * h * w + sgemm_scratch_floats_with(col_rows, c_in, h * w, schedule)
}

/// Transposed (up-)convolution, `weight` is `[c_in, c_out, kh, kw]`.
///
/// Only the UNet-style configuration (no padding) is needed. Computed as
/// one GEMM per batch element — `col[c_out·kh·kw, h·w] = Wᵀ · X` with the
/// stored weight read as `[c_in, c_out·kh·kw]` — followed by a col2im
/// scatter-add, which replaces the old direct scatter and its
/// data-dependent zero-skip branch.
pub fn conv_transpose2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
) -> Tensor {
    let (n, h, w) = (input.dim(0), input.dim(2), input.dim(3));
    let (c_out, kh, kw) = (weight.dim(1), weight.dim(2), weight.dim(3));
    let oh = (h - 1) * stride.0 + kh;
    let ow = (w - 1) * stride.1 + kw;
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    conv_transpose2d_into(input.view(), weight, bias, stride, out.data_mut());
    out
}

/// [`conv_transpose2d`] writing into a preallocated output buffer.
/// Working memory comes from the reusable thread-local buffer.
///
/// # Panics
/// Panics on channel mismatches or if `out` has the wrong length.
pub fn conv_transpose2d_into(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    out: &mut [f32],
) {
    let (c_in, h, w) = (input.dim(1), input.dim(2), input.dim(3));
    let (c_out, kh, kw) = (weight.dim(1), weight.dim(2), weight.dim(3));
    with_tl_scratch(conv_transpose2d_scratch_floats(c_in, c_out, kh, kw, h, w), |s| {
        conv_transpose2d_into_scratch(input, weight, bias, stride, out, s);
    });
}

/// [`conv_transpose2d_into`] with explicit working memory of at least
/// [`conv_transpose2d_scratch_floats`] elements.
///
/// # Panics
/// Panics on channel mismatches, wrong `out` length, or undersized
/// scratch.
pub fn conv_transpose2d_into_scratch(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    out: &mut [f32],
    scratch: &mut [f32],
) {
    conv_transpose2d_into_scratch_with(
        input,
        weight,
        bias,
        stride,
        out,
        scratch,
        GemmSchedule::DEFAULT,
    );
}

/// [`conv_transpose2d_into_scratch`] under an explicit GEMM schedule;
/// scratch must hold [`conv_transpose2d_scratch_floats_with`] floats for
/// the *same* schedule.
///
/// # Panics
/// Panics on channel mismatches, wrong `out` length, or undersized
/// scratch.
pub fn conv_transpose2d_into_scratch_with(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: (usize, usize),
    out: &mut [f32],
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    let (n, c_in, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (w_cin, c_out, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
    assert_eq!(c_in, w_cin, "conv_transpose2d channel mismatch");
    let (sh, sw) = stride;
    let oh = (h - 1) * sh + kh;
    let ow = (w - 1) * sw + kw;
    let plane = oh * ow;
    assert_eq!(out.len(), n * c_out * plane, "conv_transpose2d output buffer length");
    assert!(
        scratch.len() >= conv_transpose2d_scratch_floats_with(c_in, c_out, kh, kw, h, w, schedule),
        "conv_transpose2d scratch undersized"
    );
    match bias {
        Some(b) => {
            for b_i in 0..n {
                for (co, &bv) in b.iter().enumerate() {
                    let off = (b_i * c_out + co) * plane;
                    out[off..off + plane].fill(bv);
                }
            }
        }
        None => out.fill(0.0),
    }

    let col_rows = c_out * kh * kw;
    let in_plane = h * w;
    let (col, gemm_scratch) = scratch.split_at_mut(col_rows * in_plane);
    let out_ptr = SyncPtr(out.as_mut_ptr());
    for b_i in 0..n {
        // col = Wᵀ · X: the stored `[c_in, c_out, kh, kw]` weight is
        // exactly the `[k × m]` transposed-A operand with k = c_in.
        col.fill(0.0);
        let x = &input.data()[b_i * c_in * in_plane..(b_i + 1) * c_in * in_plane];
        sgemm_tn_scratch_with(
            weight.data(),
            x,
            col,
            col_rows,
            c_in,
            in_plane,
            gemm_scratch,
            schedule,
        );
        // col2im scatter-add, parallel over output channels: each worker
        // owns one `[oh, ow]` output plane.
        (0..c_out).into_par_iter().for_each(|co| {
            let dst_base = (b_i * c_out + co) * plane;
            for khi in 0..kh {
                for kwi in 0..kw {
                    let crow = &col[((co * kh + khi) * kw + kwi) * in_plane..][..in_plane];
                    for hi in 0..h {
                        let oy = hi * sh + khi;
                        let src = &crow[hi * w..(hi + 1) * w];
                        for (wi, &v) in src.iter().enumerate() {
                            // SAFETY: plane `co` is owned by this worker;
                            // `oy < oh`, `wi*sw + kwi < ow` by construction.
                            unsafe {
                                *out_ptr.add(dst_base + oy * ow + wi * sw + kwi) += v;
                            }
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, seed)
    }

    #[test]
    fn im2col_matches_direct_dense() {
        let input = rt(&[2, 3, 8, 8], 1);
        let weight = rt(&[5, 3, 3, 3], 2);
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let p = Conv2dParams::new(1, 1);
        let a = conv2d(&input, &weight, Some(&bias), &p);
        let b = conv2d_direct(&input, &weight, Some(&bias), &p);
        assert!(a.all_close(&b, 1e-4), "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn im2col_matches_direct_strided_padded() {
        let input = rt(&[1, 4, 11, 9], 3);
        let weight = rt(&[6, 4, 5, 3], 4);
        let p = Conv2dParams { stride: (2, 3), padding: (2, 1), groups: 1 };
        let a = conv2d(&input, &weight, None, &p);
        let b = conv2d_direct(&input, &weight, None, &p);
        assert!(a.all_close(&b, 1e-4));
    }

    #[test]
    fn grouped_conv_matches_direct() {
        let input = rt(&[2, 6, 7, 7], 5);
        let weight = rt(&[8, 3, 3, 3], 6); // groups=2: each group 3 in → 4 out
        let p = Conv2dParams { stride: (1, 1), padding: (1, 1), groups: 2 };
        let a = conv2d(&input, &weight, None, &p);
        let b = conv2d_direct(&input, &weight, None, &p);
        assert!(a.all_close(&b, 1e-4));
    }

    #[test]
    fn depthwise_conv_matches_direct() {
        let input = rt(&[1, 4, 6, 6], 7);
        let weight = rt(&[4, 1, 3, 1], 8); // depthwise, asymmetric kernel
        let p = Conv2dParams { stride: (1, 1), padding: (1, 0), groups: 4 };
        let a = conv2d(&input, &weight, None, &p);
        let b = conv2d_direct(&input, &weight, None, &p);
        assert!(a.all_close(&b, 1e-4));
    }

    #[test]
    fn pointwise_fast_path_matches_direct() {
        let input = rt(&[2, 16, 5, 5], 9);
        let weight = rt(&[4, 16, 1, 1], 10);
        let bias: Vec<f32> = (0..4).map(|i| i as f32).collect();
        let p = Conv2dParams::default();
        let a = conv2d(&input, &weight, Some(&bias), &p);
        let b = conv2d_direct(&input, &weight, Some(&bias), &p);
        assert!(a.all_close(&b, 1e-4));
        assert_eq!(a.shape(), &[2, 4, 5, 5]);
    }

    #[test]
    fn identity_pointwise_is_noop() {
        let input = rt(&[1, 3, 4, 4], 11);
        let mut weight = Tensor::zeros(&[3, 3, 1, 1]);
        for c in 0..3 {
            *weight.at4_mut(c, c, 0, 0) = 1.0;
        }
        let out = conv2d(&input, &weight, None, &Conv2dParams::default());
        assert!(out.all_close(&input, 1e-6));
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let input = rt(&[2, 5, 13, 11], 21);
        let weight = rt(&[7, 5, 3, 3], 22);
        let p = Conv2dParams::new(1, 1);
        let a = conv2d(&input, &weight, None, &p);
        let floats = conv2d_scratch_floats(5, 13, 11, 7, 3, 3, &p);
        let mut scratch = vec![0.0f32; floats];
        let mut out = Tensor::zeros(a.shape());
        conv2d_into_scratch(input.view(), &weight, None, &p, out.data_mut(), &mut scratch);
        assert!(a.all_close(&out, 1e-6), "diff {}", a.max_abs_diff(&out));
    }

    #[test]
    fn conv_transpose_upsamples_2x() {
        let input = rt(&[1, 3, 5, 5], 12);
        let weight = rt(&[3, 2, 2, 2], 13);
        let out = conv_transpose2d(&input, &weight, None, (2, 2));
        assert_eq!(out.shape(), &[1, 2, 10, 10]);
    }

    #[test]
    fn conv_transpose_matches_direct_scatter() {
        // Oracle: the pre-GEMM direct scatter, written out longhand.
        let input = rt(&[2, 3, 6, 5], 31);
        let weight = rt(&[3, 4, 3, 2], 32);
        let bias: Vec<f32> = (0..4).map(|i| i as f32 * 0.25 - 0.5).collect();
        let (sh, sw) = (2, 3);
        let got = conv_transpose2d(&input, &weight, Some(&bias), (sh, sw));
        let (n, c_in, h, w) = (2, 3, 6, 5);
        let (c_out, kh, kw) = (4, 3, 2);
        let (oh, ow) = ((h - 1) * sh + kh, (w - 1) * sw + kw);
        let mut want = Tensor::zeros(&[n, c_out, oh, ow]);
        for b_i in 0..n {
            for (co, &bv) in bias.iter().enumerate() {
                for y in 0..oh {
                    for x in 0..ow {
                        *want.at4_mut(b_i, co, y, x) = bv;
                    }
                }
            }
            for ci in 0..c_in {
                for hi in 0..h {
                    for wi in 0..w {
                        let v = input.at4(b_i, ci, hi, wi);
                        for co in 0..c_out {
                            for khi in 0..kh {
                                for kwi in 0..kw {
                                    *want.at4_mut(b_i, co, hi * sh + khi, wi * sw + kwi) +=
                                        v * weight.at4(ci, co, khi, kwi);
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(got.all_close(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn conv_transpose_is_adjoint_of_conv() {
        // <conv(x), y> == <x, conv_transpose(y)> for zero-pad, matching strides.
        let x = rt(&[1, 2, 6, 6], 14);
        let wt = rt(&[3, 2, 2, 2], 15); // conv weight [c_out=3, c_in=2, 2, 2]
        let p = Conv2dParams { stride: (2, 2), padding: (0, 0), groups: 1 };
        let cx = conv2d(&x, &wt, None, &p); // [1,3,3,3]
        let y = rt(cx.shape(), 16);
        // transpose weight layout for conv_transpose: [c_in=3, c_out=2, 2, 2]
        let mut wtt = Tensor::zeros(&[3, 2, 2, 2]);
        for a in 0..3 {
            for b in 0..2 {
                for i in 0..2 {
                    for j in 0..2 {
                        *wtt.at4_mut(a, b, i, j) = wt.at4(a, b, i, j);
                    }
                }
            }
        }
        let cty = conv_transpose2d(&y, &wtt, None, (2, 2));
        let lhs: f32 = cx.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(cty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn alexnet_conv1_shape() {
        let input = Tensor::zeros(&[4, 3, 224, 224]);
        let weight = Tensor::zeros(&[64, 3, 11, 11]);
        let p = Conv2dParams::new(4, 2);
        let out = conv2d(&input, &weight, None, &p);
        assert_eq!(out.shape(), &[4, 64, 55, 55]);
    }
}
