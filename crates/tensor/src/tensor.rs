//! The dense contiguous tensor type.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Convolutional tensors use NCHW order; matrices use `[rows, cols]`. The
/// representation is always owned and contiguous — passes in the compiler
/// clone/slice weights rarely, and the runtime's whole point is to *measure*
/// allocation behaviour, so implicit views would only obscure it.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Allocate a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Build a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} must match shape volume {n}", data.len());
        Tensor { shape: shape.to_vec(), data }
    }

    /// Build a tensor by evaluating `f` at every linear index.
    pub fn from_fn(shape: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: (0..n).map(f).collect() }
    }

    /// Deterministic standard-normal tensor (Box–Muller over a seeded RNG).
    pub fn randn(shape: &[usize], seed: u64) -> Self {
        let n: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push((r * theta.cos()) as f32);
            if data.len() < n {
                data.push((r * theta.sin()) as f32);
            }
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// Deterministic uniform tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], seed: u64, lo: f32, hi: f32) -> Self {
        let n: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..n).map(|_| lo + (hi - lo) * rng.random::<f32>()).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// He-normal initialized convolution weight `[c_out, c_in, kh, kw]`.
    ///
    /// Realistic weight magnitudes keep activations in a sane range so that
    /// decomposition-error and output-agreement experiments are meaningful.
    pub fn he_conv_weight(c_out: usize, c_in: usize, kh: usize, kw: usize, seed: u64) -> Self {
        let fan_in = (c_in * kh * kw) as f32;
        let std = (2.0 / fan_in).sqrt();
        let mut t = Tensor::randn(&[c_out, c_in, kh, kw], seed);
        for x in &mut t.data {
            *x *= std;
        }
        t
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size in bytes (4 bytes per `f32`).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrow the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dimension `i` of the shape.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Reinterpret with a new shape of the same volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape must preserve volume");
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// Value at 4-D index (NCHW).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Mutable value at 4-D index (NCHW).
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Largest absolute difference to another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Whether every element is within `tol` of `other`.
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    /// Frobenius norm of the flattened tensor.
    pub fn fro_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Borrow as a [`TensorView`].
    #[inline]
    pub fn view(&self) -> TensorView<'_> {
        TensorView { shape: &self.shape, data: &self.data }
    }
}

/// A borrowed, contiguous, row-major tensor: shape + flat data, owned
/// elsewhere (a [`Tensor`] or a region of the runtime's slab).
///
/// The `_into` kernel variants take views so that a static-allocation
/// executor can run them directly on slab memory without materializing
/// per-node `Tensor`s.
#[derive(Clone, Copy, Debug)]
pub struct TensorView<'a> {
    shape: &'a [usize],
    data: &'a [f32],
}

impl<'a> TensorView<'a> {
    /// Wrap `data` with `shape`.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape volume.
    #[inline]
    pub fn new(shape: &'a [usize], data: &'a [f32]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "view length {} must match shape volume {n}", data.len());
        TensorView { shape, data }
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &'a [usize] {
        self.shape
    }

    /// Dimension `i` of the shape.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow the flat data.
    #[inline]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Value at 4-D index (NCHW).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Copy into an owned [`Tensor`].
    pub fn to_tensor(&self) -> Tensor {
        Tensor { shape: self.shape.to_vec(), data: self.data.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_volume() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert_eq!(t.numel(), 120);
        assert_eq!(t.bytes(), 480);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[32], 7);
        let b = Tensor::randn(&[32], 7);
        let c = Tensor::randn(&[32], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_unit_variance() {
        let t = Tensor::randn(&[10_000], 42);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn at4_matches_flat_layout() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 1), 1.0);
        assert_eq!(t.at4(0, 0, 1, 0), 5.0);
        assert_eq!(t.at4(0, 1, 0, 0), 20.0);
        assert_eq!(t.at4(1, 0, 0, 0), 60.0);
        assert_eq!(t.at4(1, 2, 3, 4), 119.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "reshape must preserve volume")]
    fn reshape_wrong_volume_panics() {
        Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    fn max_abs_diff_and_all_close() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.5, 3.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
        assert!(a.all_close(&b, 0.5));
        assert!(!a.all_close(&b, 0.4));
    }

    #[test]
    fn he_weight_scale_shrinks_with_fan_in() {
        let small = Tensor::he_conv_weight(8, 4, 3, 3, 1);
        let big = Tensor::he_conv_weight(8, 256, 3, 3, 1);
        assert!(
            big.fro_norm() / (big.numel() as f32).sqrt()
                < small.fro_norm() / (small.numel() as f32).sqrt()
        );
    }
}
