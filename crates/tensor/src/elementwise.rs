//! Elementwise ops, activations, concat/add, linear, softmax.

use crate::matmul::{sgemm_nt_scratch_with, sgemm_scratch_floats_with, with_tl_scratch};
use crate::schedule::GemmSchedule;
use crate::tensor::{Tensor, TensorView};

/// The activation functions appearing between decomposed convolutions.
///
/// All of them are elementwise, which is exactly the property Section 3.2 of
/// the paper relies on: `lconv → activation → fconv` cannot be reordered, but
/// it *can* be computed tile-by-tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Sigmoid-weighted linear unit (`x * sigmoid(x)`).
    Silu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    /// Apply the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Silu => x / (1.0 + (-x).exp()),
            ActKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Apply the activation to a whole tensor, returning a new one.
    pub fn forward(self, t: &Tensor) -> Tensor {
        t.map(|x| self.apply(x))
    }

    /// Apply the activation elementwise into a preallocated buffer.
    ///
    /// # Panics
    /// Panics if `out` and `input` lengths differ.
    pub fn forward_into(self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), out.len(), "activation buffer length mismatch");
        for (o, &x) in out.iter_mut().zip(input) {
            *o = self.apply(x);
        }
    }

    /// Apply the activation to a buffer in place — the alias-aware
    /// executor's entry point when the input's liveness ends at this node
    /// and the output reuses its bytes.
    pub fn forward_inplace(self, buf: &mut [f32]) {
        for x in buf.iter_mut() {
            *x = self.apply(*x);
        }
    }
}

/// Elementwise sum of two same-shaped tensors.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::from_vec(a.shape(), data)
}

/// Elementwise sum of `n ≥ 1` same-length operands into a preallocated
/// buffer. Unlike folding binary [`add`]s, no intermediate sums exist —
/// exactly what the slab executor wants for n-ary `Add` nodes.
///
/// # Panics
/// Panics if the list is empty or any length disagrees with `out`.
pub fn add_n_into(inputs: &[&[f32]], out: &mut [f32]) {
    add_n_into_iter(inputs.iter().copied(), out);
}

/// [`add_n_into`] over any re-iterable source of operand slices, so
/// dispatchers can feed graph inputs straight through without collecting
/// them into a temporary `Vec` first.
///
/// # Panics
/// Panics if the iterator is empty or any length disagrees with `out`.
pub fn add_n_into_iter<'a, I>(inputs: I, out: &mut [f32])
where
    I: Iterator<Item = &'a [f32]> + Clone,
{
    let mut first = true;
    for x in inputs {
        assert_eq!(x.len(), out.len(), "add operand length mismatch");
        if first {
            out.copy_from_slice(x);
            first = false;
        } else {
            for (o, &v) in out.iter_mut().zip(x) {
                *o += v;
            }
        }
    }
    assert!(!first, "add of empty list");
}

/// Accumulate operand slices into `out` with `+=` — no initial copy. The
/// alias-aware executor calls this when an n-ary `Add` runs in place over
/// one dying operand: `out` already holds that operand's values and the
/// *remaining* operands are summed on top.
///
/// # Panics
/// Panics if any operand length disagrees with `out`. An empty iterator is
/// fine (an add in place over its only operand is the identity).
pub fn add_n_assign_iter<'a, I>(inputs: I, out: &mut [f32])
where
    I: Iterator<Item = &'a [f32]>,
{
    for x in inputs {
        assert_eq!(x.len(), out.len(), "add operand length mismatch");
        for (o, &v) in out.iter_mut().zip(x) {
            *o += v;
        }
    }
}

/// Concatenate 4-D tensors along the channel axis.
///
/// # Panics
/// Panics if batch/spatial dims disagree or the list is empty.
pub fn concat_channels(tensors: &[&Tensor]) -> Tensor {
    assert!(!tensors.is_empty(), "concat of empty list");
    let views: Vec<TensorView<'_>> = tensors.iter().map(|t| t.view()).collect();
    let (n, h, w) = (views[0].dim(0), views[0].dim(2), views[0].dim(3));
    let c_total: usize = views.iter().map(|v| v.dim(1)).sum();
    let mut out = Tensor::zeros(&[n, c_total, h, w]);
    concat_channels_into(&views, out.data_mut());
    out
}

/// [`concat_channels`] writing into a preallocated output buffer.
///
/// # Panics
/// Panics if batch/spatial dims disagree, the list is empty, or `out` has
/// the wrong length.
pub fn concat_channels_into(views: &[TensorView<'_>], out: &mut [f32]) {
    concat_channels_into_iter(views.iter().copied(), out);
}

/// [`concat_channels_into`] over any re-iterable source of views — the
/// iterator is walked once to validate shapes and once per batch element
/// to copy, so dispatchers need no temporary `Vec` of views.
///
/// # Panics
/// Panics if batch/spatial dims disagree, the iterator is empty, or `out`
/// has the wrong length.
pub fn concat_channels_into_iter<'a, I>(views: I, out: &mut [f32])
where
    I: Iterator<Item = TensorView<'a>> + Clone,
{
    let mut it = views.clone();
    let first = it.next().expect("concat of empty list");
    assert_eq!(first.shape().len(), 4, "concat expects 4-D tensors");
    let (n, h, w) = (first.dim(0), first.dim(2), first.dim(3));
    let mut c_total = first.dim(1);
    for t in it {
        assert_eq!(t.dim(0), n, "concat batch mismatch");
        assert_eq!(t.dim(2), h, "concat height mismatch");
        assert_eq!(t.dim(3), w, "concat width mismatch");
        c_total += t.dim(1);
    }
    let plane = h * w;
    assert_eq!(out.len(), n * c_total * plane, "concat output buffer length");
    for b in 0..n {
        let mut c_off = 0;
        for t in views.clone() {
            let c = t.dim(1);
            let src = &t.data()[b * c * plane..(b + 1) * c * plane];
            let dst_off = (b * c_total + c_off) * plane;
            out[dst_off..dst_off + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
}

/// Fully connected layer: `input [n, f] × weightᵀ [f, out] + bias`.
///
/// `weight` is `[out_features, in_features]` (PyTorch convention).
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&[f32]>) -> Tensor {
    let (n, out_f) = (input.dim(0), weight.dim(0));
    let mut out = Tensor::zeros(&[n, out_f]);
    linear_into(input.view(), weight, bias, out.data_mut());
    out
}

/// Working-memory floats a `linear` of these dimensions needs (the GEMM
/// pack buffers; the stored weight multiplies in place via the transposed
/// GEMM variant, so no transpose copy exists anymore).
pub fn linear_scratch_floats(n: usize, in_f: usize, out_f: usize) -> usize {
    linear_scratch_floats_with(n, in_f, out_f, GemmSchedule::DEFAULT)
}

/// [`linear_scratch_floats`] under an explicit GEMM schedule.
pub fn linear_scratch_floats_with(
    n: usize,
    in_f: usize,
    out_f: usize,
    schedule: GemmSchedule,
) -> usize {
    sgemm_scratch_floats_with(n, in_f, out_f, schedule)
}

/// [`linear`] writing into a preallocated output buffer. Working memory
/// comes from the reusable thread-local buffer.
///
/// # Panics
/// Panics on shape mismatches or if `out` has the wrong length.
pub fn linear_into(input: TensorView<'_>, weight: &Tensor, bias: Option<&[f32]>, out: &mut [f32]) {
    let (n, f) = (input.dim(0), input.dim(1));
    let out_f = weight.dim(0);
    with_tl_scratch(linear_scratch_floats(n, f, out_f), |s| {
        linear_into_scratch(input, weight, bias, out, s);
    });
}

/// [`linear_into`] with explicit working memory of at least
/// [`linear_scratch_floats`] elements — the slab executor's entry point.
/// The `[out_features, in_features]` weight is consumed directly by the
/// transposed-B GEMM variant; no transpose copy is materialized.
///
/// # Panics
/// Panics on shape mismatches, wrong `out` length, or undersized scratch.
pub fn linear_into_scratch(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    linear_into_scratch_with(input, weight, bias, out, scratch, GemmSchedule::DEFAULT);
}

/// [`linear_into_scratch`] under an explicit GEMM schedule; scratch must
/// hold [`linear_scratch_floats_with`] floats for the *same* schedule.
///
/// # Panics
/// Panics on shape mismatches, wrong `out` length, or undersized scratch.
pub fn linear_into_scratch_with(
    input: TensorView<'_>,
    weight: &Tensor,
    bias: Option<&[f32]>,
    out: &mut [f32],
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    assert_eq!(input.shape().len(), 2, "linear input must be 2-D");
    assert_eq!(weight.shape().len(), 2, "linear weight must be 2-D");
    let (n, f) = (input.dim(0), input.dim(1));
    let (out_f, w_f) = (weight.dim(0), weight.dim(1));
    assert_eq!(f, w_f, "linear feature mismatch");
    assert_eq!(out.len(), n * out_f, "linear output buffer length");
    match bias {
        Some(b) => {
            assert_eq!(b.len(), out_f, "linear bias mismatch");
            for row in out.chunks_mut(out_f) {
                row.copy_from_slice(b);
            }
        }
        None => out.fill(0.0),
    }
    // out[n, out_f] += input[n, f] · weight[out_f, f]ᵀ
    sgemm_nt_scratch_with(input.data(), weight.data(), out, n, f, out_f, scratch, schedule);
}

/// Softmax over the last dimension of a 2-D tensor.
pub fn softmax_lastdim(input: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(input.shape());
    softmax_lastdim_into(input.view(), out.data_mut());
    out
}

/// [`softmax_lastdim`] writing into a preallocated output buffer.
///
/// # Panics
/// Panics unless the input is 2-D and `out` matches its volume.
pub fn softmax_lastdim_into(input: TensorView<'_>, out: &mut [f32]) {
    assert_eq!(input.shape().len(), 2, "softmax expects 2-D input");
    let (n, f) = (input.dim(0), input.dim(1));
    assert_eq!(out.len(), n * f, "softmax output buffer length");
    out.copy_from_slice(input.data());
    softmax_lastdim_inplace(out, f);
}

/// Softmax over rows of `features` elements, normalizing `buf` in place —
/// the alias-aware executor's entry point when the logits die at the
/// softmax and the probabilities reuse their bytes.
///
/// # Panics
/// Panics unless `buf` divides evenly into rows of `features`.
pub fn softmax_lastdim_inplace(buf: &mut [f32], features: usize) {
    assert!(features > 0 && buf.len().is_multiple_of(features), "softmax row length mismatch");
    for row in buf.chunks_mut(features) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(ActKind::Relu.forward(&t).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn silu_matches_definition() {
        let x = 1.3f32;
        let got = ActKind::Silu.apply(x);
        assert!((got - x / (1.0 + (-x).exp())).abs() < 1e-7);
        assert_eq!(ActKind::Silu.apply(0.0), 0.0);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!((ActKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!(ActKind::Sigmoid.apply(20.0) > 0.999);
        assert!(ActKind::Sigmoid.apply(-20.0) < 0.001);
    }

    #[test]
    fn add_elementwise() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn concat_stacks_channels_per_batch() {
        let a = Tensor::from_fn(&[2, 1, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(&[2, 2, 2, 2], |i| 100.0 + i as f32);
        let c = concat_channels(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3, 2, 2]);
        // batch 0: a channels then b channels
        assert_eq!(c.at4(0, 0, 0, 0), 0.0);
        assert_eq!(c.at4(0, 1, 0, 0), 100.0);
        assert_eq!(c.at4(0, 2, 0, 0), 104.0);
        // batch 1
        assert_eq!(c.at4(1, 0, 0, 0), 4.0);
        assert_eq!(c.at4(1, 1, 0, 0), 108.0);
    }

    #[test]
    fn linear_matches_manual() {
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        let b = [0.5f32, -0.5];
        let y = linear(&x, &w, Some(&b));
        assert_eq!(y.data(), &[1.5, 4.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_lastdim(&x);
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // monotone in logits
        assert!(s.data()[2] > s.data()[1]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        // Without the max-subtraction trick these would overflow to NaN.
        let x = Tensor::from_vec(&[1, 3], vec![1000.0, 999.0, 998.0]);
        let s = softmax_lastdim(&x);
        assert!(s.data().iter().all(|v| v.is_finite()));
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.data()[0] > s.data()[1]);
    }

    #[test]
    fn tanh_saturates_symmetrically() {
        assert!((ActKind::Tanh.apply(10.0) - 1.0).abs() < 1e-4);
        assert!((ActKind::Tanh.apply(-10.0) + 1.0).abs() < 1e-4);
        assert_eq!(ActKind::Tanh.apply(0.0), 0.0);
    }

    #[test]
    fn concat_of_three_tensors() {
        let a = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::from_fn(&[1, 2, 2, 2], |_| 1.0);
        let c = Tensor::from_fn(&[1, 1, 2, 2], |_| 2.0);
        let out = concat_channels(&[&a, &b, &c]);
        assert_eq!(out.shape(), &[1, 4, 2, 2]);
        assert_eq!(out.at4(0, 0, 0, 0), 0.0);
        assert_eq!(out.at4(0, 1, 0, 0), 1.0);
        assert_eq!(out.at4(0, 3, 0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "add shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = add(&a, &b);
    }

    #[test]
    fn forward_inplace_matches_forward_into() {
        let input: Vec<f32> = (-4..4).map(|i| i as f32 * 0.7).collect();
        for kind in [ActKind::Relu, ActKind::Silu, ActKind::Sigmoid, ActKind::Tanh] {
            let mut via_into = vec![0.0; input.len()];
            kind.forward_into(&input, &mut via_into);
            let mut buf = input.clone();
            kind.forward_inplace(&mut buf);
            assert_eq!(buf, via_into, "{kind:?}");
        }
    }

    #[test]
    fn add_assign_accumulates_without_initial_copy() {
        // Simulates the in-place add: `out` starts as the dying operand.
        let mut out = vec![1.0f32, 2.0, 3.0];
        add_n_assign_iter([[10.0f32, 20.0, 30.0].as_slice()].into_iter(), &mut out);
        assert_eq!(out, &[11.0, 22.0, 33.0]);
        // Empty operand list: the add over its only (in-place) operand.
        add_n_assign_iter(std::iter::empty(), &mut out);
        assert_eq!(out, &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn softmax_inplace_matches_into() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let mut via_into = vec![0.0; 6];
        softmax_lastdim_into(x.view(), &mut via_into);
        let mut buf = x.data().to_vec();
        softmax_lastdim_inplace(&mut buf, 3);
        assert_eq!(buf, via_into);
    }
}
