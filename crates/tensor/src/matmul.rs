//! Cache-blocked, packed single-precision matrix multiply.
//!
//! The kernel follows the classic Goto/BLIS decomposition: the iteration
//! space is tiled into `MC×KC` A-panels and `KC×NC` B-panels that are
//! **packed** into contiguous scratch (zero-padded to `MR`/`NR` multiples
//! so the inner loop never sees a tail), and a register-tiled `MR×NR`
//! microkernel runs over the packed panels. Packing turns the strided
//! accesses of row-major (or transposed) operands into unit-stride streams
//! the microkernel consumes at one load per `MR`/`NR` values, which is
//! what lifts arithmetic intensity past the memory wall — the previous
//! unblocked i-k-j loop re-streamed the whole `B` matrix from L2 for every
//! output row.
//!
//! The hot loop is **branch-free**: the old data-dependent
//! `if av == 0.0 { continue }` skip (a mispredict machine on dense data)
//! is gone; zero handling falls out of the arithmetic.
//!
//! Parallelism splits the output into per-worker row×column slots, each
//! with a private pack buffer carved from the caller's scratch — workers
//! never share panels, so no synchronization is needed inside a GEMM.
//!
//! The microkernel is ISA-dispatched once per call: an AVX2+FMA variant
//! (runtime-detected, 8-wide FMA with the k-loop unrolled across eight
//! accumulator chains) with an SSE2-intrinsics fallback that is always
//! available on x86-64, and a portable autovectorized form elsewhere.
//!
//! Three storage variants are exposed, differing only in packing-time
//! indexing (the microkernel is shared):
//!
//! * [`sgemm`]   — `out += A[m×k] · B[k×n]`, both row-major;
//! * [`sgemm_nt`] — `B` stored transposed as `[n×k]` (weight matrices in
//!   `[out_features, in_features]` layout multiply without a copy);
//! * [`sgemm_tn`] — `A` stored transposed as `[k×m]` (column matrices for
//!   GEMM-based transposed convolution).
//!
//! Every variant has a `*_scratch` form taking an explicit pack buffer of
//! [`sgemm_scratch_floats`] capacity — the slab executor routes planned
//! scratch through these so steady-state inference performs **zero heap
//! allocations**. The plain forms borrow a thread-local buffer that is
//! grown once and reused, so ad-hoc callers stay allocation-free after
//! warmup too.

use crate::schedule::GemmSchedule;
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel register-tile rows. With `NR = 8` the accumulator block is
/// eight 4-wide xmm vectors on baseline x86-64, or four ymm vectors (one
/// per row) under AVX2 — both within the 16 vector registers.
pub const MR: usize = 4;
/// Microkernel register-tile columns (one ymm / two xmm vectors wide).
pub const NR: usize = 8;
// The microkernel bodies name their MR accumulators explicitly and the
// AVX2 variant loads exactly one ymm per packed B step.
const _: () = assert!(MR == 4 && NR == 8);
// The cache-blocking panel depths (the former `KC`/`MC`/`NC` constants)
// are now runtime data: [`GemmSchedule`], default
// [`GemmSchedule::DEFAULT`]. The register tile above stays fixed.

/// Below this many multiply-adds the packed pipeline's setup cost beats
/// its cache wins; a straight serial loop runs instead (and needs no
/// scratch — [`sgemm_scratch_floats`] returns 0).
const SMALL_FLOPS: usize = 16 * 16 * 16;

/// How `A` is stored: row-major `[m×k]` or transposed `[k×m]`.
#[derive(Clone, Copy)]
enum AStore {
    RowMajor,
    Transposed,
}

/// How `B` is stored: row-major `[k×n]` or transposed `[n×k]`.
#[derive(Clone, Copy)]
enum BStore {
    RowMajor,
    Transposed,
}

/// Shared mutable base pointer for handing disjoint output/scratch regions
/// to parallel workers.
pub(crate) struct SyncPtr(pub *mut f32);
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}

impl SyncPtr {
    /// # Safety
    /// Same contract as [`pointer::add`]; callers must also guarantee that
    /// memory reached through the result is not accessed concurrently.
    pub(crate) unsafe fn add(&self, offset: usize) -> *mut f32 {
        self.0.add(offset)
    }
}

const fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Blocking geometry for one GEMM call: the worker grid and the pack
/// buffer capacities each worker slot owns. Deterministic in
/// `(m, k, n, threads)` — the planner sizes scratch with the same function
/// the kernel partitions it with.
#[derive(Clone, Copy)]
struct GemmDims {
    row_slots: usize,
    col_slots: usize,
    /// K-panel depth actually used (`min(k, KC)`).
    kc: usize,
    /// A-pack row capacity, a multiple of `MR`.
    mcb: usize,
    /// B-pack column capacity, a multiple of `NR`.
    ncb: usize,
    /// Scratch floats per worker slot: one A pack + one B pack.
    per_slot: usize,
}

fn gemm_dims(m: usize, k: usize, n: usize, threads: usize, s: GemmSchedule) -> GemmDims {
    let s = s.normalized();
    let threads = threads.max(1);
    // Columns first: the big dimension in conv workloads is the output
    // plane (n); rows absorb leftover parallelism for tall problems.
    let col_slots = threads.min(n.div_ceil(NR)).max(1);
    let row_slots = (threads / col_slots).min(m.div_ceil(MR)).max(1);
    let kc = k.clamp(1, s.kc);
    let row_span = m.div_ceil(row_slots);
    let col_span = n.div_ceil(col_slots);
    let mcb = round_up(row_span.clamp(1, s.mc), MR);
    let ncb = round_up(col_span.clamp(1, s.nc), NR);
    GemmDims { row_slots, col_slots, kc, mcb, ncb, per_slot: kc * (mcb + ncb) }
}

/// Pack-buffer floats a `(m, k, n)` GEMM needs on this host under the
/// default schedule. Deterministic given shapes and
/// `rayon::current_num_threads()`; the allocation planner uses it to
/// reserve slab scratch and the kernels assert against it.
pub fn sgemm_scratch_floats(m: usize, k: usize, n: usize) -> usize {
    sgemm_scratch_floats_with(m, k, n, GemmSchedule::DEFAULT)
}

/// [`sgemm_scratch_floats`] for an explicit schedule — the same function
/// the kernel partitions scratch with, so planner and kernel cannot
/// disagree for *any* schedule value.
pub fn sgemm_scratch_floats_with(m: usize, k: usize, n: usize, s: GemmSchedule) -> usize {
    if m == 0 || n == 0 || k == 0 || m * k * n <= SMALL_FLOPS {
        return 0;
    }
    let d = gemm_dims(m, k, n, rayon::current_num_threads(), s);
    d.row_slots * d.col_slots * d.per_slot
}

thread_local! {
    /// Reusable pack buffer for the non-`_scratch` entry points: grown to
    /// the high-water mark once, then borrowed allocation-free.
    static TL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a thread-local buffer of `floats` elements — the working
/// memory behind every non-`_scratch` kernel entry point (grown once to
/// the high-water mark, then borrowed allocation-free).
///
/// Borrowed **non-reentrantly**: only outermost kernel entry points may
/// call this, and they must never nest — a kernel that holds the buffer
/// must not call another kernel's non-`_scratch` form on the same thread.
/// The `*_scratch` kernels never touch it.
pub fn with_tl_scratch<R>(floats: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    if floats == 0 {
        return f(&mut []);
    }
    TL_SCRATCH.with(|s| {
        let mut v = s.borrow_mut();
        if v.len() < floats {
            v.resize(floats, 0.0);
        }
        f(&mut v[..floats])
    })
}

/// `out[m×n] += a[m×k] * b[k×n]`, all row-major. `out` must be pre-filled
/// (zeros or bias-broadcast) by the caller. This is the workhorse behind
/// `linear`, 1×1 convolutions, and im2col convolutions.
///
/// # Panics
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn sgemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    with_tl_scratch(sgemm_scratch_floats(m, k, n), |s| {
        gemm_core(a, AStore::RowMajor, b, BStore::RowMajor, out, m, k, n, s, GemmSchedule::DEFAULT);
    });
}

/// [`sgemm`] with an explicit pack buffer of at least
/// [`sgemm_scratch_floats`]`(m, k, n)` elements — the planned-slab entry
/// point.
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
pub fn sgemm_scratch(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
) {
    sgemm_scratch_with(a, b, out, m, k, n, scratch, GemmSchedule::DEFAULT);
}

/// [`sgemm_scratch`] under an explicit [`GemmSchedule`]; scratch must hold
/// [`sgemm_scratch_floats_with`]`(m, k, n, schedule)` floats.
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_scratch_with(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    gemm_core(a, AStore::RowMajor, b, BStore::RowMajor, out, m, k, n, scratch, schedule);
}

/// `out[m×n] += a[m×k] * bt[n×k]ᵀ`: the right-hand operand is stored
/// transposed, as `[out_features, in_features]` weight matrices are. Lets
/// `linear` multiply against the stored weight with no transpose copy.
///
/// # Panics
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn sgemm_nt(a: &[f32], bt: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(bt.len(), n * k, "rhs (transposed) buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    with_tl_scratch(sgemm_scratch_floats(m, k, n), |s| {
        gemm_core(
            a,
            AStore::RowMajor,
            bt,
            BStore::Transposed,
            out,
            m,
            k,
            n,
            s,
            GemmSchedule::DEFAULT,
        );
    });
}

/// [`sgemm_nt`] with an explicit pack buffer.
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
pub fn sgemm_nt_scratch(
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
) {
    sgemm_nt_scratch_with(a, bt, out, m, k, n, scratch, GemmSchedule::DEFAULT);
}

/// [`sgemm_nt_scratch`] under an explicit [`GemmSchedule`].
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_nt_scratch_with(
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(bt.len(), n * k, "rhs (transposed) buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    gemm_core(a, AStore::RowMajor, bt, BStore::Transposed, out, m, k, n, scratch, schedule);
}

/// `out[m×n] += at[k×m]ᵀ * b[k×n]`: the left-hand operand is stored
/// transposed. Backs GEMM-based transposed convolution, where the column
/// matrix arrives `[k × spatial]`.
///
/// # Panics
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn sgemm_tn(at: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(at.len(), k * m, "lhs (transposed) buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    with_tl_scratch(sgemm_scratch_floats(m, k, n), |s| {
        gemm_core(
            at,
            AStore::Transposed,
            b,
            BStore::RowMajor,
            out,
            m,
            k,
            n,
            s,
            GemmSchedule::DEFAULT,
        );
    });
}

/// [`sgemm_tn`] with an explicit pack buffer.
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
pub fn sgemm_tn_scratch(
    at: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
) {
    sgemm_tn_scratch_with(at, b, out, m, k, n, scratch, GemmSchedule::DEFAULT);
}

/// [`sgemm_tn_scratch`] under an explicit [`GemmSchedule`].
///
/// # Panics
/// Panics on length mismatches or undersized scratch.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_tn_scratch_with(
    at: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    assert_eq!(at.len(), k * m, "lhs (transposed) buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    gemm_core(at, AStore::Transposed, b, BStore::RowMajor, out, m, k, n, scratch, schedule);
}

/// Convenience: `a[m×k] * b[k×n]` into a fresh zeroed buffer.
pub fn sgemm_alloc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    sgemm(a, b, &mut out, m, k, n);
    out
}

/// The pre-blocking kernel, kept verbatim as the performance baseline for
/// `BENCH_kernels.json` and as a second correctness oracle: an unblocked
/// i-k-j loop (with its data-dependent zero-skip branch) parallelized over
/// output rows. Semantics match [`sgemm`]: `out += a * b` with `out`
/// pre-filled by the caller.
pub fn sgemm_reference(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    let serial = m * k * n < 64 * 64 * 64;
    let body = |(i, orow): (usize, &mut [f32])| {
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if serial {
        out.chunks_mut(n).enumerate().for_each(body);
    } else {
        out.par_chunks_mut(n).enumerate().for_each(body);
    }
}

/// Layout-generic blocked GEMM driver: splits the output into per-worker
/// slots, carves each slot's pack buffers out of `scratch`, and runs the
/// packed panel loop in every slot.
#[allow(clippy::too_many_arguments)]
fn gemm_core(
    a: &[f32],
    astore: AStore,
    b: &[f32],
    bstore: BStore,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    schedule: GemmSchedule,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * k * n <= SMALL_FLOPS {
        return gemm_small(a, astore, b, bstore, out, m, k, n);
    }
    let isa = detect_isa();
    let d = gemm_dims(m, k, n, rayon::current_num_threads(), schedule);
    let slots = d.row_slots * d.col_slots;
    assert!(
        scratch.len() >= slots * d.per_slot,
        "gemm scratch undersized: {} < {}",
        scratch.len(),
        slots * d.per_slot
    );
    let row_span = m.div_ceil(d.row_slots);
    let col_span = n.div_ceil(d.col_slots);
    let out_ptr = SyncPtr(out.as_mut_ptr());
    let scratch_ptr = SyncPtr(scratch.as_mut_ptr());
    (0..slots).into_par_iter().for_each(|s| {
        let i0 = (s / d.col_slots) * row_span;
        let i1 = m.min(i0 + row_span);
        let j0 = (s % d.col_slots) * col_span;
        let j1 = n.min(j0 + col_span);
        if i0 >= i1 || j0 >= j1 {
            return;
        }
        // SAFETY: slot windows `[s*per_slot, (s+1)*per_slot)` are disjoint
        // and within the asserted scratch length.
        let slot_scratch =
            unsafe { std::slice::from_raw_parts_mut(scratch_ptr.add(s * d.per_slot), d.per_slot) };
        let (a_pack, b_pack) = slot_scratch.split_at_mut(d.kc * d.mcb);
        gemm_slot(a, astore, b, bstore, &out_ptr, k, n, d, (i0, i1), (j0, j1), a_pack, b_pack, isa);
    });
}

/// One worker slot: the packed `jc → kc → ic → (jr, ir)` panel loop over
/// the slot's `[i0, i1) × [j0, j1)` output window.
#[allow(clippy::too_many_arguments)]
fn gemm_slot(
    a: &[f32],
    astore: AStore,
    b: &[f32],
    bstore: BStore,
    out_ptr: &SyncPtr,
    k: usize,
    n: usize,
    d: GemmDims,
    (i0, i1): (usize, usize),
    (j0, j1): (usize, usize),
    a_pack: &mut [f32],
    b_pack: &mut [f32],
    isa: Isa,
) {
    for jc in (j0..j1).step_by(d.ncb) {
        let nc_len = d.ncb.min(j1 - jc);
        let j_panels = nc_len.div_ceil(NR);
        for kc0 in (0..k).step_by(d.kc) {
            let kc_len = d.kc.min(k - kc0);
            pack_b(b, bstore, b_pack, k, n, kc0, kc_len, jc, nc_len);
            for ic in (i0..i1).step_by(d.mcb) {
                let mc_len = d.mcb.min(i1 - ic);
                let i_panels = mc_len.div_ceil(MR);
                pack_a(a, astore, a_pack, k, kc0, kc_len, ic, mc_len);
                for jp in 0..j_panels {
                    let bpan = &b_pack[jp * kc_len * NR..][..kc_len * NR];
                    let col0 = jc + jp * NR;
                    let nr_len = NR.min(j1 - col0);
                    for ip in 0..i_panels {
                        let apan = &a_pack[ip * kc_len * MR..][..kc_len * MR];
                        #[cfg(target_arch = "x86_64")]
                        // SAFETY: Avx2Fma is only returned by `detect_isa`
                        // after probing both features.
                        let acc = match isa {
                            Isa::Avx2Fma => unsafe { microkernel_avx2(apan, bpan) },
                            Isa::Baseline => microkernel(apan, bpan),
                        };
                        #[cfg(not(target_arch = "x86_64"))]
                        let acc = {
                            let _ = isa;
                            microkernel(apan, bpan)
                        };
                        let row0 = ic + ip * MR;
                        let mr_len = MR.min(i1 - row0);
                        // SAFETY: `[row0, row0+mr_len) × [col0, col0+nr_len)`
                        // lies inside this slot's exclusive output window.
                        unsafe {
                            if mr_len == MR && nr_len == NR {
                                // Full tile: fixed-bound loops vectorize.
                                for (rr, acc_row) in acc.iter().enumerate() {
                                    let dst = out_ptr.add((row0 + rr) * n + col0);
                                    for (cc, &v) in acc_row.iter().enumerate() {
                                        *dst.add(cc) += v;
                                    }
                                }
                            } else {
                                for (rr, acc_row) in acc.iter().enumerate().take(mr_len) {
                                    let dst = out_ptr.add((row0 + rr) * n + col0);
                                    for (cc, &v) in acc_row.iter().enumerate().take(nr_len) {
                                        *dst.add(cc) += v;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Pack an `mc_len × kc_len` block of `A` into `MR`-row micro-panels,
/// zero-padding the ragged last panel: panel `p` holds
/// `pack[p·kc_len·MR + kk·MR + r] = A[ic + p·MR + r][kc0 + kk]`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f32],
    astore: AStore,
    pack: &mut [f32],
    k: usize,
    kc0: usize,
    kc_len: usize,
    ic: usize,
    mc_len: usize,
) {
    let panels = mc_len.div_ceil(MR);
    for p in 0..panels {
        let dst = &mut pack[p * kc_len * MR..][..kc_len * MR];
        let r0 = ic + p * MR;
        let rows = MR.min(ic + mc_len - r0);
        match astore {
            AStore::RowMajor => {
                for r in 0..MR {
                    if r < rows {
                        let src = &a[(r0 + r) * k + kc0..][..kc_len];
                        for (kk, &v) in src.iter().enumerate() {
                            dst[kk * MR + r] = v;
                        }
                    } else {
                        for kk in 0..kc_len {
                            dst[kk * MR + r] = 0.0;
                        }
                    }
                }
            }
            AStore::Transposed => {
                // A stored `k×m`: row `kk` is contiguous over matrix rows.
                let m = a.len() / k;
                for kk in 0..kc_len {
                    let src = &a[(kc0 + kk) * m + r0..];
                    let drow = &mut dst[kk * MR..(kk + 1) * MR];
                    for (r, dv) in drow.iter_mut().enumerate() {
                        *dv = if r < rows { src[r] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Pack a `kc_len × nc_len` block of `B` into `NR`-column micro-panels,
/// zero-padding the ragged last panel: panel `p` holds
/// `pack[p·kc_len·NR + kk·NR + c] = B[kc0 + kk][jc + p·NR + c]`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f32],
    bstore: BStore,
    pack: &mut [f32],
    k: usize,
    n: usize,
    kc0: usize,
    kc_len: usize,
    jc: usize,
    nc_len: usize,
) {
    let panels = nc_len.div_ceil(NR);
    for p in 0..panels {
        let dst = &mut pack[p * kc_len * NR..][..kc_len * NR];
        let c0 = jc + p * NR;
        let cols = NR.min(jc + nc_len - c0);
        match bstore {
            BStore::RowMajor => {
                for kk in 0..kc_len {
                    let src = &b[(kc0 + kk) * n + c0..];
                    let drow = &mut dst[kk * NR..(kk + 1) * NR];
                    for (c, dv) in drow.iter_mut().enumerate() {
                        *dv = if c < cols { src[c] } else { 0.0 };
                    }
                }
            }
            BStore::Transposed => {
                // B stored `n×k`: logical column `j` is a contiguous row.
                for c in 0..NR {
                    if c < cols {
                        let src = &b[(c0 + c) * k + kc0..][..kc_len];
                        for (kk, &v) in src.iter().enumerate() {
                            dst[kk * NR + c] = v;
                        }
                    } else {
                        for kk in 0..kc_len {
                            dst[kk * NR + c] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Which microkernel the running CPU supports. Resolved once per GEMM
/// call; the feature probes cache internally so the check is an atomic
/// load.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// 8-wide FMA microkernel (requires AVX2 + FMA, runtime-detected).
    Avx2Fma,
    /// Baseline microkernel: SSE2 intrinsics on x86-64, scalar elsewhere.
    Baseline,
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
    }
    Isa::Baseline
}

/// Stable name of the microkernel ISA the running CPU dispatches to —
/// the machine component of the tuning-database key, so schedules tuned
/// under one microkernel are never applied under another.
pub fn isa_level() -> &'static str {
    match detect_isa() {
        Isa::Avx2Fma => "avx2fma",
        Isa::Baseline => "baseline",
    }
}

/// The register-tiled heart: an `MR×NR` rank-`kc` update over packed
/// micro-panels — `acc[r][c] = Σ_k apan[k·MR+r] · bpan[k·NR+c]`.
///
/// The hot-path variants are written with explicit SIMD intrinsics rather
/// than autovectorized scalar code: the scalar form's vectorization proved
/// fragile (losing 4× depending on codegen-unit partitioning and
/// surrounding control flow), while intrinsics pin the codegen. SSE2 is
/// part of the x86-64 baseline ABI, so [`microkernel`] needs no feature
/// probe; the AVX2+FMA variant is gated behind [`detect_isa`].
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn microkernel(apan: &[f32], bpan: &[f32]) -> [[f32; NR]; MR] {
    use std::arch::x86_64::*;
    debug_assert_eq!(apan.len() / MR, bpan.len() / NR);
    // SAFETY: SSE2 is unconditionally available on x86_64, and the k-loop
    // reads exactly `kc` packed steps of both panels.
    unsafe {
        let kc = bpan.len() / NR;
        let mut ap = apan.as_ptr();
        let mut bp = bpan.as_ptr();
        // Eight accumulators: MR rows × two 4-wide halves of the NR tile.
        let mut a0l = _mm_setzero_ps();
        let mut a0h = _mm_setzero_ps();
        let mut a1l = _mm_setzero_ps();
        let mut a1h = _mm_setzero_ps();
        let mut a2l = _mm_setzero_ps();
        let mut a2h = _mm_setzero_ps();
        let mut a3l = _mm_setzero_ps();
        let mut a3h = _mm_setzero_ps();
        for _ in 0..kc {
            let bl = _mm_loadu_ps(bp);
            let bh = _mm_loadu_ps(bp.add(4));
            let s0 = _mm_set1_ps(*ap);
            a0l = _mm_add_ps(a0l, _mm_mul_ps(s0, bl));
            a0h = _mm_add_ps(a0h, _mm_mul_ps(s0, bh));
            let s1 = _mm_set1_ps(*ap.add(1));
            a1l = _mm_add_ps(a1l, _mm_mul_ps(s1, bl));
            a1h = _mm_add_ps(a1h, _mm_mul_ps(s1, bh));
            let s2 = _mm_set1_ps(*ap.add(2));
            a2l = _mm_add_ps(a2l, _mm_mul_ps(s2, bl));
            a2h = _mm_add_ps(a2h, _mm_mul_ps(s2, bh));
            let s3 = _mm_set1_ps(*ap.add(3));
            a3l = _mm_add_ps(a3l, _mm_mul_ps(s3, bl));
            a3h = _mm_add_ps(a3h, _mm_mul_ps(s3, bh));
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let mut out = [[0.0f32; NR]; MR];
        _mm_storeu_ps(out[0].as_mut_ptr(), a0l);
        _mm_storeu_ps(out[0].as_mut_ptr().add(4), a0h);
        _mm_storeu_ps(out[1].as_mut_ptr(), a1l);
        _mm_storeu_ps(out[1].as_mut_ptr().add(4), a1h);
        _mm_storeu_ps(out[2].as_mut_ptr(), a2l);
        _mm_storeu_ps(out[2].as_mut_ptr().add(4), a2h);
        _mm_storeu_ps(out[3].as_mut_ptr(), a3l);
        _mm_storeu_ps(out[3].as_mut_ptr().add(4), a3h);
        out
    }
}

/// Portable baseline microkernel for non-x86 targets. Named per-row
/// accumulators (not a 2-D array) so scalar replacement keeps the block in
/// registers across the k-loop; LLVM vectorizes the `NR`-wide statements.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn microkernel(apan: &[f32], bpan: &[f32]) -> [[f32; NR]; MR] {
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    let mut acc2 = [0.0f32; NR];
    let mut acc3 = [0.0f32; NR];
    for (av, bv) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)) {
        let b: [f32; NR] = bv.try_into().unwrap();
        let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
        for c in 0..NR {
            acc0[c] += a0 * b[c];
        }
        for c in 0..NR {
            acc1[c] += a1 * b[c];
        }
        for c in 0..NR {
            acc2[c] += a2 * b[c];
        }
        for c in 0..NR {
            acc3[c] += a3 * b[c];
        }
    }
    [acc0, acc1, acc2, acc3]
}

/// AVX2+FMA microkernel: the `NR = 8` tile is one ymm vector per row, and
/// the k-loop is unrolled ×2 into eight independent accumulator chains so
/// FMA latency (4–5 cycles) overlaps across iterations — a single chain
/// per row would cap throughput at 1 FMA/cycle.
///
/// # Safety
/// Caller must have verified AVX2 and FMA support ([`detect_isa`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(apan: &[f32], bpan: &[f32]) -> [[f32; NR]; MR] {
    use std::arch::x86_64::*;
    debug_assert_eq!(apan.len() / MR, bpan.len() / NR);
    let kc = bpan.len() / NR;
    let mut ap = apan.as_ptr();
    let mut bp = bpan.as_ptr();
    let mut acc0a = _mm256_setzero_ps();
    let mut acc1a = _mm256_setzero_ps();
    let mut acc2a = _mm256_setzero_ps();
    let mut acc3a = _mm256_setzero_ps();
    let mut acc0b = _mm256_setzero_ps();
    let mut acc1b = _mm256_setzero_ps();
    let mut acc2b = _mm256_setzero_ps();
    let mut acc3b = _mm256_setzero_ps();
    for _ in 0..kc / 2 {
        let b0 = _mm256_loadu_ps(bp);
        acc0a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), b0, acc0a);
        acc1a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), b0, acc1a);
        acc2a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), b0, acc2a);
        acc3a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), b0, acc3a);
        let b1 = _mm256_loadu_ps(bp.add(NR));
        acc0b = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(4)), b1, acc0b);
        acc1b = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(5)), b1, acc1b);
        acc2b = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(6)), b1, acc2b);
        acc3b = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(7)), b1, acc3b);
        ap = ap.add(2 * MR);
        bp = bp.add(2 * NR);
    }
    if kc % 2 == 1 {
        let b0 = _mm256_loadu_ps(bp);
        acc0a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), b0, acc0a);
        acc1a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), b0, acc1a);
        acc2a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), b0, acc2a);
        acc3a = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), b0, acc3a);
    }
    let mut out = [[0.0f32; NR]; MR];
    _mm256_storeu_ps(out[0].as_mut_ptr(), _mm256_add_ps(acc0a, acc0b));
    _mm256_storeu_ps(out[1].as_mut_ptr(), _mm256_add_ps(acc1a, acc1b));
    _mm256_storeu_ps(out[2].as_mut_ptr(), _mm256_add_ps(acc2a, acc2b));
    _mm256_storeu_ps(out[3].as_mut_ptr(), _mm256_add_ps(acc3a, acc3b));
    out
}

/// Serial fallback for problems too small to amortize packing. Branch-free
/// i-k-j order; layout handled by direct indexing.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    a: &[f32],
    astore: AStore,
    b: &[f32],
    bstore: BStore,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = match astore {
                AStore::RowMajor => a[i * k + kk],
                AStore::Transposed => a[kk * m + i],
            };
            match bstore {
                BStore::RowMajor => {
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
                BStore::Transposed => {
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += av * b[j * k + kk];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn fill(len: usize, mul: usize, md: usize, scale: f32, off: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * mul % md) as f32) * scale - off).collect()
    }

    #[test]
    fn matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 7 % 11) as f32) - 5.0).collect();
        assert_eq!(sgemm_alloc(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matches_naive_above_parallel_threshold() {
        let (m, k, n) = (70, 70, 70);
        let a = fill(m * k, 13, 17, 1.0 / 8.0, 1.0);
        let b = fill(k * n, 5, 19, 1.0 / 9.0, 1.0);
        let got = sgemm_alloc(&a, &b, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn accumulates_into_existing_out() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 3.0, 4.0, 5.0];
        let mut out = [10.0f32, 10.0, 10.0, 10.0];
        sgemm(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn blocked_path_handles_ragged_tails() {
        // Straddles MR/NR/KC boundaries in every dimension.
        for &(m, k, n) in &[(65, 130, 63), (1, 300, 9), (37, 1, 41), (130, 65, 7)] {
            let a = fill(m * k, 7, 23, 0.125, 1.0);
            let b = fill(k * n, 11, 29, 0.0625, 0.9);
            let got = sgemm_alloc(&a, &b, m, k, n);
            let want = naive(&a, &b, m, k, n);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-3, "({m},{k},{n})[{i}]: {g} vs {w}");
            }
        }
    }

    #[test]
    fn nt_variant_matches_explicit_transpose() {
        let (m, k, n) = (33, 70, 18);
        let a = fill(m * k, 3, 13, 0.25, 1.5);
        let bt = fill(n * k, 5, 11, 0.5, 1.25);
        // Materialize B = Bᵀ row-major and compare against plain sgemm.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut got = vec![0.0f32; m * n];
        sgemm_nt(&a, &bt, &mut got, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn tn_variant_matches_explicit_transpose() {
        let (m, k, n) = (29, 66, 40);
        let at = fill(k * m, 7, 17, 0.25, 1.75);
        let b = fill(k * n, 3, 19, 0.5, 1.0);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = at[kk * m + i];
            }
        }
        let mut got = vec![0.0f32; m * n];
        sgemm_tn(&at, &b, &mut got, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn scratch_entry_point_matches_and_respects_budget() {
        let (m, k, n) = (64, 128, 96);
        let a = fill(m * k, 13, 31, 0.125, 1.9);
        let b = fill(k * n, 17, 37, 0.0625, 1.1);
        let floats = sgemm_scratch_floats(m, k, n);
        assert!(floats > 0, "blocked path must request scratch");
        let mut scratch = vec![0.0f32; floats];
        let mut got = vec![0.0f32; m * n];
        sgemm_scratch(&a, &b, &mut got, m, k, n, &mut scratch);
        let want = naive(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn reference_kernel_agrees_with_blocked() {
        let (m, k, n) = (48, 80, 56);
        let a = fill(m * k, 9, 41, 0.0625, 1.2);
        let b = fill(k * n, 23, 43, 0.03125, 0.6);
        let got = sgemm_alloc(&a, &b, m, k, n);
        let mut want = vec![0.0f32; m * n];
        sgemm_reference(&a, &b, &mut want, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn arbitrary_schedules_match_naive() {
        // Small, odd, and oversized blockings over ragged shapes: every
        // schedule must produce the same numbers as the default, drawing
        // from a buffer sized by the schedule-aware formula.
        let schedules = [
            GemmSchedule { kc: 1, mc: 1, nc: 1 },
            GemmSchedule { kc: 3, mc: 5, nc: 9 },
            GemmSchedule { kc: 8, mc: 4, nc: 8 },
            GemmSchedule { kc: 17, mc: 12, nc: 24 },
            GemmSchedule { kc: 1024, mc: 1024, nc: 1024 },
        ];
        for &(m, k, n) in &[(65, 130, 63), (37, 50, 41), (33, 70, 18)] {
            let a = fill(m * k, 7, 23, 0.125, 1.0);
            let b = fill(k * n, 11, 29, 0.0625, 0.9);
            let want = naive(&a, &b, m, k, n);
            for s in schedules {
                let floats = sgemm_scratch_floats_with(m, k, n, s);
                let mut scratch = vec![0.0f32; floats];
                let mut got = vec![0.0f32; m * n];
                sgemm_scratch_with(&a, &b, &mut got, m, k, n, &mut scratch, s);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert!((g - w).abs() < 1e-3, "({m},{k},{n}) {} [{i}]: {g} vs {w}", s.label());
                }
            }
        }
    }

    #[test]
    fn transposed_variants_accept_odd_schedules() {
        let (m, k, n) = (29, 66, 40);
        let s = GemmSchedule { kc: 7, mc: 8, nc: 16 };
        let at = fill(k * m, 7, 17, 0.25, 1.75);
        let bt = fill(n * k, 5, 11, 0.5, 1.25);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = at[kk * m + i];
            }
        }
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let want = naive(&a, &b, m, k, n);
        let mut scratch = vec![0.0f32; sgemm_scratch_floats_with(m, k, n, s)];
        let mut got = vec![0.0f32; m * n];
        sgemm_tn_scratch_with(&at, &b, &mut got, m, k, n, &mut scratch, s);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "tn: {g} vs {w}");
        }
        got.fill(0.0);
        scratch.fill(0.0);
        sgemm_nt_scratch_with(&a, &bt, &mut got, m, k, n, &mut scratch, s);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "nt: {g} vs {w}");
        }
    }

    #[test]
    fn small_path_needs_no_scratch() {
        assert_eq!(sgemm_scratch_floats(4, 4, 4), 0);
        assert_eq!(sgemm_scratch_floats(0, 128, 128), 0);
        // And the scratch entry point accepts an empty buffer there.
        let a = [1.0f32; 16];
        let b = [2.0f32; 16];
        let mut out = [0.0f32; 16];
        sgemm_scratch(&a, &b, &mut out, 4, 4, 4, &mut []);
        assert!(out.iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }
}
