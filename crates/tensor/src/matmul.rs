//! Parallel single-precision matrix multiply.

use rayon::prelude::*;

/// `out[m×n] += a[m×k] * b[k×n]`, all row-major. `out` must be pre-filled
/// (zeros or bias-broadcast) by the caller.
///
/// The i-k-j loop order keeps the innermost loop streaming over contiguous
/// rows of both `b` and `out`, which auto-vectorizes well; rayon parallelizes
/// over independent output rows. This is the workhorse behind `linear`,
/// 1×1 convolutions, and im2col convolutions.
///
/// # Panics
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn sgemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs buffer size mismatch");
    assert_eq!(b.len(), k * n, "rhs buffer size mismatch");
    assert_eq!(out.len(), m * n, "out buffer size mismatch");
    // For small problems the rayon dispatch overhead dominates; stay serial.
    let serial = m * k * n < 64 * 64 * 64;
    let body = |(i, orow): (usize, &mut [f32])| {
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if serial {
        out.chunks_mut(n).enumerate().for_each(body);
    } else {
        out.par_chunks_mut(n).enumerate().for_each(body);
    }
}

/// Convenience: `a[m×k] * b[k×n]` into a fresh zeroed buffer.
pub fn sgemm_alloc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    sgemm(a, b, &mut out, m, k, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    #[test]
    fn matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 7 % 11) as f32) - 5.0).collect();
        assert_eq!(sgemm_alloc(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matches_naive_above_parallel_threshold() {
        let (m, k, n) = (70, 70, 70);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 13 % 17) as f32) / 8.0 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 19) as f32) / 9.0 - 1.0).collect();
        let got = sgemm_alloc(&a, &b, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn accumulates_into_existing_out() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 3.0, 4.0, 5.0];
        let mut out = [10.0f32, 10.0, 10.0, 10.0];
        sgemm(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [12.0, 13.0, 14.0, 15.0]);
    }
}
