//! Property tests for the cache-blocked packed SGEMM: the blocked kernel
//! (all three layout variants) must agree with a naive triple loop on
//! ragged shapes that exercise every tail-tile combination of the MR×NR
//! register tile and the KC/MC/NC panel blocking, and the scratch-floats
//! formula must be honored exactly by the `_scratch` entry points.

use proptest::prelude::*;
use temco_tensor::{
    sgemm, sgemm_nt_scratch, sgemm_nt_scratch_with, sgemm_reference, sgemm_scratch,
    sgemm_scratch_floats, sgemm_scratch_floats_with, sgemm_scratch_with, sgemm_tn_scratch,
    sgemm_tn_scratch_with, GemmSchedule, Tensor,
};

/// Shapes straddling the microkernel (4×8), the KC=256/MC=64 panel edges,
/// and the degenerate single-row/column cases.
const DIMS: &[usize] = &[1, 7, 63, 64, 65, 130];

/// Naive i-k-j oracle, independent of both production kernels.
fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..n {
                out[i * n + j] += av * b[p * n + j];
            }
        }
    }
    out
}

fn rel_close(got: &[f32], want: &[f32], k: usize) -> Result<(), String> {
    // Summation order differs between kernels; scale the tolerance with the
    // reduction depth.
    let tol = 1e-5 * (k as f32).sqrt().max(1.0) * 8.0;
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > tol * scale {
            return Err(format!("element {i}: got {g}, want {w} (tol {tol})"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn blocked_sgemm_matches_naive_on_ragged_shapes(
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = Tensor::randn(&[m, k], seed).data().to_vec();
        let b = Tensor::randn(&[k, n], seed ^ 0x5A5A).data().to_vec();
        let want = matmul_naive(&a, &b, m, k, n);

        let mut got = vec![0.0f32; m * n];
        sgemm(&a, &b, &mut got, m, k, n);
        prop_assert!(rel_close(&got, &want, k).is_ok(),
            "sgemm {m}x{k}x{n}: {}", rel_close(&got, &want, k).unwrap_err());

        // The pre-blocking baseline must agree too — it is the bench oracle.
        let mut reference = vec![0.0f32; m * n];
        sgemm_reference(&a, &b, &mut reference, m, k, n);
        prop_assert!(rel_close(&reference, &want, k).is_ok());
    }

    #[test]
    fn transposed_variants_match_naive(
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
        seed in 0u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = Tensor::randn(&[m, k], seed).data().to_vec();
        let b = Tensor::randn(&[k, n], seed ^ 0xC3C3).data().to_vec();
        let want = matmul_naive(&a, &b, m, k, n);

        // B stored transposed (n×k): sgemm_nt(a, bt) == a·b.
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let floats = sgemm_scratch_floats(m, k, n);
        let mut scratch = vec![0.0f32; floats];
        let mut got = vec![0.0f32; m * n];
        sgemm_nt_scratch(&a, &bt, &mut got, m, k, n, &mut scratch);
        prop_assert!(rel_close(&got, &want, k).is_ok(), "sgemm_nt {m}x{k}x{n}");

        // A stored transposed (k×m): sgemm_tn(at, b) == a·b.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        got.fill(0.0);
        sgemm_tn_scratch(&at, &b, &mut got, m, k, n, &mut scratch);
        prop_assert!(rel_close(&got, &want, k).is_ok(), "sgemm_tn {m}x{k}x{n}");
    }

    #[test]
    fn non_default_schedules_match_naive_on_ragged_shapes(
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
        kc in 1usize..300,
        mc in 1usize..150,
        nc in 1usize..300,
        seed in 0u64..1000,
    ) {
        // The autotuner may hand the kernel ANY normalized schedule —
        // small, odd, or wildly off the cache-tuned default. Every one
        // must compute the same product from exactly the scratch the
        // schedule-parameterized formula advertises.
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let s = GemmSchedule { kc, mc, nc }.normalized();
        let a = Tensor::randn(&[m, k], seed).data().to_vec();
        let b = Tensor::randn(&[k, n], seed ^ 0x7E57).data().to_vec();
        let want = matmul_naive(&a, &b, m, k, n);

        let mut scratch = vec![0.0f32; sgemm_scratch_floats_with(m, k, n, s)];
        let mut got = vec![0.0f32; m * n];
        sgemm_scratch_with(&a, &b, &mut got, m, k, n, &mut scratch, s);
        prop_assert!(rel_close(&got, &want, k).is_ok(),
            "sgemm_scratch_with {m}x{k}x{n} {s:?}: {}", rel_close(&got, &want, k).unwrap_err());

        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        got.fill(0.0);
        sgemm_nt_scratch_with(&a, &bt, &mut got, m, k, n, &mut scratch, s);
        prop_assert!(rel_close(&got, &want, k).is_ok(), "sgemm_nt {m}x{k}x{n} {s:?}");

        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        got.fill(0.0);
        sgemm_tn_scratch_with(&at, &b, &mut got, m, k, n, &mut scratch, s);
        prop_assert!(rel_close(&got, &want, k).is_ok(), "sgemm_tn {m}x{k}x{n} {s:?}");
    }

    #[test]
    fn scratch_entry_point_accepts_exactly_the_formula_floats(
        mi in 0usize..6,
        ki in 0usize..6,
        ni in 0usize..6,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = vec![0.5f32; m * k];
        let b = vec![0.25f32; k * n];
        let mut out = vec![0.0f32; m * n];
        // Exactly the advertised size must suffice — no hidden slack.
        let mut scratch = vec![0.0f32; sgemm_scratch_floats(m, k, n)];
        sgemm_scratch(&a, &b, &mut out, m, k, n, &mut scratch);
        let want = 0.5 * 0.25 * k as f32;
        prop_assert!(out.iter().all(|&v| (v - want).abs() < 1e-3 * k as f32));
    }
}
