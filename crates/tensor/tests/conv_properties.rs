//! Property tests: the production convolution path (im2col + SGEMM with
//! pointwise and grouped fast paths) must agree with the naive direct
//! implementation for *every* legal parameter combination.

use proptest::prelude::*;
use temco_tensor::{add, concat_channels, conv2d, conv2d_direct, Conv2dParams, Tensor};

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape() && a.max_abs_diff(b) <= tol
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn conv_matches_direct_for_all_params(
        n in 1usize..3,
        c_in in 1usize..6,
        c_out in 1usize..6,
        h in 3usize..10,
        w in 3usize..10,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..500,
        with_bias in any::<bool>(),
    ) {
        prop_assume!(h + 2 * padding >= kh && w + 2 * padding >= kw);
        let x = Tensor::randn(&[n, c_in, h, w], seed);
        let wt = Tensor::randn(&[c_out, c_in, kh, kw], seed ^ 0xFF);
        let bias: Option<Vec<f32>> =
            with_bias.then(|| (0..c_out).map(|i| i as f32 * 0.25 - 0.5).collect());
        let p = Conv2dParams { stride: (stride, stride), padding: (padding, padding), groups: 1 };
        let got = conv2d(&x, &wt, bias.as_deref(), &p);
        let want = conv2d_direct(&x, &wt, bias.as_deref(), &p);
        prop_assert!(close(&got, &want, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn grouped_conv_matches_direct(
        groups in 1usize..4,
        cg in 1usize..3,
        og in 1usize..3,
        hw in 4usize..9,
        seed in 0u64..500,
    ) {
        let c_in = groups * cg;
        let c_out = groups * og;
        let x = Tensor::randn(&[1, c_in, hw, hw], seed);
        let wt = Tensor::randn(&[c_out, cg, 3, 3], seed ^ 0xAB);
        let p = Conv2dParams { stride: (1, 1), padding: (1, 1), groups };
        let got = conv2d(&x, &wt, None, &p);
        let want = conv2d_direct(&x, &wt, None, &p);
        prop_assert!(close(&got, &want, 1e-3));
    }

    #[test]
    fn conv_is_linear_in_its_input(
        c in 1usize..5,
        hw in 4usize..8,
        seed in 0u64..300,
    ) {
        // conv(x + y) == conv(x) + conv(y) for bias-free convolution.
        let x = Tensor::randn(&[1, c, hw, hw], seed);
        let y = Tensor::randn(&[1, c, hw, hw], seed ^ 1);
        let wt = Tensor::randn(&[3, c, 3, 3], seed ^ 2);
        let p = Conv2dParams::new(1, 1);
        let lhs = conv2d(&add(&x, &y), &wt, None, &p);
        let rhs = add(&conv2d(&x, &wt, None, &p), &conv2d(&y, &wt, None, &p));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn pointwise_conv_distributes_over_concat(
        c1 in 1usize..4,
        c2 in 1usize..4,
        hw in 3usize..7,
        seed in 0u64..300,
    ) {
        // The algebraic identity behind TeMCO's concat-split transform
        // (Figure 9c): conv1x1(concat(a, b)) == conv1x1_a(a) + conv1x1_b(b).
        let a = Tensor::randn(&[1, c1, hw, hw], seed);
        let b = Tensor::randn(&[1, c2, hw, hw], seed ^ 3);
        let wt = Tensor::randn(&[2, c1 + c2, 1, 1], seed ^ 4);
        let p = Conv2dParams::default();
        let whole = conv2d(&concat_channels(&[&a, &b]), &wt, None, &p);

        let mut wa = Tensor::zeros(&[2, c1, 1, 1]);
        let mut wb = Tensor::zeros(&[2, c2, 1, 1]);
        for o in 0..2 {
            for i in 0..c1 {
                *wa.at4_mut(o, i, 0, 0) = wt.at4(o, i, 0, 0);
            }
            for i in 0..c2 {
                *wb.at4_mut(o, i, 0, 0) = wt.at4(o, c1 + i, 0, 0);
            }
        }
        let split = add(&conv2d(&a, &wa, None, &p), &conv2d(&b, &wb, None, &p));
        prop_assert!(close(&whole, &split, 1e-4));
    }
}
