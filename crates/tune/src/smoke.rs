//! The `temco tune --smoke` gate: a fast, deterministic self-check that
//! CI can run on every commit.
//!
//! The smoke run builds a tiny graph covering every tunable op kind
//! (conv2d, fused, linear), then asserts the three properties the
//! autotuning plane promises:
//!
//! 1. **Determinism** — candidate generation is a pure function of
//!    `(trials, seed)`, and two tuning runs from the same options pick
//!    the same winners.
//! 2. **DB round-trip** — winners survive serialize → disk → parse
//!    bit-for-bit.
//! 3. **Tuned-or-default** — no group's selected schedule measured worse
//!    than the hand-tuned default (structural: the default is always
//!    candidate 0 of an argmin).

use temco_ir::{ActKind, FconvSpec, FusedSpec, Graph, PoolKind};
use temco_tensor::Tensor;

use crate::db::TuningDb;
use crate::search::{tune_graph, GroupReport, TuneOptions};

/// Outcome of one smoke run; `ok()` is the CI gate.
#[derive(Clone, Debug)]
pub struct SmokeReport {
    /// Candidate lists are identical when regenerated.
    pub candidates_deterministic: bool,
    /// Two tuning runs from the same options picked the same winners.
    pub selection_deterministic: bool,
    /// Serialize → parse reproduced every entry.
    pub db_round_trip: bool,
    /// Every group's winner measured ≤ the default.
    pub never_loses: bool,
    /// The per-group reports of the first tuning run.
    pub groups: Vec<GroupReport>,
}

impl SmokeReport {
    /// All gates green.
    pub fn ok(&self) -> bool {
        self.candidates_deterministic
            && self.selection_deterministic
            && self.db_round_trip
            && self.never_loses
    }
}

/// A tiny graph exercising every tunable op kind. Small enough that a
/// smoke run finishes in well under a second even at `reps = 3`.
pub fn smoke_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 16, 16], "x");
    let c = g.conv2d(x, Tensor::randn(&[16, 8, 3, 3], 1), None, 1, 1, "c");
    let lw = g.add_weight(Tensor::randn(&[32, 16, 1, 1], 2));
    let fw = g.add_weight(Tensor::randn(&[8, 32, 1, 1], 3));
    let f = g.fused(
        c,
        FusedSpec {
            lconv_w: lw,
            lconv_b: None,
            act: ActKind::Relu,
            pool: Some((PoolKind::Max, 2, 2)),
            fconv: Some(FconvSpec { weight: fw, bias: None }),
        },
        "f",
    );
    let fl = g.flatten(f, "flat");
    let l = g.linear(fl, Tensor::randn(&[10, 8 * 8 * 8], 4), None, "fc");
    g.mark_output(l);
    g.infer_shapes();
    g
}

/// A standalone shape suite for `temco tune --shapes`: representative hot
/// layer shapes from the model zoo (first conv from image, mid-depth 3×3
/// convs, a reducing fused block, the classifier GEMM) assembled into one
/// graph, so the common shapes can be tuned once without picking a model.
pub fn shape_suite_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 3, 64, 64], "x");
    // Stem: the zoo's image-resolution entry conv.
    let c1 = g.conv2d(x, Tensor::randn(&[32, 3, 3, 3], 1), None, 1, 1, "stem");
    let p1 = g.max_pool(c1, 2, 2, "pool1");
    // Mid-depth 3×3 convs — the bulk of VGG/ResNet compute.
    let c2 = g.conv2d(p1, Tensor::randn(&[64, 32, 3, 3], 2), None, 1, 1, "mid_a");
    let c3 = g.conv2d(c2, Tensor::randn(&[64, 64, 3, 3], 3), None, 1, 1, "mid_b");
    let p2 = g.max_pool(c3, 2, 2, "pool2");
    // A reducing fused block (restore → relu → pool → reduce).
    let lw = g.add_weight(Tensor::randn(&[128, 64, 1, 1], 4));
    let fw = g.add_weight(Tensor::randn(&[32, 128, 1, 1], 5));
    let f = g.fused(
        p2,
        FusedSpec {
            lconv_w: lw,
            lconv_b: None,
            act: ActKind::Relu,
            pool: Some((PoolKind::Max, 2, 2)),
            fconv: Some(FconvSpec { weight: fw, bias: None }),
        },
        "fused_block",
    );
    let fl = g.flatten(f, "flat");
    // Classifier GEMM.
    let l = g.linear(fl, Tensor::randn(&[256, 32 * 8 * 8], 6), None, "classifier");
    g.mark_output(l);
    g.infer_shapes();
    g
}

/// Run the smoke gate. Measurement noise cannot flip any of the checked
/// properties: determinism is checked on *selection* (argmin over the
/// same candidate list), not on timings, and tuned-or-default holds by
/// construction.
pub fn run_smoke(trials: usize, seed: u64) -> Result<SmokeReport, String> {
    let trials = trials.max(1);

    let candidates_deterministic = crate::candidates::gemm_candidates(trials, seed)
        == crate::candidates::gemm_candidates(trials, seed)
        && crate::candidates::fused_candidates(trials, seed)
            == crate::candidates::fused_candidates(trials, seed);

    let g = smoke_graph();
    let opts = TuneOptions { trials, seed, reps: 3 };
    let mut db = TuningDb::new();
    let groups = tune_graph(&g, &opts, &mut db).map_err(|e| format!("tune failed: {e}"))?;
    if groups.is_empty() {
        return Err("smoke graph produced no tunable groups".to_string());
    }

    let never_loses = groups.iter().all(|r| r.best_ns <= r.default_ns);

    // Selection determinism: a second independent run over the same
    // candidate lists. Timings differ between runs, but the candidate
    // *lists* must be identical; we assert the weaker, noise-immune form
    // that both runs searched the same space and filled the same keys.
    let mut db2 = TuningDb::new();
    let groups2 = tune_graph(&g, &opts, &mut db2).map_err(|e| format!("tune failed: {e}"))?;
    let selection_deterministic = groups.len() == groups2.len()
        && groups
            .iter()
            .zip(&groups2)
            .all(|(a, b)| a.key == b.key && a.candidates == b.candidates && a.nodes == b.nodes);

    // Round-trip through the on-disk text format.
    let back = TuningDb::parse(&db.serialize());
    let db_round_trip = back.len() == db.len()
        && back.warnings().is_empty()
        && db.iter().all(|(k, v)| back.get(k) == Some(v));

    Ok(SmokeReport {
        candidates_deterministic,
        selection_deterministic,
        db_round_trip,
        never_loses,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gate_is_green() {
        let r = run_smoke(3, 42).unwrap();
        assert!(r.candidates_deterministic);
        assert!(r.selection_deterministic);
        assert!(r.db_round_trip);
        assert!(r.never_loses, "{:#?}", r.groups);
        assert!(r.ok());
        assert_eq!(r.groups.len(), 3);
    }
}
