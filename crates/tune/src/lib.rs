//! `temco-tune`: the schedule-search autotuning plane.
//!
//! TeMCO's kernels (packed GEMM behind conv2d/conv-transpose/linear, and
//! the fused strip/tile kernels) are parameterized by *schedules* — cache
//! blockings and parallel grain sizes that used to be compile-time
//! constants. This crate searches that space per kernel shape and
//! persists the winners:
//!
//! - [`candidates`] — deterministic, seeded candidate generation
//!   (grid + mutation); every candidate is normalized into legality, so
//!   no candidate can under-reserve scratch.
//! - [`signature`] — shape signatures grouping nodes whose kernels do
//!   identical work; each group is measured once.
//! - [`search`] — the measure/select loop over real [`temco_runtime::Engine`]
//!   runs timed with the `temco-obs` span recorder (median of N reps; the
//!   hand-tuned default is always a candidate, so the winner never loses
//!   to it).
//! - [`db`] — the on-disk text database, keyed by
//!   `op|shape-signature|isa`, with tolerant parsing and graceful
//!   fallback to defaults on any corruption.
//! - [`smoke`] — the fast deterministic self-check behind
//!   `temco tune --smoke`.
//!
//! The dispatch point is compile time: [`compile_with_db`] resolves every
//! node's schedule from the database once, and the engine's warm path
//! stays schedule-lookup-free and zero-alloc.

pub mod candidates;
pub mod db;
pub mod search;
pub mod signature;
pub mod smoke;

pub use candidates::{fused_candidates, gemm_candidates};
pub use db::{db_key, TuningDb, DB_HEADER};
pub use search::{
    compile_with_db, schedules_for, tune_graph, tuning_inputs, GroupReport, TuneOptions,
};
pub use signature::{node_db_key, node_signature};
pub use smoke::{run_smoke, shape_suite_graph, smoke_graph, SmokeReport};
