//! The search loop: measure candidates, keep the winner, fill the DB.
//!
//! Tunable nodes are grouped by signature (see [`crate::signature`]) and
//! each group is tuned once, in schedule order. A candidate is evaluated
//! by compiling the graph with the candidate applied to the group (other
//! groups keep their current best), then timing real [`Engine`] runs with
//! the `temco-obs` span recorder: one warm-up, then `reps` recorded runs;
//! the group's cost for one run is the sum of its nodes' `NODE` spans,
//! and the candidate's cost is the **median** over reps. The hand-tuned
//! default is always candidate 0, so the selected schedule can never
//! measure worse than the default at selection time — "tuned or default"
//! is a structural property of argmin, not a hope.
//!
//! Schedule resolution happens entirely at compile time: the tuned
//! engine's warm path carries no schedule lookups and stays zero-alloc.

use std::sync::Arc;

use temco_ir::Graph;
use temco_obs::{kind, Recorder};
use temco_runtime::{CompiledGraph, Engine, ExecError, NodeSchedule};
use temco_tensor::Tensor;

use crate::candidates::{fused_candidates, gemm_candidates};
use crate::db::TuningDb;
use crate::signature::node_db_key;

/// Search-budget knobs.
#[derive(Clone, Copy, Debug)]
pub struct TuneOptions {
    /// Candidate schedules evaluated per signature group (≥ 1; the
    /// hand-tuned default is always among them).
    pub trials: usize,
    /// Seed for candidate mutation and measurement inputs.
    pub seed: u64,
    /// Timed engine runs per candidate (median taken), after one warm-up.
    pub reps: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { trials: 8, seed: 42, reps: 3 }
    }
}

/// What tuning one signature group found.
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// Tuning-database key of the group.
    pub key: String,
    /// Op kind label (`conv2d`, `linear`, `fused`, …).
    pub op: &'static str,
    /// How many graph nodes share the signature.
    pub nodes: usize,
    /// Candidates actually measured.
    pub candidates: usize,
    /// Median group time under the hand-tuned default, in ns.
    pub default_ns: u64,
    /// Median group time under the winning schedule, in ns
    /// (≤ `default_ns` by construction).
    pub best_ns: u64,
    /// The winning schedule, as stored in the database.
    pub best: NodeSchedule,
}

impl GroupReport {
    /// `default / best` (≥ 1.0 by construction; 1.0 when the default won).
    pub fn speedup(&self) -> f64 {
        if self.best_ns == 0 {
            1.0
        } else {
            self.default_ns as f64 / self.best_ns as f64
        }
    }
}

/// Per-node schedules for `g` resolved from the database: a hit keyed by
/// the node's `(op, signature, isa)` uses the stored schedule, a miss
/// falls back to [`NodeSchedule::Default`]. This is the compile-time
/// dispatch point — call it once, hand the result to
/// [`CompiledGraph::new_with_schedules`], and the warm path never sees
/// the database again.
pub fn schedules_for(g: &Graph, db: &TuningDb) -> Vec<NodeSchedule> {
    g.nodes
        .iter()
        .map(|n| node_db_key(g, n).and_then(|k| db.get(&k)).unwrap_or(NodeSchedule::Default))
        .collect()
}

/// Compile `g` with every node's schedule resolved from the database
/// (graceful fallback to defaults on miss — an empty or corrupt database
/// compiles exactly like [`CompiledGraph::new`]).
pub fn compile_with_db(g: Graph, db: &TuningDb) -> Result<CompiledGraph, ExecError> {
    let scheds = schedules_for(&g, db);
    CompiledGraph::new_with_schedules(g, &scheds)
}

/// Deterministic measurement inputs for a graph (seeded per input).
pub fn tuning_inputs(g: &Graph, seed: u64) -> Vec<Tensor> {
    g.inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Tensor::randn(g.shape(*v), seed.wrapping_add(i as u64).wrapping_mul(2) + 1))
        .collect()
}

/// Tune every signature group of `g`, writing winners into `db` (existing
/// entries seed the search and are replaced by what measures best now).
/// Returns one report per group, in schedule order.
pub fn tune_graph(
    g: &Graph,
    opts: &TuneOptions,
    db: &mut TuningDb,
) -> Result<Vec<GroupReport>, ExecError> {
    let inputs = tuning_inputs(g, opts.seed);

    // Group tunable nodes by database key, preserving first-appearance
    // order so the walk — and therefore the whole run — is deterministic.
    let mut groups: Vec<(String, &'static str, Vec<usize>)> = Vec::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let Some((op, _)) = crate::signature::node_signature(g, node) else { continue };
        let key = node_db_key(g, node).expect("tunable node has a key");
        match groups.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, _, nodes)) => nodes.push(i),
            None => groups.push((key, op, vec![i])),
        }
    }

    // Start from the database's prior knowledge (or defaults).
    let mut scheds = schedules_for(g, db);
    let mut reports = Vec::with_capacity(groups.len());

    for (gi, (key, op, nodes)) in groups.iter().enumerate() {
        let group_seed = opts.seed.wrapping_add((gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let cands: Vec<NodeSchedule> = if *op == "fused" {
            fused_candidates(opts.trials, group_seed).into_iter().map(NodeSchedule::Fused).collect()
        } else {
            gemm_candidates(opts.trials, group_seed).into_iter().map(NodeSchedule::Gemm).collect()
        };

        let mut default_ns = 0u64;
        let mut best_ns = u64::MAX;
        let mut best = cands[0];
        for (ci, cand) in cands.iter().enumerate() {
            for &n in nodes {
                scheds[n] = *cand;
            }
            let ns = measure_group(g, &scheds, &inputs, nodes, opts.reps)?;
            if ci == 0 {
                default_ns = ns;
            }
            if ns < best_ns {
                best_ns = ns;
                best = *cand;
            }
        }
        for &n in nodes {
            scheds[n] = best;
        }
        db.insert(key.clone(), best);
        reports.push(GroupReport {
            key: key.clone(),
            op,
            nodes: nodes.len(),
            candidates: cands.len(),
            default_ns,
            best_ns,
            best,
        });
    }
    Ok(reports)
}

/// Median of `reps` recorded runs' summed `NODE` time over `group`, after
/// one warm-up run.
fn measure_group(
    g: &Graph,
    scheds: &[NodeSchedule],
    inputs: &[Tensor],
    group: &[usize],
    reps: usize,
) -> Result<u64, ExecError> {
    let compiled = CompiledGraph::new_with_schedules(g.clone(), scheds)?;
    let mut engine = Engine::from_compiled(Arc::new(compiled));
    let mut rec = Recorder::with_capacity(g.nodes.len() + 4);
    engine.run_recorded(inputs, &mut rec)?; // warm-up (also faults the slab in)
    let mut costs = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        rec.clear();
        engine.run_recorded(inputs, &mut rec)?;
        let ns: u64 = rec
            .iter()
            .filter(|e| e.kind == kind::NODE && group.contains(&(e.node as usize)))
            .map(|e| e.dur_ns)
            .sum();
        costs.push(ns);
    }
    costs.sort_unstable();
    Ok(costs[costs.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::{ActKind, FconvSpec, FusedSpec, PoolKind};

    pub(crate) fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 16, 16], "x");
        let c = g.conv2d(x, Tensor::randn(&[16, 8, 3, 3], 1), None, 1, 1, "c");
        let lw = g.add_weight(Tensor::randn(&[32, 16, 1, 1], 2));
        let fw = g.add_weight(Tensor::randn(&[8, 32, 1, 1], 3));
        let f = g.fused(
            c,
            FusedSpec {
                lconv_w: lw,
                lconv_b: None,
                act: ActKind::Relu,
                pool: Some((PoolKind::Max, 2, 2)),
                fconv: Some(FconvSpec { weight: fw, bias: None }),
            },
            "f",
        );
        let fl = g.flatten(f, "flat");
        let l = g.linear(fl, Tensor::randn(&[10, 8 * 8 * 8], 4), None, "fc");
        g.mark_output(l);
        g.infer_shapes();
        g
    }

    #[test]
    fn tuned_never_loses_to_default_and_db_fills() {
        let g = tiny_graph();
        let mut db = TuningDb::new();
        let opts = TuneOptions { trials: 3, seed: 42, reps: 3 };
        let reports = tune_graph(&g, &opts, &mut db).unwrap();
        // conv2d, fused, linear — three signature groups.
        assert_eq!(reports.len(), 3);
        assert_eq!(db.len(), 3);
        for r in &reports {
            assert!(r.best_ns <= r.default_ns, "{}: {} > {}", r.key, r.best_ns, r.default_ns);
            assert!(r.speedup() >= 1.0);
            assert_eq!(db.get(&r.key), Some(r.best), "{}", r.key);
        }
    }

    #[test]
    fn every_candidate_schedule_computes_the_same_result() {
        // Correctness must hold for ANY candidate the search could pick,
        // so sweep the whole candidate list instead of depending on which
        // one noisy timing selects.
        let g = tiny_graph();
        let inputs = tuning_inputs(&g, 7);
        let reference = Engine::new(g.clone()).unwrap().run(&inputs).unwrap()[0].clone();
        let scale = reference.data().iter().fold(1.0f32, |a, x| a.max(x.abs()));
        for gs in crate::candidates::gemm_candidates(8, 1) {
            for fs in crate::candidates::fused_candidates(8, 1) {
                let scheds: Vec<NodeSchedule> = g
                    .nodes
                    .iter()
                    .map(|n| match crate::signature::node_signature(&g, n) {
                        Some(("fused", _)) => NodeSchedule::Fused(fs),
                        Some(_) => NodeSchedule::Gemm(gs),
                        None => NodeSchedule::Default,
                    })
                    .collect();
                let compiled = CompiledGraph::new_with_schedules(g.clone(), &scheds).unwrap();
                let mut e = Engine::from_compiled(Arc::new(compiled));
                let out = e.run(&inputs).unwrap();
                // Different blockings reorder float accumulation; results
                // agree to magnitude-relative tolerance, not bit-for-bit.
                let tol = 2e-3 * scale;
                assert!(
                    out[0].all_close(&reference, tol),
                    "gemm {gs:?} fused {fs:?} diverged by {:e} (tol {tol:e})",
                    out[0].max_abs_diff(&reference)
                );
            }
        }
    }

    #[test]
    fn tuned_engine_agrees_with_the_default_engine() {
        let g = tiny_graph();
        let mut db = TuningDb::new();
        tune_graph(&g, &TuneOptions { trials: 4, seed: 1, reps: 1 }, &mut db).unwrap();
        let inputs = tuning_inputs(&g, 7);
        let mut tuned = Engine::from_compiled(Arc::new(compile_with_db(g.clone(), &db).unwrap()));
        let mut plain = Engine::new(g).unwrap();
        let a = tuned.run(&inputs).unwrap()[0].clone();
        let b = plain.run(&inputs).unwrap();
        let scale = b[0].data().iter().fold(1.0f32, |m, x| m.max(x.abs()));
        assert!(a.all_close(&b[0], 2e-3 * scale));
    }

    #[test]
    fn empty_db_compiles_exactly_like_the_default_path() {
        let g = tiny_graph();
        let db = TuningDb::new();
        let scheds = schedules_for(&g, &db);
        assert!(scheds.iter().all(|s| *s == NodeSchedule::Default));
        let compiled = compile_with_db(g.clone(), &db).unwrap();
        let plain = CompiledGraph::new(g).unwrap();
        assert_eq!(compiled.plan().slab_bytes, plain.plan().slab_bytes);
        assert_eq!(compiled.plan().node_scratch, plain.plan().node_scratch);
    }

    #[test]
    fn db_misses_and_foreign_entries_fall_back_gracefully() {
        let g = tiny_graph();
        let mut db = TuningDb::new();
        // An entry for some other machine/shape must not leak in.
        db.insert(
            "conv2d|c999h9w9-oc9k9x9-s9x9-p9x9-g9|never".to_string(),
            NodeSchedule::Gemm(temco_runtime::GemmSchedule { kc: 1, mc: 4, nc: 8 }),
        );
        let scheds = schedules_for(&g, &db);
        assert!(scheds.iter().all(|s| *s == NodeSchedule::Default));
    }
}
