//! The on-disk tuning database.
//!
//! A plain-text, line-oriented, std-only format so a tuned host needs no
//! serialization dependency and a human can read or hand-edit the file:
//!
//! ```text
//! # temco-tune v1
//! conv2d|c3h64w64-oc64k3x3-s1x1-p1x1-g1|avx2fma<TAB>gemm kc=128 mc=64 nc=256
//! fused|n1c32h16w16-cf64-cr16-p2s2-fc|avx2fma<TAB>fused spt=2 tile=16
//! ```
//!
//! Keys are `op|shape-signature|isa` (see [`crate::signature`]); values are
//! a schedule kind followed by `k=v` fields. Parsing is tolerant by design:
//! unknown fields are ignored, malformed lines are skipped with a warning,
//! and a missing or corrupt file degrades to an **empty database** — the
//! engine then compiles with the hand-tuned defaults, never panics. The
//! [`TuningDb::warnings`] list records everything that was tolerated so
//! callers can surface it.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use temco_runtime::{FusedSchedule, GemmSchedule, NodeSchedule};

/// Format header line; version-bumped if the format ever changes shape.
pub const DB_HEADER: &str = "# temco-tune v1";

/// Compose a database key from its three components.
pub fn db_key(op: &str, sig: &str, isa: &str) -> String {
    format!("{op}|{sig}|{isa}")
}

/// An in-memory tuning database: `key → schedule`, plus the warnings its
/// (tolerant) load accumulated.
#[derive(Clone, Debug, Default)]
pub struct TuningDb {
    entries: BTreeMap<String, NodeSchedule>,
    warnings: Vec<String>,
}

impl TuningDb {
    /// An empty database.
    pub fn new() -> TuningDb {
        TuningDb::default()
    }

    /// Load from `path`. A missing file is a fresh, empty database (no
    /// warning — first run); an unreadable or corrupt file is an empty
    /// database **with** a warning. Never panics, never errors.
    pub fn load(path: &Path) -> TuningDb {
        if !path.exists() {
            return TuningDb::new();
        }
        match std::fs::read_to_string(path) {
            Ok(text) => TuningDb::parse(&text),
            Err(e) => TuningDb {
                entries: BTreeMap::new(),
                warnings: vec![format!(
                    "tuning db {}: unreadable ({e}); using defaults",
                    path.display()
                )],
            },
        }
    }

    /// Parse database text. Tolerant: bad lines are skipped with a
    /// warning, unknown `k=v` fields ignored, a wrong header empties the
    /// database (with a warning) rather than failing.
    pub fn parse(text: &str) -> TuningDb {
        let mut db = TuningDb::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == DB_HEADER => {}
            Some((_, first)) => {
                db.warnings.push(format!(
                    "tuning db: unrecognized header '{}' (want '{DB_HEADER}'); using defaults",
                    first.trim()
                ));
                return db;
            }
            None => {
                db.warnings.push("tuning db: empty file; using defaults".to_string());
                return db;
            }
        }
        for (i, line) in lines {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('\t') else {
                db.warnings.push(format!("tuning db line {}: no tab separator; skipped", i + 1));
                continue;
            };
            if key.split('|').count() != 3 {
                db.warnings.push(format!(
                    "tuning db line {}: key '{key}' is not op|sig|isa; skipped",
                    i + 1
                ));
                continue;
            }
            match parse_schedule(value) {
                Some(s) => {
                    db.entries.insert(key.to_string(), s);
                }
                None => db
                    .warnings
                    .push(format!("tuning db line {}: unparsable value '{value}'; skipped", i + 1)),
            }
        }
        db
    }

    /// Serialize to the on-disk text format (deterministic: keys in sorted
    /// order).
    pub fn serialize(&self) -> String {
        let mut out = String::from(DB_HEADER);
        out.push('\n');
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push('\t');
            out.push_str(&serialize_schedule(*v));
            out.push('\n');
        }
        out
    }

    /// Write the database to `path` (parent directories must exist).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.serialize().as_bytes())
    }

    /// Look up the schedule for a key.
    pub fn get(&self, key: &str) -> Option<NodeSchedule> {
        self.entries.get(key).copied()
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, key: String, sched: NodeSchedule) {
        self.entries.insert(key, sched);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Everything the tolerant loader skipped or degraded.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Iterate entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, NodeSchedule)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

fn serialize_schedule(s: NodeSchedule) -> String {
    match s {
        NodeSchedule::Default => "default".to_string(),
        NodeSchedule::Gemm(g) => format!("gemm kc={} mc={} nc={}", g.kc, g.mc, g.nc),
        NodeSchedule::Fused(f) => format!("fused spt={} tile={}", f.slots_per_thread, f.tile),
    }
}

fn parse_schedule(value: &str) -> Option<NodeSchedule> {
    let mut parts = value.split_whitespace();
    let kind = parts.next()?;
    // Unknown `k=v` fields are skipped — a newer writer may add fields an
    // older reader does not know; a missing known field keeps its default.
    let field = |want: &str, default: usize| -> usize {
        value
            .split_whitespace()
            .skip(1)
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == want)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    };
    match kind {
        "default" => Some(NodeSchedule::Default),
        "gemm" => {
            let d = GemmSchedule::DEFAULT;
            let s = GemmSchedule {
                kc: field("kc", d.kc),
                mc: field("mc", d.mc),
                nc: field("nc", d.nc),
            };
            Some(NodeSchedule::Gemm(s.normalized()))
        }
        "fused" => {
            let d = FusedSchedule::DEFAULT;
            let s = FusedSchedule {
                slots_per_thread: field("spt", d.slots_per_thread),
                tile: field("tile", d.tile),
            };
            Some(NodeSchedule::Fused(s.normalized()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let mut db = TuningDb::new();
        db.insert(
            db_key("conv2d", "c3h64w64", "avx2fma"),
            NodeSchedule::Gemm(GemmSchedule { kc: 128, mc: 64, nc: 256 }),
        );
        db.insert(
            db_key("fused", "n1c32", "avx2fma"),
            NodeSchedule::Fused(FusedSchedule { slots_per_thread: 2, tile: 16 }),
        );
        let text = db.serialize();
        let back = TuningDb::parse(&text);
        assert!(back.warnings().is_empty(), "{:?}", back.warnings());
        assert_eq!(back.len(), 2);
        for (k, v) in db.iter() {
            assert_eq!(back.get(k), Some(v), "key {k}");
        }
        // Serialization is deterministic.
        assert_eq!(text, back.serialize());
    }

    #[test]
    fn unknown_fields_and_kinds_are_tolerated() {
        let text = format!(
            "{DB_HEADER}\n\
             conv2d|sig|isa\tgemm kc=64 mc=32 nc=64 zeta=9 future-flag\n\
             linear|sig|isa\tquantum qubits=3\n"
        );
        let db = TuningDb::parse(&text);
        // Unknown field inside a known kind: entry survives, field ignored.
        assert_eq!(
            db.get("conv2d|sig|isa"),
            Some(NodeSchedule::Gemm(GemmSchedule { kc: 64, mc: 32, nc: 64 }))
        );
        // Unknown kind: skipped with a warning, not a panic.
        assert_eq!(db.get("linear|sig|isa"), None);
        assert_eq!(db.warnings().len(), 1);
        assert!(db.warnings()[0].contains("unparsable"));
    }

    #[test]
    fn corrupt_and_truncated_files_degrade_to_defaults() {
        // Binary garbage.
        let db = TuningDb::parse("\u{0}\u{1}\u{2}garbage");
        assert!(db.is_empty());
        assert!(!db.warnings().is_empty());
        // Truncated mid-line: header fine, bad tail skipped, good line kept.
        let db = TuningDb::parse(&format!("{DB_HEADER}\na|b|c\tgemm kc=8 mc=8 nc=8\nd|e|f\tgem"));
        assert_eq!(db.len(), 1);
        assert_eq!(db.warnings().len(), 1);
        // Missing tab.
        let db = TuningDb::parse(&format!("{DB_HEADER}\nno-tab-here gemm kc=1"));
        assert!(db.is_empty());
        assert!(db.warnings()[0].contains("no tab"));
        // Empty file.
        let db = TuningDb::parse("");
        assert!(db.is_empty() && !db.warnings().is_empty());
    }

    #[test]
    fn parsed_schedules_are_normalized_into_legality() {
        // kc=0 / mc=0 / a wild nc must come back legal, never panic later.
        let db = TuningDb::parse(&format!(
            "{DB_HEADER}\na|b|c\tgemm kc=0 mc=0 nc=3\nx|y|z\tfused spt=0 tile=5"
        ));
        let NodeSchedule::Gemm(g) = db.get("a|b|c").unwrap() else { panic!() };
        assert!(g.is_legal());
        assert!(g.kc >= 1 && g.mc >= 1 && g.nc >= 1);
        let NodeSchedule::Fused(f) = db.get("x|y|z").unwrap() else { panic!() };
        assert!(f.is_legal());
        assert_eq!(f.slots_per_thread, 1);
    }

    #[test]
    fn missing_file_is_a_fresh_database() {
        let db = TuningDb::load(Path::new("/nonexistent/definitely/not/here.tsv"));
        assert!(db.is_empty());
        assert!(db.warnings().is_empty());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let path = std::env::temp_dir().join(format!("temco-tune-test-{}.tsv", std::process::id()));
        let mut db = TuningDb::new();
        db.insert(
            db_key("linear", "n1f128o10", "baseline"),
            NodeSchedule::Gemm(GemmSchedule::DEFAULT),
        );
        db.save(&path).unwrap();
        let back = TuningDb::load(&path);
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get("linear|n1f128o10|baseline"),
            Some(NodeSchedule::Gemm(GemmSchedule::DEFAULT))
        );
    }
}
