//! Seeded candidate generation: the search space.
//!
//! Candidate lists are **pure functions of `(trials, seed)`** — the same
//! arguments always produce the same list, in the same order, on every
//! host. That determinism is what the smoke gate asserts and what makes a
//! tuning run reproducible. The shape is grid-plus-mutation: a small
//! hand-picked grid of plausible blockings first (the hand-tuned default
//! is always candidate 0), then seeded mutations of earlier candidates
//! until `trials` distinct schedules exist.
//!
//! Every emitted candidate is normalized into the legal space
//! (`is_legal()` holds), and because the allocation planner sizes scratch
//! from the same formulas the kernels partition with, **no legal candidate
//! can under-reserve scratch** — the legality pre-check is structural, not
//! a runtime test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temco_runtime::{FusedSchedule, GemmSchedule};

/// Hand-picked GEMM blocking grid (beyond the default). Chosen to bracket
/// the default KC/MC/NC = 256/64/256 in both directions on each axis.
const GEMM_GRID: &[(usize, usize, usize)] = &[
    (128, 64, 256),
    (256, 32, 256),
    (256, 64, 128),
    (512, 64, 256),
    (256, 128, 256),
    (128, 32, 128),
    (512, 128, 512),
    (64, 64, 64),
    (384, 96, 384),
    (256, 64, 512),
];

/// Fused strip/tile grid (beyond the default spt=4, tile=0).
const FUSED_GRID: &[(usize, usize)] =
    &[(1, 0), (2, 0), (8, 0), (4, 8), (4, 16), (4, 32), (2, 16), (8, 16), (1, 32)];

/// GEMM schedule candidates: default first, then grid, then seeded
/// mutations. Deterministic in `(trials, seed)`; all entries legal and
/// distinct; length `min(trials, …)` but always ≥ 1 (the default).
pub fn gemm_candidates(trials: usize, seed: u64) -> Vec<GemmSchedule> {
    let mut out = vec![GemmSchedule::DEFAULT];
    let push = |out: &mut Vec<GemmSchedule>, s: GemmSchedule| {
        let s = s.normalized();
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for &(kc, mc, nc) in GEMM_GRID {
        if out.len() >= trials.max(1) {
            break;
        }
        push(&mut out, GemmSchedule { kc, mc, nc });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x67656d6d); // "gemm"
    let mut attempts = 0;
    while out.len() < trials.max(1) && attempts < trials * 16 {
        attempts += 1;
        let base = out[(rng.next_u64() % out.len() as u64) as usize];
        let axis = rng.next_u64() % 3;
        let grow = rng.next_u64() % 2 == 0;
        let scale = |v: usize| if grow { (v * 2).min(4096) } else { (v / 2).max(1) };
        let s = match axis {
            0 => GemmSchedule { kc: scale(base.kc), ..base },
            1 => GemmSchedule { mc: scale(base.mc), ..base },
            _ => GemmSchedule { nc: scale(base.nc), ..base },
        };
        push(&mut out, s);
    }
    out.truncate(trials.max(1));
    out
}

/// Fused-kernel schedule candidates: default first, then grid, then
/// seeded mutations of the slots/tile pair. Same determinism and legality
/// contract as [`gemm_candidates`].
pub fn fused_candidates(trials: usize, seed: u64) -> Vec<FusedSchedule> {
    let mut out = vec![FusedSchedule::DEFAULT];
    let push = |out: &mut Vec<FusedSchedule>, s: FusedSchedule| {
        let s = s.normalized();
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for &(spt, tile) in FUSED_GRID {
        if out.len() >= trials.max(1) {
            break;
        }
        push(&mut out, FusedSchedule { slots_per_thread: spt, tile });
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x66757365); // "fuse"
    let mut attempts = 0;
    while out.len() < trials.max(1) && attempts < trials * 16 {
        attempts += 1;
        let base = out[(rng.next_u64() % out.len() as u64) as usize];
        let s = if rng.next_u64() % 2 == 0 {
            let spt = (base.slots_per_thread * 2).clamp(1, 32);
            FusedSchedule { slots_per_thread: spt, ..base }
        } else {
            let tile = match base.tile {
                0 => 8,
                t => (t * 2).min(256),
            };
            FusedSchedule { tile, ..base }
        };
        push(&mut out, s);
    }
    out.truncate(trials.max(1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_trials_and_seed() {
        for trials in [1, 4, 16, 40] {
            assert_eq!(gemm_candidates(trials, 7), gemm_candidates(trials, 7));
            assert_eq!(fused_candidates(trials, 7), fused_candidates(trials, 7));
        }
        // Past the fixed grid, the seed changes the mutation tail.
        assert_ne!(gemm_candidates(40, 1), gemm_candidates(40, 2));
    }

    #[test]
    fn default_is_always_candidate_zero() {
        for trials in [1, 2, 8] {
            assert_eq!(gemm_candidates(trials, 3)[0], GemmSchedule::DEFAULT);
            assert_eq!(fused_candidates(trials, 3)[0], FusedSchedule::DEFAULT);
        }
    }

    #[test]
    fn every_candidate_is_legal_and_distinct() {
        let gs = gemm_candidates(32, 11);
        assert!(gs.iter().all(|s| s.is_legal()));
        for (i, a) in gs.iter().enumerate() {
            assert!(!gs[i + 1..].contains(a), "duplicate {a:?}");
        }
        let fs = fused_candidates(32, 11);
        assert!(fs.iter().all(|s| s.is_legal()));
        for (i, a) in fs.iter().enumerate() {
            assert!(!fs[i + 1..].contains(a), "duplicate {a:?}");
        }
    }

    #[test]
    fn trials_bounds_the_list_length() {
        assert_eq!(gemm_candidates(1, 0).len(), 1);
        assert_eq!(gemm_candidates(5, 0).len(), 5);
        assert_eq!(fused_candidates(3, 0).len(), 3);
        // trials=0 still yields the default.
        assert_eq!(gemm_candidates(0, 0).len(), 1);
    }
}
