//! Shape signatures: the graph-side component of a tuning-database key.
//!
//! Two nodes share a signature exactly when their kernels do the same
//! work — same op kind, same operand/weight dimensions, same kernel
//! hyper-parameters. A schedule tuned for one therefore transfers to the
//! other, and the search measures each signature **group** once instead
//! of once per node. The machine-side component is the ISA level
//! ([`temco_tensor::isa_level`]), so one database file can hold entries
//! for several deployment hosts.

use temco_ir::{Graph, Node, Op};

/// `(op kind, shape signature)` for a tunable node, `None` for ops whose
/// kernels have no schedule (activations, pools, adds, …).
pub fn node_signature(g: &Graph, node: &Node) -> Option<(&'static str, String)> {
    match &node.op {
        Op::Conv2d(spec) => {
            let s = g.shape(node.inputs[0]);
            let w = g.weight(spec.weight);
            Some((
                "conv2d",
                format!(
                    "c{}h{}w{}-oc{}k{}x{}-s{}x{}-p{}x{}-g{}",
                    s[1],
                    s[2],
                    s[3],
                    w.dim(0),
                    w.dim(2),
                    w.dim(3),
                    spec.stride.0,
                    spec.stride.1,
                    spec.padding.0,
                    spec.padding.1,
                    spec.groups
                ),
            ))
        }
        Op::ConvTranspose2d { weight, stride, .. } => {
            let s = g.shape(node.inputs[0]);
            let w = g.weight(*weight);
            Some((
                "conv_transpose2d",
                format!(
                    "c{}h{}w{}-oc{}k{}x{}-s{}x{}",
                    s[1],
                    s[2],
                    s[3],
                    w.dim(1),
                    w.dim(2),
                    w.dim(3),
                    stride.0,
                    stride.1
                ),
            ))
        }
        Op::Linear { weight, .. } => {
            let s = g.shape(node.inputs[0]);
            Some(("linear", format!("n{}f{}o{}", s[0], s[1], g.weight(*weight).dim(0))))
        }
        Op::Fused(spec) => {
            let s = g.shape(node.inputs[0]);
            let c_full = g.weight(spec.lconv_w).dim(0);
            let c_red_out = spec.fconv.as_ref().map_or(c_full, |fc| g.weight(fc.weight).dim(0));
            let pool =
                spec.pool.map_or_else(|| "p0".to_string(), |(_, k, st)| format!("p{k}s{st}"));
            let fc = if spec.fconv.is_some() { "-fc" } else { "" };
            Some((
                "fused",
                format!("n{}c{}h{}w{}-cf{c_full}-cr{c_red_out}-{pool}{fc}", s[0], s[1], s[2], s[3]),
            ))
        }
        _ => None,
    }
}

/// Full database key for a tunable node on this machine, `None` for
/// untunable ops.
pub fn node_db_key(g: &Graph, node: &Node) -> Option<String> {
    let (op, sig) = node_signature(g, node)?;
    Some(crate::db::db_key(op, &sig, temco_tensor::isa_level()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_tensor::Tensor;

    #[test]
    fn identical_layers_share_a_signature() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::randn(&[4, 4, 3, 3], 1), None, 1, 1, "c1");
        let c2 = g.conv2d(c1, Tensor::randn(&[4, 4, 3, 3], 2), None, 1, 1, "c2");
        let c3 = g.conv2d(c2, Tensor::randn(&[8, 4, 3, 3], 3), None, 1, 1, "c3");
        let r = g.relu(c3, "r");
        g.mark_output(r);
        g.infer_shapes();
        let sigs: Vec<_> = g.nodes.iter().map(|n| node_signature(&g, n)).collect();
        // Input and relu are untunable.
        assert!(sigs[0].is_none());
        assert!(sigs[4].is_none());
        // Same shapes ⇒ same signature; different out-channels ⇒ different.
        assert_eq!(sigs[1], sigs[2]);
        assert_ne!(sigs[1], sigs[3]);
        let key = node_db_key(&g, &g.nodes[1]).unwrap();
        assert!(key.starts_with("conv2d|"));
        assert!(key.ends_with(temco_tensor::isa_level()));
    }
}
