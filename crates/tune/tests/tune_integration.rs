//! Cross-crate integration tests for the autotuning plane: the tuned
//! dispatch path against the differential oracle's random CNNs, and a
//! shared database handle under concurrent Engine compilation.

use std::sync::Arc;

use temco_check::{random_cnn, GenConfig};
use temco_runtime::{CompiledGraph, Engine, NodeSchedule};
use temco_tensor::Tensor;
use temco_tune::{compile_with_db, schedules_for, tune_graph, TuneOptions, TuningDb};

fn inputs_for(g: &temco_ir::Graph, seed: u64) -> Vec<Tensor> {
    g.inputs.iter().enumerate().map(|(i, v)| Tensor::randn(g.shape(*v), seed + i as u64)).collect()
}

/// Tuned engines must agree with default engines on random CNNs — the
/// same differential-oracle standard `temco check` applies to the
/// compiler's opt levels, here applied to schedule dispatch.
#[test]
fn tuned_engines_agree_with_default_engines_on_random_cnns() {
    let cfg = GenConfig { ops: 6, max_channels: 16, min_image: 8, max_image: 12 };
    for seed in 0..4u64 {
        let g = random_cnn(seed, &cfg);
        let mut db = TuningDb::new();
        // A tiny budget keeps the test fast; correctness must hold for
        // ANY selected schedule, not just well-measured ones.
        tune_graph(&g, &TuneOptions { trials: 3, seed, reps: 1 }, &mut db)
            .unwrap_or_else(|e| panic!("seed {seed}: tune failed: {e}"));
        let inputs = inputs_for(&g, 100 + seed);
        let mut tuned = Engine::from_compiled(Arc::new(compile_with_db(g.clone(), &db).unwrap()));
        let mut plain = Engine::new(g).unwrap();
        let a: Vec<Tensor> = tuned.run(&inputs).unwrap().to_vec();
        let b = plain.run(&inputs).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            // Magnitude-relative tolerance: blockings reorder accumulation.
            let scale = y.data().iter().fold(1.0f32, |m, v| m.max(v.abs()));
            assert!(
                x.all_close(y, 2e-3 * scale),
                "seed {seed}: tuned output diverged by {:e}",
                x.max_abs_diff(y)
            );
        }
    }
}

/// One loaded database handle must serve many concurrent Engine compiles
/// — the deployment shape where a process tunes once and every serving
/// thread compiles against the shared result.
#[test]
fn concurrent_compiles_share_one_db_handle() {
    let g = random_cnn(7, &GenConfig { ops: 5, max_channels: 16, min_image: 8, max_image: 10 });
    let mut db = TuningDb::new();
    tune_graph(&g, &TuneOptions { trials: 2, seed: 7, reps: 1 }, &mut db).unwrap();
    let db = Arc::new(db);
    let g = Arc::new(g);

    let reference = schedules_for(&g, &db);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let db = Arc::clone(&db);
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                let scheds = schedules_for(&g, &db);
                let compiled = CompiledGraph::new_with_schedules((*g).clone(), &scheds).unwrap();
                let mut engine = Engine::from_compiled(Arc::new(compiled));
                let inputs: Vec<Tensor> = g
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(i, v)| Tensor::randn(g.shape(*v), 50 + t + i as u64))
                    .collect();
                engine.run(&inputs).unwrap();
                scheds
            })
        })
        .collect();
    for h in handles {
        let scheds: Vec<NodeSchedule> = h.join().unwrap();
        assert_eq!(scheds, reference, "db lookups must be identical across threads");
    }
}

/// A database written by `tune`, loaded from disk by a fresh process
/// (simulated), must reproduce the exact same compiled plans.
#[test]
fn on_disk_db_reproduces_the_tuned_plan() {
    let g = random_cnn(3, &GenConfig { ops: 5, max_channels: 16, min_image: 8, max_image: 10 });
    let mut db = TuningDb::new();
    tune_graph(&g, &TuneOptions { trials: 3, seed: 3, reps: 1 }, &mut db).unwrap();

    let path = std::env::temp_dir().join(format!("temco-tune-int-{}.tsv", std::process::id()));
    db.save(&path).unwrap();
    let loaded = TuningDb::load(&path);
    std::fs::remove_file(&path).ok();
    assert!(loaded.warnings().is_empty(), "{:?}", loaded.warnings());

    let a = compile_with_db(g.clone(), &db).unwrap();
    let b = compile_with_db(g, &loaded).unwrap();
    assert_eq!(a.plan().slab_bytes, b.plan().slab_bytes);
    assert_eq!(a.plan().node_scratch, b.plan().node_scratch);
    assert_eq!(a.plan().node_schedule, b.plan().node_schedule);
}
