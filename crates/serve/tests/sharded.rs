//! Behavior of the sharded request plane: per-worker queues, two-choice
//! routing, per-shard drain on shutdown, and the per-worker stats lane.

use std::time::Duration;

use temco_ir::Graph;
use temco_serve::{ServeConfig, ServeError, Server};
use temco_tensor::Tensor;

fn tiny_mlp() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 1), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 2), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

#[test]
fn manual_mode_runs_a_single_shard_and_reports_its_depth() {
    // workers: 0 keeps one shard so manual_worker() has a queue to drain;
    // with nobody popping, every submission parks there and the per-shard
    // depth vector exposes the backlog.
    let server = Server::new(
        tiny_mlp(),
        ServeConfig {
            workers: 0,
            max_batch: 4,
            max_delay: Duration::ZERO,
            queue_cap: 64,
            default_deadline: None,
        },
    )
    .unwrap();
    for _ in 0..8 {
        server.submit(Tensor::zeros(&[1, 6])).unwrap();
    }
    let snap = server.stats();
    assert_eq!(snap.shard_depths, vec![8], "workers:0 runs a single shard");
    server.shutdown();
}

#[test]
fn work_lands_on_every_shard_and_the_lanes_reconcile() {
    let server = Server::new(
        tiny_mlp(),
        ServeConfig {
            workers: 3,
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            queue_cap: 4,
            default_deadline: None,
        },
    )
    .unwrap();
    let tickets: Vec<_> =
        (0..12).filter_map(|_| server.submit(Tensor::zeros(&[1, 6])).ok()).collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let snap = server.stats();
    assert!(snap.completed > 0);
    assert_eq!(snap.shard_depths.len(), 3, "one depth entry per shard");
    // Work spread across shards: the busy/batches lanes exist per worker.
    assert_eq!(snap.worker_batches.len(), 3);
    assert_eq!(snap.worker_busy_us.len(), 3);
    assert_eq!(snap.worker_batches.iter().sum::<u64>(), snap.batches);
    server.shutdown();
    assert!(server.stats().is_conserved_at_rest());
}

#[test]
fn shutdown_fails_work_parked_on_every_shard() {
    // Manual mode with multiple shards is impossible through the public
    // API (workers:0 ⇒ 1 shard), so exercise the per-shard drain with a
    // full single shard instead: all queued jobs must settle as
    // failed_shutdown, none may hang.
    let server = Server::new(
        tiny_mlp(),
        ServeConfig {
            workers: 0,
            max_batch: 4,
            max_delay: Duration::ZERO,
            queue_cap: 16,
            default_deadline: None,
        },
    )
    .unwrap();
    let tickets: Vec<_> = (0..10).map(|_| server.submit(Tensor::zeros(&[1, 6])).unwrap()).collect();
    server.shutdown();
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), ServeError::ShuttingDown);
    }
    let snap = server.stats();
    assert_eq!(snap.failed_shutdown, 10);
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.is_conserved_at_rest());
}

#[test]
fn multi_worker_throughput_settles_every_ticket() {
    // Stress the sharded plane: many submitters racing four workers.
    // Every accepted ticket must settle with an output; the conservation
    // law must hold at rest; per-worker batch counts must sum to the
    // total.
    let server = Server::new(
        tiny_mlp(),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            max_delay: Duration::from_micros(200),
            queue_cap: 64,
            default_deadline: None,
        },
    )
    .unwrap();
    let mut join = Vec::new();
    for t in 0..4 {
        let server = server.clone();
        join.push(std::thread::spawn(move || {
            let sample = Tensor::rand_uniform(&[1, 6], t, -1.0, 1.0);
            let mut ok = 0usize;
            for _ in 0..64 {
                if let Ok(ticket) = server.submit(sample.clone()) {
                    ticket.wait().unwrap();
                    ok += 1;
                }
            }
            ok
        }));
    }
    let ok: usize = join.into_iter().map(|h| h.join().unwrap()).sum();
    server.shutdown();
    let snap = server.stats();
    assert_eq!(snap.completed, ok as u64);
    assert_eq!(snap.worker_batches.iter().sum::<u64>(), snap.batches);
    assert!(snap.is_conserved_at_rest());
    // The per-shard depth vector is rendered into the scrape.
    let text = server.prometheus_metrics();
    assert!(text.contains("temco_worker_queue_depth{worker=\"0\"}"));
    assert!(text.contains("temco_worker_queue_depth{worker=\"3\"}"));
    assert!(text.contains("temco_worker_batches_total{worker=\"0\"}"));
}
