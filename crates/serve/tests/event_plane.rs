//! End-to-end tests of the event-driven connection plane: wire
//! correctness, thousands of concurrent connections on a handful of
//! threads, per-client fairness under a flooding pipeliner, connection
//! table limits, idle reaping, and the zero-allocation turn loop.
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use temco_ir::Graph;
use temco_runtime::Engine;
use temco_serve::{proto, Client, EventConfig, EventLoop, ServeConfig, Server};
use temco_tensor::Tensor;

struct CountingAlloc;

static TRACKED_ALLOCS: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn tiny_mlp() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 1), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 2), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

fn serve_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_cap: 64,
        default_deadline: None,
    }
}

/// Spawn `serve()` on an ephemeral port; returns (addr, join handle).
fn spawn_serve(
    server: Server,
    ecfg: EventConfig,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || temco_serve::serve(server, listener, ecfg));
    (addr, handle)
}

/// Parse one un-labeled metric value out of a Prometheus text scrape.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

#[test]
fn event_plane_round_trip_matches_reference_and_shuts_down_cleanly() {
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let stats_handle = server.clone();
    let (addr, handle) = spawn_serve(server, EventConfig::default());

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.sample_shape(), &[1, 6]);
    assert_eq!(client.output_shape(), &[1, 3]);

    let mut reference = Engine::new(tiny_mlp()).unwrap();
    for seed in 0..4 {
        let sample = Tensor::rand_uniform(&[1, 6], seed, -1.0, 1.0);
        let got = client.infer(sample.data(), 0).unwrap();
        let want = reference.run(std::slice::from_ref(&sample)).unwrap();
        for (g, w) in got.iter().zip(want[0].data()) {
            assert!((g - w).abs() <= 1e-5, "wire result diverged: {g} vs {w}");
        }
    }

    // A mis-sized payload is a per-request error, not a dropped conn.
    let err = client.infer(&[0.0; 2], 0).unwrap_err();
    assert!(err.is_rejection(), "expected BAD_REQUEST, got {err:?}");
    assert!(client.infer(&[0.5; 6], 0).is_ok(), "connection survives a bad request");

    // Stats and metrics flow over the same connection.
    assert!(client.stats_text().unwrap().contains("conns"));
    let scrape = client.metrics_text().unwrap();
    assert!(metric(&scrape, "temco_conns_accepted_total") >= 1.0);
    assert!(metric(&scrape, "temco_open_conns") >= 1.0);

    client.shutdown_server().unwrap();
    handle.join().unwrap().unwrap();
    let snap = stats_handle.stats();
    assert_eq!(snap.completed, 5);
    assert!(snap.is_conserved_at_rest());
}

#[test]
fn a_thousand_concurrent_connections_do_not_cost_a_thousand_threads() {
    let threads_before = thread_count();
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let ecfg = EventConfig { max_conns: 1536, ..EventConfig::default() };
    let (addr, handle) = spawn_serve(server, ecfg);

    // Park 1050 open connections on the plane.
    let parked: Vec<TcpStream> = (0..1050).map(|_| TcpStream::connect(&addr).unwrap()).collect();

    // Work still flows while they sit there…
    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        assert_eq!(client.infer(&[0.25; 6], 0).unwrap().len(), 3);
    }
    // …and the whole process grew by a constant number of threads
    // (serve loop + worker), not one per connection.
    let grown = thread_count().saturating_sub(threads_before);
    assert!(grown <= 8, "event plane spawned {grown} threads for 1050 connections");

    let scrape = client.metrics_text().unwrap();
    assert!(metric(&scrape, "temco_conns_accepted_total") >= 1051.0);
    assert!(metric(&scrape, "temco_open_conns") >= 1051.0);

    drop(parked);
    client.shutdown_server().unwrap();
    handle.join().unwrap().unwrap();
}

/// Threads in this process, from /proc/self/status.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

#[test]
fn flooding_client_cannot_starve_its_neighbour() {
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let ecfg = EventConfig { max_inflight: 4, ..EventConfig::default() };
    let (addr, handle) = spawn_serve(server, ecfg);

    // The flooder pipelines 400 requests without reading a byte back.
    // With max_inflight = 4 the plane stops reading it at 4 outstanding,
    // so it can occupy at most 4 pool slots no matter how fast it writes.
    let mut flood = TcpStream::connect(&addr).unwrap();
    let mut payload = vec![0u8; 4];
    proto::put_f32s(&mut payload, &[0.5; 6]);
    let mut framed = Vec::new();
    proto::write_frame(&mut framed, proto::op::INFER, &payload).unwrap();
    let burst: Vec<u8> = framed.repeat(400);
    flood.set_nonblocking(true).unwrap();
    let _ = flood.write(&burst); // fills the socket buffer, never blocks

    // The well-behaved neighbour must still be served, promptly.
    let mut client = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    for _ in 0..10 {
        assert_eq!(client.infer(&[0.25; 6], 0).unwrap().len(), 3);
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "neighbour starved behind the flooder: {:?}",
        t0.elapsed()
    );

    client.shutdown_server().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn full_connection_table_refuses_not_queues() {
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let ecfg = EventConfig { max_conns: 2, ..EventConfig::default() };
    let (addr, handle) = spawn_serve(server, ecfg);

    // Slot 1: a real client (its INFO round trip proves registration).
    let mut client = Client::connect(&addr).unwrap();
    // Slot 2: parked.
    let _parked = TcpStream::connect(&addr).unwrap();
    // Third connection: accepted by the kernel, dropped by the plane.
    let mut refused = TcpStream::connect(&addr).unwrap();
    refused.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut byte = [0u8; 1];
    assert_eq!(refused.read(&mut byte).unwrap_or(0), 0, "refused conn should see EOF");

    let scrape = client.metrics_text().unwrap();
    assert!(metric(&scrape, "temco_conns_refused_total") >= 1.0);

    client.shutdown_server().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn idle_connections_are_reaped_by_the_sweep() {
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let ecfg = EventConfig { idle_timeout: Duration::from_millis(200), ..EventConfig::default() };
    let (addr, handle) = spawn_serve(server, ecfg);

    let mut idlers: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    for s in &mut idlers {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    }
    // Wait past the timeout plus a sweep period: all three get closed.
    let mut byte = [0u8; 1];
    for s in &mut idlers {
        assert_eq!(s.read(&mut byte).unwrap_or(0), 0, "idle conn was not reaped");
    }

    // A fresh, active connection still works.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.infer(&[0.1; 6], 0).unwrap().len(), 3);
    let scrape = client.metrics_text().unwrap();
    assert!(metric(&scrape, "temco_conns_closed_idle_total") >= 3.0);

    client.shutdown_server().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn warm_event_loop_turn_performs_zero_heap_allocations() {
    // Drive the loop from the test thread (no serve() thread) so the
    // counting allocator sees exactly the connection-plane hot path:
    // readiness wait → frame parse → dispatch → completion pump →
    // response flush. The single worker thread runs untracked — its own
    // zero-alloc property is covered by `zero_alloc_serve`.
    let server = Server::new(tiny_mlp(), serve_cfg(1)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut el = EventLoop::new(server.clone(), listener, EventConfig::default()).unwrap();

    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    sock.set_nonblocking(true).unwrap();

    let mut payload = vec![0u8; 4];
    proto::put_f32s(&mut payload, &[0.5; 6]);
    let mut framed = Vec::new();
    proto::write_frame(&mut framed, proto::op::INFER, &payload).unwrap();

    // One full request/response over the loop; returns response bytes read.
    let mut resp = [0u8; 5 + 12]; // header + [1,3] f32 row
    let mut roundtrip = |el: &mut EventLoop, sock: &mut TcpStream, framed: &[u8]| {
        sock.write_all(framed).unwrap();
        let mut got = 0;
        let deadline = Instant::now() + Duration::from_secs(10);
        while got < resp.len() {
            el.turn(20).unwrap();
            match sock.read(&mut resp[got..]) {
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("client read failed: {e}"),
            }
            assert!(Instant::now() < deadline, "no response after 10s");
        }
        assert_eq!(resp[4], 0, "expected OK status");
    };

    // Warm everything: accept path, bucket engines, pool, write buffers.
    for _ in 0..6 {
        roundtrip(&mut el, &mut sock, &framed);
    }

    // Measured: three warm round trips, zero allocations on this thread.
    TRACKING.with(|t| t.set(false));
    let before = TRACKED_ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    for _ in 0..3 {
        roundtrip(&mut el, &mut sock, &framed);
    }
    TRACKING.with(|t| t.set(false));
    let allocs = TRACKED_ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(allocs, 0, "event-loop hot path allocated {allocs} times");

    server.shutdown();
}
