//! Behavioral tests for the serving subsystem: dynamic batching
//! correctness against a single-sample reference engine, backpressure,
//! deadlines, and graceful drain. All batching assertions use
//! `workers: 0` + `Server::manual_worker` so batch composition is
//! deterministic — jobs are pre-queued, then one `step` gathers them.

use std::time::Duration;

use temco_ir::Graph;
use temco_runtime::Engine;
use temco_serve::{ServeConfig, ServeError, Server, StepOutcome};
use temco_tensor::Tensor;

/// A small MLP — cheap enough that every test compiles the full bucket
/// ladder in milliseconds, structurally enough (two GEMMs + ReLU) to
/// catch batching/padding/scatter mistakes.
fn tiny_mlp() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 1), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 2), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

fn manual_config(max_batch: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        workers: 0,
        max_batch,
        // Zero delay: a step gathers exactly what is already queued.
        max_delay: Duration::ZERO,
        queue_cap,
        default_deadline: None,
    }
}

/// Per-sample reference output from a plain batch-1 engine.
fn reference_outputs(samples: &[Tensor]) -> Vec<Tensor> {
    let mut engine = Engine::new(tiny_mlp()).unwrap();
    samples.iter().map(|s| engine.run(std::slice::from_ref(s)).unwrap()[0].clone()).collect()
}

#[test]
fn gathered_batch_matches_single_sample_reference() {
    let server = Server::new(tiny_mlp(), manual_config(8, 64)).unwrap();
    let samples: Vec<Tensor> =
        (0..5).map(|i| Tensor::rand_uniform(&[1, 6], 100 + i, -1.0, 1.0)).collect();
    let want = reference_outputs(&samples);

    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    let mut worker = server.manual_worker();
    // All five queued jobs coalesce into one batch (padded to bucket 8).
    assert_eq!(worker.step(), StepOutcome::Ran(5));
    for (t, w) in tickets.into_iter().zip(&want) {
        let got = t.wait().unwrap();
        assert_eq!(got.shape(), &[1, 3]);
        assert!(got.all_close(w, 1e-5), "batched row diverged from reference");
    }

    let snap = server.stats();
    assert_eq!(snap.submitted, 5);
    assert_eq!(snap.completed, 5);
    assert_eq!(snap.batches, 1);
    assert_eq!(snap.batch_size_hist[4], 1, "one batch of size 5");
    assert!((snap.mean_batch_size() - 5.0).abs() < 1e-9);
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.slab_bytes_per_worker > 0);
}

#[test]
fn bucket_ladder_is_powers_of_two_topped_by_max_batch() {
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    assert_eq!(server.buckets(), &[1, 2, 4, 8]);
    let server = Server::new(tiny_mlp(), manual_config(6, 8)).unwrap();
    assert_eq!(server.buckets(), &[1, 2, 4, 6]);
    let server = Server::new(tiny_mlp(), manual_config(1, 8)).unwrap();
    assert_eq!(server.buckets(), &[1]);
}

#[test]
fn oversubmitted_queue_splits_into_max_batch_chunks() {
    let server = Server::new(tiny_mlp(), manual_config(4, 64)).unwrap();
    let samples: Vec<Tensor> =
        (0..6).map(|i| Tensor::rand_uniform(&[1, 6], 200 + i, -1.0, 1.0)).collect();
    let want = reference_outputs(&samples);
    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();

    let mut worker = server.manual_worker();
    assert_eq!(worker.step(), StepOutcome::Ran(4), "first chunk caps at max_batch");
    assert_eq!(worker.step(), StepOutcome::Ran(2), "remainder pads to bucket 2");
    assert_eq!(worker.step(), StepOutcome::Idle);
    for (t, w) in tickets.into_iter().zip(&want) {
        assert!(t.wait().unwrap().all_close(w, 1e-5));
    }
    let snap = server.stats();
    assert_eq!(snap.batches, 2);
    assert_eq!(snap.batch_size_hist[3], 1);
    assert_eq!(snap.batch_size_hist[1], 1);
}

#[test]
fn full_queue_rejects_new_submissions_without_dropping_queued_ones() {
    let server = Server::new(tiny_mlp(), manual_config(8, 2)).unwrap();
    let sample = Tensor::rand_uniform(&[1, 6], 1, -1.0, 1.0);
    let t1 = server.submit(sample.clone()).unwrap();
    let t2 = server.submit(sample.clone()).unwrap();
    // Third submission hits backpressure: an explicit, synchronous reject.
    assert_eq!(server.submit(sample.clone()).unwrap_err(), ServeError::QueueFull);

    // The queued two are intact and still execute.
    let mut worker = server.manual_worker();
    assert_eq!(worker.step(), StepOutcome::Ran(2));
    assert!(t1.wait().is_ok());
    assert!(t2.wait().is_ok());

    let snap = server.stats();
    assert_eq!(snap.submitted, 2);
    assert_eq!(snap.rejected_full, 1);
    assert_eq!(snap.completed, 2);

    // Capacity freed: submission works again.
    assert!(server.submit(sample).is_ok());
}

#[test]
fn expired_deadline_fails_the_request_without_executing_it() {
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    let sample = Tensor::rand_uniform(&[1, 6], 1, -1.0, 1.0);
    let doomed = server.submit_with_deadline(sample.clone(), Some(Duration::ZERO)).unwrap();
    let alive = server.submit(sample).unwrap();
    std::thread::sleep(Duration::from_millis(2));

    let mut worker = server.manual_worker();
    // The expired job is shed pre-execution; the live one still runs.
    assert_eq!(worker.step(), StepOutcome::Ran(1));
    assert_eq!(doomed.wait().unwrap_err(), ServeError::DeadlineExceeded);
    assert!(alive.wait().is_ok());

    let snap = server.stats();
    assert_eq!(snap.deadline_expired, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.batches, 1, "only the live request cost an engine run");
}

#[test]
fn batch_of_only_expired_requests_runs_nothing() {
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    let sample = Tensor::rand_uniform(&[1, 6], 1, -1.0, 1.0);
    let t = server.submit_with_deadline(sample, Some(Duration::ZERO)).unwrap();
    std::thread::sleep(Duration::from_millis(2));
    let mut worker = server.manual_worker();
    assert_eq!(worker.step(), StepOutcome::Idle, "nothing left to execute");
    assert_eq!(t.wait().unwrap_err(), ServeError::DeadlineExceeded);
    assert_eq!(server.stats().batches, 0);
}

#[test]
fn shutdown_drains_queued_work_and_rejects_new_work() {
    // With real workers, shutdown lets them drain: everything accepted
    // before the close still completes.
    let server = Server::new(
        tiny_mlp(),
        ServeConfig { workers: 1, max_batch: 8, queue_cap: 8, ..ServeConfig::default() },
    )
    .unwrap();
    let samples: Vec<Tensor> =
        (0..3).map(|i| Tensor::rand_uniform(&[1, 6], 300 + i, -1.0, 1.0)).collect();
    let want = reference_outputs(&samples);
    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();

    server.shutdown();
    assert!(server.is_shutting_down());
    // New work is refused...
    assert_eq!(server.submit(samples[0].clone()).unwrap_err(), ServeError::ShuttingDown);
    // ...but everything accepted before the close still completed.
    for (t, w) in tickets.into_iter().zip(&want) {
        assert!(t.wait().unwrap().all_close(w, 1e-5));
    }

    let snap = server.stats();
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.rejected_closed, 1);
    assert!(snap.is_conserved_at_rest(), "stats must balance after shutdown: {snap:?}");
}

#[test]
fn shutdown_with_no_workers_fails_queued_tickets_instead_of_hanging() {
    // Regression: with workers == 0 there is nobody to drain the queue, so
    // shutdown used to leave queued slots Pending forever and any
    // `Ticket::wait` hung. Now the undrained jobs fail with ShuttingDown.
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    let tickets: Vec<_> = (0..3)
        .map(|i| server.submit(Tensor::rand_uniform(&[1, 6], 300 + i, -1.0, 1.0)).unwrap())
        .collect();

    server.shutdown();
    for t in tickets {
        // Bounded wait: a regression here hangs the test rather than failing.
        match t.wait_timeout(Duration::from_secs(10)) {
            Ok(res) => assert_eq!(res.unwrap_err(), ServeError::ShuttingDown),
            Err(_) => panic!("ticket still pending after shutdown with no workers"),
        }
    }

    let snap = server.stats();
    assert_eq!(snap.failed_shutdown, 3);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.is_conserved_at_rest(), "stats must balance after shutdown: {snap:?}");
}

#[test]
fn wrong_sample_shape_is_named_and_rejected_at_submit() {
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    match server.submit(Tensor::zeros(&[2, 6])).unwrap_err() {
        ServeError::InputShape { name, expected, got } => {
            assert_eq!(name, "x");
            assert_eq!(expected, vec![1, 6]);
            assert_eq!(got, vec![2, 6]);
        }
        other => panic!("expected InputShape, got {other:?}"),
    }
    assert_eq!(server.stats().submitted, 0);
}

#[test]
fn wait_timeout_hands_the_ticket_back() {
    let server = Server::new(tiny_mlp(), manual_config(8, 8)).unwrap();
    let ticket = server.submit(Tensor::rand_uniform(&[1, 6], 1, -1.0, 1.0)).unwrap();
    // No worker has run: the wait times out and returns the ticket.
    let ticket = match ticket.wait_timeout(Duration::from_millis(1)) {
        Err(t) => t,
        Ok(_) => panic!("nothing has executed yet"),
    };
    assert!(!ticket.is_done());
    assert_eq!(server.manual_worker().step(), StepOutcome::Ran(1));
    assert!(ticket.is_done());
    assert!(ticket.wait().is_ok());
}

#[test]
fn non_power_of_two_max_batch_ladder_agrees_with_stats() {
    // max_batch 6 → ladder [1, 2, 4, 6]. A full batch of 6 must land in
    // the histogram's top slot (index size − 1): Stats::new and
    // bucket_ladder have to agree on what the largest executed size is.
    let server = Server::new(tiny_mlp(), manual_config(6, 64)).unwrap();
    assert_eq!(server.buckets(), &[1, 2, 4, 6]);

    let samples: Vec<Tensor> =
        (0..6).map(|i| Tensor::rand_uniform(&[1, 6], 500 + i, -1.0, 1.0)).collect();
    let want = reference_outputs(&samples);
    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    let mut worker = server.manual_worker();
    assert_eq!(worker.step(), StepOutcome::Ran(6));
    for (t, w) in tickets.into_iter().zip(&want) {
        assert!(t.wait().unwrap().all_close(w, 1e-5));
    }

    let snap = server.stats();
    assert_eq!(snap.batch_size_hist.len(), 6, "histogram sized to max_batch");
    assert_eq!(snap.batch_size_hist[5], 1, "batch of 6 lands in the top slot");
    assert!((snap.mean_batch_size() - 6.0).abs() < 1e-9);

    // A gathered batch of 3 pads up to bucket 4 but records its true size.
    let tickets: Vec<_> = samples[..3].iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    assert_eq!(worker.step(), StepOutcome::Ran(3));
    for (t, w) in tickets.into_iter().zip(&want) {
        assert!(t.wait().unwrap().all_close(w, 1e-5));
    }
    assert_eq!(server.stats().batch_size_hist[2], 1);
}

#[test]
fn degenerate_configs_are_typed_build_errors() {
    // These used to be assert!/panic paths; a serving frontend needs a
    // Result it can report, not a crash.
    let cfg = ServeConfig { max_batch: 0, ..ServeConfig::default() };
    assert!(Server::new(tiny_mlp(), cfg).is_err());
    let cfg = ServeConfig { queue_cap: 0, ..ServeConfig::default() };
    assert!(Server::new(tiny_mlp(), cfg).is_err());

    // A graph whose batch dimension isn't first collapses under rebatch:
    // the scalar input makes every bucket fail with a typed Rebatch error.
    let mut g = Graph::new();
    let x = g.input(&[], "s");
    let r = g.relu(x, "r");
    g.mark_output(r);
    let err = match Server::new(g, ServeConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("scalar-input graph must not be servable"),
    };
    assert!(err.to_string().contains("re-batching"), "unexpected error: {err}");
}

#[test]
fn multi_io_graphs_are_rejected_at_build() {
    let mut g = Graph::new();
    let a = g.input(&[1, 4], "a");
    let b = g.input(&[1, 4], "b");
    let s = g.add(&[a, b], "sum");
    g.mark_output(s);
    g.infer_shapes();
    assert!(Server::new(g, ServeConfig::default()).is_err());
}

#[test]
fn threaded_server_serves_concurrent_submitters() {
    let cfg = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        queue_cap: 256,
        default_deadline: None,
    };
    let server = Server::new(tiny_mlp(), cfg).unwrap();
    let samples: Vec<Tensor> =
        (0..32).map(|i| Tensor::rand_uniform(&[1, 6], 400 + i, -1.0, 1.0)).collect();
    let want = reference_outputs(&samples);

    let mut handles = Vec::new();
    for chunk in samples.chunks(8) {
        let server = server.clone();
        let chunk = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            chunk.into_iter().map(|s| server.infer(s).unwrap()).collect::<Vec<Tensor>>()
        }));
    }
    let mut got = Vec::new();
    for h in handles {
        got.extend(h.join().unwrap());
    }
    for (g, w) in got.iter().zip(&want) {
        assert!(g.all_close(w, 1e-5));
    }
    server.shutdown();
    let snap = server.stats();
    assert_eq!(snap.completed, 32);
    assert_eq!(snap.submitted, 32);
    assert!(snap.batches >= 8, "32 requests with max_batch 4 need ≥ 8 batches");
}
