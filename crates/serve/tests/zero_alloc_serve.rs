//! The serving acceptance bar inherited from the runtime: once a bucket
//! is warm, a worker step — pop, gather, stage, run, scatter, complete,
//! record — performs **zero** heap allocations. Submission is allowed to
//! allocate (it builds the job and the preallocated response buffer); the
//! worker hot path is not.
//!
//! Same counting-`#[global_allocator]` technique as the repo-level
//! `zero_alloc` test: a thread-local flag scopes the count to this thread,
//! so only the worker step under test is measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use temco_ir::Graph;
use temco_serve::{ServeConfig, Server, StepOutcome};
use temco_tensor::Tensor;

struct CountingAlloc;

static TRACKED_ALLOCS: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(|t| t.get()).unwrap_or(false) {
            TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, usize) {
    TRACKING.with(|t| t.set(false));
    let before = TRACKED_ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    let r = f();
    TRACKING.with(|t| t.set(false));
    (r, TRACKED_ALLOCS.load(Ordering::Relaxed) - before)
}

fn tiny_mlp() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 1), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 2), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

#[test]
fn warm_worker_step_performs_zero_heap_allocations() {
    let cfg = ServeConfig {
        workers: 0,
        max_batch: 4,
        max_delay: Duration::ZERO,
        queue_cap: 64,
        default_deadline: None,
    };
    let server = Server::new(tiny_mlp(), cfg).unwrap();
    let mut worker = server.manual_worker();
    let samples: Vec<Tensor> =
        (0..4).map(|i| Tensor::rand_uniform(&[1, 6], 50 + i, -1.0, 1.0)).collect();

    // Warm every bucket a measured step will touch (1 and 4): first runs
    // populate lazily-initialized engine/thread-pool state.
    let warm1 = server.submit(samples[0].clone()).unwrap();
    assert_eq!(worker.step(), StepOutcome::Ran(1));
    warm1.wait().unwrap();
    let warm4: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    assert_eq!(worker.step(), StepOutcome::Ran(4));
    for t in warm4 {
        t.wait().unwrap();
    }

    // Steady state, batch of 1.
    let t = server.submit(samples[0].clone()).unwrap();
    let (outcome, allocs) = count_allocs(|| worker.step());
    assert_eq!(outcome, StepOutcome::Ran(1));
    assert_eq!(allocs, 0, "warm batch-1 worker step allocated {allocs} times");
    t.wait().unwrap();

    // Steady state, full batch (gather of 4 + padding-free staging).
    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    let (outcome, allocs) = count_allocs(|| worker.step());
    assert_eq!(outcome, StepOutcome::Ran(4));
    assert_eq!(allocs, 0, "warm batch-4 worker step allocated {allocs} times");
    for t in tickets {
        t.wait().unwrap();
    }

    // An idle step is trivially allocation-free too.
    let (outcome, allocs) = count_allocs(|| worker.step());
    assert_eq!(outcome, StepOutcome::Idle);
    assert_eq!(allocs, 0);
}

#[test]
fn instrumented_worker_step_performs_zero_heap_allocations() {
    // With a preallocated span recorder attached, the worker hot path
    // additionally records gather/stage/run/scatter spans and the split
    // queue-wait/service histograms — and must still not allocate.
    let cfg = ServeConfig {
        workers: 0,
        max_batch: 4,
        max_delay: Duration::ZERO,
        queue_cap: 64,
        default_deadline: None,
    };
    let server = Server::new(tiny_mlp(), cfg).unwrap();
    let mut worker = server.manual_worker();
    worker.attach_recorder(temco_obs::Recorder::with_capacity(256));
    let samples: Vec<Tensor> =
        (0..4).map(|i| Tensor::rand_uniform(&[1, 6], 90 + i, -1.0, 1.0)).collect();

    // Warm both buckets a measured step will touch.
    let warm1 = server.submit(samples[0].clone()).unwrap();
    assert_eq!(worker.step(), StepOutcome::Ran(1));
    warm1.wait().unwrap();
    let warm4: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    assert_eq!(worker.step(), StepOutcome::Ran(4));
    for t in warm4 {
        t.wait().unwrap();
    }

    let tickets: Vec<_> = samples.iter().map(|s| server.submit(s.clone()).unwrap()).collect();
    let (outcome, allocs) = count_allocs(|| worker.step());
    assert_eq!(outcome, StepOutcome::Ran(4));
    assert_eq!(allocs, 0, "instrumented worker step allocated {allocs} times");
    for t in tickets {
        t.wait().unwrap();
    }

    // The recorder saw one span per stage for each executed batch.
    let rec = worker.take_recorder().unwrap();
    use temco_obs::kind;
    for k in [kind::GATHER, kind::STAGE, kind::BATCH_RUN, kind::SCATTER] {
        let n = rec.iter().filter(|e| e.kind == k).count();
        assert_eq!(n, 3, "expected one {} span per executed batch", kind::label(k));
    }
    // The split histograms were fed without perturbing conservation.
    let snap = server.stats();
    assert_eq!(snap.queue_wait_buckets.iter().sum::<u64>(), 9);
    assert_eq!(snap.service_buckets.iter().sum::<u64>(), 9);
    assert!(snap.is_conserved_at_rest());
}
