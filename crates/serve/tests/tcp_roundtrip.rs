//! End-to-end test over the wire: TCP server ↔ blocking client ↔ loadgen.

use std::net::TcpListener;
use std::time::Duration;

use temco_ir::Graph;
use temco_runtime::Engine;
use temco_serve::{loadgen, Client, LoadgenConfig, ServeConfig, Server};
use temco_tensor::Tensor;

fn tiny_mlp() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 6], "x");
    let h = g.linear(x, Tensor::randn(&[5, 6], 1), None, "fc1");
    let r = g.relu(h, "r");
    let y = g.linear(r, Tensor::randn(&[3, 5], 2), None, "fc2");
    g.mark_output(y);
    g.infer_shapes();
    g
}

#[test]
fn tcp_round_trip_matches_reference_and_shuts_down_cleanly() {
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_delay: Duration::from_micros(200),
        queue_cap: 64,
        default_deadline: None,
    };
    let server = Server::new(tiny_mlp(), cfg).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || temco_serve::serve_blocking(server, listener))
    };

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.sample_shape(), &[1, 6]);
    assert_eq!(client.output_shape(), &[1, 3]);

    // Wire inference matches an in-process reference engine bit-for-bit
    // (same plan, batch 1).
    let mut reference = Engine::new(tiny_mlp()).unwrap();
    for seed in 0..4 {
        let sample = Tensor::rand_uniform(&[1, 6], seed, -1.0, 1.0);
        let got = client.infer(sample.data(), 0).unwrap();
        let want = reference.run(std::slice::from_ref(&sample)).unwrap();
        assert_eq!(got.len(), 3);
        for (g, w) in got.iter().zip(want[0].data()) {
            assert!((g - w).abs() <= 1e-5, "wire result diverged: {g} vs {w}");
        }
    }

    // A mis-sized payload is a per-request error, not a dropped connection.
    let err = client.infer(&[0.0; 2], 0).unwrap_err();
    assert!(err.is_rejection(), "expected BAD_REQUEST, got {err:?}");
    assert!(client.infer(&[0.5; 6], 0).is_ok(), "connection survives a bad request");

    // Closed-loop load through the same listener.
    let report = loadgen::run(
        &addr,
        LoadgenConfig { clients: 3, requests_per_client: 16, deadline_ms: 0, seed: 9 },
    )
    .unwrap();
    assert_eq!(report.requests, 48);
    assert_eq!(report.ok, 48);
    assert_eq!(report.errors, 0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.p99_ms >= report.p50_ms);

    let stats = client.stats_text().unwrap();
    assert!(stats.contains("temco-serve stats"));
    assert!(stats.contains("completed"));

    client.shutdown_server().unwrap();
    acceptor.join().unwrap().unwrap();
    assert!(server.is_shutting_down());
    assert_eq!(server.stats().completed, 4 + 1 + 48);
}
