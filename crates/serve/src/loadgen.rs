//! Load generators over the wire protocol: closed-loop and bursty.
//!
//! **Closed loop** ([`run`]): `clients` threads each run
//! `requests_per_client` back-to-back inferences (the next request leaves
//! only when the previous response arrives), so offered concurrency
//! equals the client count. Used by the CLI `loadgen` subcommand and the
//! serving benchmark; client-side latencies are exact (per-request
//! `Instant`s, not histogram-bucketed).
//!
//! **Bursts** ([`run_bursts`]): a single thread pipelines `pipeline`
//! requests onto each of `conns` connections at once, then collects every
//! response, then idles for `gap` — an open-loop arrival pattern that
//! measures *burst absorption*: how much of a simultaneous spike the
//! server admits (pool + shard queues) versus rejects, independent of how
//! fast one core can compute. This is the workload behind the
//! worker-scaling curve: on a machine where added workers cannot add
//! FLOPs, they still multiply admission capacity, and this generator
//! makes that visible (and honest — rejections are counted, not retried).

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use temco_tensor::Tensor;

use crate::client::{Client, ClientError};
use crate::proto::{self, op, status};

/// Load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop connections.
    pub clients: usize,
    /// Requests each connection issues.
    pub requests_per_client: usize,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u32,
    /// Seed for the deterministic input samples.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig { clients: 4, requests_per_client: 64, deadline_ms: 0, seed: 7 }
    }
}

/// Aggregated client-side results.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests answered with an output.
    pub ok: usize,
    /// Requests the server rejected (backpressure, deadline, drain).
    pub rejected: usize,
    /// Transport/protocol failures.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput_rps: f64,
    /// Exact latency percentiles over successful requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0 * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[idx - 1]
}

/// Drive a closed-loop run against `addr`. Errors only if no connection
/// could be established; per-request rejections are counted, not fatal.
pub fn run(addr: &str, cfg: LoadgenConfig) -> Result<LoadReport, ClientError> {
    // Fail fast (and learn the sample shape) before spawning anything.
    let probe = Client::connect(addr)?;
    let shape = probe.sample_shape().to_vec();
    drop(probe);

    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let addr = addr.to_string();
        let shape = shape.clone();
        handles.push(std::thread::spawn(move || {
            let mut lat_ms = Vec::with_capacity(cfg.requests_per_client);
            let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
            let mut client = match Client::connect(&addr) {
                Ok(cl) => cl,
                Err(_) => {
                    return (lat_ms, 0, 0, cfg.requests_per_client);
                }
            };
            let sample = Tensor::rand_uniform(&shape, cfg.seed.wrapping_add(c as u64), -1.0, 1.0);
            for _ in 0..cfg.requests_per_client {
                let t0 = Instant::now();
                match client.infer(sample.data(), cfg.deadline_ms) {
                    Ok(_) => {
                        ok += 1;
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    Err(e) if e.is_rejection() => rejected += 1,
                    Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
            (lat_ms, ok, rejected, errors)
        }));
    }

    let mut all_ms = Vec::new();
    let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
    for h in handles {
        let (lat, o, r, e) = h.join().expect("loadgen client panicked");
        all_ms.extend(lat);
        ok += o;
        rejected += r;
        errors += e;
    }
    let elapsed = start.elapsed();
    all_ms.sort_by(f64::total_cmp);
    let mean_ms =
        if all_ms.is_empty() { 0.0 } else { all_ms.iter().sum::<f64>() / all_ms.len() as f64 };
    Ok(LoadReport {
        requests: cfg.clients * cfg.requests_per_client,
        ok,
        rejected,
        errors,
        elapsed,
        throughput_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&all_ms, 50.0),
        p95_ms: percentile(&all_ms, 95.0),
        p99_ms: percentile(&all_ms, 99.0),
        mean_ms,
    })
}

/// Shape of a bursty open-loop run (see [`run_bursts`]).
#[derive(Clone, Copy, Debug)]
pub struct BurstConfig {
    /// Concurrent connections, all firing simultaneously each burst.
    pub conns: usize,
    /// Requests pipelined back-to-back on each connection per burst.
    pub pipeline: usize,
    /// Number of bursts.
    pub bursts: usize,
    /// Idle time between bursts (lets the fleet drain its backlog).
    pub gap: Duration,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u32,
    /// Seed for the deterministic input samples.
    pub seed: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            conns: 256,
            pipeline: 4,
            bursts: 8,
            gap: Duration::from_millis(300),
            deadline_ms: 0,
            seed: 7,
        }
    }
}

/// Aggregated results of a bursty run.
#[derive(Clone, Debug)]
pub struct BurstReport {
    /// Requests offered (`conns × pipeline × bursts`).
    pub offered: usize,
    /// Requests answered with an output.
    pub ok: usize,
    /// Requests the server rejected (admission, backpressure, deadline).
    pub rejected: usize,
    /// Transport/protocol failures.
    pub errors: usize,
    /// Wall-clock duration of the whole run, gaps included.
    pub elapsed: Duration,
    /// Successful responses per second over the whole run.
    pub throughput_rps: f64,
    /// Fraction of offered requests that were served.
    pub accepted_frac: f64,
    /// Latency percentiles over successful requests, measured from each
    /// burst's start to the response read, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

/// Drive a bursty open-loop run against `addr`: every burst writes
/// `conns × pipeline` requests near-simultaneously, then reads every
/// response (the server answers each with an output or a rejection
/// frame), then sleeps `gap`. Single-threaded — concurrency comes from
/// pipelining on blocking sockets, whose small writes never block on
/// loopback — so it also exercises the server's many-connections path
/// without a thread per connection on *either* side.
pub fn run_bursts(addr: &str, cfg: BurstConfig) -> Result<BurstReport, ClientError> {
    let probe = Client::connect(addr)?;
    let shape = probe.sample_shape().to_vec();
    drop(probe);

    // One reusable request frame per connection (distinct sample data).
    let mut streams = Vec::with_capacity(cfg.conns);
    let mut frames = Vec::with_capacity(cfg.conns);
    for c in 0..cfg.conns {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        streams.push(stream);
        let sample = Tensor::rand_uniform(&shape, cfg.seed.wrapping_add(c as u64), -1.0, 1.0);
        let mut payload = Vec::with_capacity(4 + sample.data().len() * 4);
        payload.extend_from_slice(&cfg.deadline_ms.to_le_bytes());
        proto::put_f32s(&mut payload, sample.data());
        let mut framed = Vec::with_capacity(5 + payload.len());
        proto::write_frame(&mut framed, op::INFER, &payload)?;
        frames.push(framed);
    }

    let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
    let mut lat_ms: Vec<f64> = Vec::with_capacity(cfg.conns * cfg.pipeline * cfg.bursts);
    let start = Instant::now();
    for burst in 0..cfg.bursts {
        let t0 = Instant::now();
        for (stream, framed) in streams.iter_mut().zip(&frames) {
            for _ in 0..cfg.pipeline {
                if stream.write_all(framed).is_err() {
                    errors += cfg.pipeline;
                    break;
                }
            }
        }
        for stream in streams.iter_mut() {
            for _ in 0..cfg.pipeline {
                match proto::read_frame(stream) {
                    Ok(Some((status::OK, _))) => {
                        ok += 1;
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    Ok(Some(_)) => rejected += 1,
                    Ok(None) | Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
        }
        if burst + 1 < cfg.bursts {
            std::thread::sleep(cfg.gap);
        }
    }
    let elapsed = start.elapsed();
    let offered = cfg.conns * cfg.pipeline * cfg.bursts;
    lat_ms.sort_by(f64::total_cmp);
    Ok(BurstReport {
        offered,
        ok,
        rejected,
        errors,
        elapsed,
        throughput_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        accepted_frac: ok as f64 / offered.max(1) as f64,
        p50_ms: percentile(&lat_ms, 50.0),
        p95_ms: percentile(&lat_ms, 95.0),
        p99_ms: percentile(&lat_ms, 99.0),
    })
}
