//! Closed-loop load generator over the TCP client.
//!
//! `clients` threads each run `requests_per_client` back-to-back
//! inferences (closed loop: the next request leaves only when the
//! previous response arrives), so offered concurrency equals the client
//! count. Used by the CLI `loadgen` subcommand and the serving benchmark;
//! client-side latencies are exact (per-request `Instant`s, not
//! histogram-bucketed).

use std::time::{Duration, Instant};

use temco_tensor::Tensor;

use crate::client::{Client, ClientError};

/// Load shape.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop connections.
    pub clients: usize,
    /// Requests each connection issues.
    pub requests_per_client: usize,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u32,
    /// Seed for the deterministic input samples.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig { clients: 4, requests_per_client: 64, deadline_ms: 0, seed: 7 }
    }
}

/// Aggregated client-side results.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests answered with an output.
    pub ok: usize,
    /// Requests the server rejected (backpressure, deadline, drain).
    pub rejected: usize,
    /// Transport/protocol failures.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput_rps: f64,
    /// Exact latency percentiles over successful requests, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0 * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[idx - 1]
}

/// Drive a closed-loop run against `addr`. Errors only if no connection
/// could be established; per-request rejections are counted, not fatal.
pub fn run(addr: &str, cfg: LoadgenConfig) -> Result<LoadReport, ClientError> {
    // Fail fast (and learn the sample shape) before spawning anything.
    let probe = Client::connect(addr)?;
    let shape = probe.sample_shape().to_vec();
    drop(probe);

    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let addr = addr.to_string();
        let shape = shape.clone();
        handles.push(std::thread::spawn(move || {
            let mut lat_ms = Vec::with_capacity(cfg.requests_per_client);
            let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
            let mut client = match Client::connect(&addr) {
                Ok(cl) => cl,
                Err(_) => {
                    return (lat_ms, 0, 0, cfg.requests_per_client);
                }
            };
            let sample = Tensor::rand_uniform(&shape, cfg.seed.wrapping_add(c as u64), -1.0, 1.0);
            for _ in 0..cfg.requests_per_client {
                let t0 = Instant::now();
                match client.infer(sample.data(), cfg.deadline_ms) {
                    Ok(_) => {
                        ok += 1;
                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    Err(e) if e.is_rejection() => rejected += 1,
                    Err(_) => {
                        errors += 1;
                        break;
                    }
                }
            }
            (lat_ms, ok, rejected, errors)
        }));
    }

    let mut all_ms = Vec::new();
    let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
    for h in handles {
        let (lat, o, r, e) = h.join().expect("loadgen client panicked");
        all_ms.extend(lat);
        ok += o;
        rejected += r;
        errors += e;
    }
    let elapsed = start.elapsed();
    all_ms.sort_by(f64::total_cmp);
    let mean_ms =
        if all_ms.is_empty() { 0.0 } else { all_ms.iter().sum::<f64>() / all_ms.len() as f64 };
    Ok(LoadReport {
        requests: cfg.clients * cfg.requests_per_client,
        ok,
        rejected,
        errors,
        elapsed,
        throughput_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&all_ms, 50.0),
        p95_ms: percentile(&all_ms, 95.0),
        p99_ms: percentile(&all_ms, 99.0),
        mean_ms,
    })
}
