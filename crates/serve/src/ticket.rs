//! Per-request completion: a one-shot slot the worker fills.
//!
//! The output tensor is **preallocated at submission time** (the submitter
//! knows the model's per-sample output shape), so completing a request on
//! the worker is a `copy_from_slice` plus a state flip under a mutex —
//! no allocation on the serving hot path.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use temco_tensor::Tensor;

use crate::error::ServeError;

enum SlotState {
    /// Waiting for a worker; holds the preallocated output buffer.
    Pending(Tensor),
    /// Finished; holds the result until the ticket claims it.
    Done(Result<Tensor, ServeError>),
    /// The ticket took the result (terminal).
    Taken,
}

pub(crate) struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    /// A pending slot owning the output buffer the worker will fill.
    pub fn pending(output: Tensor) -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Pending(output)), done: Condvar::new() })
    }

    /// Fill the preallocated buffer with one sample's output row and mark
    /// the request done. No-op if already completed. Allocation-free.
    pub fn complete_ok(&self, row: &[f32]) {
        let mut st = self.state.lock().unwrap();
        if let SlotState::Pending(_) = *st {
            let SlotState::Pending(mut buf) = std::mem::replace(&mut *st, SlotState::Taken) else {
                unreachable!("checked Pending above");
            };
            buf.data_mut().copy_from_slice(row);
            *st = SlotState::Done(Ok(buf));
            drop(st);
            self.done.notify_all();
        }
    }

    /// Fail the request (deadline expiry, shutdown). No-op if already
    /// completed.
    pub fn complete_err(&self, e: ServeError) {
        let mut st = self.state.lock().unwrap();
        if let SlotState::Pending(_) = *st {
            *st = SlotState::Done(Err(e));
            drop(st);
            self.done.notify_all();
        }
    }
}

/// Handle to one in-flight request, returned by [`crate::Server::submit`].
/// Blocking-wait for the result; dropping the ticket abandons the request
/// (the worker still executes it, the result is discarded).
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
    pub(crate) enqueued: Instant,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

impl Ticket {
    /// Block until the request completes and take the result.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Done(res) => return res,
                pending @ SlotState::Pending(_) => {
                    *st = pending;
                    st = self.slot.done.wait(st).unwrap();
                }
                SlotState::Taken => unreachable!("Ticket::wait consumes the only taker"),
            }
        }
    }

    /// Block until the request completes or `timeout` elapses; `Err(self)`
    /// gives the ticket back on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Tensor, ServeError>, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Done(res) => return Ok(res),
                pending @ SlotState::Pending(_) => {
                    *st = pending;
                    let now = Instant::now();
                    if now >= deadline {
                        drop(st);
                        return Err(self);
                    }
                    st = self.slot.done.wait_timeout(st, deadline - now).unwrap().0;
                }
                SlotState::Taken => unreachable!("Ticket::wait consumes the only taker"),
            }
        }
    }

    /// Whether the request has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), SlotState::Done(_))
    }

    /// When the request entered the queue.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }
}
