//! Per-request completion: a one-shot slot the worker fills.
//!
//! The output tensor is **preallocated at submission time** (the submitter
//! knows the model's per-sample output shape), so completing a request on
//! the worker is a `copy_from_slice` plus a state flip under a mutex —
//! no allocation on the serving hot path.
//!
//! Slots are also the unit of **buffer recycling** for the event-driven
//! connection plane: completion hands the request's input tensor back
//! through the slot (`complete_ok_returning` / `complete_err_returning`),
//! and the error path keeps the preallocated output buffer instead of
//! dropping it. The event loop reclaims both with [`Slot::try_recycle`]
//! and re-arms the slot for the next request with [`Slot::rearm`], so a
//! pooled request context cycles through accept → execute → respond
//! without ever touching the heap.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use temco_tensor::Tensor;

use crate::error::ServeError;

enum SlotState {
    /// Waiting for a worker; holds the preallocated output buffer.
    Pending(Tensor),
    /// Finished; holds the verdict, the output buffer (filled on success,
    /// untouched on failure), and — when the completer used a
    /// `*_returning` variant — the request's input tensor for recycling.
    Done { verdict: Result<(), ServeError>, output: Tensor, input: Option<Tensor> },
    /// The result was claimed (by `Ticket::wait` or `try_recycle`).
    Taken,
}

pub(crate) struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    /// A pending slot owning the output buffer the worker will fill.
    pub fn pending(output: Tensor) -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Pending(output)), done: Condvar::new() })
    }

    /// An idle slot with no request armed — the parked state of a pooled
    /// request context. Arm it with [`Slot::rearm`] before submission.
    pub fn idle() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Taken), done: Condvar::new() })
    }

    /// Fill the preallocated buffer with one sample's output row, mark
    /// the request done, and hand the request's input tensor back through
    /// the slot so a pooled context can reclaim it. No-op if already
    /// completed. Allocation-free.
    pub fn complete_ok_returning(&self, row: &[f32], input: Tensor) {
        self.finish(Ok(()), Some(row), Some(input));
    }

    /// Fail the request (deadline expiry, shutdown), returning the input
    /// tensor for recycling. No-op if already completed. The output
    /// buffer is kept in the slot for recycling too.
    pub fn complete_err_returning(&self, e: ServeError, input: Tensor) {
        self.finish(Err(e), None, Some(input));
    }

    fn finish(&self, verdict: Result<(), ServeError>, row: Option<&[f32]>, input: Option<Tensor>) {
        let mut st = self.state.lock().unwrap();
        if let SlotState::Pending(_) = *st {
            let SlotState::Pending(mut buf) = std::mem::replace(&mut *st, SlotState::Taken) else {
                unreachable!("checked Pending above");
            };
            if let Some(row) = row {
                buf.data_mut().copy_from_slice(row);
            }
            *st = SlotState::Done { verdict, output: buf, input };
            drop(st);
            self.done.notify_all();
        }
    }

    /// Non-blocking claim of a finished request's verdict and buffers,
    /// leaving the slot `Taken` (idle). `None` while still pending.
    /// Allocation-free — this is the event loop's completion hot path.
    pub fn try_recycle(&self) -> Option<(Result<(), ServeError>, Tensor, Option<Tensor>)> {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, SlotState::Taken) {
            SlotState::Done { verdict, output, input } => Some((verdict, output, input)),
            other @ SlotState::Pending(_) => {
                *st = other;
                None
            }
            SlotState::Taken => None,
        }
    }

    /// Re-arm an idle slot with a fresh output buffer for the next
    /// request. Panics if a request is still in flight — pooled contexts
    /// only rearm after `try_recycle` (or before first use).
    pub fn rearm(&self, output: Tensor) {
        let mut st = self.state.lock().unwrap();
        match *st {
            SlotState::Taken => *st = SlotState::Pending(output),
            _ => panic!("rearming a slot with a request still in flight"),
        }
    }

    /// Take back the output buffer of an armed-but-never-submitted slot
    /// (submission was rejected after `rearm`). Panics unless pending.
    pub fn disarm(&self) -> Tensor {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, SlotState::Taken) {
            SlotState::Pending(buf) => buf,
            _ => panic!("disarming a slot that is not pending"),
        }
    }
}

/// Handle to one in-flight request, returned by [`crate::Server::submit`].
/// Blocking-wait for the result; dropping the ticket abandons the request
/// (the worker still executes it, the result is discarded).
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
    pub(crate) enqueued: Instant,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &self.is_done())
            .field("enqueued", &self.enqueued)
            .finish()
    }
}

impl Ticket {
    /// Block until the request completes and take the result.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Done { verdict, output, .. } => return verdict.map(|()| output),
                pending @ SlotState::Pending(_) => {
                    *st = pending;
                    st = self.slot.done.wait(st).unwrap();
                }
                SlotState::Taken => unreachable!("Ticket::wait consumes the only taker"),
            }
        }
    }

    /// Block until the request completes or `timeout` elapses; `Err(self)`
    /// gives the ticket back on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Tensor, ServeError>, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Done { verdict, output, .. } => return Ok(verdict.map(|()| output)),
                pending @ SlotState::Pending(_) => {
                    *st = pending;
                    let now = Instant::now();
                    if now >= deadline {
                        drop(st);
                        return Err(self);
                    }
                    st = self.slot.done.wait_timeout(st, deadline - now).unwrap().0;
                }
                SlotState::Taken => unreachable!("Ticket::wait consumes the only taker"),
            }
        }
    }

    /// Whether the request has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), SlotState::Done { .. })
    }

    /// When the request entered the queue.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }
}
