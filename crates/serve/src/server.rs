//! The server: plan cache, sharded request queues, worker threads,
//! lifecycle.
//!
//! `Server::new` does all the expensive work up front — it compiles the
//! model once per batch-size bucket (1, 2, 4, …, `max_batch`) into a
//! shared, immutable plan cache. Buckets are `Graph::rebatch` clones, so
//! all of them (and every worker) reference **one** copy of the weights;
//! a worker's only private memory is its slabs. After startup the hot
//! path never plans: a gathered batch of n requests pads to the smallest
//! bucket ≥ n and runs that bucket's precompiled engine.
//!
//! Requests are **sharded**: each worker owns a private bounded queue
//! (`queue_cap` deep) and drains only it — no cross-worker contention on
//! a shared lock, and shutdown drains per worker. Submissions route by
//! power-of-two-choices: pick two shards round-robin, enqueue on the
//! shorter, falling over to the other if the first is full. Total
//! admitted backlog therefore scales with the worker count, which is
//! what makes added workers absorb bursts even when a single core caps
//! steady-state compute.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use temco_ir::Graph;
use temco_runtime::CompiledGraph;
use temco_tensor::Tensor;

use crate::error::{BuildError, ServeError};
use crate::queue::{JobQueue, PushError};
use crate::stats::{Stats, StatsSnapshot};
use crate::ticket::{Slot, Ticket};
use crate::worker::{Job, Worker};

/// Serving parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads. `0` spawns none — drive inference manually with
    /// [`Server::manual_worker`] (synchronous embedding, tests).
    pub workers: usize,
    /// Largest executed batch (and largest plan-cache bucket).
    pub max_batch: usize,
    /// How long a worker holds an incomplete batch open for late arrivals.
    pub max_delay: Duration,
    /// Bounded **per-worker** queue capacity; submissions beyond every
    /// shard's capacity are rejected. Size it to the backlog one worker
    /// can clear within the latency budget — total admitted backlog is
    /// then `workers × queue_cap` and scales with the fleet.
    pub queue_cap: usize,
    /// Deadline applied to [`Server::submit`] (none by default);
    /// [`Server::submit_with_deadline`] overrides per request.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_cap: 64,
            default_deadline: None,
        }
    }
}

/// Hook the event loop installs to be woken (via eventfd) whenever a
/// worker settles a batch of slots.
pub(crate) type BatchHook = Arc<dyn Fn() + Send + Sync>;

/// State shared by submitters and workers.
pub(crate) struct Core {
    /// One bounded queue per worker (a single shard with `workers: 0` so
    /// manual mode still has somewhere to enqueue).
    pub shards: Box<[JobQueue]>,
    /// Round-robin cursor for two-choice routing.
    rr: AtomicUsize,
    pub stats: Stats,
    /// Bucket batch sizes, ascending; the last equals `cfg.max_batch`.
    pub buckets: Vec<usize>,
    /// Precompiled plan per bucket (parallel to `buckets`).
    pub plans: Vec<Arc<CompiledGraph>>,
    /// Per-sample input shape, `[1, …]`.
    pub sample_shape: Vec<usize>,
    /// Per-sample output shape, `[1, …]`.
    pub output_shape: Vec<usize>,
    pub sample_numel: usize,
    pub output_numel: usize,
    /// Graph input name, for shape-mismatch reports.
    pub input_name: String,
    pub cfg: ServeConfig,
    /// Called by workers after each settled batch (and by shutdown's
    /// undrained-job sweep) so the event loop can harvest completions.
    batch_hook: RwLock<Option<BatchHook>>,
}

impl Core {
    /// Route a job to a shard: power-of-two-choices on queue depth, with
    /// a fallover push to the other candidate when the first is full.
    /// Returns the job on rejection so the caller can reclaim its
    /// buffers. Allocation-free.
    pub fn route(&self, job: Job) -> Result<(), PushError> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].push(job);
        }
        let t = self.rr.fetch_add(1, Relaxed);
        let a = t % n;
        let mut b = (t >> 1) % n;
        if a == b {
            b = (b + 1) % n;
        }
        let (first, second) =
            if self.shards[a].len() <= self.shards[b].len() { (a, b) } else { (b, a) };
        match self.shards[first].push(job) {
            Ok(()) => Ok(()),
            Err(PushError::Full(job)) => self.shards[second].push(job),
            Err(closed) => Err(closed),
        }
    }

    /// Jobs currently queued across every shard.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(JobQueue::len).sum()
    }

    /// Per-shard queue depths, in worker order.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(JobQueue::len).collect()
    }

    /// Stop accepting work on every shard (workers drain and exit).
    pub fn close(&self) {
        for q in self.shards.iter() {
            q.close();
        }
    }

    pub fn is_closed(&self) -> bool {
        self.shards[0].is_closed()
    }

    /// Install (or clear) the settled-batch hook.
    pub fn set_batch_hook(&self, hook: Option<BatchHook>) {
        *self.batch_hook.write().unwrap() = hook;
    }

    /// Fire the settled-batch hook, if installed. Called by workers after
    /// each executed or shed batch; allocation-free (an `eventfd` write).
    pub fn notify_batch_done(&self) {
        if let Some(hook) = self.batch_hook.read().unwrap().as_ref() {
            hook();
        }
    }
}

struct Inner {
    core: Arc<Core>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    slab_bytes_per_worker: usize,
}

/// A dynamic-batching inference server over a compiled model. Cheaply
/// cloneable (all clones share one instance); any clone may submit,
/// snapshot stats, or initiate shutdown.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

/// Power-of-two bucket ladder `1, 2, 4, …` capped and topped by
/// `max_batch` itself.
fn bucket_ladder(max_batch: usize) -> Vec<usize> {
    let mut buckets = Vec::new();
    let mut b = 1;
    while b < max_batch {
        buckets.push(b);
        b *= 2;
    }
    buckets.push(max_batch);
    buckets
}

impl Server {
    /// Compile `graph` into the bucketed plan cache and start
    /// `cfg.workers` worker threads. The graph may have been built at any
    /// batch size — it is re-batched per bucket, sharing its weights.
    pub fn new(graph: Graph, cfg: ServeConfig) -> Result<Server, BuildError> {
        if cfg.max_batch == 0 {
            return Err(BuildError::Unsupported("max_batch must be positive".into()));
        }
        if cfg.queue_cap == 0 {
            return Err(BuildError::Unsupported("queue_cap must be positive".into()));
        }
        if graph.inputs.len() != 1 || graph.outputs.len() != 1 {
            return Err(BuildError::Unsupported(format!(
                "serving requires exactly one input and one output, got {} and {}",
                graph.inputs.len(),
                graph.outputs.len()
            )));
        }

        let buckets = bucket_ladder(cfg.max_batch);
        let mut plans = Vec::with_capacity(buckets.len());
        for &b in &buckets {
            let bucketed =
                graph.try_rebatch(b).map_err(|source| BuildError::Rebatch { bucket: b, source })?;
            debug_assert!(bucketed.weights.shares_storage_with(&graph.weights));
            plans.push(Arc::new(
                CompiledGraph::new(bucketed)
                    .map_err(|source| BuildError::Compile { bucket: b, source })?,
            ));
        }

        let (sample_shape, output_shape, input_name) = {
            let g1 = plans[0].graph();
            let input = g1.inputs[0];
            (
                g1.shape(input).to_vec(),
                g1.shape(g1.outputs[0]).to_vec(),
                g1.values[input.0 as usize].name.clone(),
            )
        };
        let n_shards = cfg.workers.max(1);
        let core = Arc::new(Core {
            shards: (0..n_shards).map(|_| JobQueue::new(cfg.queue_cap)).collect(),
            rr: AtomicUsize::new(0),
            stats: Stats::new(cfg.max_batch, cfg.workers),
            buckets,
            plans,
            sample_numel: sample_shape.iter().product(),
            output_numel: output_shape.iter().product(),
            sample_shape,
            output_shape,
            input_name,
            cfg,
            batch_hook: RwLock::new(None),
        });

        // Every worker allocates one slab per bucket; everything else
        // (weights, plans, graph structure) is shared.
        let slab_bytes_per_worker: usize = core.plans.iter().map(|p| p.slab_bytes()).sum();
        core.stats.workers.set(cfg.workers as f64);
        core.stats.slab_bytes_per_worker.set(slab_bytes_per_worker as f64);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let worker = Worker::new(core.clone(), i);
            let spawned = std::thread::Builder::new()
                .name(format!("temco-serve-{i}"))
                .spawn(move || worker.run());
            match spawned {
                Ok(h) => handles.push(h),
                Err(source) => {
                    // Recoverable: unwind the workers already running so
                    // the partial server leaves nothing behind.
                    core.close();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(BuildError::Spawn { worker: i, source });
                }
            }
        }

        Ok(Server {
            inner: Arc::new(Inner { core, workers: Mutex::new(handles), slab_bytes_per_worker }),
        })
    }

    /// Submit one sample (shape `[1, …]`) with the configured default
    /// deadline. Non-blocking: a full queue rejects immediately.
    pub fn submit(&self, sample: Tensor) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(sample, self.inner.core.cfg.default_deadline)
    }

    /// Submit with an explicit deadline (measured from now). A request
    /// whose deadline expires in the queue fails with
    /// [`ServeError::DeadlineExceeded`] without being executed.
    pub fn submit_with_deadline(
        &self,
        sample: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let core = &self.inner.core;
        if sample.shape() != core.sample_shape {
            return Err(ServeError::InputShape {
                name: core.input_name.clone(),
                expected: core.sample_shape.clone(),
                got: sample.shape().to_vec(),
            });
        }
        let now = Instant::now();
        let slot = Slot::pending(Tensor::zeros(&core.output_shape));
        let job = Job {
            input: sample,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            slot: slot.clone(),
        };
        match core.route(job) {
            Ok(()) => {
                core.stats.submitted.inc();
                Ok(Ticket { slot, enqueued: now })
            }
            Err(PushError::Full(_)) => {
                core.stats.rejected_full.inc();
                Err(ServeError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                core.stats.rejected_closed.inc();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submit-and-wait convenience for blocking callers.
    pub fn infer(&self, sample: Tensor) -> Result<Tensor, ServeError> {
        self.submit(sample)?.wait()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsSnapshot {
        let core = &self.inner.core;
        let st = &core.stats;
        StatsSnapshot {
            submitted: st.submitted.get(),
            completed: st.completed.get(),
            rejected_full: st.rejected_full.get(),
            rejected_closed: st.rejected_closed.get(),
            rejected_admission: st.rejected_admission.get(),
            deadline_expired: st.deadline_expired.get(),
            failed_shutdown: st.failed_shutdown.get(),
            batches: st.batches.get(),
            batch_slots: st.batch_slots.get(),
            bytes_moved: st.bytes_moved.get(),
            queue_depth: core.queue_depth(),
            latency_buckets: st.latency_histogram(),
            queue_wait_buckets: st.queue_wait_histogram(),
            service_buckets: st.service_histogram(),
            batch_size_hist: st.batch_histogram(),
            workers: core.cfg.workers,
            slab_bytes_per_worker: self.inner.slab_bytes_per_worker,
            shard_depths: core.shard_depths(),
            worker_busy_us: st.worker_busy_us.iter().map(|c| c.get()).collect(),
            worker_batches: st.worker_batches.iter().map(|c| c.get()).collect(),
            conns_accepted: st.conns_accepted.get(),
            conns_refused: st.conns_refused.get(),
            conns_closed_idle: st.conns_closed_idle.get(),
            open_conns: st.open_conns.get() as u64,
        }
    }

    /// Prometheus text exposition of the metrics plane: request counters
    /// (rejects and failures labeled by cause), total and per-worker
    /// queue depths, batch-window occupancy, connection-plane counters,
    /// and the latency / queue-wait / service-time histograms. Served
    /// over the wire as the `METRICS` opcode; scrape-path only —
    /// allocates freely.
    pub fn prometheus_metrics(&self) -> String {
        let core = &self.inner.core;
        core.stats.render_prometheus(&core.shard_depths())
    }

    /// Per-sample input shape the server expects (`[1, …]`).
    pub fn sample_shape(&self) -> &[usize] {
        &self.inner.core.sample_shape
    }

    /// Per-sample output shape (`[1, …]`).
    pub fn output_shape(&self) -> &[usize] {
        &self.inner.core.output_shape
    }

    /// The bucket ladder of the plan cache.
    pub fn buckets(&self) -> &[usize] {
        &self.inner.core.buckets
    }

    /// A manually-stepped worker over this server's first shard and plan
    /// cache. Use with `workers: 0` for synchronous embedding or
    /// deterministic tests; see [`Worker::step`].
    pub fn manual_worker(&self) -> Worker {
        Worker::new(self.inner.core.clone(), 0)
    }

    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.inner.core
    }

    /// Graceful shutdown: stop accepting work, let each worker drain its
    /// shard, and join them. Idempotent; any clone may call it.
    ///
    /// With `workers: 0` (manual mode) there is nobody to drain the queue,
    /// so any jobs still enqueued are failed with
    /// [`ServeError::ShuttingDown`] — their tickets unblock instead of
    /// hanging forever.
    pub fn shutdown(&self) {
        self.inner.core.close();
        let handles = std::mem::take(&mut *self.inner.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        fail_undrained(&self.inner.core);
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.core.is_closed()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.core.close();
        for h in std::mem::take(&mut *self.workers.lock().unwrap()) {
            let _ = h.join();
        }
        fail_undrained(&self.core);
    }
}

/// Fail every job still queued after the workers have exited (workers drain
/// their shards before exiting, so this only fires in `workers: 0` manual
/// mode or if a worker died). Keeps the stats conservation law intact:
/// every submitted job settles as completed, expired, or failed-shutdown.
fn fail_undrained(core: &Core) {
    let mut any = false;
    for q in core.shards.iter() {
        while let Some(job) = q.try_pop() {
            job.slot.complete_err_returning(ServeError::ShuttingDown, job.input);
            core.stats.failed_shutdown.inc();
            any = true;
        }
    }
    if any {
        core.notify_batch_done();
    }
}
