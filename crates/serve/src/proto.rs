//! The wire protocol: tiny, length-prefixed, dependency-free.
//!
//! Every message is one frame:
//!
//! ```text
//! [u32 LE payload length] [u8 tag] [payload]
//! ```
//!
//! Request tags are [`op`] codes; response tags are [`status`] codes.
//! `INFER` payloads are a `u32` deadline in milliseconds (0 = none)
//! followed by the sample as little-endian `f32`s (the shape is fixed by
//! the served model and discoverable via `INFO`). `OK` responses to
//! `INFER` carry the output `f32`s; error responses carry a UTF-8
//! message; `INFO` responses carry `u32 ndim, dims…` twice (input shape,
//! then output shape); `STATS` responses carry the plain-text stats dump;
//! `METRICS` responses carry the Prometheus text scrape.

use std::io::{self, Read, Write};

/// Request opcodes.
pub mod op {
    /// Run one sample through the model.
    pub const INFER: u8 = 0;
    /// Fetch the plain-text stats dump.
    pub const STATS: u8 = 1;
    /// Fetch input/output shapes.
    pub const INFO: u8 = 2;
    /// Drain and stop the server.
    pub const SHUTDOWN: u8 = 3;
    /// Fetch the Prometheus text scrape of the metrics plane.
    pub const METRICS: u8 = 4;
}

/// Response status codes.
pub mod status {
    pub const OK: u8 = 0;
    pub const QUEUE_FULL: u8 = 1;
    pub const DEADLINE_EXCEEDED: u8 = 2;
    pub const SHUTTING_DOWN: u8 = 3;
    pub const BAD_REQUEST: u8 = 4;
}

/// Refuse frames above this size (a corrupt or hostile length prefix must
/// not become a giant allocation).
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame.
///
/// The [`MAX_FRAME`] cap is enforced on the send side too: an oversized
/// payload is refused with `InvalidInput` **before any byte is written**, so
/// the stream stays at a frame boundary. (The old behavior — truncating the
/// length prefix through the `as u32` cast and then writing the full
/// payload — desynchronized every subsequent frame on the connection.)
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("refusing to send a {}-byte frame (cap {MAX_FRAME})", payload.len()),
        ));
    }
    // MAX_FRAME < u32::MAX, so the length now provably fits the prefix.
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

/// Append `values` to `out` as little-endian bytes.
pub fn put_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a little-endian `f32` slice; errors on a ragged byte count.
pub fn get_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("f32 payload of {} bytes is not a multiple of 4", bytes.len()),
        ));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Append a shape as `u32 ndim, u32 dims…`.
pub fn put_shape(out: &mut Vec<u8>, shape: &[usize]) {
    out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
    for &d in shape {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
}

/// Read a shape back; advances `*pos`.
pub fn get_shape(bytes: &[u8], pos: &mut usize) -> io::Result<Vec<usize>> {
    let ndim = get_u32(bytes, pos)? as usize;
    (0..ndim).map(|_| Ok(get_u32(bytes, pos)? as usize)).collect()
}

pub fn get_u32(bytes: &[u8], pos: &mut usize) -> io::Result<u32> {
    let end = *pos + 4;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated frame"))?;
    *pos = end;
    Ok(u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::INFER, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, op::STATS, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((op::INFER, vec![1, 2, 3])));
        assert_eq!(read_frame(&mut r).unwrap(), Some((op::STATS, vec![])));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.push(op::INFER);
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn oversized_writes_are_refused_without_desyncing_the_stream() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, op::INFER, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Nothing was written: the next frame starts at a clean boundary
        // and round-trips.
        assert!(buf.is_empty(), "a refused frame must not leave partial bytes");
        write_frame(&mut buf, op::STATS, &[7]).unwrap();
        assert_eq!(read_frame(&mut &buf[..]).unwrap(), Some((op::STATS, vec![7])));
    }

    #[test]
    fn max_frame_fits_the_length_prefix() {
        // The send-side guard relies on this: anything ≤ MAX_FRAME can be
        // encoded in the u32 prefix without truncation.
        assert!(MAX_FRAME < u32::MAX as usize);
    }

    #[test]
    fn f32_and_shape_roundtrip() {
        let mut payload = Vec::new();
        put_shape(&mut payload, &[1, 3, 64, 64]);
        put_f32s(&mut payload, &[1.5, -2.25]);
        let mut pos = 0;
        assert_eq!(get_shape(&payload, &mut pos).unwrap(), vec![1, 3, 64, 64]);
        assert_eq!(get_f32s(&payload[pos..]).unwrap(), vec![1.5, -2.25]);
        assert!(get_f32s(&[0u8; 3]).is_err());
        let mut pos = 0;
        assert!(get_shape(&[9, 0, 0, 0], &mut pos).is_err());
    }
}
