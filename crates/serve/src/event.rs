//! The event-driven connection plane: one thread, epoll readiness, a
//! fixed connection table, and zero allocation per request.
//!
//! Replaces thread-per-connection for the serving front end. A single
//! loop multiplexes every client over nonblocking sockets:
//!
//! * **Incremental framing** — each connection owns a preallocated read
//!   buffer sized for one `INFER` frame and parses the length-prefixed
//!   protocol byte-at-a-time-tolerant (a slow-loris client costs one
//!   table slot, not a thread). Oversized-but-legal frames are skipped in
//!   place and answered `BAD_REQUEST`; hostile length prefixes close the
//!   connection.
//! * **Pooled request contexts** — admission control is a preallocated
//!   pool of `(input, output, slot)` triples sized to
//!   `shards × (queue_cap + max_batch)`: exactly the work the fleet can
//!   hold. Pool exhausted ⇒ reject with a prebuilt `QUEUE_FULL` frame and
//!   a cause-labeled counter, allocation-free. Completions recycle the
//!   triple through [`Slot::try_recycle`].
//! * **Wakeups, not polling** — workers fire the server's batch hook
//!   (an eventfd write) after every settled batch; the loop wakes, pumps
//!   finished slots into per-connection write buffers, and flushes.
//! * **Per-client fairness** — a connection with `max_inflight` responses
//!   outstanding stops being read (its `EPOLLIN` interest is dropped)
//!   until completions drain, so one flooding client cannot monopolize
//!   the admission pool or starve its neighbours.
//! * **Idle reaping** — connections quiet past the idle timeout are
//!   closed by a periodic sweep, so thousands of idle sockets cost table
//!   slots and buffers, never threads.
//!
//! The hot path (readable socket → frame → dispatch → completion →
//! response bytes) performs no heap allocation; the control path (STATS /
//! INFO / METRICS / accept / close) allocates freely.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use temco_tensor::Tensor;

use crate::error::ServeError;
use crate::proto::{self, op, status, MAX_FRAME};
use crate::queue::PushError;
use crate::server::{Core, Server};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::tcp::EventConfig;
use crate::ticket::Slot;
use crate::worker::Job;

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Prebuilt error/rejection frames, indexed by these constants — hot-path
/// rejections are a bounds-checked slice copy, never a format.
const ERR_QUEUE_FULL: u8 = 0;
const ERR_ADMISSION: u8 = 1;
const ERR_SHUTTING_DOWN: u8 = 2;
const ERR_DEADLINE: u8 = 3;
const ERR_BAD_INFER: u8 = 4;
const ERR_TOO_BIG: u8 = 5;
const ERR_BAD_OP: u8 = 6;
const ERR_INTERNAL: u8 = 7;
const N_ERR: usize = 8;

fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(payload);
    buf
}

fn build_err_frames() -> [Vec<u8>; N_ERR] {
    [
        frame(status::QUEUE_FULL, b"request queue is full"),
        frame(status::QUEUE_FULL, b"server overloaded: in-flight pool exhausted"),
        frame(status::SHUTTING_DOWN, b"server is shutting down"),
        frame(status::DEADLINE_EXCEEDED, b"deadline expired before the request was executed"),
        frame(status::BAD_REQUEST, b"malformed INFER payload"),
        frame(status::BAD_REQUEST, b"frame exceeds the per-connection buffer"),
        frame(status::BAD_REQUEST, b"unknown opcode"),
        frame(status::BAD_REQUEST, b"internal serving error"),
    ]
}

/// A pooled request context: the preallocated buffers one in-flight
/// request occupies. `input` is moved into the [`Job`], `output` is armed
/// into the slot; completion hands both back and the triple returns to
/// the pool.
struct ReqCtx {
    input: Tensor,
    output: Tensor,
    slot: Arc<Slot>,
}

/// One queued response, FIFO per connection (pipelined clients get
/// replies in request order).
enum Reply {
    /// In-flight inference; serialized when the slot settles.
    Slot(Arc<Slot>),
    /// Prebuilt rejection frame (index into the error table).
    Err(u8),
    /// Fully-rendered control response (STATS / INFO / METRICS / SHUTDOWN).
    Ready(Vec<u8>),
}

/// Incremental frame-parse state.
enum Phase {
    /// Collecting the 5-byte `[len:u32][tag:u8]` header.
    Header,
    /// Collecting `need` payload bytes into `rbuf`.
    Payload,
    /// Skipping an oversized (but sub-`MAX_FRAME`) payload.
    Discard(usize),
}

struct Conn {
    stream: TcpStream,
    fd: i32,
    token: u64,
    hdr: [u8; 5],
    hdr_fill: usize,
    phase: Phase,
    tag: u8,
    /// Payload length of the frame being collected.
    need: usize,
    /// Preallocated payload buffer (one full `INFER` frame).
    rbuf: Box<[u8]>,
    rfill: usize,
    /// Outgoing bytes; `wstart..` is unflushed.
    wbuf: Vec<u8>,
    wstart: usize,
    /// Responses owed, in request order.
    pending: VecDeque<Reply>,
    last_activity: Instant,
    /// Current epoll interest bits (to skip redundant `EPOLL_CTL_MOD`s).
    interest: u32,
    /// Peer EOF seen: flush what is owed, then close.
    half_closed: bool,
}

impl Conn {
    fn new(
        stream: TcpStream,
        token: u64,
        rbuf_len: usize,
        wbuf_cap: usize,
        inflight: usize,
    ) -> Conn {
        let fd = stream.as_raw_fd();
        Conn {
            stream,
            fd,
            token,
            hdr: [0; 5],
            hdr_fill: 0,
            phase: Phase::Header,
            tag: 0,
            need: 0,
            rbuf: vec![0u8; rbuf_len].into_boxed_slice(),
            rfill: 0,
            wbuf: Vec::with_capacity(wbuf_cap),
            wstart: 0,
            pending: VecDeque::with_capacity(inflight + 2),
            last_activity: Instant::now(),
            interest: EPOLLIN | EPOLLRDHUP,
            half_closed: false,
        }
    }

    fn owes_nothing(&self) -> bool {
        self.pending.is_empty() && self.wstart == self.wbuf.len()
    }
}

/// Everything the per-connection state machines need besides the table
/// itself — split out so a `&mut Conn` borrowed from the table and the
/// plane can be used together.
struct Plane {
    epoll: Epoll,
    server: Server,
    core: Arc<Core>,
    cfg: EventConfig,
    pool: Vec<ReqCtx>,
    /// In-flight slots whose connection died; recycled as they settle.
    orphans: Vec<Arc<Slot>>,
    err: [Vec<u8>; N_ERR],
    /// Discard-phase sink, shared across connections.
    scratch: [u8; 4096],
    sample_numel: usize,
    output_numel: usize,
    sample_shape: Vec<usize>,
    output_shape: Vec<usize>,
    /// A `SHUTDOWN` frame arrived; the loop drains and exits.
    stopping: bool,
}

impl Plane {
    /// Handle a readiness report for one connection. `true` ⇒ close it.
    fn handle_event(&mut self, conn: &mut Conn, bits: u32) -> bool {
        if bits & EPOLLERR != 0 {
            return true;
        }
        if bits & EPOLLOUT != 0 && flush(conn) {
            return true;
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 && self.read_ready(conn) {
            return true;
        }
        // Serialize whatever became ready (rejections, control responses,
        // already-settled slots) and update interest.
        self.pump(conn)
    }

    /// Drain the socket through the frame parser, dispatching each
    /// completed frame. `true` ⇒ close.
    fn read_ready(&mut self, conn: &mut Conn) -> bool {
        conn.last_activity = Instant::now();
        loop {
            if conn.pending.len() >= self.cfg.max_inflight {
                // Fairness pause: stop consuming this client's bytes
                // until its completions drain.
                return false;
            }
            match conn.phase {
                Phase::Header => match conn.stream.read(&mut conn.hdr[conn.hdr_fill..5]) {
                    Ok(0) => {
                        conn.half_closed = true;
                        return false;
                    }
                    Ok(n) => {
                        conn.hdr_fill += n;
                        if conn.hdr_fill == 5 {
                            let len = u32::from_le_bytes([
                                conn.hdr[0],
                                conn.hdr[1],
                                conn.hdr[2],
                                conn.hdr[3],
                            ]) as usize;
                            conn.tag = conn.hdr[4];
                            conn.hdr_fill = 0;
                            if len > MAX_FRAME {
                                // Hostile prefix: no resync possible.
                                return true;
                            }
                            if len > conn.rbuf.len() {
                                conn.pending.push_back(Reply::Err(ERR_TOO_BIG));
                                conn.phase = Phase::Discard(len);
                            } else if len == 0 {
                                conn.need = 0;
                                if self.dispatch(conn) {
                                    return true;
                                }
                            } else {
                                conn.need = len;
                                conn.rfill = 0;
                                conn.phase = Phase::Payload;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                },
                Phase::Payload => match conn.stream.read(&mut conn.rbuf[conn.rfill..conn.need]) {
                    Ok(0) => {
                        conn.half_closed = true;
                        return false;
                    }
                    Ok(n) => {
                        conn.rfill += n;
                        if conn.rfill == conn.need {
                            conn.phase = Phase::Header;
                            if self.dispatch(conn) {
                                return true;
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                },
                Phase::Discard(rem) => {
                    let take = rem.min(self.scratch.len());
                    match conn.stream.read(&mut self.scratch[..take]) {
                        Ok(0) => {
                            conn.half_closed = true;
                            return false;
                        }
                        Ok(n) => {
                            conn.phase =
                                if rem == n { Phase::Header } else { Phase::Discard(rem - n) };
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return true,
                    }
                }
            }
        }
    }

    /// Act on one complete frame (`conn.tag`, payload `rbuf[..need]`).
    fn dispatch(&mut self, conn: &mut Conn) -> bool {
        match conn.tag {
            op::INFER => self.dispatch_infer(conn),
            op::STATS => {
                let text = self.server.stats().render();
                conn.pending.push_back(Reply::Ready(frame(status::OK, text.as_bytes())));
            }
            op::METRICS => {
                let text = self.server.prometheus_metrics();
                conn.pending.push_back(Reply::Ready(frame(status::OK, text.as_bytes())));
            }
            op::INFO => {
                let mut p = Vec::new();
                proto::put_shape(&mut p, &self.sample_shape);
                proto::put_shape(&mut p, &self.output_shape);
                conn.pending.push_back(Reply::Ready(frame(status::OK, &p)));
            }
            op::SHUTDOWN => {
                conn.pending.push_back(Reply::Ready(frame(status::OK, b"draining")));
                self.stopping = true;
            }
            _ => conn.pending.push_back(Reply::Err(ERR_BAD_OP)),
        }
        false
    }

    /// The zero-alloc inference dispatch: pool pop → decode in place →
    /// arm slot → route to a shard.
    fn dispatch_infer(&mut self, conn: &mut Conn) {
        let payload = &conn.rbuf[..conn.need];
        if payload.len() != 4 + 4 * self.sample_numel {
            conn.pending.push_back(Reply::Err(ERR_BAD_INFER));
            return;
        }
        let Some(mut ctx) = self.pool.pop() else {
            self.core.stats.rejected_admission.inc();
            conn.pending.push_back(Reply::Err(ERR_ADMISSION));
            return;
        };
        let deadline_ms = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        {
            let dst = ctx.input.data_mut();
            for (v, c) in dst.iter_mut().zip(payload[4..].chunks_exact(4)) {
                *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            }
        }
        let ReqCtx { input, output, slot } = ctx;
        slot.rearm(output);
        let now = Instant::now();
        let deadline = (deadline_ms > 0).then(|| now + Duration::from_millis(deadline_ms as u64));
        match self.core.route(Job { input, deadline, enqueued: now, slot: slot.clone() }) {
            Ok(()) => {
                self.core.stats.submitted.inc();
                conn.pending.push_back(Reply::Slot(slot));
            }
            Err(e) => {
                let (job, idx, counter) = match e {
                    PushError::Full(job) => (job, ERR_QUEUE_FULL, &self.core.stats.rejected_full),
                    PushError::Closed(job) => {
                        (job, ERR_SHUTTING_DOWN, &self.core.stats.rejected_closed)
                    }
                };
                counter.inc();
                let output = slot.disarm();
                self.pool.push(ReqCtx { input: job.input, output, slot });
                conn.pending.push_back(Reply::Err(idx));
            }
        }
    }

    /// Serialize every response that is ready (stopping at the first
    /// still-pending slot to preserve reply order), recycle the settled
    /// request contexts, flush, and re-arm interest. `true` ⇒ close.
    fn pump(&mut self, conn: &mut Conn) -> bool {
        loop {
            let recycled = match conn.pending.front() {
                None => break,
                Some(Reply::Err(_)) | Some(Reply::Ready(_)) => None,
                Some(Reply::Slot(slot)) => match slot.try_recycle() {
                    None => break,
                    Some(settled) => Some(settled),
                },
            };
            match (conn.pending.pop_front(), recycled) {
                (Some(Reply::Err(k)), _) => conn.wbuf.extend_from_slice(&self.err[k as usize]),
                (Some(Reply::Ready(buf)), _) => conn.wbuf.extend_from_slice(&buf),
                (Some(Reply::Slot(slot)), Some((verdict, output, input))) => {
                    match verdict {
                        Ok(()) => {
                            conn.wbuf
                                .extend_from_slice(&((4 * self.output_numel) as u32).to_le_bytes());
                            conn.wbuf.push(status::OK);
                            for v in output.data() {
                                conn.wbuf.extend_from_slice(&v.to_le_bytes());
                            }
                        }
                        Err(e) => {
                            let k = match e {
                                ServeError::DeadlineExceeded => ERR_DEADLINE,
                                ServeError::ShuttingDown => ERR_SHUTTING_DOWN,
                                ServeError::QueueFull => ERR_QUEUE_FULL,
                                _ => ERR_INTERNAL,
                            };
                            conn.wbuf.extend_from_slice(&self.err[k as usize]);
                        }
                    }
                    // Workers hand the input back through the slot; the
                    // fallback allocation can only fire if a completion
                    // path forgot to (debug-asserted in tests).
                    let input = input.unwrap_or_else(|| Tensor::zeros(&self.sample_shape));
                    self.pool.push(ReqCtx { input, output, slot });
                }
                _ => unreachable!("peeked a ready reply"),
            }
        }
        self.settle(conn)
    }

    /// Flush, close half-closed conns that owe nothing, and re-arm epoll
    /// interest. `true` ⇒ close.
    fn settle(&self, conn: &mut Conn) -> bool {
        if flush(conn) {
            return true;
        }
        if conn.half_closed && conn.owes_nothing() {
            return true;
        }
        let mut want = EPOLLRDHUP;
        if !conn.half_closed && conn.pending.len() < self.cfg.max_inflight {
            want |= EPOLLIN;
        }
        if conn.wstart < conn.wbuf.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            if self.epoll.modify(conn.fd, want, conn.token).is_err() {
                return true;
            }
            conn.interest = want;
        }
        false
    }

    /// Reclaim contexts whose connection died before the reply settled.
    fn recycle_orphans(&mut self) {
        let mut i = 0;
        while i < self.orphans.len() {
            match self.orphans[i].try_recycle() {
                Some((_verdict, output, input)) => {
                    let slot = self.orphans.swap_remove(i);
                    let input = input.unwrap_or_else(|| Tensor::zeros(&self.sample_shape));
                    self.pool.push(ReqCtx { input, output, slot });
                }
                None => i += 1,
            }
        }
    }
}

/// Write out `wbuf[wstart..]` as far as the socket allows. `true` ⇒ close.
fn flush(conn: &mut Conn) -> bool {
    while conn.wstart < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wstart..]) {
            Ok(0) => return true,
            Ok(n) => conn.wstart += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if conn.wstart == conn.wbuf.len() && conn.wstart > 0 {
        // Fully drained: rewind without shrinking the preallocation.
        conn.wbuf.clear();
        conn.wstart = 0;
    }
    false
}

/// The event-driven serving loop. Normally driven by [`crate::serve`] via
/// [`EventLoop::run`]; tests can single-step it with [`EventLoop::turn`].
pub struct EventLoop {
    plane: Plane,
    listener: TcpListener,
    /// Fixed connection table; index = low 32 bits of the epoll token.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation (high 32 token bits) so a recycled slot never
    /// honours a stale readiness report for its predecessor.
    gens: Vec<u32>,
    free: Vec<u32>,
    events: Box<[EpollEvent]>,
    waker: Arc<EventFd>,
    next_sweep: Instant,
    open: usize,
    rbuf_len: usize,
    wbuf_cap: usize,
}

impl EventLoop {
    pub fn new(server: Server, listener: TcpListener, cfg: EventConfig) -> io::Result<EventLoop> {
        assert!(cfg.max_conns > 0, "max_conns must be positive");
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        let waker = Arc::new(EventFd::new()?);
        epoll.add(waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;

        let core = server.core().clone();
        let hook_waker = waker.clone();
        core.set_batch_hook(Some(Arc::new(move || hook_waker.signal())));

        let sample_shape = server.sample_shape().to_vec();
        let output_shape = server.output_shape().to_vec();
        let sample_numel: usize = sample_shape.iter().product();
        let output_numel: usize = output_shape.iter().product();
        // The pool *is* the admission bound: one context per slot of work
        // the fleet can hold (every shard's queue plus one full batch per
        // worker). More workers ⇒ deeper pool ⇒ bigger absorbable burst.
        let pool_size = core.shards.len() * (core.cfg.queue_cap + core.cfg.max_batch);
        let pool = (0..pool_size)
            .map(|_| ReqCtx {
                input: Tensor::zeros(&sample_shape),
                output: Tensor::zeros(&output_shape),
                slot: Slot::idle(),
            })
            .collect();

        let rbuf_len = (4 + 4 * sample_numel).max(256);
        let wbuf_cap = cfg.max_inflight * (5 + 4 * output_numel) + 1024;
        Ok(EventLoop {
            plane: Plane {
                epoll,
                server,
                core,
                cfg,
                pool,
                orphans: Vec::with_capacity(64),
                err: build_err_frames(),
                scratch: [0; 4096],
                sample_numel,
                output_numel,
                sample_shape,
                output_shape,
                stopping: false,
            },
            listener,
            conns: (0..cfg.max_conns).map(|_| None).collect(),
            gens: vec![0; cfg.max_conns],
            free: (0..cfg.max_conns as u32).rev().collect(),
            events: vec![EpollEvent::default(); 256].into_boxed_slice(),
            waker,
            next_sweep: Instant::now() + Duration::from_millis(500),
            open: 0,
            rbuf_len,
            wbuf_cap,
        })
    }

    /// Connections currently open (test observability).
    pub fn open_conns(&self) -> usize {
        self.open
    }

    /// Whether a `SHUTDOWN` frame has been seen.
    pub fn stopping(&self) -> bool {
        self.plane.stopping
    }

    /// One scheduling turn: wait up to `timeout_ms` for readiness, handle
    /// every reported event, pump completions if woken, sweep idle
    /// connections if due. Returns the number of readiness reports.
    /// Allocation-free except on accept and control frames.
    pub fn turn(&mut self, timeout_ms: i32) -> io::Result<usize> {
        let n = self.plane.epoll.wait(&mut self.events, timeout_ms)?;
        let mut woken = false;
        for i in 0..n {
            let ev = self.events[i];
            let (bits, token) = (ev.events, ev.data);
            match token {
                LISTENER_TOKEN => self.accept_ready(),
                WAKER_TOKEN => {
                    self.waker.drain();
                    woken = true;
                }
                _ => self.conn_event(token, bits),
            }
        }
        if woken {
            self.pump_all();
        }
        if Instant::now() >= self.next_sweep {
            self.sweep_idle();
        }
        Ok(n)
    }

    /// Serve until a `SHUTDOWN` frame, then drain gracefully: stop
    /// accepting, close the shard queues, let in-flight work settle and
    /// flush (bounded), join the workers, and fail anything left.
    pub fn run(mut self) -> io::Result<()> {
        while !self.plane.stopping {
            self.turn(250)?;
        }
        let _ = self.plane.epoll.del(self.listener.as_raw_fd());
        self.plane.core.close();
        let drain_deadline = Instant::now() + Duration::from_secs(5);
        while self.owes_responses() && Instant::now() < drain_deadline {
            self.turn(50)?;
        }
        // Join the workers; with none (or a dead one) this fails whatever
        // is still queued so every pending slot settles.
        self.plane.server.shutdown();
        self.pump_all();
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx, false);
            }
        }
        self.plane.core.set_batch_hook(None);
        Ok(())
    }

    fn owes_responses(&self) -> bool {
        !self.plane.orphans.is_empty() || self.conns.iter().flatten().any(|c| !c.owes_nothing())
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.plane.stopping {
                        continue; // drop it: we are draining
                    }
                    let Some(idx) = self.free.pop() else {
                        self.plane.core.stats.conns_refused.inc();
                        continue; // drop: table full
                    };
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    let idx = idx as usize;
                    self.gens[idx] = self.gens[idx].wrapping_add(1);
                    let token = ((self.gens[idx] as u64) << 32) | idx as u64;
                    let conn = Conn::new(
                        stream,
                        token,
                        self.rbuf_len,
                        self.wbuf_cap,
                        self.plane.cfg.max_inflight,
                    );
                    if self.plane.epoll.add(conn.fd, conn.interest, token).is_err() {
                        self.free.push(idx as u32);
                        continue;
                    }
                    self.conns[idx] = Some(conn);
                    self.open += 1;
                    self.plane.core.stats.conns_accepted.inc();
                    self.plane.core.stats.open_conns.set(self.open as f64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        if idx >= self.conns.len() || self.gens[idx] != (token >> 32) as u32 {
            return; // stale report for a recycled slot
        }
        let Some(conn) = self.conns[idx].as_mut() else { return };
        if self.plane.handle_event(conn, bits) {
            self.close_conn(idx, false);
        }
    }

    /// Serialize and flush settled completions on every connection that
    /// is owed a response; reclaim orphaned contexts.
    fn pump_all(&mut self) {
        self.plane.recycle_orphans();
        for idx in 0..self.conns.len() {
            let close = match self.conns[idx].as_mut() {
                Some(conn) if !conn.pending.is_empty() || conn.wstart < conn.wbuf.len() => {
                    self.plane.pump(conn)
                }
                _ => false,
            };
            if close {
                self.close_conn(idx, false);
            }
        }
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        self.next_sweep = now + Duration::from_millis(500);
        for idx in 0..self.conns.len() {
            let reap = match &self.conns[idx] {
                Some(c) => {
                    c.owes_nothing()
                        && now.duration_since(c.last_activity) >= self.plane.cfg.idle_timeout
                }
                None => false,
            };
            if reap {
                self.close_conn(idx, true);
            }
        }
    }

    fn close_conn(&mut self, idx: usize, idle: bool) {
        let Some(mut conn) = self.conns[idx].take() else { return };
        let _ = self.plane.epoll.del(conn.fd);
        for reply in conn.pending.drain(..) {
            if let Reply::Slot(slot) = reply {
                // The worker still owns this job; reclaim the context
                // once it settles.
                self.plane.orphans.push(slot);
            }
        }
        self.free.push(idx as u32);
        self.open -= 1;
        self.plane.core.stats.open_conns.set(self.open as f64);
        if idle {
            self.plane.core.stats.conns_closed_idle.inc();
        }
        // `conn.stream` drops here, closing the fd.
    }
}
