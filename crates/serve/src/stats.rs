//! Lock-free serving observability, built on `temco_obs` primitives.
//!
//! Every instrument is a relaxed atomic bumped from the submit and worker
//! hot paths — no locks, no allocation. Latency is split three ways so
//! the wait-vs-compute question has a truthful answer:
//!
//! * `queue_wait` — enqueue to batch-execution start (scheduling delay),
//! * `service` — batch-execution start to response (compute + scatter),
//! * `latency` — the end-to-end sum the client observes.
//!
//! All three use the obs crate's 30-bucket log2-µs histogram; percentiles
//! interpolate linearly inside the winning bucket
//! ([`temco_obs::percentile_log2_us`]), so the steady state keeps no
//! per-request state at all. Batch sizes feed a fixed histogram (index =
//! executed size − 1) and `batch_slots` accumulates the capacity of the
//! buckets actually run, which makes batch-window occupancy
//! (`batched requests / slots run`) a two-counter division.
//!
//! The same instruments are registered in a [`Registry`], so the
//! Prometheus text scrape (`METRICS` opcode, `Server::prometheus_metrics`)
//! renders the very counters the hot path bumps — there is no second
//! accounting to drift.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use temco_obs::{percentile_log2_us, Counter, Gauge, Log2Histogram, Registry, LOG2_BUCKETS};

/// Number of log2 latency buckets. Bucket 0 counts sub-microsecond
/// latencies; bucket `i` (for `1 ≤ i ≤ 28`) holds latencies in
/// `[2^(i−1), 2^i)` microseconds; the last bucket (29) is the overflow
/// bucket `[2^28 µs, ∞)` — everything above ≈ 4.5 minutes.
pub const LATENCY_BUCKETS: usize = LOG2_BUCKETS;

/// Shared counters. One instance per [`crate::Server`], touched by every
/// submitter and worker. The handles are registered in `registry`, so a
/// Prometheus scrape reads the same atomics the hot path bumps.
pub(crate) struct Stats {
    registry: Registry,
    pub submitted: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub rejected_full: Arc<Counter>,
    pub rejected_closed: Arc<Counter>,
    /// Requests rejected by the connection plane's admission control: the
    /// preallocated in-flight pool was exhausted (total in-flight work
    /// already covers every worker's queue plus a full batch each).
    pub rejected_admission: Arc<Counter>,
    pub deadline_expired: Arc<Counter>,
    /// Requests accepted into the queue but failed at shutdown because no
    /// worker remained to drain them (manual-worker mode).
    pub failed_shutdown: Arc<Counter>,
    pub batches: Arc<Counter>,
    /// Sum of executed buckets' capacities — the denominator of
    /// batch-window occupancy.
    pub batch_slots: Arc<Counter>,
    /// Bytes copied by executed batches (each engine run adds its plan's
    /// `bytes_moved`: input staging plus concat/flatten copies the alias
    /// analysis could not eliminate).
    pub bytes_moved: Arc<Counter>,
    /// Requests currently queued; refreshed at scrape time.
    pub queue_depth: Arc<Gauge>,
    /// Worker count / per-worker slab bytes; set once at server startup.
    pub workers: Arc<Gauge>,
    pub slab_bytes_per_worker: Arc<Gauge>,
    /// Connection plane: accepted / refused (table full) / idle-reaped
    /// connections, and how many are open right now.
    pub conns_accepted: Arc<Counter>,
    pub conns_refused: Arc<Counter>,
    pub conns_closed_idle: Arc<Counter>,
    pub open_conns: Arc<Gauge>,
    /// Per-worker shard instruments, indexed by worker. `busy_us` is
    /// cumulative batch-execution time (occupancy numerator), `batches`
    /// counts executed batches, `depth` mirrors the shard queue at scrape.
    pub worker_busy_us: Vec<Arc<Counter>>,
    pub worker_batches: Vec<Arc<Counter>>,
    pub worker_depth: Vec<Arc<Gauge>>,
    /// End-to-end latency (enqueue → response).
    latency: Arc<Log2Histogram>,
    /// Enqueue → batch-execution start.
    pub queue_wait: Arc<Log2Histogram>,
    /// Batch-execution start → response.
    pub service: Arc<Log2Histogram>,
    /// Executed batch sizes; index `size − 1`. Stays a raw array (integer
    /// buckets, not log2 time) and is rendered into the scrape manually.
    batch_sizes: Box<[AtomicU64]>,
}

impl Stats {
    pub fn new(max_batch: usize, workers: usize) -> Stats {
        let r = Registry::new();
        let shards = workers.max(1);
        let worker_busy_us = (0..shards)
            .map(|i| {
                r.counter_with(
                    "temco_worker_busy_micros_total",
                    "Cumulative batch-execution time per worker, µs (occupancy numerator).",
                    &[("worker", &i.to_string())],
                )
            })
            .collect();
        let worker_batches = (0..shards)
            .map(|i| {
                r.counter_with(
                    "temco_worker_batches_total",
                    "Executed batches per worker shard.",
                    &[("worker", &i.to_string())],
                )
            })
            .collect();
        let worker_depth = (0..shards)
            .map(|i| {
                r.gauge_with(
                    "temco_worker_queue_depth",
                    "Requests waiting in each worker's shard queue.",
                    &[("worker", &i.to_string())],
                )
            })
            .collect();
        Stats {
            submitted: r
                .counter("temco_requests_submitted_total", "Requests accepted into the queue."),
            completed: r.counter(
                "temco_requests_completed_total",
                "Requests answered with an output tensor.",
            ),
            rejected_full: r.counter_with(
                "temco_requests_rejected_total",
                "Submissions rejected, by cause.",
                &[("cause", "queue_full")],
            ),
            rejected_closed: r.counter_with(
                "temco_requests_rejected_total",
                "Submissions rejected, by cause.",
                &[("cause", "shutting_down")],
            ),
            rejected_admission: r.counter_with(
                "temco_requests_rejected_total",
                "Submissions rejected, by cause.",
                &[("cause", "admission")],
            ),
            deadline_expired: r.counter_with(
                "temco_requests_failed_total",
                "Accepted requests that failed, by cause.",
                &[("cause", "deadline_expired")],
            ),
            failed_shutdown: r.counter_with(
                "temco_requests_failed_total",
                "Accepted requests that failed, by cause.",
                &[("cause", "shutdown_undrained")],
            ),
            batches: r.counter("temco_batches_total", "Engine runs (one per executed batch)."),
            batch_slots: r.counter(
                "temco_batch_slots_total",
                "Capacity of the buckets executed; occupancy denominator.",
            ),
            bytes_moved: r.counter(
                "temco_bytes_moved_total",
                "Bytes copied by executed batches (staging + unaliased concat/flatten copies).",
            ),
            queue_depth: r.gauge("temco_queue_depth", "Requests waiting in the queue."),
            workers: r.gauge("temco_workers", "Worker threads serving this instance."),
            slab_bytes_per_worker: r.gauge(
                "temco_slab_bytes_per_worker",
                "Slab bytes each worker holds across its bucket engines.",
            ),
            conns_accepted: r
                .counter("temco_conns_accepted_total", "Connections admitted to the event loop."),
            conns_refused: r.counter(
                "temco_conns_refused_total",
                "Connections refused because the fixed connection table was full.",
            ),
            conns_closed_idle: r
                .counter("temco_conns_closed_idle_total", "Connections reaped by the idle sweep."),
            open_conns: r.gauge("temco_open_conns", "Connections currently open."),
            worker_busy_us,
            worker_batches,
            worker_depth,
            latency: r.histogram(
                "temco_request_latency_seconds",
                "End-to-end latency: enqueue to response.",
            ),
            queue_wait: r.histogram(
                "temco_queue_wait_seconds",
                "Scheduling delay: enqueue to batch-execution start.",
            ),
            service: r.histogram(
                "temco_service_time_seconds",
                "Compute time: batch-execution start to response.",
            ),
            batch_sizes: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            registry: r,
        }
    }

    /// Record one completed request's queue-to-response latency.
    pub fn record_latency(&self, d: Duration) {
        self.latency.record(d);
        self.completed.inc();
    }

    /// Record one executed batch of `n` requests run on a bucket of
    /// `slots` capacity.
    pub fn record_batch(&self, n: usize, slots: usize) {
        self.batches.inc();
        self.batch_slots.add(slots as u64);
        self.batch_sizes[(n - 1).min(self.batch_sizes.len() - 1)].fetch_add(1, Relaxed);
    }

    pub fn latency_histogram(&self) -> Vec<u64> {
        self.latency.counts().to_vec()
    }

    pub fn queue_wait_histogram(&self) -> Vec<u64> {
        self.queue_wait.counts().to_vec()
    }

    pub fn service_histogram(&self) -> Vec<u64> {
        self.service.counts().to_vec()
    }

    pub fn batch_histogram(&self) -> Vec<u64> {
        self.batch_sizes.iter().map(|c| c.load(Relaxed)).collect()
    }

    /// Prometheus text exposition of every registered instrument plus the
    /// batch-size histogram. `shard_depths` is sampled by the caller (the
    /// queues own their lengths) — one entry per worker shard; the total
    /// feeds `temco_queue_depth`. Occupancy is derived here. Scrape-path
    /// only — allocates freely.
    pub fn render_prometheus(&self, shard_depths: &[usize]) -> String {
        self.queue_depth.set(shard_depths.iter().sum::<usize>() as f64);
        for (g, &d) in self.worker_depth.iter().zip(shard_depths) {
            g.set(d as f64);
        }
        let mut out = self.registry.render_prometheus();
        let sizes = self.batch_histogram();
        let total: u64 = sizes.iter().sum();
        let batched: u64 = sizes.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        let slots = self.batch_slots.get();
        let occupancy = if slots == 0 { 0.0 } else { batched as f64 / slots as f64 };
        out.push_str("# HELP temco_batch_window_occupancy Executed requests / executed slots.\n");
        out.push_str("# TYPE temco_batch_window_occupancy gauge\n");
        out.push_str(&format!("temco_batch_window_occupancy {occupancy}\n"));
        out.push_str("# HELP temco_batch_size Executed batch sizes.\n");
        out.push_str("# TYPE temco_batch_size histogram\n");
        let mut cum = 0u64;
        for (i, &c) in sizes.iter().enumerate() {
            cum += c;
            if c == 0 && i + 1 != sizes.len() {
                continue;
            }
            out.push_str(&format!("temco_batch_size_bucket{{le=\"{}\"}} {cum}\n", i + 1));
        }
        out.push_str(&format!("temco_batch_size_bucket{{le=\"+Inf\"}} {total}\n"));
        out.push_str(&format!("temco_batch_size_sum {batched}\n"));
        out.push_str(&format!("temco_batch_size_count {total}\n"));
        out
    }
}

/// Bucket index a latency lands in — the obs crate's log2-µs mapping,
/// kept here as the pinned contract the tests assert against.
#[cfg(test)]
fn latency_bucket(d: Duration) -> usize {
    temco_obs::bucket_of_us(d.as_micros() as u64)
}

/// Interpolated percentile of a log2-µs bucket histogram, as a `Duration`.
fn histogram_percentile(buckets: &[u64], p: f64) -> Duration {
    Duration::from_secs_f64(percentile_log2_us(buckets, p) / 1e6)
}

/// Point-in-time view of a server's counters, returned by
/// [`crate::Server::stats`]. Plain data: safe to hold, serialize, diff.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with an output tensor.
    pub completed: u64,
    /// Submissions rejected by backpressure (queue full).
    pub rejected_full: u64,
    /// Submissions rejected because the server was draining.
    pub rejected_closed: u64,
    /// Requests rejected by connection-plane admission control (in-flight
    /// pool exhausted).
    pub rejected_admission: u64,
    /// Requests whose deadline expired before execution.
    pub deadline_expired: u64,
    /// Requests accepted into the queue but failed with `ShuttingDown`
    /// because shutdown found no worker left to drain them.
    pub failed_shutdown: u64,
    /// Engine runs (one per executed batch).
    pub batches: u64,
    /// Summed capacity of the buckets executed (occupancy denominator).
    pub batch_slots: u64,
    /// Bytes copied by executed batches (per-batch plan `bytes_moved`,
    /// accumulated).
    pub bytes_moved: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// End-to-end latency counts in power-of-two microsecond buckets (see
    /// [`LATENCY_BUCKETS`]).
    pub latency_buckets: Vec<u64>,
    /// Scheduling delay (enqueue → batch start), same bucket layout.
    pub queue_wait_buckets: Vec<u64>,
    /// Compute time (batch start → response), same bucket layout.
    pub service_buckets: Vec<u64>,
    /// Executed-batch-size counts; index `size − 1`.
    pub batch_size_hist: Vec<u64>,
    /// Worker threads serving this instance.
    pub workers: usize,
    /// Slab bytes each worker holds across its bucket engines (the only
    /// per-worker memory; weights are shared).
    pub slab_bytes_per_worker: usize,
    /// Per-worker-shard queue depths (parallel to the shards; sums to
    /// `queue_depth`).
    pub shard_depths: Vec<usize>,
    /// Cumulative batch-execution µs per worker (occupancy numerator).
    pub worker_busy_us: Vec<u64>,
    /// Executed batches per worker shard.
    pub worker_batches: Vec<u64>,
    /// Connections accepted by the event loop.
    pub conns_accepted: u64,
    /// Connections refused because the fixed table was full.
    pub conns_refused: u64,
    /// Connections reaped by the idle sweep.
    pub conns_closed_idle: u64,
    /// Connections currently open.
    pub open_conns: u64,
}

impl StatsSnapshot {
    /// Accepted requests whose outcome is decided: completed, expired, or
    /// failed at shutdown.
    pub fn settled(&self) -> u64 {
        self.completed + self.deadline_expired + self.failed_shutdown
    }

    /// Request-conservation invariant: every accepted request is either
    /// settled or still queued. Exact only when no batch is mid-execution
    /// (a popped-but-unfinished job is neither settled nor queued), so
    /// assert it at rest — after a drain, or with manual workers between
    /// steps. The `temco-check` fault injector holds the serving layer to
    /// this after every adversarial run.
    pub fn is_conserved_at_rest(&self) -> bool {
        self.submitted == self.settled() + self.queue_depth as u64
    }

    /// Mean executed batch size (0 when nothing ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let total: u64 = self.batch_size_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 =
            self.batch_size_hist.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        weighted as f64 / total as f64
    }

    /// Batch-window occupancy: executed requests over executed slots
    /// (1.0 = every batch ran completely full; 0 before any batch ran).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batch_slots == 0 {
            return 0.0;
        }
        let batched: u64 =
            self.batch_size_hist.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        batched as f64 / self.batch_slots as f64
    }

    /// End-to-end latency percentile (`p` in 0..=100), linearly
    /// interpolated inside the winning log2 bucket
    /// ([`temco_obs::percentile_log2_us`]). The returned value always
    /// lies strictly inside the winning bucket's own range — including
    /// the overflow bucket, whose quantiles stay below its nominal
    /// `2^29` µs upper edge.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        histogram_percentile(&self.latency_buckets, p)
    }

    /// Queue-wait percentile (enqueue → batch-execution start).
    pub fn queue_wait_percentile(&self, p: f64) -> Duration {
        histogram_percentile(&self.queue_wait_buckets, p)
    }

    /// Service-time percentile (batch-execution start → response).
    pub fn service_percentile(&self, p: f64) -> Duration {
        histogram_percentile(&self.service_buckets, p)
    }

    /// Plain-text dump for logs and the wire `STATS` op.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let p = |d: Duration| d.as_secs_f64() * 1e3;
        s.push_str("temco-serve stats\n");
        s.push_str(&format!("  submitted          {}\n", self.submitted));
        s.push_str(&format!("  completed          {}\n", self.completed));
        s.push_str(&format!("  rejected (full)    {}\n", self.rejected_full));
        s.push_str(&format!("  rejected (closed)  {}\n", self.rejected_closed));
        s.push_str(&format!("  rejected (admit)   {}\n", self.rejected_admission));
        s.push_str(&format!("  deadline expired   {}\n", self.deadline_expired));
        s.push_str(&format!("  failed (shutdown)  {}\n", self.failed_shutdown));
        s.push_str(&format!("  queue depth        {}\n", self.queue_depth));
        s.push_str(&format!(
            "  batches            {} (mean size {:.2}, occupancy {:.2})\n",
            self.batches,
            self.mean_batch_size(),
            self.batch_occupancy()
        ));
        s.push_str(&format!(
            "  bytes moved        {:.2} MiB\n",
            self.bytes_moved as f64 / (1024.0 * 1024.0)
        ));
        s.push_str("  batch size hist    ");
        for (i, &c) in self.batch_size_hist.iter().enumerate() {
            if c > 0 {
                s.push_str(&format!("{}:{} ", i + 1, c));
            }
        }
        s.push('\n');
        s.push_str(&format!(
            "  latency ms         p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            p(self.latency_percentile(50.0)),
            p(self.latency_percentile(95.0)),
            p(self.latency_percentile(99.0)),
        ));
        s.push_str(&format!(
            "  queue wait ms      p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            p(self.queue_wait_percentile(50.0)),
            p(self.queue_wait_percentile(95.0)),
            p(self.queue_wait_percentile(99.0)),
        ));
        s.push_str(&format!(
            "  service ms         p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            p(self.service_percentile(50.0)),
            p(self.service_percentile(95.0)),
            p(self.service_percentile(99.0)),
        ));
        s.push_str(&format!(
            "  workers            {} × {:.2} MiB slab\n",
            self.workers,
            self.slab_bytes_per_worker as f64 / (1024.0 * 1024.0)
        ));
        if !self.worker_batches.is_empty() {
            s.push_str("  worker shards      ");
            for (i, ((&b, &us), &d)) in self
                .worker_batches
                .iter()
                .zip(&self.worker_busy_us)
                .zip(self.shard_depths.iter().chain(std::iter::repeat(&0)))
                .enumerate()
            {
                s.push_str(&format!("{i}:{b}b/{:.0}ms/q{d} ", us as f64 / 1e3));
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "  conns              accepted {}  refused {}  idle-closed {}  open {}\n",
            self.conns_accepted, self.conns_refused, self.conns_closed_idle, self.open_conns
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_from(st: &Stats) -> StatsSnapshot {
        StatsSnapshot {
            submitted: st.submitted.get(),
            completed: st.completed.get(),
            rejected_full: st.rejected_full.get(),
            rejected_closed: st.rejected_closed.get(),
            rejected_admission: st.rejected_admission.get(),
            deadline_expired: st.deadline_expired.get(),
            failed_shutdown: st.failed_shutdown.get(),
            batches: st.batches.get(),
            batch_slots: st.batch_slots.get(),
            bytes_moved: st.bytes_moved.get(),
            queue_depth: 0,
            latency_buckets: st.latency_histogram(),
            queue_wait_buckets: st.queue_wait_histogram(),
            service_buckets: st.service_histogram(),
            batch_size_hist: st.batch_histogram(),
            workers: 1,
            slab_bytes_per_worker: 0,
            shard_depths: vec![0],
            worker_busy_us: st.worker_busy_us.iter().map(|c| c.get()).collect(),
            worker_batches: st.worker_batches.iter().map(|c| c.get()).collect(),
            conns_accepted: st.conns_accepted.get(),
            conns_refused: st.conns_refused.get(),
            conns_closed_idle: st.conns_closed_idle.get(),
            open_conns: st.open_conns.get() as u64,
        }
    }

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        // Bucket 0 is sub-microsecond; bucket i (1..=28) is [2^(i-1), 2^i) µs.
        assert_eq!(latency_bucket(Duration::from_micros(0)), 0);
        assert_eq!(latency_bucket(Duration::from_nanos(999)), 0);
        assert_eq!(latency_bucket(Duration::from_micros(1)), 1);
        assert_eq!(latency_bucket(Duration::from_micros(2)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(3)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(1000)), 10);
        // The overflow bucket starts at 2^28 µs ≈ 4.5 min, exactly where
        // the penultimate bucket ends — no gap, no double coverage.
        assert_eq!(latency_bucket(Duration::from_micros((1 << 28) - 1)), LATENCY_BUCKETS - 2);
        assert_eq!(latency_bucket(Duration::from_micros(1 << 28)), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket(Duration::from_secs(3600)), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn percentiles_stay_inside_the_histogram_range() {
        // All mass in the overflow bucket: the reported percentile must lie
        // inside that bucket's nominal [2^28, 2^29) µs span, not past it.
        let st = Stats::new(1, 1);
        st.record_latency(Duration::from_secs(3600));
        st.submitted.inc();
        let snap = snap_from(&st);
        let p99 = snap.latency_percentile(99.0);
        assert!(p99 >= Duration::from_micros(1 << 28), "p99 {p99:?} below the overflow bucket");
        assert!(p99 < Duration::from_micros(1 << 29), "p99 {p99:?} past the histogram range");
        // Sub-microsecond mass reports a sub-microsecond percentile.
        let st = Stats::new(1, 1);
        st.record_latency(Duration::from_nanos(100));
        let snap = StatsSnapshot { latency_buckets: st.latency_histogram(), ..snap };
        assert!(snap.latency_percentile(50.0) < Duration::from_micros(1));
    }

    #[test]
    fn percentiles_interpolate_against_exact_quantiles() {
        // Regression for the old upper-edge / geometric-midpoint bias:
        // 1..=1000 µs uniformly has exact p50 = 500 µs. The bucket edge
        // estimator said 512, the geometric midpoint ~362 — both >2% off;
        // linear interpolation inside [256, 512) lands within 1%.
        let st = Stats::new(1, 1);
        let exact = |p: f64| (p / 100.0 * 1000.0) as u64;
        for us in 1..=1000u64 {
            st.record_latency(Duration::from_micros(us));
        }
        let snap = snap_from(&st);
        for p in [25.0, 50.0, 75.0, 90.0] {
            let got = snap.latency_percentile(p).as_secs_f64() * 1e6;
            let want = exact(p) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.16, "p{p}: interpolated {got:.1} µs vs exact {want} µs");
        }
        // The p50 specifically (tight uniform mass) is within 1%.
        let p50 = snap.latency_percentile(50.0).as_secs_f64() * 1e6;
        assert!((p50 - 500.0).abs() / 500.0 < 0.01, "p50 {p50:.1}");
    }

    #[test]
    fn wait_and_service_histograms_are_recorded_separately() {
        let st = Stats::new(4, 1);
        st.queue_wait.record(Duration::from_micros(10));
        st.service.record(Duration::from_micros(5000));
        st.record_latency(Duration::from_micros(5010));
        st.submitted.inc();
        let snap = snap_from(&st);
        assert_eq!(snap.queue_wait_buckets.iter().sum::<u64>(), 1);
        assert_eq!(snap.service_buckets.iter().sum::<u64>(), 1);
        assert!(snap.queue_wait_percentile(50.0) < Duration::from_micros(20));
        assert!(snap.service_percentile(50.0) > Duration::from_micros(1000));
        assert!(snap.is_conserved_at_rest());
        let text = snap.render();
        assert!(text.contains("queue wait ms"));
        assert!(text.contains("service ms"));
    }

    #[test]
    fn percentiles_and_mean_batch_from_histograms() {
        let st = Stats::new(8, 1);
        for _ in 0..90 {
            st.record_latency(Duration::from_micros(100)); // bucket 7
        }
        for _ in 0..10 {
            st.record_latency(Duration::from_micros(100_000)); // bucket 17
        }
        st.record_batch(1, 1);
        st.record_batch(8, 8);
        st.record_batch(8, 8);
        st.record_batch(40, 8); // defensive: size clamps to the top bucket
        for _ in 0..100 {
            st.submitted.inc();
        }
        let snap = snap_from(&st);
        let p50 = snap.latency_percentile(50.0);
        assert!(p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(128));
        let p99 = snap.latency_percentile(99.0);
        assert!(p99 >= Duration::from_micros(65_536), "p99 {p99:?}");
        assert_eq!(snap.batch_size_hist[0], 1);
        assert_eq!(snap.batch_size_hist[7], 3);
        assert!((snap.mean_batch_size() - 25.0 / 4.0).abs() < 1e-9);
        // 1+8+8+40 requests over 1+8+8+40 slots: fully occupied.
        assert!((snap.batch_occupancy() - 1.0).abs() < 1e-9);
        let text = snap.render();
        assert!(text.contains("mean size"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn prometheus_scrape_exposes_the_metrics_plane() {
        let st = Stats::new(8, 1);
        st.submitted.add(5);
        st.rejected_full.inc();
        st.deadline_expired.inc();
        st.queue_wait.record(Duration::from_micros(100));
        st.service.record(Duration::from_micros(2000));
        st.record_latency(Duration::from_micros(2100));
        st.record_batch(3, 4);
        st.bytes_moved.add(4096);
        st.workers.set(2.0);
        let text = st.render_prometheus(&[7]);
        assert!(text.contains("temco_requests_submitted_total 5"));
        assert!(text.contains("temco_requests_rejected_total{cause=\"queue_full\"} 1"));
        assert!(text.contains("temco_requests_failed_total{cause=\"deadline_expired\"} 1"));
        assert!(text.contains("temco_queue_depth 7"));
        assert!(text.contains("temco_worker_queue_depth{worker=\"0\"} 7"));
        assert!(text.contains("temco_workers 2"));
        assert!(text.contains("# TYPE temco_queue_wait_seconds histogram"));
        assert!(text.contains("temco_queue_wait_seconds_count 1"));
        assert!(text.contains("temco_service_time_seconds_count 1"));
        assert!(text.contains("temco_request_latency_seconds_count 1"));
        // Batch occupancy 3/4 and the integer-bucketed size histogram.
        assert!(text.contains("temco_batch_window_occupancy 0.75"));
        assert!(text.contains("temco_batch_size_bucket{le=\"3\"} 1"));
        assert!(text.contains("temco_batch_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("temco_batch_slots_total 4"));
        assert!(text.contains("temco_bytes_moved_total 4096"));
    }
}
