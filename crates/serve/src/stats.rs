//! Lock-free serving observability.
//!
//! Every counter is a relaxed atomic bumped from the submit and worker hot
//! paths — no locks, no allocation. Latency is recorded into a fixed array
//! of power-of-two microsecond buckets; percentiles are interpolated from
//! the histogram at snapshot time, so the steady state keeps no per-request
//! state at all. Batch sizes feed a second fixed histogram (index =
//! executed size − 1), which is what makes "is dynamic batching actually
//! happening?" a one-glance question.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Number of log2 latency buckets. Bucket 0 counts sub-microsecond
/// latencies; bucket `i` (for `1 ≤ i ≤ 28`) holds latencies in
/// `[2^(i−1), 2^i)` microseconds; the last bucket (29) is the overflow
/// bucket `[2^28 µs, ∞)` — everything above ≈ 4.5 minutes.
pub const LATENCY_BUCKETS: usize = 30;

/// Shared counters. One instance per [`crate::Server`], touched by every
/// submitter and worker.
pub(crate) struct Stats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_closed: AtomicU64,
    pub deadline_expired: AtomicU64,
    /// Requests accepted into the queue but failed at shutdown because no
    /// worker remained to drain them (manual-worker mode).
    pub failed_shutdown: AtomicU64,
    pub batches: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Executed batch sizes; index `size − 1`.
    batch_sizes: Box<[AtomicU64]>,
}

impl Stats {
    pub fn new(max_batch: usize) -> Stats {
        Stats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_closed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            failed_shutdown: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            batch_sizes: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one completed request's queue-to-response latency.
    pub fn record_latency(&self, d: Duration) {
        self.latency[latency_bucket(d)].fetch_add(1, Relaxed);
        self.completed.fetch_add(1, Relaxed);
    }

    /// Record one executed batch of `n` requests.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batch_sizes[(n - 1).min(self.batch_sizes.len() - 1)].fetch_add(1, Relaxed);
    }

    pub fn latency_histogram(&self) -> Vec<u64> {
        self.latency.iter().map(|c| c.load(Relaxed)).collect()
    }

    pub fn batch_histogram(&self) -> Vec<u64> {
        self.batch_sizes.iter().map(|c| c.load(Relaxed)).collect()
    }
}

fn latency_bucket(d: Duration) -> usize {
    let us = d.as_micros() as u64;
    if us == 0 {
        return 0; // sub-microsecond
    }
    ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Point-in-time view of a server's counters, returned by
/// [`crate::Server::stats`]. Plain data: safe to hold, serialize, diff.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with an output tensor.
    pub completed: u64,
    /// Submissions rejected by backpressure (queue full).
    pub rejected_full: u64,
    /// Submissions rejected because the server was draining.
    pub rejected_closed: u64,
    /// Requests whose deadline expired before execution.
    pub deadline_expired: u64,
    /// Requests accepted into the queue but failed with `ShuttingDown`
    /// because shutdown found no worker left to drain them.
    pub failed_shutdown: u64,
    /// Engine runs (one per executed batch).
    pub batches: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Latency counts in power-of-two microsecond buckets (see
    /// [`LATENCY_BUCKETS`]).
    pub latency_buckets: Vec<u64>,
    /// Executed-batch-size counts; index `size − 1`.
    pub batch_size_hist: Vec<u64>,
    /// Worker threads serving this instance.
    pub workers: usize,
    /// Slab bytes each worker holds across its bucket engines (the only
    /// per-worker memory; weights are shared).
    pub slab_bytes_per_worker: usize,
}

impl StatsSnapshot {
    /// Accepted requests whose outcome is decided: completed, expired, or
    /// failed at shutdown.
    pub fn settled(&self) -> u64 {
        self.completed + self.deadline_expired + self.failed_shutdown
    }

    /// Request-conservation invariant: every accepted request is either
    /// settled or still queued. Exact only when no batch is mid-execution
    /// (a popped-but-unfinished job is neither settled nor queued), so
    /// assert it at rest — after a drain, or with manual workers between
    /// steps. The `temco-check` fault injector holds the serving layer to
    /// this after every adversarial run.
    pub fn is_conserved_at_rest(&self) -> bool {
        self.submitted == self.settled() + self.queue_depth as u64
    }

    /// Mean executed batch size (0 when nothing ran yet).
    pub fn mean_batch_size(&self) -> f64 {
        let total: u64 = self.batch_size_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 =
            self.batch_size_hist.iter().enumerate().map(|(i, &c)| (i as u64 + 1) * c).sum();
        weighted as f64 / total as f64
    }

    /// Approximate latency percentile (`p` in 0..=100) from the histogram,
    /// using the geometric midpoint of the winning bucket. The returned
    /// value always lies inside the winning bucket's own range (the
    /// overflow bucket reports its geometric "midpoint" as if it ended at
    /// `2^29` µs, the next power of two past its start).
    pub fn latency_percentile(&self, p: f64) -> Duration {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                if i == 0 {
                    // Sub-microsecond bucket: report half a microsecond.
                    return Duration::from_nanos(500);
                }
                // Bucket i covers [2^(i-1), 2^i) µs; geometric midpoint.
                let hi = 1u64 << i;
                let mid_us = (hi as f64 / std::f64::consts::SQRT_2).max(1.0);
                return Duration::from_micros(mid_us as u64);
            }
        }
        // Unreachable when total > 0 (the loop exhausts every bucket), but
        // keep the fallback inside the histogram's own range: the overflow
        // bucket's geometric midpoint, not a value past the last bucket.
        let hi = 1u64 << (LATENCY_BUCKETS - 1);
        Duration::from_micros((hi as f64 / std::f64::consts::SQRT_2) as u64)
    }

    /// Plain-text dump for logs and the wire `STATS` op.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let p = |d: Duration| d.as_secs_f64() * 1e3;
        s.push_str("temco-serve stats\n");
        s.push_str(&format!("  submitted          {}\n", self.submitted));
        s.push_str(&format!("  completed          {}\n", self.completed));
        s.push_str(&format!("  rejected (full)    {}\n", self.rejected_full));
        s.push_str(&format!("  rejected (closed)  {}\n", self.rejected_closed));
        s.push_str(&format!("  deadline expired   {}\n", self.deadline_expired));
        s.push_str(&format!("  failed (shutdown)  {}\n", self.failed_shutdown));
        s.push_str(&format!("  queue depth        {}\n", self.queue_depth));
        s.push_str(&format!(
            "  batches            {} (mean size {:.2})\n",
            self.batches,
            self.mean_batch_size()
        ));
        s.push_str("  batch size hist    ");
        for (i, &c) in self.batch_size_hist.iter().enumerate() {
            if c > 0 {
                s.push_str(&format!("{}:{} ", i + 1, c));
            }
        }
        s.push('\n');
        s.push_str(&format!(
            "  latency ms         p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            p(self.latency_percentile(50.0)),
            p(self.latency_percentile(95.0)),
            p(self.latency_percentile(99.0)),
        ));
        s.push_str(&format!(
            "  workers            {} × {:.2} MiB slab\n",
            self.workers,
            self.slab_bytes_per_worker as f64 / (1024.0 * 1024.0)
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        // Bucket 0 is sub-microsecond; bucket i (1..=28) is [2^(i-1), 2^i) µs.
        assert_eq!(latency_bucket(Duration::from_micros(0)), 0);
        assert_eq!(latency_bucket(Duration::from_nanos(999)), 0);
        assert_eq!(latency_bucket(Duration::from_micros(1)), 1);
        assert_eq!(latency_bucket(Duration::from_micros(2)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(3)), 2);
        assert_eq!(latency_bucket(Duration::from_micros(1000)), 10);
        // The overflow bucket starts at 2^28 µs ≈ 4.5 min, exactly where
        // the penultimate bucket ends — no gap, no double coverage.
        assert_eq!(latency_bucket(Duration::from_micros((1 << 28) - 1)), LATENCY_BUCKETS - 2);
        assert_eq!(latency_bucket(Duration::from_micros(1 << 28)), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket(Duration::from_secs(3600)), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn percentiles_stay_inside_the_histogram_range() {
        // All mass in the overflow bucket: the reported percentile must lie
        // inside that bucket's nominal [2^28, 2^29) µs span, not past it.
        let st = Stats::new(1);
        st.record_latency(Duration::from_secs(3600));
        let snap = StatsSnapshot {
            submitted: 1,
            completed: 1,
            rejected_full: 0,
            rejected_closed: 0,
            deadline_expired: 0,
            failed_shutdown: 0,
            batches: 0,
            queue_depth: 0,
            latency_buckets: st.latency_histogram(),
            batch_size_hist: st.batch_histogram(),
            workers: 1,
            slab_bytes_per_worker: 0,
        };
        let p99 = snap.latency_percentile(99.0);
        assert!(p99 >= Duration::from_micros(1 << 28), "p99 {p99:?} below the overflow bucket");
        assert!(p99 < Duration::from_micros(1 << 29), "p99 {p99:?} past the histogram range");
        // Sub-microsecond mass reports a sub-microsecond percentile.
        let st = Stats::new(1);
        st.record_latency(Duration::from_nanos(100));
        let snap = StatsSnapshot { latency_buckets: st.latency_histogram(), ..snap };
        assert!(snap.latency_percentile(50.0) < Duration::from_micros(1));
    }

    #[test]
    fn percentiles_and_mean_batch_from_histograms() {
        let st = Stats::new(8);
        for _ in 0..90 {
            st.record_latency(Duration::from_micros(100)); // bucket 7
        }
        for _ in 0..10 {
            st.record_latency(Duration::from_micros(100_000)); // bucket 17
        }
        st.record_batch(1);
        st.record_batch(8);
        st.record_batch(8);
        st.record_batch(40); // clamps to the top bucket
        let snap = StatsSnapshot {
            submitted: 100,
            completed: 100,
            rejected_full: 0,
            rejected_closed: 0,
            deadline_expired: 0,
            failed_shutdown: 0,
            batches: st.batches.load(Relaxed),
            queue_depth: 0,
            latency_buckets: st.latency_histogram(),
            batch_size_hist: st.batch_histogram(),
            workers: 1,
            slab_bytes_per_worker: 0,
        };
        let p50 = snap.latency_percentile(50.0);
        assert!(p50 >= Duration::from_micros(64) && p50 < Duration::from_micros(128));
        let p99 = snap.latency_percentile(99.0);
        assert!(p99 >= Duration::from_micros(65_536), "p99 {p99:?}");
        assert_eq!(snap.batch_size_hist[0], 1);
        assert_eq!(snap.batch_size_hist[7], 3);
        assert!((snap.mean_batch_size() - 25.0 / 4.0).abs() < 1e-9);
        let text = snap.render();
        assert!(text.contains("mean size"));
        assert!(text.contains("p99"));
    }
}
