//! Blocking TCP client for the serving protocol.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{self, op, status};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server refused the request (status code + its message).
    Rejected {
        /// Wire status code (see [`crate::proto::status`]).
        code: u8,
        /// Human-readable reason from the server.
        message: String,
    },
    /// The reply violated the protocol.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Rejected { code, message } => {
                let name = match *code {
                    status::QUEUE_FULL => "queue full",
                    status::DEADLINE_EXCEEDED => "deadline exceeded",
                    status::SHUTTING_DOWN => "shutting down",
                    status::BAD_REQUEST => "bad request",
                    _ => "unknown status",
                };
                write!(f, "server rejected request ({name}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True for rejections the caller can retry (backpressure/deadline),
    /// as opposed to transport or protocol failures.
    pub fn is_rejection(&self) -> bool {
        matches!(self, ClientError::Rejected { .. })
    }
}

/// A blocking connection to a serving instance. One in-flight request per
/// client; open several clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    sample_shape: Vec<usize>,
    output_shape: Vec<usize>,
}

impl Client {
    /// Connect and fetch the model's input/output shapes.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client =
            Client { reader, writer, sample_shape: Vec::new(), output_shape: Vec::new() };
        let payload = client.call(op::INFO, &[])?;
        let mut pos = 0;
        client.sample_shape = proto::get_shape(&payload, &mut pos)?;
        client.output_shape = proto::get_shape(&payload, &mut pos)?;
        Ok(client)
    }

    /// The per-sample input shape the server expects (`[1, …]`).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// The per-sample output shape (`[1, …]`).
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Run one sample; `deadline_ms == 0` means no deadline.
    pub fn infer(&mut self, sample: &[f32], deadline_ms: u32) -> Result<Vec<f32>, ClientError> {
        let mut payload = Vec::with_capacity(4 + sample.len() * 4);
        payload.extend_from_slice(&deadline_ms.to_le_bytes());
        proto::put_f32s(&mut payload, sample);
        let reply = self.call(op::INFER, &payload)?;
        Ok(proto::get_f32s(&reply)?)
    }

    /// Fetch the server's plain-text stats dump.
    pub fn stats_text(&mut self) -> Result<String, ClientError> {
        let reply = self.call(op::STATS, &[])?;
        String::from_utf8(reply).map_err(|_| ClientError::Protocol("stats not UTF-8".into()))
    }

    /// Fetch the server's Prometheus text scrape.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let reply = self.call(op::METRICS, &[])?;
        String::from_utf8(reply).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }

    /// Ask the server to drain and stop. The connection is unusable
    /// afterwards.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(op::SHUTDOWN, &[]).map(|_| ())
    }

    fn call(&mut self, opcode: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        proto::write_frame(&mut self.writer, opcode, payload)?;
        self.writer.flush()?;
        match proto::read_frame(&mut self.reader)? {
            Some((status::OK, reply)) => Ok(reply),
            Some((code, reply)) => Err(ClientError::Rejected {
                code,
                message: String::from_utf8_lossy(&reply).into_owned(),
            }),
            None => Err(ClientError::Protocol("connection closed mid-request".into())),
        }
    }
}
