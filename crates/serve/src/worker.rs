//! The batching worker: gather → bucket → pad → run → scatter.
//!
//! Each worker owns one [`Engine`] (private slab) per batch-size bucket,
//! all sharing the server's [`CompiledGraph`] plan cache — so a batch of
//! any admitted size executes on a precompiled plan, and the hot loop
//! never plans, never compiles, and never heap-allocates:
//!
//! * gathered jobs move into a preallocated `Vec` (capacity `max_batch`),
//! * samples are copied into the bucket's preallocated staging tensor
//!   (padding rows zeroed; per-sample outputs are batch-independent for
//!   every op in the IR, so padding never leaks into real rows),
//! * the bucket engine runs zero-alloc on its slab,
//! * output rows are scattered into each request's preallocated response
//!   buffer ([`crate::ticket::Slot`]).
//!
//! Each worker drains exactly one shard queue, so a busy worker never
//! contends with its siblings on a shared lock. Completions go through
//! the `*_returning` slot variants — the request's input tensor rides back
//! with the result so a pooled connection-plane context can recycle it —
//! and each settled batch fires the core's batch hook to wake the event
//! loop (an `eventfd` write, allocation-free).
//!
//! Expired deadlines are failed *before* execution; a request that cannot
//! make its deadline costs no FLOPs.

use std::sync::Arc;
use std::time::Instant;

use temco_obs::{kind, Recorder};
use temco_runtime::Engine;
use temco_tensor::Tensor;

use crate::error::ServeError;
use crate::server::Core;
use crate::ticket::Slot;

/// One queued request.
pub(crate) struct Job {
    /// The single-sample input, shape `[1, …]`.
    pub input: Tensor,
    /// Absolute expiry; `None` waits forever.
    pub deadline: Option<Instant>,
    /// When the job entered the queue (latency accounting).
    pub enqueued: Instant,
    /// Where the result goes.
    pub slot: Arc<Slot>,
}

/// What one [`Worker::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Executed a batch of this many requests.
    Ran(usize),
    /// Queue was empty (or every gathered job had expired).
    Idle,
    /// Queue is closed and fully drained — the worker is done.
    Drained,
}

/// A single serving worker bound to one shard queue. Server-spawned
/// threads drive it with the blocking loop; tests and embedders can
/// single-step it via [`Worker::step`] (obtained from
/// [`crate::Server::manual_worker`], which binds shard 0).
pub struct Worker {
    core: Arc<Core>,
    /// Which shard queue this worker drains (also its stats index).
    shard: usize,
    /// Per-bucket engines, parallel to `core.buckets`.
    engines: Vec<Engine>,
    /// Per-bucket staging input tensors, `[bucket, …]`.
    staging: Vec<Tensor>,
    /// Gather buffer, capacity `max_batch`, reused every step.
    batch: Vec<Job>,
    /// Swap space for the deadline shed (keeps live jobs while expired
    /// ones are consumed by value), capacity `max_batch`.
    keep: Vec<Job>,
    /// Optional span recorder ([`attach_recorder`](Worker::attach_recorder)).
    /// Preallocated; recording in the hot loop stays allocation-free.
    rec: Option<Recorder>,
}

impl Worker {
    pub(crate) fn new(core: Arc<Core>, shard: usize) -> Worker {
        let engines: Vec<Engine> =
            core.plans.iter().map(|p| Engine::from_compiled(p.clone())).collect();
        let staging =
            engines.iter().map(|e| Tensor::zeros(e.graph().shape(e.graph().inputs[0]))).collect();
        let batch = Vec::with_capacity(core.cfg.max_batch);
        let keep = Vec::with_capacity(core.cfg.max_batch);
        Worker { core, shard, engines, staging, batch, keep, rec: None }
    }

    /// Attach a preallocated span recorder. Subsequent steps record
    /// `GATHER`/`STAGE`/`BATCH_RUN`/`SCATTER` spans into its ring without
    /// allocating.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        self.rec = Some(rec);
    }

    /// Detach the recorder (to read its spans) — the inverse of
    /// [`attach_recorder`](Worker::attach_recorder).
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.rec.take()
    }

    /// Total slab bytes this worker holds across its bucket engines.
    pub fn slab_bytes(&self) -> usize {
        self.engines.iter().map(Engine::slab_bytes).sum()
    }

    fn queue(&self) -> &crate::queue::JobQueue {
        &self.core.shards[self.shard]
    }

    /// Gather and execute one batch without blocking on an empty queue.
    /// With jobs queued, still honors the max-delay window to give late
    /// arrivals a chance to join the batch.
    pub fn step(&mut self) -> StepOutcome {
        match self.queue().try_pop() {
            Some(job) => self.gather_and_run(job),
            None if self.queue().is_closed() => StepOutcome::Drained,
            None => StepOutcome::Idle,
        }
    }

    /// The server thread loop: block for work, run batches, exit when the
    /// shard queue closes and drains.
    pub(crate) fn run(mut self) {
        loop {
            match self.queue().pop_blocking() {
                Some(job) => {
                    self.gather_and_run(job);
                }
                None => return,
            }
        }
    }

    fn gather_and_run(&mut self, first: Job) -> StepOutcome {
        let gather_span = self.rec.as_ref().map(|r| r.start());
        self.batch.clear();
        self.batch.push(first);
        let window_end = Instant::now() + self.core.cfg.max_delay;
        while self.batch.len() < self.core.cfg.max_batch {
            match self.queue().pop_until(window_end) {
                Some(job) => self.batch.push(job),
                None => break,
            }
        }
        if let (Some(r), Some(s)) = (self.rec.as_mut(), gather_span) {
            r.finish(s, kind::GATHER, self.batch.len() as u32);
        }
        let outcome = self.execute_batch();
        self.core.notify_batch_done();
        outcome
    }

    fn execute_batch(&mut self) -> StepOutcome {
        let stats = &self.core.stats;
        // Shed expired requests without executing them, handing each its
        // input tensor back. Drain through the preallocated swap buffer so
        // live jobs survive by move, not clone.
        let now = Instant::now();
        self.keep.clear();
        for job in self.batch.drain(..) {
            if job.deadline.is_some_and(|d| d <= now) {
                job.slot.complete_err_returning(ServeError::DeadlineExceeded, job.input);
                stats.deadline_expired.inc();
            } else {
                self.keep.push(job);
            }
        }
        std::mem::swap(&mut self.batch, &mut self.keep);
        let n = self.batch.len();
        if n == 0 {
            return StepOutcome::Idle;
        }

        let bi = self
            .core
            .buckets
            .iter()
            .position(|&b| b >= n)
            .expect("max_batch is always the last bucket");
        let bucket = self.core.buckets[bi] as u32;
        // Everything queued before this instant is queue wait; everything
        // after is service (stage + run + scatter).
        let exec_start = Instant::now();
        for job in &self.batch {
            stats.queue_wait.record(exec_start.saturating_duration_since(job.enqueued));
        }
        let sample_len = self.core.sample_numel;
        let stage_span = self.rec.as_ref().map(|r| r.start());
        {
            let staged = self.staging[bi].data_mut();
            for (i, job) in self.batch.iter().enumerate() {
                staged[i * sample_len..(i + 1) * sample_len].copy_from_slice(job.input.data());
            }
            staged[n * sample_len..].fill(0.0);
        }
        if let (Some(r), Some(s)) = (self.rec.as_mut(), stage_span) {
            r.finish(s, kind::STAGE, bucket);
        }
        let run_span = self.rec.as_ref().map(|r| r.start());
        let outs = self.engines[bi]
            .run(std::slice::from_ref(&self.staging[bi]))
            .expect("bucket plan validated at server construction");
        if let (Some(r), Some(s)) = (self.rec.as_mut(), run_span) {
            r.finish(s, kind::BATCH_RUN, bucket);
        }
        let scatter_span = self.rec.as_ref().map(|r| r.start());
        let out = outs[0].data();
        let out_len = self.core.output_numel;
        for (i, job) in self.batch.drain(..).enumerate() {
            job.slot.complete_ok_returning(&out[i * out_len..(i + 1) * out_len], job.input);
            stats.record_latency(job.enqueued.elapsed());
        }
        if let (Some(r), Some(s)) = (self.rec.as_mut(), scatter_span) {
            r.finish(s, kind::SCATTER, bucket);
        }
        let service = exec_start.elapsed();
        for _ in 0..n {
            stats.service.record(service);
        }
        stats.record_batch(n, bucket as usize);
        stats.bytes_moved.add(self.engines[bi].plan().bytes_moved as u64);
        stats.worker_busy_us[self.shard].add(service.as_micros() as u64);
        stats.worker_batches[self.shard].inc();
        StepOutcome::Ran(n)
    }
}
