//! A bounded MPSC job queue with reject-when-full backpressure.
//!
//! The ring is a `VecDeque` whose capacity is reserved once at
//! construction and never exceeded, so steady-state push/pop only *move*
//! jobs — the queue itself never touches the heap after startup, keeping
//! the worker drain path allocation-free.
//!
//! Close semantics implement graceful drain: after [`JobQueue::close`],
//! pushes are rejected with [`PushError::Closed`] but pops keep returning
//! queued jobs until the ring is empty — in-flight work completes, new
//! work is shed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::worker::Job;

/// Why a push was refused. The job rides back with the error so the
/// caller can retry it on another shard or reclaim its buffers (the
/// submitter still holds the response slot and reports the rejection
/// synchronously).
pub(crate) enum PushError {
    /// At capacity — backpressure.
    Full(Job),
    /// [`JobQueue::close`] was called.
    Closed(Job),
}

struct Inner {
    ring: VecDeque<Job>,
    closed: bool,
}

pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    /// Signalled on push and on close; workers wait here.
    nonempty: Condvar,
    cap: usize,
}

impl JobQueue {
    pub fn new(cap: usize) -> JobQueue {
        assert!(cap > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(Inner { ring: VecDeque::with_capacity(cap), closed: false }),
            nonempty: Condvar::new(),
            cap,
        }
    }

    /// Enqueue, rejecting (not blocking, not dropping) when full or closed.
    pub fn push(&self, job: Job) -> Result<(), PushError> {
        let mut st = self.inner.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(job));
        }
        if st.ring.len() >= self.cap {
            return Err(PushError::Full(job));
        }
        st.ring.push_back(job);
        drop(st);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeue without waiting.
    pub fn try_pop(&self) -> Option<Job> {
        self.inner.lock().unwrap().ring.pop_front()
    }

    /// Dequeue, waiting until a job arrives or the queue is closed *and*
    /// drained (returns `None` only then). Worker threads block here.
    pub fn pop_blocking(&self) -> Option<Job> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(job) = st.ring.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.nonempty.wait(st).unwrap();
        }
    }

    /// Dequeue, waiting at most until `deadline`. `None` means the window
    /// elapsed (or the queue closed and drained) — used by the batcher to
    /// gather up to `max_batch` jobs within the max-delay window.
    pub fn pop_until(&self, deadline: Instant) -> Option<Job> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(job) = st.ring.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self.nonempty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if timeout.timed_out() && st.ring.is_empty() {
                return None;
            }
        }
    }

    /// Stop accepting pushes; wake every waiting worker so it can drain
    /// the remaining jobs and exit.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }
}
