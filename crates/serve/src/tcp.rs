//! TCP front ends: the event-driven connection plane ([`serve`]) and the
//! legacy blocking accept loop ([`serve_blocking`]).
//!
//! [`serve`] is the production entry point: on x86_64 Linux it runs the
//! single-threaded epoll loop of [`crate::event`] — a fixed connection
//! table, preallocated per-connection frame buffers, pooled request
//! contexts, and no thread per connection — and transparently falls back
//! to [`serve_blocking`] elsewhere (the std-only epoll shim is a raw
//! x86_64 Linux syscall binding).
//!
//! [`serve_blocking`] stays deliberately boring: blocking sockets, std
//! threads, the length-prefixed protocol of [`crate::proto`]. A
//! `SHUTDOWN` frame (or [`Server::shutdown`] from another thread) stops
//! the accept loop, drains the queue, and joins the workers; connections
//! submitting during the drain receive `SHUTTING_DOWN` statuses. Both
//! front ends speak the same wire protocol.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use temco_tensor::Tensor;

use crate::error::ServeError;
use crate::proto::{self, op, status};
use crate::server::Server;

/// Connection-plane parameters for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct EventConfig {
    /// Fixed connection-table size; accepts beyond it are refused
    /// (counted, never queued). Each slot costs one frame buffer — no
    /// thread.
    pub max_conns: usize,
    /// Reap connections quiet for this long that owe no responses.
    pub idle_timeout: Duration,
    /// Per-connection pipelining cap: with this many responses
    /// outstanding a client stops being read until completions drain,
    /// so one flooder cannot monopolize the admission pool.
    pub max_inflight: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig { max_conns: 1024, idle_timeout: Duration::from_secs(60), max_inflight: 32 }
    }
}

/// Serve `server` on `listener` with the event-driven connection plane
/// until a `SHUTDOWN` frame arrives; returns after the graceful drain.
/// Falls back to [`serve_blocking`] on targets without the epoll shim.
pub fn serve(server: Server, listener: TcpListener, cfg: EventConfig) -> io::Result<()> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        crate::event::EventLoop::new(server, listener, cfg)?.run()
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = cfg;
        serve_blocking(server, listener)
    }
}

/// Serve `server` on `listener` until a `SHUTDOWN` frame arrives. Returns
/// after the graceful drain completes and every connection thread exits.
pub fn serve_blocking(server: Server, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
            Err(e) => return Err(e),
        };
        let server = server.clone();
        let stop = stop.clone();
        conns.push(std::thread::spawn(move || handle_conn(server, stream, stop, addr)));
    }
    // Drain: reject new work, finish queued work, stop workers.
    server.shutdown();
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Serve one client until EOF (or its `SHUTDOWN` request).
fn handle_conn(server: Server, stream: TcpStream, stop: Arc<AtomicBool>, addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    while let Ok(Some((tag, payload))) = proto::read_frame(&mut reader) {
        let ok = match tag {
            op::INFER => respond_infer(&server, &payload, &mut writer).is_ok(),
            op::STATS => {
                proto::write_frame(&mut writer, status::OK, server.stats().render().as_bytes())
                    .is_ok()
            }
            op::METRICS => {
                proto::write_frame(&mut writer, status::OK, server.prometheus_metrics().as_bytes())
                    .is_ok()
            }
            op::INFO => {
                let mut p = Vec::new();
                proto::put_shape(&mut p, server.sample_shape());
                proto::put_shape(&mut p, server.output_shape());
                proto::write_frame(&mut writer, status::OK, &p).is_ok()
            }
            op::SHUTDOWN => {
                let _ = proto::write_frame(&mut writer, status::OK, b"draining");
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            other => proto::write_frame(
                &mut writer,
                status::BAD_REQUEST,
                format!("unknown opcode {other}").as_bytes(),
            )
            .is_ok(),
        };
        if !ok {
            return;
        }
    }
}

fn respond_infer(server: &Server, payload: &[u8], writer: &mut impl io::Write) -> io::Result<()> {
    let mut pos = 0;
    let deadline_ms = match proto::get_u32(payload, &mut pos) {
        Ok(v) => v,
        Err(e) => return proto::write_frame(writer, status::BAD_REQUEST, e.to_string().as_bytes()),
    };
    let data = match proto::get_f32s(&payload[pos..]) {
        Ok(v) => v,
        Err(e) => return proto::write_frame(writer, status::BAD_REQUEST, e.to_string().as_bytes()),
    };
    let shape = server.sample_shape().to_vec();
    if data.len() != shape.iter().product::<usize>() {
        return proto::write_frame(
            writer,
            status::BAD_REQUEST,
            format!(
                "expected {} f32s for shape {shape:?}, got {}",
                shape.iter().product::<usize>(),
                data.len()
            )
            .as_bytes(),
        );
    }
    let sample = Tensor::from_vec(&shape, data);
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms as u64));
    let result =
        server.submit_with_deadline(sample, deadline).and_then(crate::ticket::Ticket::wait);
    match result {
        Ok(out) => {
            let mut p = Vec::new();
            proto::put_f32s(&mut p, out.data());
            proto::write_frame(writer, status::OK, &p)
        }
        Err(e) => {
            let code = match e {
                ServeError::QueueFull => status::QUEUE_FULL,
                ServeError::DeadlineExceeded => status::DEADLINE_EXCEEDED,
                ServeError::ShuttingDown => status::SHUTTING_DOWN,
                _ => status::BAD_REQUEST,
            };
            proto::write_frame(writer, code, e.to_string().as_bytes())
        }
    }
}
