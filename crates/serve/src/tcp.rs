//! TCP front end: blocking accept loop + one thread per connection.
//!
//! Deliberately boring: blocking sockets, std threads, the length-prefixed
//! protocol of [`crate::proto`]. A `SHUTDOWN` frame (or
//! [`Server::shutdown`] from another thread) stops the accept loop, drains
//! the queue, and joins the workers; connections submitting during the
//! drain receive `SHUTTING_DOWN` statuses.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use temco_tensor::Tensor;

use crate::error::ServeError;
use crate::proto::{self, op, status};
use crate::server::Server;

/// Serve `server` on `listener` until a `SHUTDOWN` frame arrives. Returns
/// after the graceful drain completes and every connection thread exits.
pub fn serve_blocking(server: Server, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
            Err(e) => return Err(e),
        };
        let server = server.clone();
        let stop = stop.clone();
        conns.push(std::thread::spawn(move || handle_conn(server, stream, stop, addr)));
    }
    // Drain: reject new work, finish queued work, stop workers.
    server.shutdown();
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Serve one client until EOF (or its `SHUTDOWN` request).
fn handle_conn(server: Server, stream: TcpStream, stop: Arc<AtomicBool>, addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    while let Ok(Some((tag, payload))) = proto::read_frame(&mut reader) {
        let ok = match tag {
            op::INFER => respond_infer(&server, &payload, &mut writer).is_ok(),
            op::STATS => {
                proto::write_frame(&mut writer, status::OK, server.stats().render().as_bytes())
                    .is_ok()
            }
            op::METRICS => {
                proto::write_frame(&mut writer, status::OK, server.prometheus_metrics().as_bytes())
                    .is_ok()
            }
            op::INFO => {
                let mut p = Vec::new();
                proto::put_shape(&mut p, server.sample_shape());
                proto::put_shape(&mut p, server.output_shape());
                proto::write_frame(&mut writer, status::OK, &p).is_ok()
            }
            op::SHUTDOWN => {
                let _ = proto::write_frame(&mut writer, status::OK, b"draining");
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            other => proto::write_frame(
                &mut writer,
                status::BAD_REQUEST,
                format!("unknown opcode {other}").as_bytes(),
            )
            .is_ok(),
        };
        if !ok {
            return;
        }
    }
}

fn respond_infer(server: &Server, payload: &[u8], writer: &mut impl io::Write) -> io::Result<()> {
    let mut pos = 0;
    let deadline_ms = match proto::get_u32(payload, &mut pos) {
        Ok(v) => v,
        Err(e) => return proto::write_frame(writer, status::BAD_REQUEST, e.to_string().as_bytes()),
    };
    let data = match proto::get_f32s(&payload[pos..]) {
        Ok(v) => v,
        Err(e) => return proto::write_frame(writer, status::BAD_REQUEST, e.to_string().as_bytes()),
    };
    let shape = server.sample_shape().to_vec();
    if data.len() != shape.iter().product::<usize>() {
        return proto::write_frame(
            writer,
            status::BAD_REQUEST,
            format!(
                "expected {} f32s for shape {shape:?}, got {}",
                shape.iter().product::<usize>(),
                data.len()
            )
            .as_bytes(),
        );
    }
    let sample = Tensor::from_vec(&shape, data);
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms as u64));
    let result =
        server.submit_with_deadline(sample, deadline).and_then(crate::ticket::Ticket::wait);
    match result {
        Ok(out) => {
            let mut p = Vec::new();
            proto::put_f32s(&mut p, out.data());
            proto::write_frame(writer, status::OK, &p)
        }
        Err(e) => {
            let code = match e {
                ServeError::QueueFull => status::QUEUE_FULL,
                ServeError::DeadlineExceeded => status::DEADLINE_EXCEEDED,
                ServeError::ShuttingDown => status::SHUTTING_DOWN,
                _ => status::BAD_REQUEST,
            };
            proto::write_frame(writer, code, e.to_string().as_bytes())
        }
    }
}
