//! `temco-serve` — dynamic-batching inference serving on the zero-alloc
//! [`Engine`](temco_runtime::Engine).
//!
//! The runtime's plan-once/run-many engine answers "how do I run one
//! model fast"; this crate answers "how do I run *traffic*". The design
//! keeps the runtime's central invariant — static planning, zero
//! steady-state allocation — intact under concurrency:
//!
//! * **Shared constants** — the server compiles the model once per
//!   batch-size bucket (1, 2, 4, …, `max_batch`) into `Arc`'d
//!   [`CompiledGraph`](temco_runtime::CompiledGraph)s. Buckets are
//!   [`Graph::rebatch`](temco_ir::Graph::rebatch) clones sharing one
//!   copy-on-write weight store, so N workers × B buckets reference one
//!   copy of the weights; each worker privately owns only its slabs.
//! * **Dynamic batching, sharded** — single-sample requests route by
//!   two-choice load balancing onto per-worker bounded queues; each
//!   worker gathers up to `max_batch` of them within a `max_delay`
//!   window, pads to the smallest bucket ≥ the gathered count, and runs
//!   that bucket's precompiled engine. The hot path never plans and
//!   never heap-allocates (requests carry preallocated response
//!   buffers; staging tensors and the gather buffer are reused).
//! * **Event-driven connection plane** — on x86-64 Linux, [`serve`]
//!   multiplexes every socket onto one epoll thread (raw syscalls, no
//!   libc binding): preallocated per-connection frame buffers, a pooled
//!   request-context admission limit, per-connection inflight caps for
//!   fairness, and an idle sweep. A connection costs a table slot, not
//!   a thread. [`serve_blocking`] remains the portable fallback.
//! * **Backpressure & deadlines** — a full queue *rejects* (never blocks,
//!   never silently drops), and a request whose deadline lapses in the
//!   queue fails without costing FLOPs. Shutdown drains: queued work
//!   completes, new work is refused.
//! * **Observability** — lock-free counters and log2 histograms with
//!   end-to-end latency split into queue-wait and service time
//!   (p50/p95/p99 by linear interpolation), rejects and failures labeled
//!   by cause, batch-window occupancy, queue depth, and per-worker slab
//!   bytes — as a typed [`StatsSnapshot`], a plain-text dump, or a
//!   Prometheus text scrape (`METRICS` opcode,
//!   [`Server::prometheus_metrics`]). Workers accept a preallocated
//!   [`temco_obs`] span recorder for gather/stage/run/scatter tracing
//!   without perturbing the zero-alloc hot loop.
//! * **Wire protocol** — a tiny length-prefixed TCP protocol
//!   ([`proto`]), a blocking [`Client`], and a closed-loop [`loadgen`];
//!   all std-only, consistent with the repo's no-external-deps policy.

pub mod client;
pub mod error;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub mod event;
pub mod loadgen;
pub mod proto;
mod queue;
pub mod server;
pub mod stats;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub mod sys;
pub mod tcp;
pub mod ticket;
pub mod worker;

pub use client::{Client, ClientError};
pub use error::{BuildError, ServeError};
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub use event::EventLoop;
pub use loadgen::{BurstConfig, BurstReport, LoadReport, LoadgenConfig};
pub use server::{ServeConfig, Server};
pub use stats::{StatsSnapshot, LATENCY_BUCKETS};
pub use tcp::{serve, serve_blocking, EventConfig};
pub use ticket::Ticket;
pub use worker::{StepOutcome, Worker};
