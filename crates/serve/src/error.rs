//! Typed serving failures.

use std::fmt;

use temco_runtime::ExecError;

/// Why a request was not served. Submission errors (`QueueFull`,
/// `ShuttingDown`, `InputShape`) surface synchronously from
/// [`crate::Server::submit`]; `DeadlineExceeded` arrives through the
/// [`crate::Ticket`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is at capacity — backpressure. Retry
    /// later or shed the request upstream.
    QueueFull,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired before a worker picked it up; it was
    /// never executed.
    DeadlineExceeded,
    /// The submitted sample does not match the model's input (carries the
    /// graph input's name, its per-sample shape, and what was passed).
    InputShape {
        /// Graph input name.
        name: String,
        /// Expected per-sample shape (leading dimension 1).
        expected: Vec<usize>,
        /// Shape of the submitted tensor.
        got: Vec<usize>,
    },
    /// The model cannot be served (multi-input/multi-output graphs).
    Unsupported(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline expired before the request was executed")
            }
            ServeError::InputShape { name, expected, got } => {
                write!(f, "sample for input '{name}' has shape {got:?}, expected {expected:?}")
            }
            ServeError::Unsupported(why) => write!(f, "model not servable: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A server could not be constructed.
#[derive(Debug)]
pub enum BuildError {
    /// The graph is structurally unservable (inputs/outputs arity).
    Unsupported(String),
    /// Re-batching the graph to a bucket size failed (degenerate shapes,
    /// scalar inputs, …).
    Rebatch {
        /// The bucket batch size whose re-batching failed.
        bucket: usize,
        /// The underlying shape error.
        source: temco_ir::ShapeError,
    },
    /// Compiling a batch-size bucket failed.
    Compile {
        /// The bucket batch size whose compilation failed.
        bucket: usize,
        /// The underlying engine error.
        source: ExecError,
    },
    /// Spawning a serving worker thread failed (resource exhaustion). The
    /// server tears down any workers already started and reports this as
    /// a recoverable error instead of panicking mid-construction.
    Spawn {
        /// Index of the worker whose thread could not be spawned.
        worker: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unsupported(why) => write!(f, "model not servable: {why}"),
            BuildError::Rebatch { bucket, source } => {
                write!(f, "re-batching to batch-size-{bucket} bucket failed: {source}")
            }
            BuildError::Compile { bucket, source } => {
                write!(f, "compiling batch-size-{bucket} bucket failed: {source}")
            }
            BuildError::Spawn { worker, source } => {
                write!(f, "spawning serving worker {worker} failed: {source}")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Unsupported(_) => None,
            BuildError::Rebatch { source, .. } => Some(source),
            BuildError::Compile { source, .. } => Some(source),
            BuildError::Spawn { source, .. } => Some(source),
        }
    }
}
