//! Raw `epoll` + `eventfd` bindings via inline-assembly syscalls.
//!
//! The repo is std-only — no `libc` crate — but std exposes no readiness
//! API, so the event-driven connection plane talks to the kernel directly.
//! x86_64 Linux only (the module is `cfg`-gated out elsewhere and the
//! front end falls back to the thread-per-connection server); the syscall
//! ABI is pinned by the kernel, so these numbers are stable.
//!
//! Only the five calls the event loop needs are bound: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd2`, and `read`/`write`/`close` on
//! the eventfd. Socket I/O itself stays on std (`TcpStream` in
//! nonblocking mode) — the shim is for *readiness*, not for data.

use std::arch::asm;
use std::io;

const SYS_READ: usize = 0;
const SYS_WRITE: usize = 1;
const SYS_CLOSE: usize = 3;
const SYS_EPOLL_WAIT: usize = 232;
const SYS_EPOLL_CTL: usize = 233;
const SYS_EVENTFD2: usize = 290;
const SYS_EPOLL_CREATE1: usize = 291;

/// Readiness flags (subset the event loop uses).
pub const EPOLLIN: u32 = 0x1;
pub const EPOLLOUT: u32 = 0x4;
pub const EPOLLERR: u32 = 0x8;
pub const EPOLLHUP: u32 = 0x10;
/// Peer shut down its writing half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the kernel ABI
/// declares it `__attribute__((packed))` there); `data` carries the
/// registrant's token back out of `epoll_wait`.
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[inline]
unsafe fn syscall3(n: usize, a1: usize, a2: usize, a3: usize) -> isize {
    let ret: isize;
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

#[inline]
unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Map a raw syscall return (negative errno on failure) to `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

fn close_fd(fd: i32) {
    unsafe {
        syscall3(SYS_CLOSE, fd as usize, 0, 0);
    }
}

/// An epoll instance. Level-triggered registration only — the event loop
/// re-arms interest explicitly, which keeps the state machine simple and
/// makes missed wakeups structurally impossible.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall3(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0) })?;
        Ok(Epoll { fd: fd as i32 })
    }

    fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent { events, data: token };
        check(unsafe {
            syscall4(SYS_EPOLL_CTL, self.fd as usize, op, fd as usize, &ev as *const _ as usize)
        })?;
        Ok(())
    }

    /// Register `fd` for `events`; `token` rides back in each readiness
    /// report.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change a registered fd's interest set.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`.
    pub fn del(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block up to `timeout_ms` (`-1` = forever, `0` = poll) for readiness;
    /// fills `events` from the front and returns how many. Retries on
    /// `EINTR` so callers never see spurious signal wakeups.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// A nonblocking eventfd: the cross-thread wakeup primitive. Workers
/// `signal()` it after settling a batch; the event loop registers it in
/// the epoll set and `drain()`s it on wakeup. Both paths are a single
/// syscall on an 8-byte stack buffer — no allocation, safe to call from
/// the zero-alloc worker hot loop.
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = check(unsafe { syscall3(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0) })?;
        Ok(EventFd { fd: fd as i32 })
    }

    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Bump the counter, waking any epoll waiter. A full counter
    /// (`EAGAIN`) already guarantees a pending wakeup, so it is ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        let ret = unsafe { syscall3(SYS_WRITE, self.fd as usize, &one as *const u64 as usize, 8) };
        debug_assert!(ret == 8 || -ret as i32 == EAGAIN, "eventfd write failed: errno {}", -ret);
    }

    /// Consume all pending signals (resets the counter to zero).
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            syscall3(SYS_READ, self.fd as usize, &mut buf as *mut u64 as usize, 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// eventfd counters survive being handed across threads; the fd is just an
// integer and every operation is a single atomic-in-the-kernel syscall.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing signalled: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        let (bits, token) = (ev.events, ev.data);
        assert_ne!(bits & EPOLLIN, 0);
        assert_eq!(token, 42);

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_a_readable_socket() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        let (bits, token) = (ev.events, ev.data);
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLIN, 0);

        // Interest can be narrowed and the fd removed.
        ep.modify(rx.as_raw_fd(), EPOLLOUT, 7).unwrap();
        ep.del(rx.as_raw_fd()).unwrap();
    }
}
