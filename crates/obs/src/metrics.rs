//! Metrics primitives: relaxed-atomic counters, gauges, and log2-µs
//! histograms, plus a [`Registry`] that renders them as Prometheus text.
//!
//! The update side is hot-path safe: every instrument is a fixed set of
//! `AtomicU64`s bumped with relaxed ordering — no locks, no allocation,
//! no syscalls. Exactness across instruments is not promised (a scrape
//! racing an update may see `submitted` ahead of `completed + queued`);
//! each individual counter is exact, which is what conservation audits
//! check once the system is at rest.
//!
//! Histograms use the same 30-bucket log2-microsecond layout as the
//! serving layer's latency histogram: bucket 0 holds sub-µs samples and
//! bucket `i ≥ 1` holds `[2^(i−1), 2^i)` µs, with the last bucket
//! absorbing everything above. [`percentile_log2_us`] interpolates
//! *linearly inside the winning bucket* using the fractional rank
//! `p/100 × total`, which both kills the old upper-edge bias at p50 on
//! tight distributions and keeps p100-ish quantiles strictly below the
//! nominal top edge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log2-µs histogram buckets. Must match the serving layer's
/// `LATENCY_BUCKETS`; the last bucket is the overflow bucket.
pub const LOG2_BUCKETS: usize = 30;

/// Bucket index for a duration of `us` microseconds.
#[inline]
pub fn bucket_of_us(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(LOG2_BUCKETS - 1)
    }
}

/// Inclusive lower edge of bucket `i`, in µs.
pub fn bucket_lo_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Exclusive upper edge of bucket `i`, in µs (nominal for the overflow
/// bucket).
pub fn bucket_hi_us(i: usize) -> u64 {
    1u64 << i
}

/// Interpolated `p`-th percentile (0–100) of a log2-µs bucket histogram,
/// in µs. Returns 0 for an empty histogram.
///
/// The rank is fractional (`p/100 × total`, not rounded up), and the
/// value is placed `frac` of the way through the winning bucket's span.
/// With a single sample, p50 lands mid-bucket and p99 lands at 99% of
/// the bucket — never on the upper edge, so quantiles of overflow-bucket
/// mass stay below the nominal 2^29 µs ceiling.
pub fn percentile_log2_us(counts: &[u64], p: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * total as f64;
    let mut cum_before = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if (cum_before + c) as f64 >= rank {
            let frac = ((rank - cum_before as f64) / c as f64).clamp(0.0, 1.0);
            let lo = bucket_lo_us(i) as f64;
            let hi = bucket_hi_us(i) as f64;
            return lo + frac * (hi - lo);
        }
        cum_before += c;
    }
    // All mass below the rank (p = 100 with rounding): top of the last
    // occupied bucket.
    let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    bucket_hi_us(last) as f64
}

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge storing an `f64` as its bit pattern.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log2-µs histogram: [`LOG2_BUCKETS`] bucket counters plus a running
/// sum of microseconds. Updates are two relaxed atomic adds.
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    sum_us: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    #[inline]
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of_us(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Snapshot of the bucket counts.
    pub fn counts(&self) -> [u64; LOG2_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all recorded durations, in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Interpolated percentile in µs (see [`percentile_log2_us`]).
    pub fn percentile_us(&self, p: f64) -> f64 {
        percentile_log2_us(&self.counts(), p)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Log2Histogram>),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A registry of named instruments rendering Prometheus text exposition.
///
/// Registration hands back `Arc` handles the owner bumps directly — the
/// registry is only consulted at scrape time. Several entries may share
/// one metric name with different label sets (e.g. a rejection counter
/// per cause); `# HELP`/`# TYPE` are emitted once per name, in first
/// registration order.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register a counter with labels, e.g. `[("cause", "queue_full")]`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register a gauge with labels, e.g. `[("worker", "0")]` — one
    /// handle per label set, sharing the metric name (per-worker
    /// occupancy gauges in the serving layer).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Register a log2-µs histogram, rendered with second-denominated
    /// `le` bounds per Prometheus convention.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Log2Histogram> {
        let h = Arc::new(Log2Histogram::new());
        self.push(name, help, &[], Instrument::Histogram(h.clone()));
        h
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        self.entries.lock().unwrap().push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            instrument,
        });
    }

    /// Render every registered instrument as Prometheus text exposition
    /// (version 0.0.4). Allocates freely; scrape-path only.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !seen.contains(&e.name.as_str()) {
                seen.push(&e.name);
                let kind = match e.instrument {
                    Instrument::Counter(_) => "counter",
                    Instrument::Gauge(_) => "gauge",
                    Instrument::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
            }
            match &e.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label_set(&e.labels, None), c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label_set(&e.labels, None), g.get());
                }
                Instrument::Histogram(h) => {
                    let counts = h.counts();
                    let total: u64 = counts.iter().sum();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        // Skip interior zero-count buckets to keep the
                        // scrape small; cumulative semantics survive.
                        if c == 0 && i + 1 != counts.len() {
                            continue;
                        }
                        let le = bucket_hi_us(i) as f64 / 1e6;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            e.name,
                            label_set(&e.labels, Some(&format!("{le}"))),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        label_set(&e.labels, Some("+Inf")),
                        total
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        e.name,
                        label_set(&e.labels, None),
                        h.sum_us() as f64 / 1e6
                    );
                    let _ =
                        writeln!(out, "{}_count{} {}", e.name, label_set(&e.labels, None), total);
                }
            }
        }
        out
    }
}

/// Format a `{k="v",…}` label set, optionally with a trailing `le`.
/// Empty when there is nothing to emit.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_matches_the_documented_layout() {
        assert_eq!(bucket_of_us(0), 0);
        assert_eq!(bucket_of_us(1), 1);
        assert_eq!(bucket_of_us(2), 2);
        assert_eq!(bucket_of_us(3), 2);
        assert_eq!(bucket_of_us(4), 3);
        assert_eq!(bucket_of_us(u64::MAX), LOG2_BUCKETS - 1);
        for i in 1..LOG2_BUCKETS - 1 {
            assert_eq!(bucket_of_us(bucket_lo_us(i)), i);
            assert_eq!(bucket_of_us(bucket_hi_us(i) - 1), i);
        }
    }

    #[test]
    fn percentile_interpolates_close_to_exact_quantiles() {
        // 1..=1000 µs uniformly: exact p50 = 500 µs, p90 = 900 µs.
        let mut counts = [0u64; LOG2_BUCKETS];
        for us in 1..=1000u64 {
            counts[bucket_of_us(us)] += 1;
        }
        let p50 = percentile_log2_us(&counts, 50.0);
        let p90 = percentile_log2_us(&counts, 90.0);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 ≈ {p50}");
        assert!((p90 - 900.0).abs() / 900.0 < 0.15, "p90 ≈ {p90}");
        // The old upper-edge estimator returned 512 for p50 here; the
        // geometric midpoint returned ~362. Both are > 2% off.
    }

    #[test]
    fn percentile_of_overflow_mass_stays_below_the_ceiling() {
        let mut counts = [0u64; LOG2_BUCKETS];
        counts[LOG2_BUCKETS - 1] = 1;
        let p99 = percentile_log2_us(&counts, 99.0);
        assert!(p99 < bucket_hi_us(LOG2_BUCKETS - 1) as f64);
        assert!(p99 >= bucket_lo_us(LOG2_BUCKETS - 1) as f64);
        assert_eq!(percentile_log2_us(&[0; LOG2_BUCKETS], 50.0), 0.0);
    }

    #[test]
    fn histogram_records_and_reports() {
        let h = Log2Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(3));
        h.record_us(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 103);
        let counts = h.counts();
        assert_eq!(counts[bucket_of_us(100)], 1);
        assert_eq!(counts[bucket_of_us(3)], 1);
        assert_eq!(counts[0], 1);
        assert!(h.percentile_us(50.0) > 0.0);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let reg = Registry::new();
        let c = reg.counter("temco_requests_total", "Requests seen.");
        let r1 = reg.counter_with(
            "temco_rejects_total",
            "Rejects by cause.",
            &[("cause", "queue_full")],
        );
        let r2 =
            reg.counter_with("temco_rejects_total", "Rejects by cause.", &[("cause", "deadline")]);
        let g = reg.gauge("temco_queue_depth", "Jobs waiting.");
        let g0 = reg.gauge_with("temco_worker_busy", "Busy fraction.", &[("worker", "0")]);
        let g1 = reg.gauge_with("temco_worker_busy", "Busy fraction.", &[("worker", "1")]);
        let h = reg.histogram("temco_wait_seconds", "Queue wait.");
        c.add(5);
        r1.inc();
        r2.add(2);
        g.set(3.0);
        g0.set(0.25);
        g1.set(0.75);
        h.record_us(100);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE temco_requests_total counter"));
        assert!(text.contains("temco_requests_total 5"));
        assert!(text.contains("temco_rejects_total{cause=\"queue_full\"} 1"));
        assert!(text.contains("temco_rejects_total{cause=\"deadline\"} 2"));
        assert_eq!(
            text.matches("# HELP temco_rejects_total").count(),
            1,
            "HELP once per name even with two label sets"
        );
        assert!(text.contains("temco_queue_depth 3"));
        assert!(text.contains("temco_worker_busy{worker=\"0\"} 0.25"));
        assert!(text.contains("temco_worker_busy{worker=\"1\"} 0.75"));
        assert_eq!(
            text.matches("# HELP temco_worker_busy").count(),
            1,
            "HELP once per name even with per-worker label sets"
        );
        // 100 µs lands in [64,128) µs → first cumulative bound at
        // 128 µs = 0.000128 s.
        assert!(text.contains("temco_wait_seconds_bucket{le=\"0.000128\"} 1"));
        assert!(text.contains("temco_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("temco_wait_seconds_sum 0.0001"));
        assert!(text.contains("temco_wait_seconds_count 1"));
    }
}
