//! chrome://tracing export for recorded spans.
//!
//! Renders a [`crate::ring::Recorder`]'s events as the Trace Event
//! Format's JSON object form — one complete (`"ph":"X"`) event per span,
//! timestamps and durations in microseconds as chrome expects. Load the
//! output in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! The caller supplies the span names (this crate cannot know node
//! names); the span kind becomes the category so tracks can be filtered
//! by `run` / `node` / `batch_run` etc.

use crate::ring::{kind, Event, NO_NODE};

/// Render `events` as a chrome://tracing JSON document. `name_of` maps
/// each event to its display name (e.g. the node's value name).
pub fn chrome_trace<'a, I, F>(events: I, mut name_of: F) -> String
where
    I: IntoIterator<Item = &'a Event>,
    F: FnMut(&Event) -> String,
{
    use std::fmt::Write;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}",
            escape_json(&name_of(e)),
            kind::label(e.kind),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            // Whole-run spans sit on their own track above the node track
            // so nesting renders as a flame graph.
            if e.kind == kind::RUN { 0 } else { 1 },
        );
        if e.node != NO_NODE {
            let _ = write!(out, ",\"args\":{{\"node\":{}}}", e.node);
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Recorder;

    #[test]
    fn emits_one_complete_event_per_span() {
        let mut r = Recorder::with_capacity(8);
        r.record(Event { kind: kind::NODE, node: 0, start_ns: 1_000, dur_ns: 2_000 });
        r.record(Event { kind: kind::NODE, node: 1, start_ns: 3_500, dur_ns: 500 });
        r.record(Event { kind: kind::RUN, node: NO_NODE, start_ns: 1_000, dur_ns: 3_000 });
        let json = chrome_trace(r.iter(), |e| {
            if e.kind == kind::RUN {
                "run".to_string()
            } else {
                format!("node{}", e.node)
            }
        });
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"name\":\"node0\""));
        assert!(json.contains("\"ts\":1,\"dur\":2"));
        assert!(json.contains("\"ts\":3.5,\"dur\":0.5"));
        assert!(json.contains("\"cat\":\"run\""));
        // RUN spans carry no node arg.
        assert_eq!(json.matches("\"args\"").count(), 2);
    }

    #[test]
    fn names_are_json_escaped() {
        let e = Event { kind: kind::NODE, node: 0, start_ns: 0, dur_ns: 1 };
        let json = chrome_trace([&e].into_iter().copied().collect::<Vec<_>>().iter(), |_| {
            "a\"b\\c\nd".to_string()
        });
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn empty_recorder_is_still_valid_json_shape() {
        let r = Recorder::with_capacity(1);
        let json = chrome_trace(r.iter(), |_| String::new());
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
