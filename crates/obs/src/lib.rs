//! `temco-obs` — observability primitives for the TeMCO stack.
//!
//! The engine and serving layers are built around one invariant: the hot
//! path never heap-allocates. An observability layer that breaks that
//! invariant perturbs exactly what it measures, so everything here is
//! split along the same line the runtime already draws:
//!
//! * **Recording is allocation-free** — [`ring::Recorder`] is a
//!   preallocated, thread-owned ring buffer of fixed-size span records
//!   (drop-oldest on overflow, with accounting); [`metrics`] counters and
//!   histograms are relaxed atomics bumped in place. Both are safe to
//!   call from the executor's node loop and the serving worker's step.
//! * **Rendering may allocate** — building an [`report::EngineReport`],
//!   a chrome://tracing JSON dump ([`trace`]), or a Prometheus text
//!   scrape ([`metrics::Registry::render_prometheus`]) happens on the
//!   cold path (CLI, scrape request) and formats freely.
//!
//! The crate is std-only and dependency-free, like the rest of the
//! workspace; higher layers (`temco-runtime`, `temco-serve`, the CLI)
//! attach the semantics — node names, metric names, plan attribution.

pub mod metrics;
pub mod report;
pub mod ring;
pub mod trace;

pub use metrics::{
    bucket_hi_us, bucket_lo_us, bucket_of_us, percentile_log2_us, Counter, Gauge, Log2Histogram,
    Registry, LOG2_BUCKETS,
};
pub use report::{EngineReport, NodeStat, OpRollup};
pub use ring::{kind, Event, Recorder, SpanStart, NO_NODE};
pub use trace::chrome_trace;
