//! The span recorder: a preallocated, thread-owned ring buffer.
//!
//! One [`Recorder`] belongs to one thread (an engine, a serving worker, a
//! CLI loop) — there is no global registry and no locking, which is what
//! keeps [`Recorder::record`] down to a couple of predictable branches and
//! three word writes. A full ring **drops the oldest** record (the recent
//! past is what profiling wants) and counts what it dropped, so a report
//! can say "these numbers cover the last N spans, M fell off the back"
//! instead of silently lying.
//!
//! A record is three machine words — `kind`/`node` packed into one `u64`,
//! start tick, duration — timestamped off a monotonic [`Instant`] epoch
//! taken at construction. `Instant::now` neither allocates nor syscalls on
//! the platforms this repo targets (vDSO clock), so recording inside the
//! zero-alloc executor loop is safe; the repo's counting-global-allocator
//! tests assert exactly that with instrumentation enabled.

use std::time::Instant;

/// Span kinds used across the stack. Plain `u32`s rather than an enum so
/// downstream crates can add their own without a dependency cycle; values
/// below 256 are reserved for the workspace.
pub mod kind {
    /// One whole `Engine::run` (node loop + output staging).
    pub const RUN: u32 = 0;
    /// One node's kernel inside a run; `node` is the schedule index.
    pub const NODE: u32 = 1;
    /// Serving: the batch-gather window (first pop to window close).
    pub const GATHER: u32 = 2;
    /// Serving: copying gathered samples into the staging tensor.
    pub const STAGE: u32 = 3;
    /// Serving: the bucket engine run for one batch; `node` is the bucket
    /// batch size.
    pub const BATCH_RUN: u32 = 4;
    /// Serving: scattering output rows into response slots.
    pub const SCATTER: u32 = 5;

    /// Human label for a workspace kind (downstream kinds render as
    /// `kind<N>`).
    pub fn label(k: u32) -> &'static str {
        match k {
            RUN => "run",
            NODE => "node",
            GATHER => "gather",
            STAGE => "stage",
            BATCH_RUN => "batch_run",
            SCATTER => "scatter",
            _ => "user",
        }
    }
}

/// `node` value for spans not tied to any node.
pub const NO_NODE: u32 = u32::MAX;

/// One recorded span: what ([`kind`]), which (`node`), when (`start_ns`
/// since the recorder's epoch), how long (`dur_ns`). 24 bytes, `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Span kind (see [`kind`]).
    pub kind: u32,
    /// Node / object id the span is attributed to ([`NO_NODE`] if none).
    pub node: u32,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// An opaque span start tick, handed back to [`Recorder::finish`].
/// Deliberately not a `Duration`: it is one `u64` in a register.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(u64);

/// Sentinel returned by [`Recorder::start`] while disabled; `finish`
/// recognizes it and records nothing.
const DISABLED: u64 = u64::MAX;

/// A preallocated ring buffer of [`Event`]s. See the module docs for the
/// threading and overflow model.
pub struct Recorder {
    epoch: Instant,
    buf: Box<[Event]>,
    /// Next write slot.
    next: usize,
    /// Events ever recorded (monotone; `total - len()` were dropped).
    total: u64,
    enabled: bool,
}

impl Recorder {
    /// A recorder holding up to `capacity` spans (min 1), enabled.
    /// This is the *only* allocation the recorder ever performs.
    pub fn with_capacity(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        let zero = Event { kind: 0, node: 0, start_ns: 0, dur_ns: 0 };
        Recorder {
            epoch: Instant::now(),
            buf: vec![zero; capacity].into_boxed_slice(),
            next: 0,
            total: 0,
            enabled: true,
        }
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle recording. A disabled recorder's `start`/`finish` are a
    /// flag check each — cheap enough to leave instrumentation compiled
    /// in permanently.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Begin a span: one flag check + one clock read.
    #[inline]
    pub fn start(&self) -> SpanStart {
        if !self.enabled {
            return SpanStart(DISABLED);
        }
        SpanStart(self.now_ns())
    }

    /// End a span begun with [`Recorder::start`], attributing it to
    /// `(kind, node)`. No-op for spans started while disabled.
    #[inline]
    pub fn finish(&mut self, start: SpanStart, kind: u32, node: u32) {
        if start.0 == DISABLED {
            return;
        }
        let end = self.now_ns();
        self.record(Event { kind, node, start_ns: start.0, dur_ns: end.saturating_sub(start.0) });
    }

    /// Append one event, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, e: Event) {
        if !self.enabled {
            return;
        }
        self.buf[self.next] = e;
        self.next += 1;
        if self.next == self.buf.len() {
            self.next = 0;
        }
        self.total += 1;
    }

    /// Retained events (≤ capacity).
    pub fn len(&self) -> usize {
        (self.total).min(self.buf.len() as u64) as usize
    }

    /// Whether nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events recorded but overwritten by newer ones (drop-oldest
    /// overflow accounting).
    pub fn dropped(&self) -> u64 {
        self.total - self.len() as u64
    }

    /// Forget all retained events and the drop count. The epoch is kept,
    /// so timestamps across a `clear` stay on one timeline.
    pub fn clear(&mut self) {
        self.next = 0;
        self.total = 0;
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let len = self.len();
        let (wrapped, fresh) = if self.total as usize > self.buf.len() {
            // Full ring: oldest starts at `next`.
            (&self.buf[self.next..], &self.buf[..self.next])
        } else {
            (&self.buf[..len], &self.buf[..0])
        };
        wrapped.iter().chain(fresh.iter())
    }
}

/// Evaluate `$body` inside a span recorded as `($kind, $node)` on `$rec`.
/// Expands to a start/finish pair around the expression — no closure, no
/// guard object, nothing for the optimizer to chew on.
#[macro_export]
macro_rules! timed {
    ($rec:expr, $kind:expr, $node:expr, $body:expr) => {{
        let __span = $rec.start();
        let __out = $body;
        $rec.finish(__span, $kind, $node);
        __out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: u32, node: u32) -> Event {
        Event { kind, node, start_ns: 0, dur_ns: 1 }
    }

    #[test]
    fn records_and_iterates_in_order() {
        let mut r = Recorder::with_capacity(8);
        for i in 0..5 {
            r.record(ev(kind::NODE, i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let nodes: Vec<u32> = r.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_it() {
        let mut r = Recorder::with_capacity(4);
        for i in 0..10 {
            r.record(ev(kind::NODE, i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        // The *newest* four survive, oldest first.
        let nodes: Vec<u32> = r.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![6, 7, 8, 9]);
    }

    #[test]
    fn spans_measure_nonzero_time_and_respect_enable() {
        let mut r = Recorder::with_capacity(4);
        let s = r.start();
        std::hint::black_box((0..1000).sum::<u64>());
        r.finish(s, kind::RUN, NO_NODE);
        assert_eq!(r.len(), 1);
        let e = *r.iter().next().unwrap();
        assert_eq!(e.kind, kind::RUN);
        assert_eq!(e.node, NO_NODE);

        r.set_enabled(false);
        let s = r.start();
        r.finish(s, kind::RUN, 0);
        r.record(ev(kind::NODE, 1));
        assert_eq!(r.len(), 1, "disabled recorder must not record");
        r.set_enabled(true);
        r.record(ev(kind::NODE, 2));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clear_keeps_epoch_resets_counts() {
        let mut r = Recorder::with_capacity(2);
        r.record(ev(0, 0));
        r.record(ev(0, 1));
        r.record(ev(0, 2));
        assert_eq!(r.dropped(), 1);
        let t0 = r.now_ns();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.now_ns() >= t0, "epoch must survive clear");
    }

    #[test]
    fn timed_macro_records_one_span() {
        let mut r = Recorder::with_capacity(4);
        let x = timed!(r, kind::NODE, 7, 40 + 2);
        assert_eq!(x, 42);
        let e = *r.iter().next().unwrap();
        assert_eq!((e.kind, e.node), (kind::NODE, 7));
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(kind::label(kind::RUN), "run");
        assert_eq!(kind::label(kind::BATCH_RUN), "batch_run");
        assert_eq!(kind::label(999), "user");
    }
}
