//! Engine profiling reports: per-node kernel time and slab attribution.
//!
//! An [`EngineReport`] is plain data — the runtime layer builds one from
//! a span [`crate::ring::Recorder`] plus its compiled graph and
//! allocation plan (this crate knows nothing about graphs or plans), and
//! the CLI renders it. Per-node memory numbers are *static* attribution
//! from the plan: a node's high-water is the furthest slab byte its
//! kernel touches (output end, operand region ends, scratch end), so the
//! maximum over nodes equals the planner's peak and can be cross-checked
//! against the independent invariant checker.

/// Aggregated measurements for one scheduled node.
#[derive(Clone, Debug, Default)]
pub struct NodeStat {
    /// Schedule index of the node.
    pub index: usize,
    /// Display name (value name or synthesized).
    pub name: String,
    /// Op kind label, e.g. `conv2d` or `fused_tucker2`.
    pub op: String,
    /// Kernel invocations observed (≤ runs when the ring overflowed).
    pub calls: u64,
    /// Total kernel time across observed calls, in ns.
    pub total_ns: u64,
    /// Bytes of the node's output buffer in the slab.
    pub out_bytes: usize,
    /// Furthest slab byte this node's kernel touches (output, operands,
    /// scratch) — max over nodes equals the plan's slab size.
    pub high_water_bytes: usize,
    /// Scratch bytes the plan carves for this node (0 if none).
    pub scratch_bytes: usize,
    /// Bytes this node copies per run under the plan (input staging,
    /// concat/flatten copies the alias analysis could not eliminate) —
    /// 0 for compute nodes and for copies executed in place.
    pub moved_bytes: usize,
    /// Kernel-schedule label the plan dispatches this node with (`-` for
    /// the hand-tuned default, e.g. `kc256 mc64 nc256` for a tuned GEMM).
    pub schedule: String,
}

impl NodeStat {
    /// Mean kernel time per observed call, in ns.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Kernel time rolled up across all nodes of one op kind.
#[derive(Clone, Debug)]
pub struct OpRollup {
    pub op: String,
    pub nodes: usize,
    pub calls: u64,
    pub total_ns: u64,
}

/// A profiling report for an engine over some number of runs.
#[derive(Clone, Debug, Default)]
pub struct EngineReport {
    /// Per-node stats in schedule order.
    pub nodes: Vec<NodeStat>,
    /// Whole-run (`RUN` span) count observed.
    pub runs: u64,
    /// Total wall time of the observed runs, in ns.
    pub total_run_ns: u64,
    /// The plan's slab size in bytes (values + scratch arena).
    pub slab_bytes: usize,
    /// The scratch arena's size in bytes.
    pub scratch_arena_bytes: usize,
    /// Span records lost to ring overflow (0 means full coverage).
    pub dropped_events: u64,
}

impl EngineReport {
    /// Summed per-node kernel time, in ns.
    pub fn kernel_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_ns).sum()
    }

    /// Total bytes copied per run under the plan (sum of per-node
    /// `moved_bytes`).
    pub fn bytes_moved(&self) -> usize {
        self.nodes.iter().map(|n| n.moved_bytes).sum()
    }

    /// Kernel time as a fraction of run wall time (≈1.0 when the node
    /// loop dominates and nothing was dropped).
    pub fn coverage(&self) -> f64 {
        if self.total_run_ns == 0 {
            0.0
        } else {
            self.kernel_ns() as f64 / self.total_run_ns as f64
        }
    }

    /// The `k` slowest nodes by total kernel time, slowest first.
    pub fn top_k(&self, k: usize) -> Vec<&NodeStat> {
        let mut v: Vec<&NodeStat> = self.nodes.iter().collect();
        v.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.index.cmp(&b.index)));
        v.truncate(k);
        v
    }

    /// Kernel time rolled up by op kind, heaviest first.
    pub fn rollup_by_op(&self) -> Vec<OpRollup> {
        let mut rollups: Vec<OpRollup> = Vec::new();
        for n in &self.nodes {
            match rollups.iter_mut().find(|r| r.op == n.op) {
                Some(r) => {
                    r.nodes += 1;
                    r.calls += n.calls;
                    r.total_ns += n.total_ns;
                }
                None => rollups.push(OpRollup {
                    op: n.op.clone(),
                    nodes: 1,
                    calls: n.calls,
                    total_ns: n.total_ns,
                }),
            }
        }
        rollups.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.op.cmp(&b.op)));
        rollups
    }

    /// The node whose kernel reaches furthest into the slab — the peak
    /// of the memory timeline.
    pub fn peak_node(&self) -> Option<&NodeStat> {
        self.nodes.iter().max_by_key(|n| (n.high_water_bytes, usize::MAX - n.index))
    }

    /// `(schedule index, high-water bytes)` per node — the slab-usage
    /// timeline across one run.
    pub fn peak_timeline(&self) -> Vec<(usize, usize)> {
        self.nodes.iter().map(|n| (n.index, n.high_water_bytes)).collect()
    }

    /// Render a fixed-width per-node table (top `k` nodes by kernel
    /// time) followed by the op rollup and totals.
    pub fn render_table(&self, k: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let kernel = self.kernel_ns();
        let _ = writeln!(
            out,
            "{:>4} {:<22} {:<14} {:>7} {:>10} {:>10} {:>6} {:>10} {:>10} {:>10} {:>10} {:<18}",
            "#",
            "node",
            "op",
            "calls",
            "mean µs",
            "total ms",
            "time%",
            "out KiB",
            "hiwater KiB",
            "scratch KiB",
            "moved KiB",
            "schedule"
        );
        for n in self.top_k(k) {
            let _ = writeln!(
                out,
                "{:>4} {:<22} {:<14} {:>7} {:>10.1} {:>10.2} {:>5.1}% {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:<18}",
                n.index,
                truncate(&n.name, 22),
                truncate(&n.op, 14),
                n.calls,
                n.mean_ns() as f64 / 1e3,
                n.total_ns as f64 / 1e6,
                if kernel == 0 { 0.0 } else { 100.0 * n.total_ns as f64 / kernel as f64 },
                n.out_bytes as f64 / 1024.0,
                n.high_water_bytes as f64 / 1024.0,
                n.scratch_bytes as f64 / 1024.0,
                n.moved_bytes as f64 / 1024.0,
                truncate(if n.schedule.is_empty() { "-" } else { &n.schedule }, 18),
            );
        }
        let _ = writeln!(out, "\nby op kind:");
        for r in self.rollup_by_op() {
            let _ = writeln!(
                out,
                "  {:<14} {:>3} nodes {:>7} calls {:>10.2} ms {:>5.1}%",
                truncate(&r.op, 14),
                r.nodes,
                r.calls,
                r.total_ns as f64 / 1e6,
                if kernel == 0 { 0.0 } else { 100.0 * r.total_ns as f64 / kernel as f64 },
            );
        }
        let _ = writeln!(
            out,
            "\nruns {} · wall {:.2} ms · kernels {:.2} ms ({:.1}% coverage) · slab {:.1} KiB (scratch {:.1} KiB) · moved {:.1} KiB/run · dropped spans {}",
            self.runs,
            self.total_run_ns as f64 / 1e6,
            kernel as f64 / 1e6,
            100.0 * self.coverage(),
            self.slab_bytes as f64 / 1024.0,
            self.scratch_arena_bytes as f64 / 1024.0,
            self.bytes_moved() as f64 / 1024.0,
            self.dropped_events,
        );
        if let Some(peak) = self.peak_node() {
            let _ = writeln!(
                out,
                "peak slab touch: node {} ({}) at {:.1} KiB",
                peak.index,
                truncate(&peak.name, 22),
                peak.high_water_bytes as f64 / 1024.0,
            );
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineReport {
        EngineReport {
            nodes: vec![
                NodeStat {
                    index: 0,
                    name: "conv1".into(),
                    op: "conv2d".into(),
                    calls: 10,
                    total_ns: 5_000_000,
                    out_bytes: 4096,
                    high_water_bytes: 8192,
                    scratch_bytes: 1024,
                    moved_bytes: 0,
                    schedule: "kc256 mc64 nc256".into(),
                },
                NodeStat {
                    index: 1,
                    name: "relu1".into(),
                    op: "relu".into(),
                    calls: 10,
                    total_ns: 500_000,
                    out_bytes: 4096,
                    high_water_bytes: 16384,
                    scratch_bytes: 0,
                    moved_bytes: 4096,
                    schedule: String::new(),
                },
                NodeStat {
                    index: 2,
                    name: "conv2".into(),
                    op: "conv2d".into(),
                    calls: 10,
                    total_ns: 7_000_000,
                    out_bytes: 2048,
                    high_water_bytes: 12288,
                    scratch_bytes: 2048,
                    moved_bytes: 0,
                    schedule: String::new(),
                },
            ],
            runs: 10,
            total_run_ns: 13_000_000,
            slab_bytes: 16384,
            scratch_arena_bytes: 4096,
            dropped_events: 0,
        }
    }

    #[test]
    fn totals_topk_and_rollups() {
        let r = sample();
        assert_eq!(r.kernel_ns(), 12_500_000);
        assert_eq!(r.bytes_moved(), 4096);
        assert!((r.coverage() - 12.5 / 13.0).abs() < 1e-9);
        let top = r.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].index, 2);
        assert_eq!(top[1].index, 0);
        let rollup = r.rollup_by_op();
        assert_eq!(rollup[0].op, "conv2d");
        assert_eq!(rollup[0].nodes, 2);
        assert_eq!(rollup[0].total_ns, 12_000_000);
        assert_eq!(rollup[1].op, "relu");
    }

    #[test]
    fn peak_node_matches_the_plan_peak() {
        let r = sample();
        let peak = r.peak_node().unwrap();
        assert_eq!(peak.index, 1);
        assert_eq!(peak.high_water_bytes, r.slab_bytes);
        assert_eq!(r.peak_timeline(), vec![(0, 8192), (1, 16384), (2, 12288)]);
    }

    #[test]
    fn table_renders_all_sections() {
        let r = sample();
        let t = r.render_table(10);
        assert!(t.contains("conv2"));
        assert!(t.contains("schedule"));
        assert!(t.contains("kc256 mc64 nc256"));
        assert!(t.contains("by op kind:"));
        assert!(t.contains("peak slab touch: node 1"));
        assert!(t.contains("dropped spans 0"));
        // Empty report should not panic.
        let _ = EngineReport::default().render_table(5);
    }
}
