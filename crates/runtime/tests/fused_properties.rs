//! Property tests for the fused kernel: for every channel/shape/activation/
//! pooling combination, the strip-tiled fused kernel must agree with the
//! unfused three-op reference, and the arena planner must produce valid,
//! bounded plans for arbitrary graphs.

use proptest::prelude::*;
use temco_ir::{ActKind, Graph, PoolKind};
use temco_runtime::{fused_forward, plan_arena, plan_memory, validate_arena};
use temco_tensor::{avg_pool2d, conv2d, max_pool2d, Conv2dParams, Tensor};

fn reference(
    input: &Tensor,
    lw: &Tensor,
    act: ActKind,
    pool: Option<(PoolKind, usize, usize)>,
    fw: &Tensor,
) -> Tensor {
    let p = Conv2dParams::default();
    let full = conv2d(input, lw, None, &p);
    let acted = act.forward(&full);
    let pooled = match pool {
        Some((PoolKind::Max, k, s)) => max_pool2d(&acted, k, s),
        Some((PoolKind::Avg, k, s)) => avg_pool2d(&acted, k, s),
        None => acted,
    };
    conv2d(&pooled, fw, None, &p)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    #[test]
    fn fused_kernel_matches_reference(
        n in 1usize..3,
        c_red in 1usize..5,
        c_full in 2usize..12,
        c_out in 1usize..5,
        h in 2usize..9,
        w in 2usize..9,
        act_sel in 0usize..4,
        pool_sel in 0usize..5,
        seed in 0u64..500,
    ) {
        let act = [ActKind::Relu, ActKind::Silu, ActKind::Sigmoid, ActKind::Tanh][act_sel];
        let pool = match pool_sel {
            0 | 1 => None,
            2 => Some((PoolKind::Max, 2, 2)),
            3 => Some((PoolKind::Avg, 2, 2)),
            _ => Some((PoolKind::Max, 3, 2)), // AlexNet-style overlapping pool
        };
        if let Some((_, k, _)) = pool {
            prop_assume!(h >= k && w >= k);
        }
        let x = Tensor::randn(&[n, c_red, h, w], seed);
        let lw = Tensor::randn(&[c_full, c_red, 1, 1], seed ^ 0x11);
        let fw = Tensor::randn(&[c_out, c_full, 1, 1], seed ^ 0x22);
        let got = fused_forward(&x, &lw, None, act, pool, Some(&fw), None);
        let want = reference(&x, &lw, act, pool, &fw);
        prop_assert_eq!(got.shape(), want.shape());
        prop_assert!(got.max_abs_diff(&want) <= 2e-3, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn arena_plans_are_valid_and_bounded(
        widths in proptest::collection::vec(1usize..6, 2..10),
        skip_every in 2usize..4,
        seed in 0u64..500,
    ) {
        // Random conv chain with periodic skip adds.
        let mut g = Graph::new();
        let mut x = g.input(&[1, 4, 8, 8], "x");
        let mut c_prev = 4usize;
        let mut anchors = vec![(x, 4usize)];
        for (i, wsel) in widths.iter().enumerate() {
            let c = wsel * 4;
            let w = Tensor::randn(&[c, c_prev, 3, 3], seed.wrapping_add(i as u64));
            x = g.conv2d(x, w, None, 1, 1, format!("c{i}"));
            if i % skip_every == 0 {
                if let Some(&(a, ca)) = anchors.last() {
                    if ca == c {
                        x = g.add(&[a, x], format!("s{i}"));
                    }
                }
            }
            anchors.push((x, c));
            c_prev = c;
        }
        g.mark_output(x);
        g.infer_shapes();

        let plan = plan_arena(&g);
        prop_assert!(validate_arena(&plan).is_empty());
        let peak = plan_memory(&g).peak_internal_bytes;
        let sum: usize = plan.placements.iter().map(|p| p.bytes).sum();
        prop_assert!(plan.arena_bytes >= peak, "arena below live peak");
        prop_assert!(plan.arena_bytes <= sum, "arena above sum of tensors");
        prop_assert_eq!(plan.peak_live_bytes, peak);
    }
}
