//! Per-node kernel scratch requirements.
//!
//! Every compute kernel that needs working memory (im2col columns, GEMM
//! pack panels, fused-tile strips) exposes a deterministic
//! `*_scratch_floats` formula in its own crate. This module evaluates
//! those formulas from a node's *shapes alone*, so the allocation planner
//! can reserve kernel scratch inside the inference slab before any kernel
//! runs — the same formula the kernel asserts against at execution time.
//!
//! Ops whose kernels are pure streaming loops (activations, pooling, add,
//! concat, flatten, softmax, affine) need no scratch and report zero.

use temco_ir::{Graph, Node, Op};
use temco_tensor::{
    conv2d_scratch_floats_with, conv_transpose2d_scratch_floats_with, linear_scratch_floats_with,
    Conv2dParams,
};

use crate::fused::fused_scratch_floats_with;
use crate::fused_tiled::fused_tiled_scratch_floats_with;
use crate::schedule::NodeSchedule;

/// Scratch floats the kernel for `node` requires, computed from the
/// graph's inferred shapes. Shapes must be inferred
/// (`Graph::infer_shapes`) before calling.
pub fn node_scratch_floats(g: &Graph, node: &Node) -> usize {
    node_scratch_floats_with(g, node, NodeSchedule::Default)
}

/// [`node_scratch_floats`] evaluated for an explicit kernel schedule.
///
/// This is the *same* formula the kernels assert against at execution
/// time, so a plan built from it can never under-reserve scratch for the
/// schedule it carries.
pub fn node_scratch_floats_with(g: &Graph, node: &Node, sched: NodeSchedule) -> usize {
    match &node.op {
        Op::Conv2d(spec) => {
            let s = g.shape(node.inputs[0]);
            let w = g.weight(spec.weight);
            let p =
                Conv2dParams { stride: spec.stride, padding: spec.padding, groups: spec.groups };
            conv2d_scratch_floats_with(
                s[1],
                s[2],
                s[3],
                w.dim(0),
                w.dim(2),
                w.dim(3),
                &p,
                sched.gemm(),
            )
        }
        Op::ConvTranspose2d { weight, .. } => {
            let s = g.shape(node.inputs[0]);
            let w = g.weight(*weight);
            conv_transpose2d_scratch_floats_with(
                s[1],
                w.dim(1),
                w.dim(2),
                w.dim(3),
                s[2],
                s[3],
                sched.gemm(),
            )
        }
        Op::Linear { weight, .. } => {
            let s = g.shape(node.inputs[0]);
            linear_scratch_floats_with(s[0], s[1], g.weight(*weight).dim(0), sched.gemm())
        }
        Op::Fused(spec) => {
            let s = g.shape(node.inputs[0]);
            let c_full = g.weight(spec.lconv_w).dim(0);
            let c_red_out = spec.fconv.as_ref().map_or(c_full, |fc| g.weight(fc.weight).dim(0));
            let f = sched.fused();
            if f.tile > 0 {
                fused_tiled_scratch_floats_with(
                    s[0],
                    s[2],
                    s[3],
                    c_full,
                    c_red_out,
                    spec.pool.map(|(_, k, st)| (k, st)),
                    f.tile,
                    spec.fconv.is_some(),
                    f.slots_per_thread,
                )
            } else {
                fused_scratch_floats_with(
                    s[0],
                    s[2],
                    s[3],
                    c_full,
                    c_red_out,
                    spec.pool.map(|(_, k, st)| (k, st)),
                    spec.fconv.is_some(),
                    f.slots_per_thread,
                )
            }
        }
        _ => 0,
    }
}

/// [`node_scratch_floats`] in bytes.
pub fn node_scratch_bytes(g: &Graph, node: &Node) -> usize {
    node_scratch_floats(g, node) * std::mem::size_of::<f32>()
}

/// [`node_scratch_floats_with`] in bytes.
pub fn node_scratch_bytes_with(g: &Graph, node: &Node, sched: NodeSchedule) -> usize {
    node_scratch_floats_with(g, node, sched) * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_tensor::Tensor;

    #[test]
    fn streaming_ops_need_no_scratch() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let r = g.relu(x, "r");
        let p = g.max_pool(r, 2, 2, "p");
        let s = g.add(&[p, p], "s");
        g.mark_output(s);
        g.infer_shapes();
        for node in &g.nodes {
            assert_eq!(node_scratch_floats(&g, node), 0, "node {}", node.name);
        }
    }

    #[test]
    fn conv_scratch_matches_kernel_formula() {
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 16, 16], "x");
        let c = g.conv2d(x, Tensor::randn(&[8, 3, 3, 3], 1), None, 1, 1, "c");
        g.mark_output(c);
        g.infer_shapes();
        let node = g.nodes.iter().find(|n| matches!(n.op, Op::Conv2d(_))).unwrap();
        let p = Conv2dParams { stride: (1, 1), padding: (1, 1), groups: 1 };
        assert_eq!(
            node_scratch_floats(&g, node),
            conv2d_scratch_floats_with(3, 16, 16, 8, 3, 3, &p, temco_tensor::GemmSchedule::DEFAULT)
        );
        assert!(node_scratch_bytes(&g, node) > 0);
    }

    #[test]
    fn schedule_changes_resize_the_reservation_consistently() {
        use crate::schedule::{FusedSchedule, GemmSchedule};
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 16, 16], "x");
        let c = g.conv2d(x, Tensor::randn(&[8, 3, 3, 3], 1), None, 1, 1, "c");
        g.mark_output(c);
        g.infer_shapes();
        let node = g.nodes.iter().find(|n| matches!(n.op, Op::Conv2d(_))).unwrap();
        let small = NodeSchedule::Gemm(GemmSchedule { kc: 8, mc: 4, nc: 8 });
        let def = node_scratch_floats_with(&g, node, NodeSchedule::Default);
        let tuned = node_scratch_floats_with(&g, node, small);
        assert!(tuned > 0 && tuned <= def, "{tuned} vs {def}");
        // A fused schedule on a conv node is ignored (falls back to the
        // default GEMM blocking).
        let cross = NodeSchedule::Fused(FusedSchedule { slots_per_thread: 9, tile: 3 });
        assert_eq!(node_scratch_floats_with(&g, node, cross), def);
    }
}
