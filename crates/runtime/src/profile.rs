//! Turning recorded spans into reports: the cold half of profiling.
//!
//! [`crate::engine::Engine::run_recorded`] fills a preallocated
//! [`Recorder`] with `RUN`/`NODE` spans; this module joins those spans
//! with the graph and allocation plan to produce a
//! [`temco_obs::EngineReport`] (per-node kernel time, slab attribution)
//! or a chrome://tracing JSON document. Everything here allocates freely
//! — it runs after the measured inferences, never during them.
//!
//! Memory attribution is *static*: a node's slab high-water is the
//! furthest slab byte its kernel touches (output end, operand ends,
//! scratch end), read off the plan. The executor computes the identical
//! quantity dynamically (`ExecResult::node_high_water`), and the tests
//! pin the two against each other; the max over nodes is exactly the
//! plan's slab size, so the report's peak can be cross-checked against
//! the independent plan-invariant checker.

use temco_ir::{Graph, Node, Op};
use temco_obs::{chrome_trace, kind, EngineReport, NodeStat, Recorder};

use crate::alloc::AllocationPlan;
use crate::engine::CompiledGraph;
use crate::fused::{fused_scratch_breakdown, ScratchBreakdown};

/// Short label for a node's op kind, used in report rollups and trace
/// categories.
pub fn op_label(op: &Op) -> &'static str {
    match op {
        Op::Input => "input",
        Op::Conv2d(_) => "conv2d",
        Op::ConvTranspose2d { .. } => "conv_transpose2d",
        Op::Activation(_) => "activation",
        Op::Pool { .. } => "pool",
        Op::GlobalAvgPool => "global_avg_pool",
        Op::Affine { .. } => "affine",
        Op::Add => "add",
        Op::Concat => "concat",
        Op::Linear { .. } => "linear",
        Op::Flatten => "flatten",
        Op::Softmax => "softmax",
        Op::Fused(spec) if spec.fconv.is_some() => "fused",
        Op::Fused(_) => "fused_restore",
    }
}

/// Furthest slab byte node `i`'s kernel touches under `plan`: the end of
/// its output region, of every operand region, and of its scratch prefix.
/// The max over all nodes equals `plan.slab_bytes`.
pub fn node_high_water_bytes(g: &Graph, plan: &AllocationPlan, i: usize) -> usize {
    let node = &g.nodes[i];
    let mut hw = plan.offset(node.output).map_or(0, |off| off + g.value_bytes(node.output));
    for v in &node.inputs {
        if let Some(off) = plan.offset(*v) {
            hw = hw.max(off + g.value_bytes(*v));
        }
    }
    if plan.node_scratch[i] > 0 {
        hw = hw.max(plan.scratch_offset + plan.node_scratch[i]);
    }
    hw
}

/// How a fused node's kernel partitions its scratch (worker slots × strip
/// floats), or `None` for non-fused nodes. The total always equals the
/// plan's `node_scratch` entry for the node.
pub fn node_scratch_breakdown(g: &Graph, node: &Node) -> Option<ScratchBreakdown> {
    match &node.op {
        Op::Fused(spec) => {
            let s = g.shape(node.inputs[0]);
            let c_full = g.weight(spec.lconv_w).dim(0);
            let c_red_out = spec.fconv.as_ref().map_or(c_full, |fc| g.weight(fc.weight).dim(0));
            Some(fused_scratch_breakdown(
                s[0],
                s[2],
                s[3],
                c_full,
                c_red_out,
                spec.pool.map(|(_, k, st)| (k, st)),
                spec.fconv.is_some(),
            ))
        }
        _ => None,
    }
}

/// Join a recorder's spans with the compiled graph into an
/// [`EngineReport`]: per-node kernel time from the `NODE` spans, wall
/// time from the `RUN` spans, memory attribution from the plan.
pub fn engine_report(compiled: &CompiledGraph, rec: &Recorder) -> EngineReport {
    let g = compiled.graph();
    let plan = compiled.plan();
    let mut nodes: Vec<NodeStat> = g
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| NodeStat {
            index: i,
            name: node.name.clone(),
            op: op_label(&node.op).to_string(),
            calls: 0,
            total_ns: 0,
            out_bytes: g.value_bytes(node.output),
            high_water_bytes: node_high_water_bytes(g, plan, i),
            scratch_bytes: plan.node_scratch[i],
            moved_bytes: plan.bytes_moved_per_node[i],
            schedule: plan.node_schedule[i].label(),
        })
        .collect();
    let mut runs = 0u64;
    let mut total_run_ns = 0u64;
    for e in rec.iter() {
        match e.kind {
            kind::NODE => {
                if let Some(ns) = nodes.get_mut(e.node as usize) {
                    ns.calls += 1;
                    ns.total_ns += e.dur_ns;
                }
            }
            kind::RUN => {
                runs += 1;
                total_run_ns += e.dur_ns;
            }
            _ => {}
        }
    }
    EngineReport {
        nodes,
        runs,
        total_run_ns,
        slab_bytes: plan.slab_bytes,
        scratch_arena_bytes: plan.scratch_bytes,
        dropped_events: rec.dropped(),
    }
}

/// Render a recorder's spans as chrome://tracing JSON, naming `NODE`
/// spans after their graph node.
pub fn engine_trace_json(compiled: &CompiledGraph, rec: &Recorder) -> String {
    let g = compiled.graph();
    chrome_trace(rec.iter(), |e| match e.kind {
        kind::NODE => g
            .nodes
            .get(e.node as usize)
            .map_or_else(|| format!("node{}", e.node), |n| n.name.clone()),
        kind::RUN => "run".to_string(),
        k => kind::label(k).to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::executor::{execute, ExecOptions};
    use temco_tensor::Tensor;

    fn small_cnn() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::randn(&[6, 3, 3, 3], 1), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let p1 = g.max_pool(r1, 2, 2, "p1");
        let f = g.flatten(p1, "flat");
        let l = g.linear(f, Tensor::randn(&[5, 6 * 4 * 4], 2), None, "fc");
        let s = g.softmax(l, "sm");
        g.mark_output(s);
        g.infer_shapes();
        g
    }

    #[test]
    fn static_attribution_matches_the_executor_exactly() {
        let g = small_cnn();
        let x = Tensor::randn(&[2, 3, 8, 8], 3);
        let res = execute(&g, std::slice::from_ref(&x), ExecOptions::default()).unwrap();
        let compiled = CompiledGraph::new(small_cnn()).unwrap();
        let plan = compiled.plan();
        let g = compiled.graph();
        for i in 0..g.nodes.len() {
            assert_eq!(
                node_high_water_bytes(g, plan, i),
                res.node_high_water[i],
                "node {} ({})",
                i,
                g.nodes[i].name
            );
        }
        // The peak of the static attribution is the plan itself.
        let peak = (0..g.nodes.len()).map(|i| node_high_water_bytes(g, plan, i)).max().unwrap();
        assert_eq!(peak, plan.slab_bytes);
    }

    #[test]
    fn report_joins_spans_with_the_plan() {
        let mut engine = Engine::new(small_cnn()).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 3);
        let mut rec = Recorder::with_capacity(4096);
        for _ in 0..3 {
            engine.run_recorded(std::slice::from_ref(&x), &mut rec).unwrap();
        }
        let report = engine_report(engine.compiled(), &rec);
        assert_eq!(report.runs, 3);
        assert_eq!(report.nodes.len(), engine.graph().nodes.len());
        assert_eq!(report.dropped_events, 0);
        for n in &report.nodes {
            assert_eq!(n.calls, 3, "node {} recorded once per run", n.name);
        }
        // Node spans nest inside the run span: summed kernel time cannot
        // exceed wall time, and dominates it (output staging is tiny).
        assert!(report.kernel_ns() <= report.total_run_ns);
        assert!(report.coverage() > 0.5, "coverage {}", report.coverage());
        // Plan-level facts survive the join.
        assert_eq!(report.slab_bytes, engine.slab_bytes());
        assert_eq!(report.bytes_moved(), engine.compiled().plan().bytes_moved);
        // The input node stages bytes; in-place/aliased nodes move none.
        assert!(report.nodes[0].moved_bytes > 0);
        assert_eq!(report.peak_node().unwrap().high_water_bytes, engine.slab_bytes());
        let rollup = report.rollup_by_op();
        assert!(rollup.iter().any(|r| r.op == "conv2d"));
        // Rendering does not panic and names the slowest node.
        let table = report.render_table(10);
        assert!(table.contains(&report.top_k(1)[0].name));
    }

    #[test]
    fn trace_json_names_nodes_after_the_graph() {
        let mut engine = Engine::new(small_cnn()).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 4);
        let mut rec = Recorder::with_capacity(64);
        engine.run_recorded(std::slice::from_ref(&x), &mut rec).unwrap();
        let json = engine_trace_json(engine.compiled(), &rec);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"c1\""));
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"cat\":\"node\""));
    }

    #[test]
    fn recorded_and_plain_runs_agree() {
        let mut a = Engine::new(small_cnn()).unwrap();
        let mut b = Engine::new(small_cnn()).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 5);
        let mut rec = Recorder::with_capacity(64);
        let ya = a.run(std::slice::from_ref(&x)).unwrap()[0].clone();
        let yb = b.run_recorded(std::slice::from_ref(&x), &mut rec).unwrap();
        assert!(ya.all_close(&yb[0], 0.0));
        assert!(!rec.is_empty());
    }

    #[test]
    fn fused_breakdown_totals_match_the_planner() {
        use temco_ir::{ActKind, FconvSpec, FusedSpec, PoolKind};
        let g = small_cnn();
        assert!(g.nodes.iter().all(|n| node_scratch_breakdown(&g, n).is_none()));

        let mut g = Graph::new();
        let x = g.input(&[2, 4, 8, 8], "x");
        let lw = g.add_weight(Tensor::randn(&[32, 4, 1, 1], 1));
        let fw = g.add_weight(Tensor::randn(&[6, 32, 1, 1], 2));
        let f = g.fused(
            x,
            FusedSpec {
                lconv_w: lw,
                lconv_b: None,
                act: ActKind::Relu,
                pool: Some((PoolKind::Max, 2, 2)),
                fconv: Some(FconvSpec { weight: fw, bias: None }),
            },
            "f",
        );
        g.mark_output(f);
        g.infer_shapes();
        let plan = crate::alloc::plan_allocation(&g);
        let (i, node) =
            g.nodes.iter().enumerate().find(|(_, n)| matches!(n.op, Op::Fused(_))).unwrap();
        let bd = node_scratch_breakdown(&g, node).unwrap();
        assert!(bd.slots > 0 && bd.per_slot_floats > 0);
        // The breakdown is exactly the planner's reservation, decomposed.
        assert_eq!(bd.total_floats() * std::mem::size_of::<f32>(), plan.node_scratch[i]);
    }
}
