//! Runtime for TeMCO graphs: interpreter, memory accounting, fused kernels.
//!
//! Three pieces substitute for what the paper builds on PyTorch + CUDA:
//!
//! * [`executor`] — a reference interpreter with the alloc-on-def /
//!   free-after-last-use policy deep-learning frameworks use for internal
//!   tensors (Section 2.2 of the paper). It records a live-bytes timeline
//!   while computing real values.
//! * [`planner`] — a *static* memory planner that computes the same
//!   timeline from shape inference + liveness alone, without executing a
//!   single FLOP. This is what lets the peak-memory experiments (Figures 4
//!   and 10) run at full 224×224 ImageNet scale on CPU.
//! * [`fused`] — the CPU analogue of the paper's CUDA fused kernels
//!   (Listing 1): `lconv → activation (→ pool) → fconv` computed strip by
//!   strip with O(strip) scratch, rayon-parallel over batch × output rows.
//!   The full-channel intermediate never exists as an allocated tensor.
//! * [`alloc`] — the static offset allocator: packs every internal tensor's
//!   liveness interval into one contiguous slab (greedy best-fit) and
//!   appends a shared kernel-scratch arena sized by [`scratch`], so the
//!   executor's default mode performs exactly one allocation per inference.
//! * [`alias`] — the virtual-tensor pass feeding the allocator: proves when
//!   a concat operand may be produced directly inside the concat's region,
//!   when an elementwise output may reuse its dying input's bytes, and when
//!   a monotone pool may overlap its input — so copies (and whole slab
//!   intervals) disappear from the plan instead of being executed faster.
//! * [`engine`] — plans once, runs many: an immutable, `Arc`-shareable
//!   [`CompiledGraph`] (verified graph + plan, weights held once) plus a
//!   per-worker [`Engine`] (private slab) whose steady-state `run`
//!   performs **zero** heap allocations.

pub mod alias;
pub mod alloc;
pub mod arena;
pub mod engine;
pub mod executor;
pub mod fused;
pub mod fused_tiled;
pub mod memory;
pub mod planner;
pub mod profile;
pub mod schedule;
pub mod scratch;

pub use alias::{AliasMode, AliasStats, NodeExec};
pub use alloc::{
    plan_allocation, plan_allocation_with, plan_allocation_with_mode,
    plan_allocation_with_schedules, AllocationPlan, FragmentationReport, PlannedBuffer,
    SCRATCH_ALIGN,
};
pub use arena::{plan_arena, validate_arena, ArenaPlan, Placement};
pub use engine::{CompiledGraph, Engine};
pub use executor::{execute, ExecError, ExecMode, ExecOptions, ExecResult};
pub use fused::{
    fused_forward, fused_forward_into, fused_forward_into_scratch, fused_forward_into_scratch_with,
    fused_scratch_breakdown, fused_scratch_breakdown_with, fused_scratch_floats,
    fused_scratch_floats_with, ScratchBreakdown,
};
pub use fused_tiled::{
    fused_forward_tiled, fused_forward_tiled_into, fused_forward_tiled_into_scratch,
    fused_forward_tiled_into_scratch_with, fused_tiled_scratch_breakdown,
    fused_tiled_scratch_breakdown_with, fused_tiled_scratch_floats,
    fused_tiled_scratch_floats_with,
};
pub use memory::{MemEvent, MemoryTracker};
pub use planner::{plan_memory, skip_share_at_peak, MemoryPlan, StepMem};
pub use profile::{
    engine_report, engine_trace_json, node_high_water_bytes, node_scratch_breakdown, op_label,
};
pub use schedule::{FusedSchedule, GemmSchedule, NodeSchedule};
pub use scratch::{
    node_scratch_bytes, node_scratch_bytes_with, node_scratch_floats, node_scratch_floats_with,
};
