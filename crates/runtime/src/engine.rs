//! Plan once, run many: a prepared inference engine.
//!
//! [`crate::executor::execute`] re-plans, re-allocates its slab, and
//! records a memory timeline on every call — the right shape for
//! experiments, the wrong one for deployment. This module splits the
//! deployment path into two pieces along the mutability boundary:
//!
//! * [`CompiledGraph`] — everything immutable and shareable: the verified
//!   graph (weights included) and its allocation plan (values **and**
//!   kernel scratch). Wrapped in an `Arc`, one `CompiledGraph` backs any
//!   number of concurrent workers; combined with the IR's copy-on-write
//!   weight store, N workers hold **one** copy of the model's constants.
//! * [`Engine`] — the per-worker mutable state: a private slab and output
//!   tensors over a shared `CompiledGraph`. A steady-state [`Engine::run`]
//!   performs **zero** heap allocations: every kernel writes into planned
//!   slab offsets and draws working memory from the planner-reserved
//!   scratch arena. The integration tests assert this with a counting
//!   global allocator across the whole model zoo, and again with several
//!   engines running concurrently over one `CompiledGraph`.

use std::sync::Arc;

use temco_ir::{liveness, Graph, Op};
use temco_obs::{kind, Recorder, NO_NODE};
use temco_tensor::Tensor;

use crate::alias::AliasMode;
use crate::alloc::{plan_allocation_with_schedules, AllocationPlan};
use crate::executor::{run_node_on_slab, ExecError};
use crate::schedule::NodeSchedule;

const F32: usize = std::mem::size_of::<f32>();

/// The immutable half of a prepared inference: verified graph + memory
/// plan. Shareable across threads behind an `Arc`; each worker adds only
/// its private [`Engine`] slab.
pub struct CompiledGraph {
    g: Graph,
    plan: AllocationPlan,
}

impl CompiledGraph {
    /// Verify the graph and plan its memory (values + kernel scratch). All
    /// failure modes of the one-shot executor surface here, before the
    /// first inference.
    pub fn new(g: Graph) -> Result<Self, ExecError> {
        CompiledGraph::new_with_schedules(g, &[])
    }

    /// [`CompiledGraph::new`] with explicit per-node kernel schedules
    /// (indexed by node position; an empty slice or missing tail means the
    /// hand-tuned defaults). This is the dispatch point the autotuner uses:
    /// schedules resolve here, at compile time, so the warm `run` path
    /// stays zero-alloc and schedule-lookup-free.
    pub fn new_with_schedules(g: Graph, schedules: &[NodeSchedule]) -> Result<Self, ExecError> {
        let violations = temco_ir::verify(&g);
        if !violations.is_empty() {
            return Err(ExecError::InvalidGraph { violations });
        }
        for node in &g.nodes {
            if g.values[node.output.0 as usize].shape.is_none() {
                return Err(ExecError::ShapesNotInferred {
                    value: g.values[node.output.0 as usize].name.clone(),
                });
            }
            if g.value_numel(node.output) == 0 {
                return Err(ExecError::ZeroSizedValue {
                    value: g.values[node.output.0 as usize].name.clone(),
                    shape: g.shape(node.output).to_vec(),
                });
            }
            if matches!(node.op, Op::Input) && !g.inputs.contains(&node.output) {
                return Err(ExecError::UnregisteredInput { node: node.name.clone() });
            }
        }
        let lv = liveness(&g);
        let plan = plan_allocation_with_schedules(&g, &lv, AliasMode::Full, schedules);
        let violations = plan.validate();
        if !violations.is_empty() {
            return Err(ExecError::InvalidPlan { violations });
        }
        Ok(CompiledGraph { g, plan })
    }

    /// The verified graph this compilation runs.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The allocation plan.
    pub fn plan(&self) -> &AllocationPlan {
        &self.plan
    }

    /// Total slab bytes each worker allocates (value region + scratch).
    pub fn slab_bytes(&self) -> usize {
        self.plan.slab_bytes
    }

    /// Bytes of the slab's kernel-scratch arena.
    pub fn scratch_bytes(&self) -> usize {
        self.plan.scratch_bytes
    }
}

/// A graph compiled down to a reusable slab and plan: the per-worker half.
/// Construct with [`Engine::new`] (sole owner) or [`Engine::from_compiled`]
/// (N workers over one shared [`CompiledGraph`]).
pub struct Engine {
    shared: Arc<CompiledGraph>,
    slab: Vec<f32>,
    outputs: Vec<Tensor>,
}

impl Engine {
    /// Verify the graph, plan its memory, and allocate the slab and output
    /// tensors.
    pub fn new(g: Graph) -> Result<Self, ExecError> {
        Ok(Engine::from_compiled(Arc::new(CompiledGraph::new(g)?)))
    }

    /// A fresh engine (private slab + outputs) over an already-compiled
    /// graph. This is the cheap per-worker constructor: no verification,
    /// no planning, no weight copy — just the slab allocation.
    pub fn from_compiled(shared: Arc<CompiledGraph>) -> Self {
        let slab = vec![0.0f32; shared.plan.slab_bytes / F32];
        let outputs = shared.g.outputs.iter().map(|v| Tensor::zeros(shared.g.shape(*v))).collect();
        Engine { shared, slab, outputs }
    }

    /// The shared compilation this engine runs on (clone the `Arc` to
    /// spin up sibling workers).
    pub fn compiled(&self) -> &Arc<CompiledGraph> {
        &self.shared
    }

    /// The graph this engine runs.
    pub fn graph(&self) -> &Graph {
        &self.shared.g
    }

    /// Total slab bytes (value region + kernel-scratch arena) — the only
    /// inference-time memory beyond weights, inputs, and outputs.
    pub fn slab_bytes(&self) -> usize {
        self.shared.plan.slab_bytes
    }

    /// Bytes of the slab's kernel-scratch arena.
    pub fn scratch_bytes(&self) -> usize {
        self.shared.plan.scratch_bytes
    }

    /// The allocation plan the engine runs on.
    pub fn plan(&self) -> &AllocationPlan {
        &self.shared.plan
    }

    /// Run one inference. Returns the output tensors (owned by the engine,
    /// overwritten by the next `run`) in `Graph::outputs` order.
    ///
    /// Heap-allocation-free on success: input validation compares counts
    /// and shapes without building anything (mismatch reports allocate, but
    /// only on the error path), and every kernel runs on slab views with
    /// planner-reserved scratch.
    pub fn run(&mut self, inputs: &[Tensor]) -> Result<&[Tensor], ExecError> {
        self.run_impl(inputs, None)
    }

    /// [`Engine::run`] with span recording: one `RUN` span for the whole
    /// inference plus one `NODE` span per scheduled kernel, written into
    /// the caller's preallocated [`Recorder`]. Still allocation-free on
    /// success — recording is two `Instant` reads and three word writes
    /// per node into the ring (the zero-alloc integration test covers this
    /// path too). Feed the recorder to [`crate::profile::engine_report`]
    /// or [`crate::profile::engine_trace_json`] afterwards.
    pub fn run_recorded(
        &mut self,
        inputs: &[Tensor],
        rec: &mut Recorder,
    ) -> Result<&[Tensor], ExecError> {
        self.run_impl(inputs, Some(rec))
    }

    fn run_impl(
        &mut self,
        inputs: &[Tensor],
        mut rec: Option<&mut Recorder>,
    ) -> Result<&[Tensor], ExecError> {
        let g = &self.shared.g;
        if inputs.len() != g.inputs.len() {
            return Err(ExecError::InputCountMismatch {
                expected: g.inputs.len(),
                got: inputs.len(),
            });
        }
        for (i, (v, t)) in g.inputs.iter().zip(inputs).enumerate() {
            if g.shape(*v) != t.shape() {
                return Err(ExecError::InputShapeMismatch {
                    index: i,
                    name: g.values[v.0 as usize].name.clone(),
                    expected: g.shape(*v).to_vec(),
                    got: t.shape().to_vec(),
                });
            }
        }

        let plan = &self.shared.plan;
        let slab_ptr = self.slab.as_mut_ptr();
        let run_span = rec.as_deref().map(|r| r.start());
        for i in 0..g.nodes.len() {
            let node_span = rec.as_deref().map(|r| r.start());
            // SAFETY: the slab outlives the loop and nothing else views it;
            // the plan was validated in `new()`, and the shared dispatch
            // honors its aliasing discipline (single `&mut` per in-place
            // region, memmove for aliased concat copies).
            unsafe { run_node_on_slab(g, plan, i, slab_ptr, inputs) };
            if let (Some(r), Some(s)) = (rec.as_deref_mut(), node_span) {
                r.finish(s, kind::NODE, i as u32);
            }
        }

        for (slot, v) in self.outputs.iter_mut().zip(&g.outputs) {
            let off = plan.offset(*v).expect("graph output was not computed") / F32;
            let len = g.value_numel(*v);
            slot.data_mut().copy_from_slice(&self.slab[off..off + len]);
        }
        if let (Some(r), Some(s)) = (rec, run_span) {
            r.finish(s, kind::RUN, NO_NODE);
        }
        Ok(&self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions};

    fn small_cnn() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[2, 3, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::randn(&[6, 3, 3, 3], 1), None, 1, 1, "c1");
        let r1 = g.relu(c1, "r1");
        let p1 = g.max_pool(r1, 2, 2, "p1");
        let f = g.flatten(p1, "flat");
        let l = g.linear(f, Tensor::randn(&[5, 6 * 4 * 4], 2), None, "fc");
        let s = g.softmax(l, "sm");
        g.mark_output(s);
        g.infer_shapes();
        g
    }

    #[test]
    fn engine_matches_one_shot_executor() {
        let g = small_cnn();
        let x = Tensor::randn(&[2, 3, 8, 8], 3);
        let want = execute(&g, std::slice::from_ref(&x), ExecOptions::default()).unwrap();
        let mut engine = Engine::new(small_cnn()).unwrap();
        let got = engine.run(std::slice::from_ref(&x)).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].all_close(&want.outputs[0], 1e-6));
        assert_eq!(engine.slab_bytes(), want.slab_bytes);
        assert!(engine.scratch_bytes() > 0);
    }

    #[test]
    fn engine_is_reusable_across_inputs() {
        let mut engine = Engine::new(small_cnn()).unwrap();
        let a = Tensor::randn(&[2, 3, 8, 8], 5);
        let b = Tensor::randn(&[2, 3, 8, 8], 6);
        let out_a = engine.run(std::slice::from_ref(&a)).unwrap()[0].clone();
        let out_b = engine.run(std::slice::from_ref(&b)).unwrap()[0].clone();
        let out_a2 = engine.run(std::slice::from_ref(&a)).unwrap();
        assert!(out_a.all_close(&out_a2[0], 0.0));
        assert!(!out_a.all_close(&out_b, 1e-3));
    }

    #[test]
    fn engine_rejects_bad_inputs_without_running() {
        let mut engine = Engine::new(small_cnn()).unwrap();
        let err = engine.run(&[]).unwrap_err();
        assert_eq!(err, ExecError::InputCountMismatch { expected: 1, got: 0 });
        let wrong = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(matches!(
            engine.run(std::slice::from_ref(&wrong)).unwrap_err(),
            ExecError::InputShapeMismatch { .. }
        ));
    }

    #[test]
    fn shape_mismatch_names_the_offending_input() {
        let mut engine = Engine::new(small_cnn()).unwrap();
        let wrong = Tensor::zeros(&[1, 3, 8, 8]);
        match engine.run(std::slice::from_ref(&wrong)).unwrap_err() {
            ExecError::InputShapeMismatch { index, name, expected, got } => {
                assert_eq!(index, 0);
                assert_eq!(name, "x");
                assert_eq!(expected, vec![2, 3, 8, 8]);
                assert_eq!(got, vec![1, 3, 8, 8]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sibling_engines_share_one_compiled_graph() {
        let compiled = Arc::new(CompiledGraph::new(small_cnn()).unwrap());
        let mut a = Engine::from_compiled(compiled.clone());
        let mut b = Engine::from_compiled(compiled.clone());
        let x = Tensor::randn(&[2, 3, 8, 8], 11);
        let ya = a.run(std::slice::from_ref(&x)).unwrap()[0].clone();
        let yb = b.run(std::slice::from_ref(&x)).unwrap();
        assert!(ya.all_close(&yb[0], 0.0));
        assert!(Arc::ptr_eq(a.compiled(), b.compiled()));
        // Weights live once, in the shared graph; the per-worker state is
        // only the slab.
        assert!(a.graph().weights.shares_storage_with(&compiled.graph().weights));
    }
}
