//! A Listing-1-faithful 3-D tiled variant of the fused kernel.
//!
//! [`crate::fused::fused_forward`] parallelizes over `(batch, output-row)`
//! strips, which suits CPUs. The paper's CUDA kernel (Listing 1) instead
//! tiles the `(C', H', W')` iteration space with cubic `T×T×T` tiles and
//! stages operands through shared memory. This module reproduces that
//! exact blocking on the CPU so the tile-size trade-off the paper's kernel
//! embodies can be measured (`cargo bench -p temco-bench --bench
//! fused_kernel`): small tiles bound scratch but repeat the `lconv`
//! reduction more often; large tiles amortize it at larger scratch.
//!
//! Semantics are identical to `fused_forward`; the property tests assert
//! agreement between the two and against the unfused reference.

use rayon::prelude::*;
use temco_ir::{ActKind, PoolKind};
use temco_tensor::{conv_out_dim, with_tl_scratch, Tensor, TensorView};

use crate::fused::{fused_slots_with, ScratchBreakdown, SyncPtr};
use crate::schedule::FusedSchedule;

/// Scratch decomposition of [`fused_forward_tiled_into_scratch`]: worker
/// slots × the largest tile's staging arena (edge tiles use prefixes).
#[allow(clippy::too_many_arguments)]
pub fn fused_tiled_scratch_breakdown(
    n: usize,
    h: usize,
    w: usize,
    c_full: usize,
    c_out: usize,
    pool: Option<(usize, usize)>,
    tile: usize,
    has_fconv: bool,
) -> ScratchBreakdown {
    fused_tiled_scratch_breakdown_with(
        n,
        h,
        w,
        c_full,
        c_out,
        pool,
        tile,
        has_fconv,
        FusedSchedule::DEFAULT.slots_per_thread,
    )
}

/// [`fused_tiled_scratch_breakdown`] with an explicit slots-per-thread
/// factor.
#[allow(clippy::too_many_arguments)]
pub fn fused_tiled_scratch_breakdown_with(
    n: usize,
    h: usize,
    w: usize,
    c_full: usize,
    c_out: usize,
    pool: Option<(usize, usize)>,
    tile: usize,
    has_fconv: bool,
    slots_per_thread: usize,
) -> ScratchBreakdown {
    let tile = tile.max(1);
    let (oh, ow, pk, ps) = match pool {
        Some((k, s)) => (conv_out_dim(h, k, s, 0), conv_out_dim(w, k, s, 0), k, s),
        None => (h, w, 1, 1),
    };
    if n == 0 || c_out == 0 || oh == 0 || ow == 0 {
        return ScratchBreakdown { slots: 0, per_slot_floats: 0 };
    }
    let jobs = n * c_out.div_ceil(tile) * oh.div_ceil(tile) * ow.div_ceil(tile);
    let (th_max, tw_max) = (tile.min(oh), tile.min(ow));
    let (ih_max, iw_max) = ((th_max - 1) * ps + pk, (tw_max - 1) * ps + pk);
    let per_slot = c_full * ih_max * iw_max
        + c_full * th_max * tw_max
        + if has_fconv { tile.min(c_out) * th_max * tw_max } else { 0 };
    ScratchBreakdown { slots: fused_slots_with(jobs, slots_per_thread), per_slot_floats: per_slot }
}

/// Scratch floats [`fused_forward_tiled_into_scratch`] needs —
/// [`fused_tiled_scratch_breakdown`] collapsed to its total.
#[allow(clippy::too_many_arguments)]
pub fn fused_tiled_scratch_floats(
    n: usize,
    h: usize,
    w: usize,
    c_full: usize,
    c_out: usize,
    pool: Option<(usize, usize)>,
    tile: usize,
    has_fconv: bool,
) -> usize {
    fused_tiled_scratch_breakdown(n, h, w, c_full, c_out, pool, tile, has_fconv).total_floats()
}

/// [`fused_tiled_scratch_floats`] with an explicit slots-per-thread
/// factor.
#[allow(clippy::too_many_arguments)]
pub fn fused_tiled_scratch_floats_with(
    n: usize,
    h: usize,
    w: usize,
    c_full: usize,
    c_out: usize,
    pool: Option<(usize, usize)>,
    tile: usize,
    has_fconv: bool,
    slots_per_thread: usize,
) -> usize {
    fused_tiled_scratch_breakdown_with(
        n,
        h,
        w,
        c_full,
        c_out,
        pool,
        tile,
        has_fconv,
        slots_per_thread,
    )
    .total_floats()
}

/// Execute the fused chain with cubic tiling of the output space.
///
/// Arguments mirror [`crate::fused::fused_forward`]; `tile` is the paper's
/// `T` (clamped to ≥ 1). Output tiles are `tile` output channels ×
/// `tile × tile` output pixels; each worker stages the pre-pool full-width
/// activations for its spatial tile in scratch, exactly like the
/// shared-memory `tile[]` of Listing 1.
///
/// # Panics
/// Panics on channel mismatches.
#[allow(clippy::too_many_arguments)]
pub fn fused_forward_tiled(
    input: &Tensor,
    lconv_w: &Tensor,
    lconv_b: Option<&[f32]>,
    act: ActKind,
    pool: Option<(PoolKind, usize, usize)>,
    fconv_w: Option<&Tensor>,
    fconv_b: Option<&[f32]>,
    tile: usize,
) -> Tensor {
    let (n, h, w) = (input.dim(0), input.dim(2), input.dim(3));
    let c_out = fconv_w.map_or(lconv_w.dim(0), |fw| fw.dim(0));
    let (oh, ow) = match pool {
        Some((_, k, s)) => (conv_out_dim(h, k, s, 0), conv_out_dim(w, k, s, 0)),
        None => (h, w),
    };
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    fused_forward_tiled_into(
        input.view(),
        lconv_w,
        lconv_b,
        act,
        pool,
        fconv_w,
        fconv_b,
        tile,
        out.data_mut(),
    );
    out
}

/// [`fused_forward_tiled`] writing into a preallocated output buffer: each
/// tile job scatters its finished `T×T×T` block straight into the planned
/// output slot instead of staging all tiles for a sequential copy. Tile
/// staging buffers come from thread-local scratch; for the zero-allocation
/// path use [`fused_forward_tiled_into_scratch`].
///
/// # Panics
/// Panics on channel mismatches or if `out` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn fused_forward_tiled_into(
    input: TensorView<'_>,
    lconv_w: &Tensor,
    lconv_b: Option<&[f32]>,
    act: ActKind,
    pool: Option<(PoolKind, usize, usize)>,
    fconv_w: Option<&Tensor>,
    fconv_b: Option<&[f32]>,
    tile: usize,
    out: &mut [f32],
) {
    let (n, h, w) = (input.dim(0), input.dim(2), input.dim(3));
    let c_full = lconv_w.dim(0);
    let c_out = fconv_w.map_or(c_full, |fw| fw.dim(0));
    let floats = fused_tiled_scratch_floats(
        n,
        h,
        w,
        c_full,
        c_out,
        pool.map(|(_, k, s)| (k, s)),
        tile,
        fconv_w.is_some(),
    );
    with_tl_scratch(floats, |scratch| {
        fused_forward_tiled_into_scratch(
            input, lconv_w, lconv_b, act, pool, fconv_w, fconv_b, tile, out, scratch,
        );
    });
}

/// [`fused_forward_tiled_into`] with caller-provided working memory.
///
/// `scratch` must hold at least [`fused_tiled_scratch_floats`] floats for
/// this geometry; it is partitioned into per-worker-slot staging arenas so
/// the kernel performs no allocation at all.
///
/// # Panics
/// Panics on channel mismatches, wrong `out` length, or short `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn fused_forward_tiled_into_scratch(
    input: TensorView<'_>,
    lconv_w: &Tensor,
    lconv_b: Option<&[f32]>,
    act: ActKind,
    pool: Option<(PoolKind, usize, usize)>,
    fconv_w: Option<&Tensor>,
    fconv_b: Option<&[f32]>,
    tile: usize,
    out: &mut [f32],
    scratch: &mut [f32],
) {
    fused_forward_tiled_into_scratch_with(
        input,
        lconv_w,
        lconv_b,
        act,
        pool,
        fconv_w,
        fconv_b,
        tile,
        out,
        scratch,
        FusedSchedule::DEFAULT.slots_per_thread,
    );
}

/// [`fused_forward_tiled_into_scratch`] with an explicit slots-per-thread
/// factor; scratch must hold [`fused_tiled_scratch_floats_with`] floats
/// for the *same* factor.
///
/// # Panics
/// Panics on channel mismatches, wrong `out` length, or short `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn fused_forward_tiled_into_scratch_with(
    input: TensorView<'_>,
    lconv_w: &Tensor,
    lconv_b: Option<&[f32]>,
    act: ActKind,
    pool: Option<(PoolKind, usize, usize)>,
    fconv_w: Option<&Tensor>,
    fconv_b: Option<&[f32]>,
    tile: usize,
    out: &mut [f32],
    scratch: &mut [f32],
    slots_per_thread: usize,
) {
    let tile = tile.max(1);
    let (n, c_red_in, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let c_full = lconv_w.dim(0);
    assert_eq!(lconv_w.dim(1), c_red_in, "tiled fused kernel: lconv input channels");
    if let Some(fw) = fconv_w {
        assert_eq!(fw.dim(1), c_full, "tiled fused kernel: fconv input channels");
    }
    let c_out = fconv_w.map_or(c_full, |fw| fw.dim(0));

    let (oh, ow, pk, ps) = match pool {
        Some((_, k, s)) => (conv_out_dim(h, k, s, 0), conv_out_dim(w, k, s, 0), k, s),
        None => (h, w, 1, 1),
    };
    let pool_kind = pool.map(|(kind, _, _)| kind);

    let lw = lconv_w.data();
    let fw = fconv_w.map(Tensor::data);
    let in_data = input.data();
    let in_plane = h * w;

    let out_plane = oh * ow;
    assert_eq!(out.len(), n * c_out * out_plane, "tiled fused output buffer length");

    // Tile grid over (c_out, oh, ow) — bz/by/bx of Listing 1 — times batch.
    let tiles_c = c_out.div_ceil(tile);
    let tiles_h = oh.div_ceil(tile);
    let tiles_w = ow.div_ceil(tile);
    let jobs = n * tiles_c * tiles_h * tiles_w;
    if jobs == 0 {
        return;
    }

    // Per-slot staging arenas at the largest tile's dimensions; edge tiles
    // use prefix slices. Workers claim jobs `slot, slot + slots, …`.
    let (th_max, tw_max) = (tile.min(oh), tile.min(ow));
    let (ih_max, iw_max) = ((th_max - 1) * ps + pk, (tw_max - 1) * ps + pk);
    let staged_max = c_full * ih_max * iw_max;
    let pooled_max = c_full * th_max * tw_max;
    let out_tile_max = if fw.is_some() { tile.min(c_out) * th_max * tw_max } else { 0 };
    let per_slot = staged_max + pooled_max + out_tile_max;
    let slots = fused_slots_with(jobs, slots_per_thread);
    assert!(
        scratch.len() >= slots * per_slot,
        "tiled fused scratch: need {} floats, got {}",
        slots * per_slot,
        scratch.len()
    );

    let out_ptr = SyncPtr(out.as_mut_ptr());
    scratch[..slots * per_slot].par_chunks_mut(per_slot).enumerate().for_each(|(slot, sc)| {
        let (staged_buf, rest_buf) = sc.split_at_mut(staged_max);
        let (pooled_buf, out_tile_buf) = rest_buf.split_at_mut(pooled_max);
        let mut job = slot;
        while job < jobs {
            let b = job / (tiles_c * tiles_h * tiles_w);
            let rest = job % (tiles_c * tiles_h * tiles_w);
            let tc = rest / (tiles_h * tiles_w);
            let th = (rest / tiles_w) % tiles_h;
            let tw = rest % tiles_w;

            let c0 = tc * tile;
            let c1 = (c0 + tile).min(c_out);
            let oh0 = th * tile;
            let oh1 = (oh0 + tile).min(oh);
            let ow0 = tw * tile;
            let ow1 = (ow0 + tile).min(ow);
            let (th_len, tw_len) = (oh1 - oh0, ow1 - ow0);

            // Pre-pool spatial footprint of this tile.
            let ih_len = (th_len - 1) * ps + pk;
            let iw_len = (tw_len - 1) * ps + pk;
            // Shared-memory analogue: full-width activations for the tile.
            let staged = &mut staged_buf[..c_full * ih_len * iw_len];
            for cf in 0..c_full {
                let wrow = &lw[cf * c_red_in..(cf + 1) * c_red_in];
                let bias = lconv_b.map_or(0.0, |bb| bb[cf]);
                for dy in 0..ih_len {
                    let iy = oh0 * ps + dy;
                    let dst = &mut staged[(cf * ih_len + dy) * iw_len..][..iw_len];
                    dst.fill(bias);
                    if iy >= h {
                        continue;
                    }
                    for (cr, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        let src_row = &in_data[(b * c_red_in + cr) * in_plane + iy * w..][..w];
                        for (dx, d) in dst.iter_mut().enumerate() {
                            let ix = ow0 * ps + dx;
                            if ix < w {
                                *d += wv * src_row[ix];
                            }
                        }
                    }
                    for d in dst.iter_mut() {
                        *d = act.apply(*d);
                    }
                }
            }
            // Pool within the staged tile.
            let pooled = &mut pooled_buf[..c_full * th_len * tw_len];
            match pool_kind {
                None => pooled.copy_from_slice(staged),
                Some(kind) => {
                    for cf in 0..c_full {
                        for y in 0..th_len {
                            for x in 0..tw_len {
                                let mut acc = match kind {
                                    PoolKind::Max => f32::NEG_INFINITY,
                                    PoolKind::Avg => 0.0,
                                };
                                for dy in 0..pk {
                                    for dx in 0..pk {
                                        let v = staged
                                            [(cf * ih_len + y * ps + dy) * iw_len + x * ps + dx];
                                        acc = match kind {
                                            PoolKind::Max => acc.max(v),
                                            PoolKind::Avg => acc + v,
                                        };
                                    }
                                }
                                if kind == PoolKind::Avg {
                                    acc /= (pk * pk) as f32;
                                }
                                pooled[(cf * th_len + y) * tw_len + x] = acc;
                            }
                        }
                    }
                }
            }
            // fconv over the tile's channel block (or pass-through straight
            // from the pooled staging — no copy).
            let plane = th_len * tw_len;
            let out_tile: &[f32] = match fw {
                None => &pooled[c0 * plane..c1 * plane],
                Some(fw) => {
                    let out_tile = &mut out_tile_buf[..(c1 - c0) * plane];
                    for (oi, co) in (c0..c1).enumerate() {
                        let dst = &mut out_tile[oi * plane..(oi + 1) * plane];
                        dst.fill(fconv_b.map_or(0.0, |bb| bb[co]));
                        let wrow = &fw[co * c_full..(co + 1) * c_full];
                        for (cf, &wv) in wrow.iter().enumerate() {
                            if wv == 0.0 {
                                continue;
                            }
                            let src = &pooled[cf * plane..(cf + 1) * plane];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += wv * s;
                            }
                        }
                    }
                    &out_tile_buf[..(c1 - c0) * plane]
                }
            };
            // Scatter this tile's block; tile regions are disjoint by
            // construction, so the shared pointer is sound.
            for (oi, co) in (c0..c1).enumerate() {
                for y in 0..th_len {
                    let src = &out_tile[(oi * th_len + y) * tw_len..][..tw_len];
                    let dst_off = (b * c_out + co) * out_plane + (oh0 + y) * ow + ow0;
                    unsafe {
                        std::ptr::copy_nonoverlapping(src.as_ptr(), out_ptr.add(dst_off), tw_len);
                    }
                }
            }
            job += slots;
        }
    });
}

/// Scratch bytes one tile job stages (the `T×T×T` shared-memory budget of
/// Listing 1, generalized to the full channel width this CPU port stages).
pub fn tile_scratch_bytes(
    c_full: usize,
    tile: usize,
    pool_stride: usize,
    pool_kernel: usize,
) -> usize {
    let side = (tile - 1) * pool_stride + pool_kernel;
    c_full * side * side * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::fused_forward;

    fn agree(tile: usize, pool: Option<(PoolKind, usize, usize)>, act: ActKind, seed: u64) {
        let x = Tensor::randn(&[2, 3, 9, 11], seed);
        let lw = Tensor::randn(&[10, 3, 1, 1], seed ^ 1);
        let lb: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        let fw = Tensor::randn(&[4, 10, 1, 1], seed ^ 2);
        let fb = [0.5f32, -0.5, 0.25, 0.0];
        let a = fused_forward(&x, &lw, Some(&lb), act, pool, Some(&fw), Some(&fb));
        let b = fused_forward_tiled(&x, &lw, Some(&lb), act, pool, Some(&fw), Some(&fb), tile);
        assert_eq!(a.shape(), b.shape());
        assert!(a.all_close(&b, 1e-4), "tile {tile} pool {pool:?}: diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn matches_strip_kernel_across_tile_sizes() {
        for tile in [1usize, 2, 3, 4, 8, 64] {
            agree(tile, None, ActKind::Relu, 7);
        }
    }

    #[test]
    fn matches_strip_kernel_with_pooling() {
        for tile in [1usize, 2, 3, 5] {
            agree(tile, Some((PoolKind::Max, 2, 2)), ActKind::Silu, 11);
            agree(tile, Some((PoolKind::Avg, 2, 2)), ActKind::Sigmoid, 13);
        }
    }

    #[test]
    fn matches_with_overlapping_pool() {
        for tile in [2usize, 4] {
            agree(tile, Some((PoolKind::Max, 3, 2)), ActKind::Relu, 17);
        }
    }

    #[test]
    fn restore_form_without_fconv() {
        let x = Tensor::randn(&[1, 2, 6, 6], 3);
        let lw = Tensor::randn(&[8, 2, 1, 1], 4);
        let a = fused_forward(&x, &lw, None, ActKind::Tanh, None, None, None);
        let b = fused_forward_tiled(&x, &lw, None, ActKind::Tanh, None, None, None, 3);
        assert!(a.all_close(&b, 1e-4));
        assert_eq!(b.shape(), &[1, 8, 6, 6]);
    }

    #[test]
    fn scratch_grows_quadratically_with_tile() {
        let small = tile_scratch_bytes(64, 2, 2, 2);
        let big = tile_scratch_bytes(64, 8, 2, 2);
        assert!(big > 10 * small);
    }
}
