//! Static offset allocation: the Plan stage of Plan → Allocate → Execute.
//!
//! Every materialized internal tensor of a scheduled graph gets a fixed
//! `(offset, size)` inside one contiguous slab such that values whose
//! liveness intervals overlap in time never overlap in space. The slab is
//! allocated once per inference; the executor then runs entirely on views
//! into it (see [`crate::executor`]), so the process high-water mark *is*
//! the slab size.
//!
//! The packer is greedy best-fit over liveness intervals: values are placed
//! largest-first (ties broken by earlier `begin`, then lower `ValueId`), and
//! each value takes the tightest gap — among the offsets left free by
//! already-placed, time-overlapping values — that fits it. Best-fit keeps
//! small late tensors from landing in (and splintering) the large low gaps
//! that later large tensors need. The whole procedure is deterministic:
//! same graph + schedule ⇒ byte-identical plan.
//!
//! `slab ≥ peak_live` always (two live values cannot share bytes); the gap
//! is fragmentation, which [`AllocationPlan::fragmentation`] reports and the
//! Figure-10 harness tracks against a 1.15× budget.
//!
//! # Kernel scratch as a planned resource
//!
//! Kernels also need working memory (im2col columns, GEMM pack panels,
//! fused-kernel strips). Since exactly one node runs at a time, one shared
//! **scratch arena** sized for the hungriest node suffices; it is appended
//! after the value region at a 64-byte-aligned offset, so the slab layout
//! is `[values][pad][scratch]` and `slab_bytes` covers both. Per-node
//! requirements come from [`crate::scratch::node_scratch_bytes`] — the same
//! deterministic formulas the kernels assert against at execution time.
//! Fragmentation is judged on the value region only; scratch is a fixed
//! cost of the kernel set, not a packing artifact.

use temco_ir::{liveness, Graph, LiveInterval, Liveness, ValueId};

/// Alignment of the scratch arena inside the slab (one cache line, and the
/// GEMM pack-panel alignment the microkernel prefers).
pub const SCRATCH_ALIGN: usize = 64;

/// One value's reserved slab region and lifetime.
#[derive(Clone, Debug)]
pub struct PlannedBuffer {
    /// The value.
    pub value: ValueId,
    /// Byte offset inside the slab.
    pub offset: usize,
    /// Byte size.
    pub bytes: usize,
    /// First schedule step at which the buffer is occupied.
    pub begin: usize,
    /// Last schedule step at which the buffer is occupied (inclusive).
    pub end: usize,
}

impl PlannedBuffer {
    /// Whether the two buffers are ever live at the same step.
    pub fn time_overlap(&self, other: &PlannedBuffer) -> bool {
        self.begin <= other.end && other.begin <= self.end
    }

    /// Whether the two byte ranges `[offset, offset+bytes)` intersect.
    pub fn space_overlap(&self, other: &PlannedBuffer) -> bool {
        self.offset < other.offset + other.bytes && other.offset < self.offset + self.bytes
    }
}

/// How far the packed slab sits above the sum-of-live lower bound.
#[derive(Clone, Copy, Debug)]
pub struct FragmentationReport {
    /// Total slab bytes.
    pub slab_bytes: usize,
    /// Peak of simultaneously-live bytes (the unreachable-by-packing floor).
    pub peak_live_bytes: usize,
    /// `slab_bytes - peak_live_bytes`.
    pub wasted_bytes: usize,
    /// `slab_bytes / peak_live_bytes` (1.0 for empty plans).
    pub ratio: f64,
}

/// The complete static allocation for one graph under one schedule.
#[derive(Clone, Debug)]
pub struct AllocationPlan {
    /// Reserved regions for every materialized value, in `ValueId` order.
    pub buffers: Vec<PlannedBuffer>,
    /// Total slab bytes: the value region plus (when any kernel needs
    /// working memory) alignment padding and the shared scratch arena.
    pub slab_bytes: usize,
    /// Bytes of the packed value region alone (max over buffers of
    /// `offset + bytes`).
    pub value_bytes: usize,
    /// Byte offset of the scratch arena ([`SCRATCH_ALIGN`]-aligned; equals
    /// `value_bytes` rounded up). Meaningful only when `scratch_bytes > 0`.
    pub scratch_offset: usize,
    /// Scratch arena bytes: the max over nodes of their kernel scratch
    /// requirement (0 when every kernel is allocation-free by itself).
    pub scratch_bytes: usize,
    /// Kernel scratch bytes per schedule step, `node_scratch[i]` for
    /// `g.nodes[i]` — the executor hands each kernel exactly this prefix of
    /// the arena.
    pub node_scratch: Vec<usize>,
    /// Peak of simultaneously-live bytes.
    pub peak_live_bytes: usize,
    /// `offset_of[value] = byte offset`, `usize::MAX` for unmaterialized
    /// values — O(1) lookup for the executor's hot loop.
    offset_of: Vec<usize>,
}

impl AllocationPlan {
    /// Slab byte offset of `v`, or `None` if `v` is never materialized.
    pub fn offset(&self, v: ValueId) -> Option<usize> {
        match self.offset_of.get(v.0 as usize) {
            Some(&o) if o != usize::MAX => Some(o),
            _ => None,
        }
    }

    /// The fragmentation report for this plan. Judged on the value region
    /// only — the scratch arena is a fixed cost of the kernel set, not a
    /// packing artifact.
    pub fn fragmentation(&self) -> FragmentationReport {
        let ratio = if self.peak_live_bytes == 0 {
            1.0
        } else {
            self.value_bytes as f64 / self.peak_live_bytes as f64
        };
        FragmentationReport {
            slab_bytes: self.value_bytes,
            peak_live_bytes: self.peak_live_bytes,
            wasted_bytes: self.value_bytes - self.peak_live_bytes,
            ratio,
        }
    }

    /// Check plan soundness. Returns human-readable violations (empty ⇔
    /// valid):
    ///
    /// * no two time-overlapping buffers may intersect in space;
    /// * every buffer must lie inside the value region (never inside the
    ///   scratch arena);
    /// * the scratch arena must sit aligned past the value region and be
    ///   covered by the slab;
    /// * the slab must not undercut the sum-of-live peak (a packing cannot
    ///   beat physics — such a plan is corrupt, not clever).
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let value_region = self.value_bytes.min(self.slab_bytes);
        for (i, a) in self.buffers.iter().enumerate() {
            if a.offset + a.bytes > value_region {
                errors.push(format!(
                    "buffer {:?} [{}, {}) exceeds value region {}",
                    a.value,
                    a.offset,
                    a.offset + a.bytes,
                    value_region
                ));
            }
            for b in self.buffers.iter().skip(i + 1) {
                if a.time_overlap(b) && a.space_overlap(b) {
                    errors.push(format!(
                        "values {:?} and {:?} overlap in time [{},{}]∩[{},{}] and in space \
                         [{},{})∩[{},{})",
                        a.value,
                        b.value,
                        a.begin,
                        a.end,
                        b.begin,
                        b.end,
                        a.offset,
                        a.offset + a.bytes,
                        b.offset,
                        b.offset + b.bytes
                    ));
                }
            }
        }
        if self.slab_bytes < self.peak_live_bytes {
            errors.push(format!(
                "slab {} undercuts the sum-of-live peak {} — impossible packing",
                self.slab_bytes, self.peak_live_bytes
            ));
        }
        if self.scratch_bytes > 0 {
            if self.scratch_offset < self.value_bytes
                || !self.scratch_offset.is_multiple_of(SCRATCH_ALIGN)
            {
                errors.push(format!(
                    "scratch arena offset {} is not an aligned offset past the value region {}",
                    self.scratch_offset, self.value_bytes
                ));
            }
            if self.scratch_offset + self.scratch_bytes != self.slab_bytes {
                errors.push(format!(
                    "scratch arena [{}, {}) does not end at the slab boundary {}",
                    self.scratch_offset,
                    self.scratch_offset + self.scratch_bytes,
                    self.slab_bytes
                ));
            }
        }
        if self.node_scratch.iter().copied().max().unwrap_or(0) > self.scratch_bytes {
            errors.push(format!(
                "a node needs more scratch than the arena holds ({} > {})",
                self.node_scratch.iter().copied().max().unwrap_or(0),
                self.scratch_bytes
            ));
        }
        errors
    }
}

/// Plan slab offsets for all internal tensors of `g` under its current
/// schedule (greedy best-fit; see the module docs).
///
/// # Panics
/// Panics if shape inference has not run.
pub fn plan_allocation(g: &Graph) -> AllocationPlan {
    let lv = liveness(g);
    plan_allocation_with(g, &lv)
}

/// [`plan_allocation`] with a precomputed liveness (the executor computes
/// liveness anyway and shares it).
pub fn plan_allocation_with(g: &Graph, lv: &Liveness) -> AllocationPlan {
    let intervals: Vec<LiveInterval> = lv.intervals().collect();
    let sizes: Vec<usize> = intervals.iter().map(|iv| g.value_bytes(iv.value)).collect();
    pack_best_fit(g, &intervals, &sizes)
}

fn pack_best_fit(g: &Graph, intervals: &[LiveInterval], sizes: &[usize]) -> AllocationPlan {
    let mut buffers: Vec<PlannedBuffer> = intervals
        .iter()
        .zip(sizes)
        .map(|(iv, &bytes)| PlannedBuffer {
            value: iv.value,
            offset: 0,
            bytes,
            begin: iv.begin,
            end: iv.end,
        })
        .collect();

    // Largest first; ties by earlier begin, then lower value id, so the
    // order — and with it the whole plan — is a pure function of the graph.
    let mut order: Vec<usize> = (0..buffers.len()).collect();
    order.sort_by(|&a, &b| {
        buffers[b]
            .bytes
            .cmp(&buffers[a].bytes)
            .then(buffers[a].begin.cmp(&buffers[b].begin))
            .then(buffers[a].value.cmp(&buffers[b].value))
    });

    let mut placed: Vec<usize> = Vec::with_capacity(buffers.len());
    for &i in &order {
        let need = buffers[i].bytes;
        // Occupied byte ranges of already-placed buffers alive at the same
        // time as buffer `i`.
        let mut occupied: Vec<(usize, usize)> = placed
            .iter()
            .filter(|&&j| buffers[i].time_overlap(&buffers[j]))
            .map(|&j| (buffers[j].offset, buffers[j].offset + buffers[j].bytes))
            .collect();
        occupied.sort_unstable();

        // Walk the gaps between occupied ranges; take the tightest that
        // fits, falling back to first-free-past-the-top. Gaps are visited in
        // ascending offset order, so ties resolve to the lowest offset.
        let mut best: Option<(usize, usize)> = None; // (slack, offset)
        let mut cursor = 0usize;
        for (start, end) in occupied {
            if start > cursor {
                let gap = start - cursor;
                if gap >= need {
                    let slack = gap - need;
                    if best.is_none_or(|(s, _)| slack < s) {
                        best = Some((slack, cursor));
                    }
                }
            }
            cursor = cursor.max(end);
        }
        buffers[i].offset = best.map_or(cursor, |(_, off)| off);
        placed.push(i);
    }

    let value_bytes = buffers.iter().map(|p| p.offset + p.bytes).max().unwrap_or(0);
    let peak_live_bytes = peak_live(g.nodes.len(), &buffers);
    let mut offset_of = vec![usize::MAX; g.values.len()];
    for p in &buffers {
        offset_of[p.value.0 as usize] = p.offset;
    }

    // Reserve the shared kernel-scratch arena past the value region. One
    // node runs at a time, so max-over-nodes is exact, not conservative.
    let node_scratch: Vec<usize> =
        g.nodes.iter().map(|n| crate::scratch::node_scratch_bytes(g, n)).collect();
    let scratch_bytes = node_scratch.iter().copied().max().unwrap_or(0);
    let scratch_offset = value_bytes.div_ceil(SCRATCH_ALIGN) * SCRATCH_ALIGN;
    let slab_bytes = if scratch_bytes == 0 { value_bytes } else { scratch_offset + scratch_bytes };

    AllocationPlan {
        buffers,
        slab_bytes,
        value_bytes,
        scratch_offset,
        scratch_bytes,
        node_scratch,
        peak_live_bytes,
        offset_of,
    }
}

/// Peak of simultaneously-live bytes via a delta sweep over the schedule.
fn peak_live(n_steps: usize, buffers: &[PlannedBuffer]) -> usize {
    let mut delta = vec![0isize; n_steps + 2];
    for p in buffers {
        delta[p.begin] += p.bytes as isize;
        delta[p.end + 1] -= p.bytes as isize;
    }
    let mut live = 0isize;
    let mut peak = 0usize;
    for d in delta {
        live += d;
        peak = peak.max(live as usize);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use temco_ir::Graph;
    use temco_tensor::Tensor;

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(&[1, 4, 8, 8], "x");
        for i in 0..n {
            x = g.relu(x, format!("r{i}"));
        }
        g.mark_output(x);
        g.infer_shapes();
        g
    }

    #[test]
    fn chain_packs_into_two_slots() {
        let g = chain(8);
        let plan = plan_allocation(&g);
        assert!(plan.validate().is_empty());
        assert_eq!(plan.slab_bytes, 2 * 4 * 64 * 4);
        assert_eq!(plan.slab_bytes, plan.peak_live_bytes);
        assert!((plan.fragmentation().ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offsets_are_queryable_per_value() {
        let g = chain(3);
        let plan = plan_allocation(&g);
        for p in &plan.buffers {
            assert_eq!(plan.offset(p.value), Some(p.offset));
        }
        // A value id past the table is not materialized.
        assert_eq!(plan.offset(ValueId(9999)), None);
    }

    #[test]
    fn skip_connection_gets_a_third_slot() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x");
        let a = g.relu(x, "a");
        let b = g.relu(a, "b");
        let c = g.relu(b, "c");
        let s = g.add(&[a, c], "skip");
        g.mark_output(s);
        g.infer_shapes();
        let plan = plan_allocation(&g);
        assert!(plan.validate().is_empty());
        assert_eq!(plan.slab_bytes, 3 * 4 * 64 * 4);
    }

    #[test]
    fn best_fit_prefers_the_tightest_gap() {
        // Hand-built intervals: a big buffer [0,0], then after it dies two
        // gaps exist (one exact-fit at a high offset once we stage it).
        // Construct via a graph with mixed sizes: a 4-channel and an
        // 8-channel tensor alive together, then a second 4-channel tensor
        // that must slot into the free 4-channel-sized gap, not past the top.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 8, 8], "x"); // 1 KiB
        let wide = g.conv2d(x, Tensor::zeros(&[8, 4, 3, 3]), None, 1, 1, "wide"); // 2 KiB
        let narrow = g.conv2d(wide, Tensor::zeros(&[4, 8, 3, 3]), None, 1, 1, "narrow"); // 1 KiB
        let out = g.relu(narrow, "out"); // 1 KiB
        g.mark_output(out);
        g.infer_shapes();
        let plan = plan_allocation(&g);
        assert!(plan.validate().is_empty());
        // x dies when wide is computed... peak is wide+narrow+? — whatever
        // the exact layout, best-fit must not exceed the sum-of-live peak
        // here because every later tensor fits a freed gap exactly. (The
        // value region, that is — the convs also reserve kernel scratch.)
        assert_eq!(plan.value_bytes, plan.peak_live_bytes);
        assert!(plan.scratch_bytes > 0);
        assert_eq!(plan.slab_bytes, plan.scratch_offset + plan.scratch_bytes);
    }

    #[test]
    fn plan_is_deterministic() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 8, 8], "x");
        let c1 = g.conv2d(x, Tensor::zeros(&[16, 8, 3, 3]), None, 1, 1, "c1");
        let r = g.relu(c1, "r");
        let c2 = g.conv2d(r, Tensor::zeros(&[4, 16, 3, 3]), None, 2, 1, "c2");
        let s = g.add(&[x, x], "dbl");
        let cat = g.concat(&[s, s], "cat");
        g.mark_output(c2);
        g.mark_output(cat);
        g.infer_shapes();
        let a = plan_allocation(&g);
        let b = plan_allocation(&g);
        assert_eq!(a.slab_bytes, b.slab_bytes);
        for (pa, pb) in a.buffers.iter().zip(&b.buffers) {
            assert_eq!((pa.value, pa.offset, pa.bytes), (pb.value, pb.offset, pb.bytes));
        }
    }

    #[test]
    fn validate_flags_impossible_slabs() {
        let g = chain(3);
        let mut plan = plan_allocation(&g);
        plan.slab_bytes = plan.peak_live_bytes - 1;
        assert!(plan.validate().iter().any(|e| e.contains("undercuts")));
    }

    #[test]
    fn validate_flags_space_collisions() {
        let g = chain(3);
        let mut plan = plan_allocation(&g);
        for p in &mut plan.buffers {
            p.offset = 0;
        }
        assert!(plan.validate().iter().any(|e| e.contains("overlap in time")));
    }
}
